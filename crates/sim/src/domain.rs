//! Intra-simulation domain workers (docs/PARALLELISM.md).
//!
//! One machine is partitioned into `EBM_SIM_THREADS` *domains*: contiguous
//! chunks of SIMT cores (with their lazy-credit watermarks and egress
//! flags) and memory partitions (with their staging backlogs). Each domain
//! is owned by one worker thread for the duration of a [`crate::machine::Gpu::run`]
//! span; the coordinator (the calling thread) keeps the timing wheel, both
//! crossbars and all scalar counters, and is the only code that ever moves
//! data *between* domains.
//!
//! A stepped cycle is three lock-step phases, each released by the
//! coordinator through a [`Gate`] broadcast and collected through a
//! [`Latch`] countdown:
//!
//! 1. **Produce** — due partitions step and stage responses toward the
//!    response network, bounded by a per-port free-slot budget the
//!    coordinator snapshot before the phase.
//! 2. **Cores** — response grants are drained into cores, due cores step,
//!    and egress queues stage requests toward the request network under the
//!    same budget discipline.
//! 3. **Ingress** — ejected requests append to partition ingress backlogs
//!    and drain-retry into the partitions.
//!
//! Between phases the coordinator merges every domain's staged flits into
//! the crossbars **in ascending domain index order** (so ascending global
//! component order — the exact order the serial engine pushes in) and runs
//! the crossbars' round-robin arbitration itself. All cross-domain data
//! flows through those merges, which is why results are bit-identical to
//! the serial engine for every worker count; see docs/PARALLELISM.md for
//! the full invariant.
//!
//! Everything here is `pub(crate)`: the only public surface of intra-sim
//! parallelism is `Gpu::set_sim_threads` and the `EBM_SIM_THREADS`
//! environment variable (`crate::exec::sim_worker_count`).

use crate::machine::credit_core;
use gpu_mem::req::MemRequest;
use gpu_mem::MemoryPartition;
use gpu_simt::SimtCore;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Phase byte: shut the worker down (end of the run span).
pub(crate) const PHASE_EXIT: u8 = 0;
/// Phase byte: due partitions produce and stage responses.
pub(crate) const PHASE_PRODUCE: u8 = 1;
/// Phase byte: grants drain into cores, due cores step, egress stages.
pub(crate) const PHASE_CORES: u8 = 2;
/// Phase byte: ejected requests append and drain into partitions.
pub(crate) const PHASE_INGRESS: u8 = 3;

/// Brief spin before blocking: phases are microseconds apart when the host
/// has spare cores, but the suite must also behave on single-core
/// containers, so the spin is short and falls back to a condvar.
const SPIN: u32 = 128;

/// Coordinator-to-workers phase broadcast.
///
/// `release` publishes a `(phase, now)` pair by bumping `epoch` under the
/// mutex; `wait` spins briefly on the epoch then blocks on the condvar.
/// The epoch bump inside the mutex is what makes the sleep race-free: a
/// waiter re-checks the epoch under the same mutex before sleeping, so a
/// release cannot slip between its check and its wait.
pub(crate) struct Gate {
    epoch: AtomicU64,
    phase: AtomicU8,
    now: AtomicU64,
    failed: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Gate {
    pub(crate) fn new() -> Self {
        Gate {
            epoch: AtomicU64::new(0),
            phase: AtomicU8::new(PHASE_EXIT),
            now: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Publishes the next phase to every worker. Must only be called while
    /// all workers are parked in [`Gate::wait`] (the coordinator guarantees
    /// this by waiting on the [`Latch`] between releases).
    pub(crate) fn release(&self, phase: u8, now: u64) {
        self.phase.store(phase, Ordering::Relaxed);
        self.now.store(now, Ordering::Relaxed);
        let _guard = self.lock.lock().expect("gate lock poisoned");
        // Release-ordered so the phase/now stores above (and all mailbox
        // writes before them) are visible to the acquire load in `wait`.
        self.epoch.fetch_add(1, Ordering::Release);
        self.cv.notify_all();
    }

    /// Blocks until the epoch moves past `seen`; returns the new epoch and
    /// the published `(phase, now)` pair.
    pub(crate) fn wait(&self, seen: u64) -> (u64, u8, u64) {
        for _ in 0..SPIN {
            let e = self.epoch.load(Ordering::Acquire);
            if e != seen {
                return (
                    e,
                    self.phase.load(Ordering::Relaxed),
                    self.now.load(Ordering::Relaxed),
                );
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("gate lock poisoned");
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e != seen {
                return (
                    e,
                    self.phase.load(Ordering::Relaxed),
                    self.now.load(Ordering::Relaxed),
                );
            }
            guard = self.cv.wait(guard).expect("gate lock poisoned");
        }
    }

    /// Marks the run as failed (a worker's phase body panicked). The
    /// coordinator checks this after every phase and shuts the remaining
    /// workers down instead of deadlocking on a latch that will never fill.
    pub(crate) fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    /// True when some worker's phase body panicked.
    pub(crate) fn has_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

/// Workers-to-coordinator completion countdown, reset before each release.
pub(crate) struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Latch {
            remaining: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Arms the latch for `n` arrivals. Must only be called while no worker
    /// is mid-phase (the coordinator resets immediately before a release).
    pub(crate) fn reset(&self, n: usize) {
        self.remaining.store(n, Ordering::Release);
    }

    /// Records one worker's phase completion; wakes the coordinator on the
    /// last arrival.
    pub(crate) fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Taking the lock before notifying closes the race against a
            // coordinator that checked `remaining` and is about to sleep.
            let _guard = self.lock.lock().expect("latch lock poisoned");
            self.cv.notify_all();
        }
    }

    /// Blocks until every armed arrival has happened.
    pub(crate) fn wait(&self) {
        for _ in 0..SPIN {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("latch lock poisoned");
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cv.wait(guard).expect("latch lock poisoned");
        }
    }
}

/// Per-worker exchange buffer. Only ever touched by its worker while a
/// phase is in flight and by the coordinator while the worker is parked,
/// so the mutex is uncontended by protocol; it exists to carry the
/// happens-before edges in safe code. All vectors are reused across
/// cycles (drained, never dropped), so the steady state allocates nothing.
pub(crate) struct Mailbox {
    /// Due flags for this domain's cores (local index), copied in by the
    /// coordinator from the timing wheel, extended by grant deliveries,
    /// cleared by the worker in the cores phase.
    pub(crate) core_due: Vec<bool>,
    /// Due flags for this domain's partitions, coordinator-copied before
    /// the produce phase, cleared by the worker in the ingress phase.
    pub(crate) part_due: Vec<bool>,
    /// Response-network free-slot budget per local partition (valid for due
    /// partitions), snapshot by the coordinator before the produce phase.
    pub(crate) resp_free: Vec<usize>,
    /// Request-network free-slot budget per local core, snapshot by the
    /// coordinator before the cores phase.
    pub(crate) req_free: Vec<usize>,
    /// Response grants `(local core, response)` in arbitration order.
    pub(crate) grants: Vec<(usize, MemRequest)>,
    /// Request ejections `(local partition, request)` in arbitration order.
    pub(crate) ejects: Vec<(usize, MemRequest)>,
    /// Responses staged toward the response network:
    /// `(global partition port, destination core, response)` in partition
    /// order, backlog order within a partition.
    pub(crate) staged_resps: Vec<(usize, usize, MemRequest)>,
    /// Requests staged toward the request network:
    /// `(global core port, destination partition, request)` in core order.
    pub(crate) staged_reqs: Vec<(usize, usize, MemRequest)>,
    /// Timing-wheel updates for cores: `(global core, wake | NEVER)`.
    pub(crate) core_resched: Vec<(usize, u64)>,
    /// Timing-wheel updates for partitions:
    /// `(global partition, wake | NEVER, is schedule_min)`.
    pub(crate) part_resched: Vec<(usize, u64, bool)>,
    /// Core step calls executed this cycle (coordinator drains into the
    /// machine-wide counter).
    pub(crate) core_steps: u64,
    /// Net change to the machine-wide egress-pending count this cycle.
    pub(crate) egress_delta: i64,
}

impl Mailbox {
    pub(crate) fn new(n_local_cores: usize, n_local_parts: usize) -> Self {
        Mailbox {
            core_due: vec![false; n_local_cores],
            part_due: vec![false; n_local_parts],
            resp_free: vec![0; n_local_parts],
            req_free: vec![0; n_local_cores],
            grants: Vec::new(),
            ejects: Vec::new(),
            staged_resps: Vec::new(),
            staged_reqs: Vec::new(),
            core_resched: Vec::new(),
            part_resched: Vec::new(),
            core_steps: 0,
            egress_delta: 0,
        }
    }
}

/// One domain: the contiguous machine slices a worker owns for a run span,
/// plus the immutable geometry it needs to stage flits.
pub(crate) struct DomainWorker<'a> {
    /// This domain's cores.
    pub(crate) cores: &'a mut [SimtCore],
    /// Lazy-credit watermarks, aligned with `cores`.
    pub(crate) credited: &'a mut [u64],
    /// Egress-pending flags, aligned with `cores`.
    pub(crate) egress: &'a mut [bool],
    /// This domain's memory partitions.
    pub(crate) partitions: &'a mut [MemoryPartition],
    /// Response staging backlogs, aligned with `partitions`.
    pub(crate) resp_backlog: &'a mut [VecDeque<MemRequest>],
    /// Ingress retry backlogs, aligned with `partitions`.
    pub(crate) ingress_backlog: &'a mut [VecDeque<MemRequest>],
    /// Global index of `cores[0]` (also the request-network port base).
    pub(crate) core_base: usize,
    /// Global index of `partitions[0]` (also the response-network port base).
    pub(crate) part_base: usize,
    /// Crossbar admissions per core per cycle (`xbar_requests_per_cycle`).
    pub(crate) rate: usize,
    /// Machine-wide partition count (for request address interleaving).
    pub(crate) n_partitions: usize,
    /// Reused swap buffer for draining `grants`/`ejects` while the mailbox
    /// stays mutable.
    pub(crate) scratch: Vec<(usize, MemRequest)>,
}

impl DomainWorker<'_> {
    /// Phase 1 — mirrors the serial engine's "due partitions produce"
    /// phase: `step_into` the due partitions, then stage up to the
    /// coordinator's free-slot budget of backlog responses toward the
    /// response network. The budget snapshot is exact because each
    /// response-network input port is filled only by its own partition and
    /// drained only by the coordinator's later arbitration step.
    fn produce(&mut self, mb: &mut Mailbox, now: u64) {
        for lp in 0..self.partitions.len() {
            if !mb.part_due[lp] {
                continue;
            }
            self.partitions[lp].step_into(now, &mut self.resp_backlog[lp]);
            let mut budget = mb.resp_free[lp];
            while budget > 0 {
                let Some(resp) = self.resp_backlog[lp].pop_front() else {
                    break;
                };
                mb.staged_resps
                    .push((self.part_base + lp, resp.core.index(), resp));
                budget -= 1;
            }
        }
    }

    /// Phase 2 — mirrors the serial engine's response-delivery, core-step
    /// and egress-drain phases for this domain's cores, in the serial
    /// engine's exact per-core order: grants (credit, receive, mark due),
    /// then due cores step, then egress queues stage requests under the
    /// free-slot budget, then due cores report their next wake time.
    fn cores(&mut self, mb: &mut Mailbox, now: u64) {
        // Grants first: crediting a woken core's skipped cycles must
        // precede `receive`, which clears the sleep state the credit reads.
        std::mem::swap(&mut self.scratch, &mut mb.grants);
        for &(lc, resp) in &self.scratch {
            credit_core(&mut self.cores[lc], &mut self.credited[lc], now);
            self.cores[lc].receive(resp);
            mb.core_due[lc] = true;
        }
        self.scratch.clear();

        for lc in 0..self.cores.len() {
            if !mb.core_due[lc] {
                continue;
            }
            mb.core_steps += 1;
            credit_core(&mut self.cores[lc], &mut self.credited[lc], now);
            self.cores[lc].step(now);
            self.credited[lc] = now + 1;
            let has = self.cores[lc].has_egress();
            if has != self.egress[lc] {
                self.egress[lc] = has;
                mb.egress_delta += if has { 1 } else { -1 };
            }
        }

        // Egress drain: every core with queued requests, due or not — a
        // struct-stalled core sleeps while its queue drains at the
        // machine's pace, and the pop wakes it.
        for lc in 0..self.cores.len() {
            if !self.egress[lc] {
                continue;
            }
            let budget = mb.req_free[lc].min(self.rate);
            let mut pushed = 0usize;
            let mut popped = false;
            while pushed < budget {
                let Some(req) = self.cores[lc].peek_request().copied() else {
                    break;
                };
                credit_core(&mut self.cores[lc], &mut self.credited[lc], now + 1);
                let dest = req.addr.partition(self.n_partitions);
                let req = self.cores[lc].pop_request().expect("peeked");
                mb.staged_reqs.push((self.core_base + lc, dest, req));
                pushed += 1;
                popped = true;
            }
            if popped {
                if !self.cores[lc].has_egress() {
                    self.egress[lc] = false;
                    mb.egress_delta -= 1;
                }
                // A pop may have woken a struct-stalled sleeper; a non-due
                // core is not rescheduled below, so report it here.
                if !mb.core_due[lc] {
                    mb.core_resched
                        .push((self.core_base + lc, self.cores[lc].next_event(now + 1)));
                }
            }
        }

        for lc in 0..self.cores.len() {
            if !mb.core_due[lc] {
                continue;
            }
            mb.core_due[lc] = false;
            mb.core_resched
                .push((self.core_base + lc, self.cores[lc].next_event(now + 1)));
        }
    }

    /// Phase 3 — mirrors the serial engine's ingress phase: append the
    /// coordinator's ejections to the retry backlogs in grant order,
    /// drain-retry into the partitions, and report timing-wheel updates
    /// (a partition left with a non-empty backlog must step next cycle).
    fn ingress(&mut self, mb: &mut Mailbox, now: u64) {
        std::mem::swap(&mut self.scratch, &mut mb.ejects);
        for &(lp, req) in &self.scratch {
            self.ingress_backlog[lp].push_back(req);
        }
        self.scratch.clear();

        for lp in 0..self.partitions.len() {
            if !self.ingress_backlog[lp].is_empty() {
                while let Some(req) = self.ingress_backlog[lp].front().copied() {
                    if self.partitions[lp].push(req).is_err() {
                        break;
                    }
                    self.ingress_backlog[lp].pop_front();
                }
                if !mb.part_due[lp] {
                    mb.part_resched.push((self.part_base + lp, now + 1, true));
                }
            }
            if mb.part_due[lp] {
                mb.part_due[lp] = false;
                let mut t = self.partitions[lp].next_event(now + 1);
                if !self.resp_backlog[lp].is_empty() || !self.ingress_backlog[lp].is_empty() {
                    t = now + 1; // staging/ingress retries happen every cycle
                }
                mb.part_resched.push((self.part_base + lp, t, false));
            }
        }
    }

    fn run_phase(&mut self, phase: u8, mb: &mut Mailbox, now: u64) {
        match phase {
            PHASE_PRODUCE => self.produce(mb, now),
            PHASE_CORES => self.cores(mb, now),
            PHASE_INGRESS => self.ingress(mb, now),
            _ => unreachable!("unknown phase {phase}"),
        }
    }
}

/// Worker thread body: park on the gate, run the released phase against
/// the domain, arrive at the latch, repeat until `PHASE_EXIT`.
///
/// A panic inside a phase body marks the gate as failed *before* arriving,
/// so the coordinator (which checks after every latch wait) shuts the
/// other workers down instead of deadlocking; the payload is then
/// re-raised so it propagates through the thread scope's join.
pub(crate) fn worker_loop(
    mut worker: DomainWorker<'_>,
    gate: &Gate,
    latch: &Latch,
    mailbox: &Mutex<Mailbox>,
) {
    let mut epoch = 0u64;
    loop {
        let (e, phase, now) = gate.wait(epoch);
        epoch = e;
        if phase == PHASE_EXIT {
            break;
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut mb = mailbox.lock().expect("mailbox poisoned");
            worker.run_phase(phase, &mut mb, now);
        }));
        if let Err(payload) = result {
            gate.fail();
            latch.arrive();
            resume_unwind(payload);
        }
        latch.arrive();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_latch_round_trip() {
        let gate = Gate::new();
        let latch = Latch::new();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut epoch = 0u64;
                    loop {
                        let (e, phase, now) = gate.wait(epoch);
                        epoch = e;
                        if phase == PHASE_EXIT {
                            break;
                        }
                        hits.fetch_add(now as usize, Ordering::Relaxed);
                        latch.arrive();
                    }
                });
            }
            for cycle in 1..=10u64 {
                latch.reset(3);
                gate.release(PHASE_CORES, cycle);
                latch.wait();
                assert_eq!(
                    hits.load(Ordering::Relaxed),
                    3 * (1..=cycle).sum::<u64>() as usize,
                    "every worker must run exactly once per release"
                );
            }
            gate.release(PHASE_EXIT, 0);
        });
    }

    #[test]
    fn latch_wait_returns_immediately_when_empty() {
        let latch = Latch::new();
        latch.reset(0);
        latch.wait(); // must not block
    }

    #[test]
    fn gate_reports_failure() {
        let gate = Gate::new();
        assert!(!gate.has_failed());
        gate.fail();
        assert!(gate.has_failed());
    }

    #[test]
    fn mailbox_sized_to_domain() {
        let mb = Mailbox::new(3, 1);
        assert_eq!(mb.core_due.len(), 3);
        assert_eq!(mb.req_free.len(), 3);
        assert_eq!(mb.part_due.len(), 1);
        assert_eq!(mb.resp_free.len(), 1);
    }
}
