//! Intra-simulation domain workers: lookahead-windowed synchronization
//! (docs/PARALLELISM.md).
//!
//! One machine is partitioned into `EBM_SIM_THREADS` *domains*: contiguous
//! chunks of SIMT cores (with their lazy-credit watermarks and egress
//! flags) and memory partitions (with their staging backlogs). Each domain
//! is owned by one worker thread for the duration of a
//! [`crate::machine::Gpu::run`] span; the coordinator (the calling thread)
//! keeps both crossbars and all scalar counters, and is the only code that
//! ever moves data *between* domains.
//!
//! The crossbars' fixed traversal latency is **conservative lookahead**: a
//! flit pushed at cycle `t` is deliverable no earlier than `t + latency`,
//! so no domain can observe another domain's actions for `latency` cycles.
//! The coordinator therefore releases all workers for an `L`-cycle
//! *window* per [`Gate`] broadcast (one barrier pair per window instead of
//! three per cycle):
//!
//! * Before the release it **forward-simulates** both crossbars for every
//!   cycle of the window — exact, because an in-window push is ready no
//!   earlier than the window end, so it can neither be granted in-window
//!   nor become an eligible head-of-line flit; grants depend only on the
//!   state at the window start. The resulting deliveries (cycle-tagged
//!   response grants and request ejections) and per-port admission budgets
//!   (free slots at the window start plus one refund per forward-simulated
//!   grant at a strictly earlier cycle) go into each domain's [`Mailbox`].
//! * Each worker then steps its domain through the whole window with no
//!   further synchronization, consuming the tagged deliveries at their
//!   cycles and staging its own crossbar pushes with origin-cycle tags,
//!   each push pre-approved against the exact budget the serial engine
//!   would have seen at that cycle.
//! * At the window boundary the coordinator replays the staged flits into
//!   the crossbars with their origin-cycle `ready_at` semantics, restoring
//!   a state byte-identical to the serial engine's.
//!
//! Workers own their components' wake times for the span (derived from
//! component state, which is dueness-equivalent to the serial timing
//! wheel's entries — every wheel entry is a state-derived snapshot), and
//! report a per-window `stepped_mask` of cycles their domain did work in,
//! so the machine-level stepped/fast-forwarded accounting stays exact.
//!
//! Everything here is `pub(crate)`: the only public surface of intra-sim
//! parallelism is `Gpu::set_sim_threads` and the `EBM_SIM_THREADS`
//! environment variable (`crate::exec::sim_worker_count`).

use crate::machine::credit_core;
use crate::timeq::NEVER;
use gpu_mem::req::MemRequest;
use gpu_mem::MemoryPartition;
use gpu_simt::SimtCore;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Phase byte: shut the worker down (end of the run span).
pub(crate) const PHASE_EXIT: u8 = 0;
/// Phase byte: step the domain through one lookahead window.
pub(crate) const PHASE_WINDOW: u8 = 1;

/// Longest lookahead window in cycles: admission budgets, grant refunds
/// and the stepped-cycle report are `u64` bitmasks indexed by window
/// offset, so a window never exceeds 64 cycles even on configurations
/// with a larger crossbar latency.
pub(crate) const MAX_WINDOW: u64 = 64;

/// Bounded spin before blocking on a condvar. Windows are microseconds
/// apart when the host has spare cores, so a short spin usually avoids
/// the syscall; on a single-core host any spinning burns the timeslice of
/// the very thread being waited on, so the limit drops to zero and both
/// [`Gate::wait`] and [`Latch::wait`] block immediately.
fn spin_limit() -> u32 {
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 128,
        _ => 0,
    })
}

/// Coordinator-to-workers window broadcast.
///
/// `release` publishes a `(phase, now)` pair by bumping `epoch` under the
/// mutex; `wait` spins briefly on the epoch then blocks on the condvar.
/// The epoch bump inside the mutex is what makes the sleep race-free: a
/// waiter re-checks the epoch under the same mutex before sleeping, so a
/// release cannot slip between its check and its wait.
pub(crate) struct Gate {
    epoch: AtomicU64,
    phase: AtomicU8,
    now: AtomicU64,
    failed: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Gate {
    pub(crate) fn new() -> Self {
        Gate {
            epoch: AtomicU64::new(0),
            phase: AtomicU8::new(PHASE_EXIT),
            now: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Publishes the next window to every worker. Must only be called
    /// while all workers are parked in [`Gate::wait`] (the coordinator
    /// guarantees this by waiting on the [`Latch`] between releases).
    pub(crate) fn release(&self, phase: u8, now: u64) {
        self.phase.store(phase, Ordering::Relaxed);
        self.now.store(now, Ordering::Relaxed);
        let _guard = self.lock.lock().expect("gate lock poisoned");
        // Release-ordered so the phase/now stores above (and all mailbox
        // writes before them) are visible to the acquire load in `wait`.
        self.epoch.fetch_add(1, Ordering::Release);
        self.cv.notify_all();
    }

    /// Blocks until the epoch moves past `seen`; returns the new epoch and
    /// the published `(phase, now)` pair.
    pub(crate) fn wait(&self, seen: u64) -> (u64, u8, u64) {
        for _ in 0..spin_limit() {
            let e = self.epoch.load(Ordering::Acquire);
            if e != seen {
                return (
                    e,
                    self.phase.load(Ordering::Relaxed),
                    self.now.load(Ordering::Relaxed),
                );
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("gate lock poisoned");
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e != seen {
                return (
                    e,
                    self.phase.load(Ordering::Relaxed),
                    self.now.load(Ordering::Relaxed),
                );
            }
            guard = self.cv.wait(guard).expect("gate lock poisoned");
        }
    }

    /// Marks the run as failed (a worker's window body panicked). The
    /// coordinator checks this after every window and shuts the remaining
    /// workers down instead of deadlocking on a latch that will never fill.
    pub(crate) fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    /// True when some worker's window body panicked.
    pub(crate) fn has_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

/// Workers-to-coordinator completion countdown, reset before each release.
pub(crate) struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Latch {
            remaining: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Arms the latch for `n` arrivals. Must only be called while no worker
    /// is mid-window (the coordinator resets immediately before a release).
    pub(crate) fn reset(&self, n: usize) {
        self.remaining.store(n, Ordering::Release);
    }

    /// Records one worker's window completion; wakes the coordinator on
    /// the last arrival.
    pub(crate) fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Taking the lock before notifying closes the race against a
            // coordinator that checked `remaining` and is about to sleep.
            let _guard = self.lock.lock().expect("latch lock poisoned");
            self.cv.notify_all();
        }
    }

    /// Blocks until every armed arrival has happened.
    pub(crate) fn wait(&self) {
        for _ in 0..spin_limit() {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("latch lock poisoned");
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cv.wait(guard).expect("latch lock poisoned");
        }
    }
}

/// Per-worker exchange buffer. Only ever touched by its worker while a
/// window is in flight and by the coordinator while the worker is parked,
/// so the mutex is uncontended by protocol; it exists to carry the
/// happens-before edges in safe code. All vectors are reused across
/// windows (drained, never dropped), so the steady state allocates nothing.
pub(crate) struct Mailbox {
    // Coordinator → worker, filled before each release.
    /// Window length in cycles (1 ..= [`MAX_WINDOW`]).
    pub(crate) win_len: u64,
    /// Forward-simulated response grants
    /// `(window offset, local core, response)`, ascending offset,
    /// arbitration order within a cycle.
    pub(crate) grants: Vec<(u64, usize, MemRequest)>,
    /// Forward-simulated request ejections
    /// `(window offset, local partition, request)`, same ordering.
    pub(crate) ejects: Vec<(u64, usize, MemRequest)>,
    /// Request-network admission budget per local core: free slots of the
    /// core's input port at the window start.
    pub(crate) req_free: Vec<u32>,
    /// Request-network refunds per local core: bit `k` set means a
    /// forward-simulated grant left this core's input port at window
    /// offset `k`, so the slot is reusable from offset `k + 1` on.
    pub(crate) req_refund: Vec<u64>,
    /// Response-network admission budget per local partition.
    pub(crate) resp_free: Vec<u32>,
    /// Response-network refunds per local partition.
    pub(crate) resp_refund: Vec<u64>,

    // Worker → coordinator, filled during the window.
    /// Responses staged toward the response network:
    /// `(window offset, global partition port, destination core,
    /// response)`, ascending offset, backlog order within a cycle.
    pub(crate) staged_resps: Vec<(u64, usize, usize, MemRequest)>,
    /// Requests staged toward the request network:
    /// `(window offset, global core port, destination partition, request)`.
    pub(crate) staged_reqs: Vec<(u64, usize, usize, MemRequest)>,
    /// Bit `k` set: this domain stepped a component (or drained egress) at
    /// window offset `k`. The coordinator ORs all domains' masks with its
    /// own crossbar-due bits to reconstruct the serial engine's exact
    /// stepped/fast-forwarded cycle split.
    pub(crate) stepped_mask: u64,
    /// The domain's earliest future event at the window end (the window
    /// end itself while egress is pending, [`NEVER`] when fully asleep) —
    /// the coordinator's input for jumping over machine-wide idle
    /// stretches between windows.
    pub(crate) next_event: u64,
    /// Core step calls executed this window.
    pub(crate) core_steps: u64,
    /// Partition step calls executed this window.
    pub(crate) partition_steps: u64,
}

impl Mailbox {
    pub(crate) fn new(n_local_cores: usize, n_local_parts: usize) -> Self {
        Mailbox {
            win_len: 0,
            grants: Vec::new(),
            ejects: Vec::new(),
            req_free: vec![0; n_local_cores],
            req_refund: vec![0; n_local_cores],
            resp_free: vec![0; n_local_parts],
            resp_refund: vec![0; n_local_parts],
            staged_resps: Vec::new(),
            staged_reqs: Vec::new(),
            stepped_mask: 0,
            next_event: NEVER,
            core_steps: 0,
            partition_steps: 0,
        }
    }
}

/// One domain: the contiguous machine slices a worker owns for a run span,
/// the immutable geometry it needs to stage flits, and the worker-local
/// wake state that replaces the serial engine's timing-wheel entries for
/// these components.
pub(crate) struct DomainWorker<'a> {
    /// This domain's cores.
    pub(crate) cores: &'a mut [SimtCore],
    /// Lazy-credit watermarks, aligned with `cores`.
    pub(crate) credited: &'a mut [u64],
    /// Egress-pending flags, aligned with `cores`.
    pub(crate) egress: &'a mut [bool],
    /// This domain's memory partitions.
    pub(crate) partitions: &'a mut [MemoryPartition],
    /// Response staging backlogs, aligned with `partitions`.
    pub(crate) resp_backlog: &'a mut [VecDeque<MemRequest>],
    /// Ingress retry backlogs, aligned with `partitions`.
    pub(crate) ingress_backlog: &'a mut [VecDeque<MemRequest>],
    /// Global index of `cores[0]` (also the request-network port base).
    pub(crate) core_base: usize,
    /// Global index of `partitions[0]` (also the response-network port base).
    pub(crate) part_base: usize,
    /// Crossbar admissions per core per cycle (`xbar_requests_per_cycle`).
    pub(crate) rate: usize,
    /// Machine-wide partition count (for request address interleaving).
    pub(crate) n_partitions: usize,
    /// Per-core wake times (a core is due at `t` when `wake <= t`);
    /// grant deliveries pull a wake forward to the delivery cycle.
    pub(crate) core_wake: Vec<u64>,
    /// Per-partition wake times.
    pub(crate) part_wake: Vec<u64>,
    /// Number of `true` entries in `egress`.
    pub(crate) egress_count: usize,
    /// Request-network pushes staged so far this window, per local core.
    pub(crate) req_used: Vec<u32>,
    /// Response-network pushes staged so far this window, per partition.
    pub(crate) resp_used: Vec<u32>,
}

impl DomainWorker<'_> {
    /// Derives the domain's wake state from component state at span start.
    /// Dueness-equivalent to the serial engine's persisted timing wheel:
    /// every wheel entry is a state-derived snapshot (`next_event`, backlog
    /// emptiness, egress flags), so re-deriving at a later cycle fires the
    /// same components at the same cycles.
    fn init(&mut self, t0: u64) {
        self.core_wake.clear();
        self.egress_count = 0;
        for (lc, core) in self.cores.iter().enumerate() {
            self.egress[lc] = core.has_egress();
            if self.egress[lc] {
                self.egress_count += 1;
            }
            self.core_wake.push(core.next_event(t0));
        }
        self.part_wake.clear();
        for (lp, part) in self.partitions.iter().enumerate() {
            let mut t = part.next_event(t0);
            if !self.resp_backlog[lp].is_empty() || !self.ingress_backlog[lp].is_empty() {
                t = t0;
            }
            self.part_wake.push(t);
        }
        self.req_used = vec![0; self.cores.len()];
        self.resp_used = vec![0; self.partitions.len()];
    }

    /// Steps the domain through one lookahead window `[t0, t0 + win_len)`,
    /// running the serial engine's five phases per processed cycle
    /// restricted to this domain: due partitions produce and stage
    /// responses (budget-bounded), tagged response grants drain into
    /// cores, due cores step, egress queues stage requests
    /// (budget-bounded), and tagged request ejections append to the
    /// ingress backlogs and drain-retry into the partitions. Cycles where
    /// the domain has nothing due are skipped in O(domain size).
    fn run_window(&mut self, mb: &mut Mailbox, t0: u64) {
        let end = t0 + mb.win_len;
        let n_lc = self.cores.len();
        let n_lp = self.partitions.len();
        let mut gi = 0usize;
        let mut ei = 0usize;
        self.req_used.fill(0);
        self.resp_used.fill(0);
        let mut mask = 0u64;
        let mut t = t0;
        while t < end {
            // The next cycle this domain must touch: its earliest
            // component wake, a pending egress drain (every cycle), or a
            // tagged crossbar delivery.
            let mut due = if self.egress_count > 0 { t } else { NEVER };
            if due > t {
                for &w in &self.core_wake {
                    due = due.min(w);
                }
                for &w in &self.part_wake {
                    due = due.min(w);
                }
                if let Some(g) = mb.grants.get(gi) {
                    due = due.min(t0 + g.0);
                }
                if let Some(e) = mb.ejects.get(ei) {
                    due = due.min(t0 + e.0);
                }
            }
            if due > t {
                if due >= end {
                    break;
                }
                t = due;
                continue;
            }
            let off = (t - t0) as u32;
            mask |= 1u64 << off;
            // Refunds at strictly earlier offsets only: within a cycle the
            // serial engine pushes before the crossbar grants, so a
            // same-cycle grant cannot free a slot for a same-cycle push.
            let below = (1u64 << off) - 1;

            // 1. Due partitions produce responses; stage them toward the
            //    response network under the exact admission budget.
            for lp in 0..n_lp {
                if self.part_wake[lp] > t {
                    continue;
                }
                mb.partition_steps += 1;
                self.partitions[lp].step_into(t, &mut self.resp_backlog[lp]);
                let budget = mb.resp_free[lp] + (mb.resp_refund[lp] & below).count_ones()
                    - self.resp_used[lp];
                for _ in 0..budget {
                    let Some(resp) = self.resp_backlog[lp].pop_front() else {
                        break;
                    };
                    let dest = resp.core.index();
                    mb.staged_resps
                        .push((off as u64, self.part_base + lp, dest, resp));
                    self.resp_used[lp] += 1;
                }
            }

            // 2. Deliver this cycle's response grants (crediting a woken
            //    core's skipped cycles before `receive` clears its sleep
            //    state) and mark the receivers due.
            while let Some(&(goff, lc, resp)) = mb.grants.get(gi) {
                debug_assert!(goff >= off as u64, "grants are consumed in order");
                if goff != off as u64 {
                    break;
                }
                gi += 1;
                credit_core(&mut self.cores[lc], &mut self.credited[lc], t);
                self.cores[lc].receive(resp);
                self.core_wake[lc] = t;
            }

            // 3. Due cores execute; a step can enqueue egress.
            for lc in 0..n_lc {
                if self.core_wake[lc] > t {
                    continue;
                }
                mb.core_steps += 1;
                credit_core(&mut self.cores[lc], &mut self.credited[lc], t);
                self.cores[lc].step(t);
                self.credited[lc] = t + 1;
                let has = self.cores[lc].has_egress();
                if has != self.egress[lc] {
                    self.egress[lc] = has;
                    if has {
                        self.egress_count += 1;
                    } else {
                        self.egress_count -= 1;
                    }
                }
            }

            // 4. Egress drain toward the request network — every core with
            //    queued requests, due or not: a struct-stalled core sleeps
            //    while its queue drains at the machine's pace, and the pop
            //    wakes it.
            if self.egress_count > 0 {
                for lc in 0..n_lc {
                    if !self.egress[lc] {
                        continue;
                    }
                    let avail = mb.req_free[lc] + (mb.req_refund[lc] & below).count_ones()
                        - self.req_used[lc];
                    let budget = (avail as usize).min(self.rate);
                    let mut popped = false;
                    for _ in 0..budget {
                        let Some(req) = self.cores[lc].peek_request().copied() else {
                            break;
                        };
                        credit_core(&mut self.cores[lc], &mut self.credited[lc], t + 1);
                        let dest = req.addr.partition(self.n_partitions);
                        let req = self.cores[lc].pop_request().expect("peeked");
                        mb.staged_reqs
                            .push((off as u64, self.core_base + lc, dest, req));
                        self.req_used[lc] += 1;
                        popped = true;
                    }
                    if popped {
                        if !self.cores[lc].has_egress() {
                            self.egress[lc] = false;
                            self.egress_count -= 1;
                        }
                        // A pop may have woken a struct-stalled sleeper; a
                        // non-due core is not re-woken by the epilogue, so
                        // refresh it here.
                        if self.core_wake[lc] > t {
                            self.core_wake[lc] = self.cores[lc].next_event(t + 1);
                        }
                    }
                }
            }

            // 5. This cycle's request ejections append to the ingress
            //    backlogs (grant order), then every backlog drain-retries.
            while let Some(&(eoff, lp, req)) = mb.ejects.get(ei) {
                debug_assert!(eoff >= off as u64, "ejects are consumed in order");
                if eoff != off as u64 {
                    break;
                }
                ei += 1;
                self.ingress_backlog[lp].push_back(req);
            }
            for lp in 0..n_lp {
                if !self.ingress_backlog[lp].is_empty() {
                    while let Some(req) = self.ingress_backlog[lp].front().copied() {
                        if self.partitions[lp].push(req).is_err() {
                            break;
                        }
                        self.ingress_backlog[lp].pop_front();
                    }
                    // Fresh ingress (or a retry) makes the partition due
                    // next cycle even when it was not due now.
                    if self.part_wake[lp] > t {
                        self.part_wake[lp] = t + 1;
                    }
                }
                if self.part_wake[lp] <= t {
                    let mut w = self.partitions[lp].next_event(t + 1);
                    if !self.resp_backlog[lp].is_empty() || !self.ingress_backlog[lp].is_empty() {
                        w = t + 1; // staging/ingress retries happen every cycle
                    }
                    self.part_wake[lp] = w;
                }
            }

            // Epilogue: every due core reports its next wake.
            for lc in 0..n_lc {
                if self.core_wake[lc] <= t {
                    self.core_wake[lc] = self.cores[lc].next_event(t + 1);
                }
            }
            t += 1;
        }

        debug_assert_eq!(gi, mb.grants.len(), "all grants must be consumed");
        debug_assert_eq!(ei, mb.ejects.len(), "all ejects must be consumed");
        mb.grants.clear();
        mb.ejects.clear();
        mb.stepped_mask = mask;
        mb.next_event = if self.egress_count > 0 {
            end
        } else {
            let mut m = NEVER;
            for &w in &self.core_wake {
                m = m.min(w);
            }
            for &w in &self.part_wake {
                m = m.min(w);
            }
            m
        };
    }
}

/// Worker thread body: derive the domain's wake state, then park on the
/// gate, run each released window against the domain, arrive at the
/// latch, repeat until `PHASE_EXIT`.
///
/// A panic inside a window body marks the gate as failed *before*
/// arriving, so the coordinator (which checks after every latch wait)
/// shuts the other workers down instead of deadlocking; the payload is
/// then re-raised so it propagates through the thread scope's join.
pub(crate) fn worker_loop(
    mut worker: DomainWorker<'_>,
    gate: &Gate,
    latch: &Latch,
    mailbox: &Mutex<Mailbox>,
    span_start: u64,
) {
    worker.init(span_start);
    let mut epoch = 0u64;
    loop {
        let (e, phase, now) = gate.wait(epoch);
        epoch = e;
        if phase == PHASE_EXIT {
            break;
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut mb = mailbox.lock().expect("mailbox poisoned");
            worker.run_window(&mut mb, now);
        }));
        if let Err(payload) = result {
            gate.fail();
            latch.arrive();
            resume_unwind(payload);
        }
        latch.arrive();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_latch_round_trip() {
        let gate = Gate::new();
        let latch = Latch::new();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut epoch = 0u64;
                    loop {
                        let (e, phase, now) = gate.wait(epoch);
                        epoch = e;
                        if phase == PHASE_EXIT {
                            break;
                        }
                        hits.fetch_add(now as usize, Ordering::Relaxed);
                        latch.arrive();
                    }
                });
            }
            for cycle in 1..=10u64 {
                latch.reset(3);
                gate.release(PHASE_WINDOW, cycle);
                latch.wait();
                assert_eq!(
                    hits.load(Ordering::Relaxed),
                    3 * (1..=cycle).sum::<u64>() as usize,
                    "every worker must run exactly once per release"
                );
            }
            gate.release(PHASE_EXIT, 0);
        });
    }

    #[test]
    fn latch_wait_returns_immediately_when_empty() {
        let latch = Latch::new();
        latch.reset(0);
        latch.wait(); // must not block
    }

    #[test]
    fn gate_reports_failure() {
        let gate = Gate::new();
        assert!(!gate.has_failed());
        gate.fail();
        assert!(gate.has_failed());
    }

    #[test]
    fn mailbox_sized_to_domain() {
        let mb = Mailbox::new(3, 1);
        assert_eq!(mb.req_free.len(), 3);
        assert_eq!(mb.req_refund.len(), 3);
        assert_eq!(mb.resp_free.len(), 1);
        assert_eq!(mb.resp_refund.len(), 1);
        assert_eq!(mb.next_event, NEVER);
    }

    #[test]
    fn spin_limit_is_zero_on_single_core_hosts() {
        let limit = spin_limit();
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => assert!(limit > 0),
            _ => assert_eq!(limit, 0, "single-core hosts must not spin"),
        }
    }
}
