//! The multi-application GPU machine.

use gpu_mem::req::MemRequest;
use gpu_mem::{Crossbar, MemoryPartition};
use gpu_simt::{CoreStats, SimtCore, WarpStalls};
use gpu_types::{
    AppId, CoreId, GpuConfig, Histogram, MemCounters, PartitionId, TlpCombo, TlpLevel,
};
use gpu_workloads::AppProfile;
use std::collections::VecDeque;

/// A GPU running one or more applications on exclusive core partitions
/// sharing L2 and DRAM (§II-A).
///
/// # Examples
///
/// ```
/// use gpu_sim::machine::Gpu;
/// use gpu_types::{AppId, GpuConfig};
/// use gpu_workloads::Workload;
///
/// let workload = Workload::pair("BLK", "BFS");
/// let mut gpu = Gpu::new(&GpuConfig::small(), workload.apps(), 42);
/// gpu.run(2_000);
/// assert!(gpu.counters(AppId::new(0)).warp_insts > 0);
/// ```
pub struct Gpu {
    cfg: GpuConfig,
    cores: Vec<SimtCore>,
    /// Core indices assigned to each application.
    app_cores: Vec<Vec<usize>>,
    req_net: Crossbar<MemRequest>,
    resp_net: Crossbar<MemRequest>,
    partitions: Vec<MemoryPartition>,
    /// Responses waiting for response-network input space, per partition.
    resp_backlog: Vec<VecDeque<MemRequest>>,
    /// Requests ejected from the request network but refused by a full
    /// partition ingress queue, per partition.
    ingress_backlog: Vec<VecDeque<MemRequest>>,
    now: u64,
    /// When true, [`Gpu::step`]/[`Gpu::run`] use the naive cycle-by-cycle
    /// reference engine (allocating APIs, no quiescence skipping); see
    /// [`Gpu::set_reference_engine`].
    reference_mode: bool,
    /// Cycles advanced by stepping every component.
    stepped_cycles: u64,
    /// Cycles advanced by quiescence fast-forwarding.
    skipped_cycles: u64,
    /// Whether metrics recording is enabled machine-wide (mirrors the
    /// per-component flags; see [`Gpu::set_metrics_enabled`]).
    metrics: bool,
}

/// Cycle-advance accounting of the engine, exported for the `perf_smoke`
/// benchmark's quiescent-skip fraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Cycles advanced by stepping every component.
    pub stepped: u64,
    /// Cycles advanced by quiescence fast-forwarding (no component work).
    pub fast_forwarded: u64,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("now", &self.now)
            .field("n_cores", &self.cores.len())
            .field("n_apps", &self.app_cores.len())
            .finish()
    }
}

impl Gpu {
    /// Builds a machine running `apps` on equal exclusive core partitions
    /// (the paper's default; see [`Gpu::with_core_split`] for the §VI-D
    /// sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the cores cannot be split
    /// evenly.
    pub fn new(cfg: &GpuConfig, apps: &[&AppProfile], seed: u64) -> Self {
        assert!(!apps.is_empty(), "need at least one application");
        assert_eq!(
            cfg.n_cores % apps.len(),
            0,
            "{} cores cannot be split evenly among {} applications",
            cfg.n_cores,
            apps.len()
        );
        let per_app = cfg.n_cores / apps.len();
        Self::with_core_split(cfg, apps, &vec![per_app; apps.len()], seed)
    }

    /// Builds a machine with an explicit number of cores per application.
    /// The L2 and DRAM are always fully shared.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the split length mismatches
    /// `apps`, any share is zero, or the total exceeds `cfg.n_cores`.
    pub fn with_core_split(
        cfg: &GpuConfig,
        apps: &[&AppProfile],
        split: &[usize],
        seed: u64,
    ) -> Self {
        cfg.validate().expect("invalid configuration");
        assert_eq!(split.len(), apps.len(), "one core share per application");
        assert!(
            split.iter().all(|&s| s > 0),
            "every application needs at least one core"
        );
        let total: usize = split.iter().sum();
        assert!(total <= cfg.n_cores, "core split exceeds the machine");

        let mut cores = Vec::with_capacity(total);
        let mut app_cores = Vec::with_capacity(apps.len());
        let mut next_core = 0usize;
        for (ai, (profile, &share)) in apps.iter().zip(split).enumerate() {
            let app = AppId::new(ai as u8);
            let mut mine = Vec::with_capacity(share);
            for rank in 0..share {
                let streams = (0..cfg.warps_per_core)
                    .map(|slot| profile.stream(app, rank, slot, cfg.warps_per_core, seed))
                    .collect();
                cores.push(SimtCore::new(
                    CoreId(next_core),
                    app,
                    cfg,
                    profile.core_params(),
                    streams,
                ));
                mine.push(next_core);
                next_core += 1;
            }
            app_cores.push(mine);
        }

        let partitions = (0..cfg.n_partitions)
            .map(|p| MemoryPartition::new(PartitionId(p), cfg, apps.len()))
            .collect();
        Gpu {
            req_net: Crossbar::new(
                total,
                cfg.n_partitions,
                cfg.xbar_latency as u64,
                cfg.xbar_requests_per_cycle,
                8,
            ),
            resp_net: Crossbar::new(
                cfg.n_partitions,
                total,
                cfg.xbar_latency as u64,
                cfg.xbar_requests_per_cycle,
                8,
            ),
            partitions,
            resp_backlog: vec![VecDeque::new(); cfg.n_partitions],
            ingress_backlog: vec![VecDeque::new(); cfg.n_partitions],
            cores,
            app_cores,
            cfg: cfg.clone(),
            now: 0,
            reference_mode: false,
            stepped_cycles: 0,
            skipped_cycles: 0,
            metrics: false,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Number of co-scheduled applications.
    pub fn n_apps(&self) -> usize {
        self.app_cores.len()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Core indices assigned to `app`.
    pub fn cores_of(&self, app: AppId) -> &[usize] {
        &self.app_cores[app.index()]
    }

    /// Applies a TLP level to every core of `app` (SWL, clamped to the
    /// machine's realizable maximum).
    pub fn set_tlp(&mut self, app: AppId, level: TlpLevel) {
        let level = self.cfg.clamp_tlp(level);
        for &c in &self.app_cores[app.index()] {
            self.cores[c].set_tlp(level);
        }
    }

    /// Applies a full TLP combination (one level per application).
    ///
    /// # Panics
    ///
    /// Panics if the combination size mismatches the application count.
    pub fn set_combo(&mut self, combo: &TlpCombo) {
        assert_eq!(combo.len(), self.n_apps(), "combination size mismatch");
        for a in 0..self.n_apps() {
            self.set_tlp(AppId::new(a as u8), combo.level(a));
        }
    }

    /// The TLP level currently applied to `app`.
    pub fn tlp_of(&self, app: AppId) -> TlpLevel {
        let c = self.app_cores[app.index()][0];
        TlpLevel::new(self.cores[c].tlp() as u32).expect("core TLP is always valid")
    }

    /// Enables/disables L1 bypassing for every core of `app`
    /// (the Mod+Bypass baseline's knob).
    pub fn set_bypass_l1(&mut self, app: AppId, bypass: bool) {
        for &c in &self.app_cores[app.index()] {
            self.cores[c].set_bypass_l1(bypass);
        }
    }

    /// True when `app`'s cores currently bypass their L1s.
    pub fn bypass_l1_of(&self, app: AppId) -> bool {
        self.cores[self.app_cores[app.index()][0]].bypass_l1()
    }

    /// Enables/disables CCWS cache-conscious throttling on every core of
    /// `app` (the ++CCWS baseline).
    pub fn set_ccws(&mut self, app: AppId, enabled: bool) {
        for &c in &self.app_cores[app.index()] {
            self.cores[c].set_ccws(enabled);
        }
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        if self.reference_mode {
            self.step_reference();
        } else {
            self.step_optimized();
        }
    }

    /// One cycle of the optimized engine: drain-into/callback APIs, with
    /// every per-cycle buffer owned by the machine or its components, so the
    /// steady-state path performs zero heap allocation.
    fn step_optimized(&mut self) {
        let now = self.now;

        // 1. Memory partitions produce responses; stage them toward the
        //    response network (per-partition backlog absorbs bursts).
        for (p, part) in self.partitions.iter_mut().enumerate() {
            part.step_into(now, &mut self.resp_backlog[p]);
            while let Some(resp) = self.resp_backlog[p].front() {
                if !self.resp_net.can_accept(p) {
                    break;
                }
                let dest = resp.core.index();
                let resp = self.resp_backlog[p].pop_front().expect("front checked");
                self.resp_net
                    .push(p, dest, resp, now)
                    .expect("can_accept checked");
            }
        }

        // 2. Deliver responses to cores.
        let cores = &mut self.cores;
        self.resp_net
            .step_with(now, |core_idx, resp| cores[core_idx].receive(resp));

        // 3. Cores execute.
        for core in &mut self.cores {
            core.step(now);
        }

        // 4. Core egress into the request network.
        let n_partitions = self.cfg.n_partitions;
        for (ci, core) in self.cores.iter_mut().enumerate() {
            for _ in 0..self.cfg.xbar_requests_per_cycle {
                let Some(req) = core.peek_request() else {
                    break;
                };
                if !self.req_net.can_accept(ci) {
                    break;
                }
                let dest = req.addr.partition(n_partitions);
                let req = core.pop_request().expect("peeked");
                self.req_net
                    .push(ci, dest, req, now)
                    .expect("can_accept checked");
            }
        }

        // 5. Eject requests into partitions (retrying refused ones first).
        let backlog = &mut self.ingress_backlog;
        self.req_net
            .step_with(now, |p, req| backlog[p].push_back(req));
        for (p, part) in self.partitions.iter_mut().enumerate() {
            while let Some(req) = self.ingress_backlog[p].front().copied() {
                if part.push(req).is_err() {
                    break;
                }
                self.ingress_backlog[p].pop_front();
            }
        }

        self.now += 1;
        self.stepped_cycles += 1;
    }

    /// TEMP: per-phase wall-clock over `cycles` optimized steps.
    pub fn profile_phases(&mut self, cycles: u64) -> [f64; 5] {
        let mut acc = [0.0f64; 5];
        for _ in 0..cycles {
            let now = self.now;
            let t0 = std::time::Instant::now();
            for (p, part) in self.partitions.iter_mut().enumerate() {
                part.step_into(now, &mut self.resp_backlog[p]);
                while let Some(resp) = self.resp_backlog[p].front() {
                    if !self.resp_net.can_accept(p) {
                        break;
                    }
                    let dest = resp.core.index();
                    let resp = self.resp_backlog[p].pop_front().expect("front checked");
                    self.resp_net
                        .push(p, dest, resp, now)
                        .expect("can_accept checked");
                }
            }
            let t1 = std::time::Instant::now();
            let cores = &mut self.cores;
            self.resp_net
                .step_with(now, |core_idx, resp| cores[core_idx].receive(resp));
            let t2 = std::time::Instant::now();
            for core in &mut self.cores {
                core.step(now);
            }
            let t3 = std::time::Instant::now();
            let n_partitions = self.cfg.n_partitions;
            for (ci, core) in self.cores.iter_mut().enumerate() {
                for _ in 0..self.cfg.xbar_requests_per_cycle {
                    let Some(req) = core.peek_request() else {
                        break;
                    };
                    if !self.req_net.can_accept(ci) {
                        break;
                    }
                    let dest = req.addr.partition(n_partitions);
                    let req = core.pop_request().expect("peeked");
                    self.req_net
                        .push(ci, dest, req, now)
                        .expect("can_accept checked");
                }
            }
            let t4 = std::time::Instant::now();
            let backlog = &mut self.ingress_backlog;
            self.req_net
                .step_with(now, |p, req| backlog[p].push_back(req));
            for (p, part) in self.partitions.iter_mut().enumerate() {
                while let Some(req) = self.ingress_backlog[p].front().copied() {
                    if part.push(req).is_err() {
                        break;
                    }
                    self.ingress_backlog[p].pop_front();
                }
            }
            self.now += 1;
            self.stepped_cycles += 1;
            let t5 = std::time::Instant::now();
            acc[0] += (t1 - t0).as_secs_f64();
            acc[1] += (t2 - t1).as_secs_f64();
            acc[2] += (t3 - t2).as_secs_f64();
            acc[3] += (t4 - t3).as_secs_f64();
            acc[4] += (t5 - t4).as_secs_f64();
        }
        acc
    }

    /// One cycle of the naive reference engine: the original per-cycle
    /// algorithm with `Vec`-returning component steps and no quiescence
    /// machinery, kept only for the `engine_equivalence` differential tests.
    fn step_reference(&mut self) {
        let now = self.now;

        for (p, part) in self.partitions.iter_mut().enumerate() {
            for resp in part.step(now) {
                self.resp_backlog[p].push_back(resp);
            }
            while let Some(resp) = self.resp_backlog[p].front() {
                if !self.resp_net.can_accept(p) {
                    break;
                }
                let dest = resp.core.index();
                let resp = self.resp_backlog[p].pop_front().expect("front checked");
                self.resp_net
                    .push(p, dest, resp, now)
                    .expect("can_accept checked");
            }
        }

        for (core_idx, resp) in self.resp_net.step(now) {
            self.cores[core_idx].receive(resp);
        }

        for core in &mut self.cores {
            core.step_reference(now);
        }

        let n_partitions = self.cfg.n_partitions;
        for (ci, core) in self.cores.iter_mut().enumerate() {
            for _ in 0..self.cfg.xbar_requests_per_cycle {
                let Some(req) = core.peek_request() else {
                    break;
                };
                if !self.req_net.can_accept(ci) {
                    break;
                }
                let dest = req.addr.partition(n_partitions);
                let req = core.pop_request().expect("peeked");
                self.req_net
                    .push(ci, dest, req, now)
                    .expect("can_accept checked");
            }
        }

        for (p, req) in self.req_net.step(now) {
            self.ingress_backlog[p].push_back(req);
        }
        for (p, part) in self.partitions.iter_mut().enumerate() {
            while let Some(req) = self.ingress_backlog[p].front().copied() {
                if part.push(req).is_err() {
                    break;
                }
                self.ingress_backlog[p].pop_front();
            }
        }

        self.now += 1;
        self.stepped_cycles += 1;
    }

    /// The cycle (exclusive) up to which every component is provably
    /// quiescent, or `None` when something must be stepped at `now`.
    ///
    /// Quiescent means: no staged responses or refused ingress requests, no
    /// core egress, both crossbars without a deliverable flit, every
    /// partition event-free and every core asleep. Stepping any cycle in
    /// the returned span would change nothing but the per-cycle counters
    /// that [`Gpu::advance_idle`] credits in batch. `u64::MAX` means the
    /// machine is fully drained.
    fn quiescent_until(&self) -> Option<u64> {
        let now = self.now;
        if self.resp_backlog.iter().any(|b| !b.is_empty())
            || self.ingress_backlog.iter().any(|b| !b.is_empty())
        {
            return None;
        }
        let mut next = self.req_net.quiescent_until(now)?;
        next = next.min(self.resp_net.quiescent_until(now)?);
        for part in &self.partitions {
            next = next.min(part.quiescent_until(now)?);
        }
        for core in &self.cores {
            if core.has_egress() {
                return None;
            }
            next = next.min(core.quiescent_until(now)?);
        }
        Some(next)
    }

    /// Fast-forwards `k` quiescent cycles: credits every core's per-cycle
    /// counters in batch and advances `now`. Only called for spans proven
    /// inert by [`Gpu::quiescent_until`].
    fn advance_idle(&mut self, k: u64) {
        debug_assert!(k > 0, "zero-length fast-forward");
        for core in &mut self.cores {
            core.credit_idle_cycles(k);
        }
        self.now += k;
        self.skipped_cycles += k;
    }

    /// Runs the machine for `cycles` cycles. On the optimized engine,
    /// stretches where every component is provably quiescent are
    /// fast-forwarded to the next event time; `now`, statistics and traced
    /// output advance exactly as if every cycle had been stepped.
    pub fn run(&mut self, cycles: u64) {
        crate::metrics::add_cycles_simulated(cycles);
        if self.reference_mode {
            for _ in 0..cycles {
                self.step_reference();
            }
            return;
        }
        let end = self.now + cycles;
        while self.now < end {
            match self.quiescent_until() {
                Some(next) => {
                    let k = next.min(end) - self.now;
                    self.advance_idle(k);
                }
                None => self.step_optimized(),
            }
        }
    }

    /// Switches between the optimized engine and the naive cycle-by-cycle
    /// reference. The two are bit-for-bit equivalent (asserted by the
    /// `engine_equivalence` differential suite, the only intended user of
    /// the reference mode) — the reference is simply slower and allocates
    /// every cycle.
    pub fn set_reference_engine(&mut self, on: bool) {
        self.reference_mode = on;
    }

    /// Enables or disables metrics recording machine-wide (per-warp stall
    /// breakdowns in every core, DRAM request-latency histograms in every
    /// memory controller).  Purely an accounting switch, gated exactly
    /// like `TraceSink::enabled()`: toggling it never changes simulation
    /// results, and when off (the default) the hot path pays only one
    /// untaken branch per step.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics = on;
        for core in &mut self.cores {
            core.set_metrics_enabled(on);
        }
        for p in &mut self.partitions {
            p.set_metrics_enabled(on);
        }
    }

    /// Whether metrics recording is currently enabled.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics
    }

    /// Returns and resets `app`'s per-warp stall breakdown, merged over
    /// its cores (all zero unless metrics recording is enabled).
    pub fn take_warp_stalls(&mut self, app: AppId) -> WarpStalls {
        let mut total = WarpStalls::default();
        for &ci in &self.app_cores[app.index()] {
            total.merge(&self.cores[ci].take_warp_stalls());
        }
        total
    }

    /// Returns and resets `app`'s DRAM queue-to-data latency histogram,
    /// merged over every memory partition (empty unless metrics recording
    /// is enabled).
    pub fn take_dram_latency(&mut self, app: AppId) -> Histogram {
        let mut total = Histogram::new();
        for p in &mut self.partitions {
            total.merge(&p.take_dram_latency(app));
        }
        total
    }

    /// Samples machine-wide occupancy gauges into the given histograms:
    /// one L2-MSHR occupancy sample per partition, one queue-depth sample
    /// per partition (L2 ingress + controller queue), and the since-last-
    /// sample peak in-flight depth of each crossbar.  Called by the
    /// metrics registry at window rollover; the crossbar peaks are
    /// re-armed as a side effect (invisible to the simulation).
    pub fn sample_occupancy(&mut self, mshr_occ: &mut Histogram, queue_depth: &mut Histogram) {
        for p in &self.partitions {
            let (used, _cap) = p.l2_mshr_occupancy();
            mshr_occ.record(used as u64);
            queue_depth.record(p.queue_depth() as u64);
        }
        queue_depth.record(self.req_net.take_peak_in_flight() as u64);
        queue_depth.record(self.resp_net.take_peak_in_flight() as u64);
    }

    /// Cycle-advance accounting: how many cycles were stepped versus
    /// fast-forwarded through quiescent stretches.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            stepped: self.stepped_cycles,
            fast_forwarded: self.skipped_cycles,
        }
    }

    /// Cumulative per-application counters, aggregated over the app's cores
    /// (L1, instructions) and every memory partition (L2, DRAM).
    ///
    /// The paper's hardware samples one designated core and one designated
    /// partition per application; because miss rates and bandwidth are
    /// uniformly distributed across cores/partitions (§V-E observes this and
    /// we verify it in tests), exact aggregation is behaviourally equivalent
    /// and the runtime overhead is modeled by the sampling window and relay
    /// latency instead.
    pub fn counters(&self, app: AppId) -> MemCounters {
        let mut c = MemCounters::new();
        for &ci in &self.app_cores[app.index()] {
            let l1 = self.cores[ci].l1_counters(app);
            c.l1_accesses += l1.accesses;
            c.l1_misses += l1.misses;
            c.warp_insts += self.cores[ci].stats().insts;
        }
        for p in &self.partitions {
            let pk = p.counters(app);
            c.l2_accesses += pk.l2_accesses;
            c.l2_misses += pk.l2_misses;
            c.dram_bytes += pk.mc.dram_bytes;
            c.row_hits += pk.mc.row_hits;
            c.row_misses += pk.mc.row_misses;
        }
        c
    }

    /// The Fig. 8 designated-sampling estimate of `app`'s counters: L1
    /// statistics from one designated core (scaled by the app's core
    /// count), L2/DRAM statistics from one designated memory partition
    /// (scaled by the partition count). §V-E argues miss rates and
    /// bandwidth are uniformly distributed, so this estimate tracks
    /// [`Gpu::counters`]; the `sampling` experiment quantifies the error.
    pub fn designated_counters(&self, app: AppId) -> MemCounters {
        let mut c = MemCounters::new();
        let cores = &self.app_cores[app.index()];
        let designated_core = cores[0];
        let l1 = self.cores[designated_core].l1_counters(app);
        let n_cores = cores.len() as u64;
        c.l1_accesses = l1.accesses * n_cores;
        c.l1_misses = l1.misses * n_cores;
        // Instruction counts stay exact: the SD-based metrics we *report*
        // are not part of the sampled hardware path; only the EB inputs are.
        for &ci in cores {
            c.warp_insts += self.cores[ci].stats().insts;
        }
        let n_parts = self.partitions.len() as u64;
        let pk = self.partitions[0].counters(app);
        c.l2_accesses = pk.l2_accesses * n_parts;
        c.l2_misses = pk.l2_misses * n_parts;
        c.dram_bytes = pk.mc.dram_bytes * n_parts;
        c.row_hits = pk.mc.row_hits * n_parts;
        c.row_misses = pk.mc.row_misses * n_parts;
        c
    }

    /// Aggregated core-pipeline statistics for `app` (sums over its cores).
    pub fn core_stats(&self, app: AppId) -> CoreStats {
        let mut total = CoreStats::default();
        for &ci in &self.app_cores[app.index()] {
            let s = self.cores[ci].stats();
            total.cycles += s.cycles;
            total.insts += s.insts;
            total.mem_stall_cycles += s.mem_stall_cycles;
            total.struct_stall_cycles += s.struct_stall_cycles;
            total.idle_cycles += s.idle_cycles;
            total.warp_mem_wait_cycles += s.warp_mem_wait_cycles;
            total.active_warp_cycles += s.active_warp_cycles;
        }
        total
    }

    /// Per-partition L2 access counts for `app` (used by tests to verify the
    /// uniformity assumption behind designated-partition sampling).
    pub fn per_partition_l2_accesses(&self, app: AppId) -> Vec<u64> {
        self.partitions
            .iter()
            .map(|p| p.counters(app).l2_accesses)
            .collect()
    }

    /// Number of memory partitions in the machine.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of instantiated cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Cumulative telemetry of one memory partition: per-application DRAM
    /// bytes, row-buffer hits/misses, and the current queue depth. The trace
    /// layer differences consecutive snapshots into
    /// [`crate::trace::TraceEvent::PartitionWindow`] events; the simulation
    /// itself never reads this.
    pub fn partition_telemetry(&self, partition: usize) -> PartitionTelemetry {
        let p = &self.partitions[partition];
        let per_app: Vec<_> = (0..self.n_apps())
            .map(|a| p.counters(AppId::new(a as u8)).mc)
            .collect();
        PartitionTelemetry {
            per_app_dram_bytes: per_app.iter().map(|c| c.dram_bytes).collect(),
            row_hits: per_app.iter().map(|c| c.row_hits).sum(),
            row_misses: per_app.iter().map(|c| c.row_misses).sum(),
            queue_depth: p.queue_depth(),
        }
    }

    /// Cumulative telemetry of one core: its application plus the pipeline
    /// statistics. The trace layer differences consecutive snapshots into
    /// [`crate::trace::TraceEvent::CoreWindow`] events.
    pub fn core_telemetry(&self, core: usize) -> (AppId, CoreStats) {
        let c = &self.cores[core];
        (c.app, c.stats())
    }
}

/// Cumulative counters of one memory partition, as sampled by
/// [`Gpu::partition_telemetry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionTelemetry {
    /// DRAM bytes transferred per application (in `AppId` order).
    pub per_app_dram_bytes: Vec<u64>,
    /// Row-buffer hits, summed over applications.
    pub row_hits: u64,
    /// Row-buffer misses (activations), summed over applications.
    pub row_misses: u64,
    /// Requests queued in the partition right now (not cumulative).
    pub queue_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workloads::by_name;

    fn small_two_app() -> Gpu {
        let cfg = GpuConfig::small();
        Gpu::new(
            &cfg,
            &[by_name("BLK").unwrap(), by_name("BFS").unwrap()],
            42,
        )
    }

    #[test]
    fn equal_split_assigns_disjoint_cores() {
        let gpu = small_two_app();
        let a = gpu.cores_of(AppId::new(0));
        let b = gpu.cores_of(AppId::new(1));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert!(a.iter().all(|c| !b.contains(c)));
    }

    #[test]
    fn both_apps_make_progress() {
        let mut gpu = small_two_app();
        gpu.run(3_000);
        for a in 0..2 {
            let c = gpu.counters(AppId::new(a));
            assert!(
                c.warp_insts > 100,
                "App-{a} issued only {} insts",
                c.warp_insts
            );
            assert!(c.dram_bytes > 0, "App-{a} never reached DRAM");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = small_two_app();
        let mut b = small_two_app();
        a.run(2_000);
        b.run(2_000);
        assert_eq!(a.counters(AppId::new(0)), b.counters(AppId::new(0)));
        assert_eq!(a.counters(AppId::new(1)), b.counters(AppId::new(1)));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GpuConfig::small();
        let apps = [by_name("BFS").unwrap(), by_name("BLK").unwrap()];
        let mut a = Gpu::new(&cfg, &apps, 1);
        let mut b = Gpu::new(&cfg, &apps, 2);
        a.run(2_000);
        b.run(2_000);
        assert_ne!(a.counters(AppId::new(0)), b.counters(AppId::new(0)));
    }

    #[test]
    fn tlp_knob_reaches_all_cores() {
        let mut gpu = small_two_app();
        gpu.set_tlp(AppId::new(0), TlpLevel::new(2).unwrap());
        assert_eq!(gpu.tlp_of(AppId::new(0)).get(), 2);
        // The other app is untouched (clamped machine max = 8).
        assert_eq!(gpu.tlp_of(AppId::new(1)).get(), 8);
    }

    #[test]
    fn set_combo_applies_per_app_levels() {
        let mut gpu = small_two_app();
        gpu.set_combo(&TlpCombo::pair(
            TlpLevel::new(1).unwrap(),
            TlpLevel::new(4).unwrap(),
        ));
        assert_eq!(gpu.tlp_of(AppId::new(0)).get(), 1);
        assert_eq!(gpu.tlp_of(AppId::new(1)).get(), 4);
    }

    #[test]
    fn lower_tlp_reduces_bandwidth_consumption() {
        let apps = [by_name("BLK").unwrap(), by_name("BLK").unwrap()];
        let cfg = GpuConfig::small();
        let mut high = Gpu::new(&cfg, &apps, 7);
        let mut low = Gpu::new(&cfg, &apps, 7);
        low.set_tlp(AppId::new(0), TlpLevel::new(1).unwrap());
        high.run(5_000);
        low.run(5_000);
        let bw_high = high.counters(AppId::new(0)).dram_bytes;
        let bw_low = low.counters(AppId::new(0)).dram_bytes;
        assert!(
            bw_low < bw_high,
            "TLP=1 should consume less bandwidth ({bw_low} vs {bw_high})"
        );
    }

    #[test]
    fn bypass_knob_silences_l1() {
        let mut gpu = small_two_app();
        gpu.set_bypass_l1(AppId::new(0), true);
        assert!(gpu.bypass_l1_of(AppId::new(0)));
        gpu.run(2_000);
        assert_eq!(gpu.counters(AppId::new(0)).l1_accesses, 0);
        assert!(gpu.counters(AppId::new(1)).l1_accesses > 0);
    }

    #[test]
    fn l2_traffic_is_roughly_uniform_across_partitions() {
        // Underpins the designated-partition sampling argument (§V-E).
        let mut gpu = small_two_app();
        gpu.run(8_000);
        let per = gpu.per_partition_l2_accesses(AppId::new(0));
        let total: u64 = per.iter().sum();
        assert!(total > 0);
        for &p in &per {
            let share = p as f64 / total as f64;
            let even = 1.0 / per.len() as f64;
            assert!(
                (share - even).abs() < 0.25,
                "partition share {share:.2} far from uniform {even:.2}"
            );
        }
    }

    #[test]
    fn designated_sampling_tracks_exact_aggregates() {
        let mut gpu = small_two_app();
        gpu.run(8_000);
        for a in 0..2u8 {
            let exact = gpu.counters(AppId::new(a));
            let est = gpu.designated_counters(AppId::new(a));
            let close = |x: u64, y: u64| {
                let (x, y) = (x as f64, y as f64);
                x == y || (x - y).abs() / x.max(y).max(1.0) < 0.4
            };
            assert!(
                close(exact.l1_accesses, est.l1_accesses),
                "App-{a}: L1 accesses exact {} vs designated {}",
                exact.l1_accesses,
                est.l1_accesses
            );
            assert!(
                close(exact.dram_bytes, est.dram_bytes),
                "App-{a}: DRAM bytes exact {} vs designated {}",
                exact.dram_bytes,
                est.dram_bytes
            );
            assert_eq!(
                exact.warp_insts, est.warp_insts,
                "instruction counts stay exact"
            );
        }
    }

    #[test]
    fn custom_split_sizes_respected() {
        let cfg = GpuConfig::small();
        let gpu = Gpu::with_core_split(
            &cfg,
            &[by_name("BLK").unwrap(), by_name("BFS").unwrap()],
            &[3, 1],
            1,
        );
        assert_eq!(gpu.cores_of(AppId::new(0)).len(), 3);
        assert_eq!(gpu.cores_of(AppId::new(1)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn uneven_split_panics() {
        let mut cfg = GpuConfig::small();
        cfg.n_cores = 5;
        // 5 cores cannot be split over 2 apps — but 5 cores also fails
        // validate? No: n_cores 5 is fine; the even split fails.
        let _ = Gpu::new(&cfg, &[by_name("BLK").unwrap(), by_name("BFS").unwrap()], 1);
    }

    #[test]
    fn single_app_alone_runs() {
        let cfg = GpuConfig::small();
        let mut gpu = Gpu::with_core_split(&cfg, &[by_name("SCP").unwrap()], &[2], 3);
        gpu.run(3_000);
        assert!(gpu.counters(AppId::new(0)).warp_insts > 100);
    }
}
