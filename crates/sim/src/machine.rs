//! The multi-application GPU machine.

use crate::domain;
use crate::timeq::{TimeQ, NEVER};
use gpu_mem::req::MemRequest;
use gpu_mem::{Crossbar, MemoryPartition};
use gpu_simt::{CoreStats, SimtCore, WarpStalls};
use gpu_types::{
    AppId, CoreId, GpuConfig, Histogram, MemCounters, PartitionId, TlpCombo, TlpLevel,
};
use gpu_workloads::AppProfile;
use std::collections::VecDeque;

/// A GPU running one or more applications on exclusive core partitions
/// sharing L2 and DRAM (§II-A).
///
/// # Examples
///
/// ```
/// use gpu_sim::machine::Gpu;
/// use gpu_types::{AppId, GpuConfig};
/// use gpu_workloads::Workload;
///
/// let workload = Workload::pair("BLK", "BFS");
/// let mut gpu = Gpu::new(&GpuConfig::small(), workload.apps(), 42);
/// gpu.run(2_000);
/// assert!(gpu.counters(AppId::new(0)).warp_insts > 0);
/// ```
pub struct Gpu {
    cfg: GpuConfig,
    cores: Vec<SimtCore>,
    /// Core indices assigned to each application.
    app_cores: Vec<Vec<usize>>,
    req_net: Crossbar<MemRequest>,
    resp_net: Crossbar<MemRequest>,
    partitions: Vec<MemoryPartition>,
    /// Responses waiting for response-network input space, per partition.
    resp_backlog: Vec<VecDeque<MemRequest>>,
    /// Requests ejected from the request network but refused by a full
    /// partition ingress queue, per partition.
    ingress_backlog: Vec<VecDeque<MemRequest>>,
    now: u64,
    /// When true, [`Gpu::step`]/[`Gpu::run`] use the naive cycle-by-cycle
    /// reference engine (allocating APIs, no quiescence skipping); see
    /// [`Gpu::set_reference_engine`].
    reference_mode: bool,
    /// Cycles advanced by stepping at least one component.
    stepped_cycles: u64,
    /// Cycles advanced by jumping over event-free stretches.
    skipped_cycles: u64,
    /// Whether metrics recording is enabled machine-wide (mirrors the
    /// per-component flags; see [`Gpu::set_metrics_enabled`]).
    metrics: bool,
    /// The event engine's timing wheel: one scheduled wake time per
    /// component (cores, partitions, request/response crossbars).
    timeq: TimeQ,
    /// Per core: the cycle up to which its per-cycle counters have been
    /// charged. Lazy idle crediting: a sleeping, skipped core is credited
    /// in one batch when it is next stepped or when a run ends.
    credited_to: Vec<u64>,
    /// Per-cycle scratch: which cores must be stepped this cycle.
    core_due: Vec<bool>,
    /// Per-cycle scratch: which partitions must be stepped this cycle.
    part_due: Vec<bool>,
    /// False when scheduled wake times may be stale (knob change, manual
    /// step, reference run); [`Gpu::run`] rebuilds the wheel before use.
    event_state_valid: bool,
    /// Per core: whether its egress queue is non-empty. A sleeping core's
    /// egress still drains at the machine's pace, so the event engine
    /// iterates this set (not the due set) when offering requests to the
    /// crossbar, and cannot fast-forward while any entry is set.
    egress_pending: Vec<bool>,
    /// Number of `true` entries in `egress_pending`.
    egress_pending_count: usize,
    /// Individual core step calls (fast path or full).
    core_steps: u64,
    /// Individual partition step calls.
    partition_steps: u64,
    /// Individual crossbar step calls (request + response networks).
    xbar_steps: u64,
    /// Explicit intra-simulation worker-count override; when `None`,
    /// [`Gpu::run`] resolves `EBM_SIM_THREADS` via
    /// [`crate::exec::sim_worker_count`]. See [`Gpu::set_sim_threads`].
    sim_threads: Option<usize>,
    /// Gate broadcasts issued by the windowed parallel engine (one per
    /// lookahead window, plus one exit broadcast per run span).
    sync_points: u64,
    /// Latch collections by the windowed parallel engine (one per window).
    barrier_waits: u64,
    /// Lookahead windows executed by the parallel engine.
    windows: u64,
    /// Total cycles covered by those windows (stepped or skipped).
    window_cycles: u64,
    /// Per-domain accounting of the parallel engine, indexed by domain
    /// (empty until the first parallel run span; monotonic afterwards).
    domain_stats: Vec<DomainWindowStats>,
}

/// One intra-simulation domain's share of the parallel engine's
/// accounting: windows synchronized through and component steps executed
/// by the domain's worker. Monotonic since machine construction; exported
/// through [`Gpu::domain_window_stats`] and the `domain_window` trace
/// event (docs/TRACE_SCHEMA.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainWindowStats {
    /// Lookahead windows the domain synchronized through.
    pub windows: u64,
    /// Simulated cycles those windows covered.
    pub window_cycles: u64,
    /// Core steps the domain's worker executed.
    pub core_steps: u64,
    /// Partition steps the domain's worker executed.
    pub partition_steps: u64,
}

/// Cycle- and component-step accounting of the engine, exported for the
/// `perf_smoke` benchmark and BENCH_engine.json.
///
/// The cycle counters split total simulated time into cycles where at
/// least one component was stepped (`stepped`) and whole-machine jumps
/// over event-free stretches (`fast_forwarded`). The per-class step
/// counters record how many *individual component steps* actually ran;
/// comparing them against `class size × total cycles` (the per-cycle
/// engines always step everything) gives the per-component idle-skip
/// fractions — the quantity that stays visible even when some component
/// is always busy and whole-machine fast-forward never engages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Cycles advanced by stepping at least one component.
    pub stepped: u64,
    /// Cycles advanced by whole-machine jumps (no component work at all).
    pub fast_forwarded: u64,
    /// SIMT core step calls executed.
    pub core_steps: u64,
    /// Core step calls skipped relative to stepping every core every cycle.
    pub core_steps_skipped: u64,
    /// Memory partition step calls executed.
    pub partition_steps: u64,
    /// Partition step calls skipped relative to every-cycle stepping.
    pub partition_steps_skipped: u64,
    /// Crossbar step calls executed (request + response networks).
    pub xbar_steps: u64,
    /// Crossbar step calls skipped relative to every-cycle stepping.
    pub xbar_steps_skipped: u64,
    /// Coordinator-to-worker gate broadcasts by the windowed parallel
    /// engine: one per lookahead window plus one exit broadcast per run
    /// span. Zero on serial runs. Deterministic for any worker count > 1
    /// (window boundaries depend only on machine state and the crossbar
    /// latency, never on thread scheduling).
    pub sync_points: u64,
    /// Worker-to-coordinator latch collections (one per window). Zero on
    /// serial runs.
    pub barrier_waits: u64,
    /// Lookahead windows executed by the parallel engine. Zero on serial
    /// runs.
    pub windows: u64,
    /// Total cycles covered by those windows; `window_cycles / windows`
    /// is the mean window length ([`EngineStats::mean_window_cycles`]).
    pub window_cycles: u64,
}

impl EngineStats {
    /// Mean lookahead-window length in cycles (0 when no window ran —
    /// serial and reference runs).
    pub fn mean_window_cycles(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.window_cycles as f64 / self.windows as f64
        }
    }

    /// This accounting with the parallel-engine synchronization counters
    /// zeroed. The simulated machine — and every other field here — is
    /// bit-identical across engines and worker counts, but only the
    /// parallel engine crosses barriers; differential tests compare
    /// serial and parallel runs through this view.
    pub fn sans_sync(&self) -> EngineStats {
        EngineStats {
            sync_points: 0,
            barrier_waits: 0,
            windows: 0,
            window_cycles: 0,
            ..*self
        }
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("now", &self.now)
            .field("n_cores", &self.cores.len())
            .field("n_apps", &self.app_cores.len())
            .finish()
    }
}

impl Gpu {
    /// Builds a machine running `apps` on equal exclusive core partitions
    /// (the paper's default; see [`Gpu::with_core_split`] for the §VI-D
    /// sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the cores cannot be split
    /// evenly.
    pub fn new(cfg: &GpuConfig, apps: &[&AppProfile], seed: u64) -> Self {
        assert!(!apps.is_empty(), "need at least one application");
        assert_eq!(
            cfg.n_cores % apps.len(),
            0,
            "{} cores cannot be split evenly among {} applications",
            cfg.n_cores,
            apps.len()
        );
        let per_app = cfg.n_cores / apps.len();
        Self::with_core_split(cfg, apps, &vec![per_app; apps.len()], seed)
    }

    /// Builds a machine with an explicit number of cores per application.
    /// The L2 and DRAM are always fully shared.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the split length mismatches
    /// `apps`, any share is zero, or the total exceeds `cfg.n_cores`.
    pub fn with_core_split(
        cfg: &GpuConfig,
        apps: &[&AppProfile],
        split: &[usize],
        seed: u64,
    ) -> Self {
        cfg.validate().expect("invalid configuration");
        assert_eq!(split.len(), apps.len(), "one core share per application");
        assert!(
            split.iter().all(|&s| s > 0),
            "every application needs at least one core"
        );
        let total: usize = split.iter().sum();
        assert!(total <= cfg.n_cores, "core split exceeds the machine");

        let mut cores = Vec::with_capacity(total);
        let mut app_cores = Vec::with_capacity(apps.len());
        let mut next_core = 0usize;
        for (ai, (profile, &share)) in apps.iter().zip(split).enumerate() {
            let app = AppId::new(ai as u8);
            let mut mine = Vec::with_capacity(share);
            for rank in 0..share {
                let streams = (0..cfg.warps_per_core)
                    .map(|slot| profile.stream(app, rank, slot, cfg.warps_per_core, seed))
                    .collect();
                cores.push(SimtCore::new(
                    CoreId(next_core),
                    app,
                    cfg,
                    profile.core_params(),
                    streams,
                ));
                mine.push(next_core);
                next_core += 1;
            }
            app_cores.push(mine);
        }

        let partitions = (0..cfg.n_partitions)
            .map(|p| MemoryPartition::new(PartitionId(p), cfg, apps.len()))
            .collect();
        Gpu {
            req_net: Crossbar::new(
                total,
                cfg.n_partitions,
                cfg.xbar_latency as u64,
                cfg.xbar_requests_per_cycle,
                8,
            ),
            resp_net: Crossbar::new(
                cfg.n_partitions,
                total,
                cfg.xbar_latency as u64,
                cfg.xbar_requests_per_cycle,
                8,
            ),
            partitions,
            resp_backlog: vec![VecDeque::new(); cfg.n_partitions],
            ingress_backlog: vec![VecDeque::new(); cfg.n_partitions],
            cores,
            app_cores,
            cfg: cfg.clone(),
            now: 0,
            reference_mode: false,
            stepped_cycles: 0,
            skipped_cycles: 0,
            metrics: false,
            timeq: TimeQ::new(total + cfg.n_partitions + 2),
            credited_to: vec![0; total],
            core_due: vec![false; total],
            part_due: vec![false; cfg.n_partitions],
            event_state_valid: false,
            egress_pending: vec![false; total],
            egress_pending_count: 0,
            core_steps: 0,
            partition_steps: 0,
            xbar_steps: 0,
            sim_threads: None,
            sync_points: 0,
            barrier_waits: 0,
            windows: 0,
            window_cycles: 0,
            domain_stats: Vec::new(),
        }
    }

    /// Timing-wheel component id of partition `p` (cores occupy `0..C`).
    fn comp_part(&self, p: usize) -> usize {
        self.cores.len() + p
    }

    /// Timing-wheel component id of the request crossbar.
    fn comp_req_net(&self) -> usize {
        self.cores.len() + self.partitions.len()
    }

    /// Timing-wheel component id of the response crossbar.
    fn comp_resp_net(&self) -> usize {
        self.cores.len() + self.partitions.len() + 1
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Number of co-scheduled applications.
    pub fn n_apps(&self) -> usize {
        self.app_cores.len()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Core indices assigned to `app`.
    pub fn cores_of(&self, app: AppId) -> &[usize] {
        &self.app_cores[app.index()]
    }

    /// Applies a TLP level to every core of `app` (SWL, clamped to the
    /// machine's realizable maximum).
    pub fn set_tlp(&mut self, app: AppId, level: TlpLevel) {
        let level = self.cfg.clamp_tlp(level);
        for &c in &self.app_cores[app.index()] {
            self.cores[c].set_tlp(level);
        }
        // The knob clears the affected cores' sleep states, so every wake
        // time scheduled from them is stale; rebuild before the next run.
        self.event_state_valid = false;
    }

    /// Applies a full TLP combination (one level per application).
    ///
    /// # Panics
    ///
    /// Panics if the combination size mismatches the application count.
    pub fn set_combo(&mut self, combo: &TlpCombo) {
        assert_eq!(combo.len(), self.n_apps(), "combination size mismatch");
        for a in 0..self.n_apps() {
            self.set_tlp(AppId::new(a as u8), combo.level(a));
        }
    }

    /// The TLP level currently applied to `app`.
    pub fn tlp_of(&self, app: AppId) -> TlpLevel {
        let c = self.app_cores[app.index()][0];
        TlpLevel::new(self.cores[c].tlp() as u32).expect("core TLP is always valid")
    }

    /// Enables/disables L1 bypassing for every core of `app`
    /// (the Mod+Bypass baseline's knob).
    pub fn set_bypass_l1(&mut self, app: AppId, bypass: bool) {
        for &c in &self.app_cores[app.index()] {
            self.cores[c].set_bypass_l1(bypass);
        }
        self.event_state_valid = false;
    }

    /// True when `app`'s cores currently bypass their L1s.
    pub fn bypass_l1_of(&self, app: AppId) -> bool {
        self.cores[self.app_cores[app.index()][0]].bypass_l1()
    }

    /// Enables/disables CCWS cache-conscious throttling on every core of
    /// `app` (the ++CCWS baseline).
    pub fn set_ccws(&mut self, app: AppId, enabled: bool) {
        for &c in &self.app_cores[app.index()] {
            self.cores[c].set_ccws(enabled);
        }
        self.event_state_valid = false;
    }

    /// Advances the machine one cycle (stepping every component, like the
    /// per-cycle engines — single external steps bypass the timing wheel).
    pub fn step(&mut self) {
        if self.reference_mode {
            self.step_reference();
        } else {
            self.step_optimized();
        }
        // A per-cycle step credits every core by actually stepping it; move
        // the lazy-credit watermark along or a later event-engine run would
        // credit (and double-count) this cycle again.
        for c in &mut self.credited_to {
            *c = self.now;
        }
        self.event_state_valid = false;
    }

    /// One cycle of the optimized engine: drain-into/callback APIs, with
    /// every per-cycle buffer owned by the machine or its components, so the
    /// steady-state path performs zero heap allocation.
    fn step_optimized(&mut self) {
        let now = self.now;

        // 1. Memory partitions produce responses; stage them toward the
        //    response network (per-partition backlog absorbs bursts).
        for (p, part) in self.partitions.iter_mut().enumerate() {
            part.step_into(now, &mut self.resp_backlog[p]);
            while let Some(resp) = self.resp_backlog[p].front() {
                if !self.resp_net.can_accept(p) {
                    break;
                }
                let dest = resp.core.index();
                let resp = self.resp_backlog[p].pop_front().expect("front checked");
                self.resp_net
                    .push(p, dest, resp, now)
                    .expect("can_accept checked");
            }
        }

        // 2. Deliver responses to cores.
        let cores = &mut self.cores;
        self.resp_net
            .step_with(now, |core_idx, resp| cores[core_idx].receive(resp));

        // 3. Cores execute.
        for core in &mut self.cores {
            core.step(now);
        }

        // 4. Core egress into the request network.
        let n_partitions = self.cfg.n_partitions;
        for (ci, core) in self.cores.iter_mut().enumerate() {
            for _ in 0..self.cfg.xbar_requests_per_cycle {
                let Some(req) = core.peek_request() else {
                    break;
                };
                if !self.req_net.can_accept(ci) {
                    break;
                }
                let dest = req.addr.partition(n_partitions);
                let req = core.pop_request().expect("peeked");
                self.req_net
                    .push(ci, dest, req, now)
                    .expect("can_accept checked");
            }
        }

        // 5. Eject requests into partitions (retrying refused ones first).
        let backlog = &mut self.ingress_backlog;
        self.req_net
            .step_with(now, |p, req| backlog[p].push_back(req));
        for (p, part) in self.partitions.iter_mut().enumerate() {
            while let Some(req) = self.ingress_backlog[p].front().copied() {
                if part.push(req).is_err() {
                    break;
                }
                self.ingress_backlog[p].pop_front();
            }
        }

        self.now += 1;
        self.stepped_cycles += 1;
        self.core_steps += self.cores.len() as u64;
        self.partition_steps += self.partitions.len() as u64;
        self.xbar_steps += 2;
    }

    /// One cycle of the naive reference engine: the original per-cycle
    /// algorithm with `Vec`-returning component steps and no quiescence
    /// machinery, kept only for the `engine_equivalence` differential tests.
    fn step_reference(&mut self) {
        let now = self.now;

        for (p, part) in self.partitions.iter_mut().enumerate() {
            for resp in part.step(now) {
                self.resp_backlog[p].push_back(resp);
            }
            while let Some(resp) = self.resp_backlog[p].front() {
                if !self.resp_net.can_accept(p) {
                    break;
                }
                let dest = resp.core.index();
                let resp = self.resp_backlog[p].pop_front().expect("front checked");
                self.resp_net
                    .push(p, dest, resp, now)
                    .expect("can_accept checked");
            }
        }

        for (core_idx, resp) in self.resp_net.step(now) {
            self.cores[core_idx].receive(resp);
        }

        for core in &mut self.cores {
            core.step_reference(now);
        }

        let n_partitions = self.cfg.n_partitions;
        for (ci, core) in self.cores.iter_mut().enumerate() {
            for _ in 0..self.cfg.xbar_requests_per_cycle {
                let Some(req) = core.peek_request() else {
                    break;
                };
                if !self.req_net.can_accept(ci) {
                    break;
                }
                let dest = req.addr.partition(n_partitions);
                let req = core.pop_request().expect("peeked");
                self.req_net
                    .push(ci, dest, req, now)
                    .expect("can_accept checked");
            }
        }

        for (p, req) in self.req_net.step(now) {
            self.ingress_backlog[p].push_back(req);
        }
        for (p, part) in self.partitions.iter_mut().enumerate() {
            while let Some(req) = self.ingress_backlog[p].front().copied() {
                if part.push(req).is_err() {
                    break;
                }
                self.ingress_backlog[p].pop_front();
            }
        }

        self.now += 1;
        self.stepped_cycles += 1;
        self.core_steps += self.cores.len() as u64;
        self.partition_steps += self.partitions.len() as u64;
        self.xbar_steps += 2;
    }

    /// Rebuilds every timing-wheel entry from current component state.
    /// Called when scheduled wake times may be stale: after construction,
    /// a knob change (TLP/bypass/CCWS clear core sleep states), a manual
    /// [`Gpu::step`], or a reference-engine stretch.
    fn rebuild_event_state(&mut self) {
        let now = self.now;
        self.timeq.reset(now);
        self.egress_pending_count = 0;
        for (c, core) in self.cores.iter().enumerate() {
            debug_assert_eq!(
                self.credited_to[c], now,
                "rebuild requires flushed core credits"
            );
            self.egress_pending[c] = core.has_egress();
            if self.egress_pending[c] {
                self.egress_pending_count += 1;
            }
            let t = core.next_event(now);
            if t != NEVER {
                self.timeq.schedule(c, t);
            }
        }
        for p in 0..self.partitions.len() {
            let mut t = self.partitions[p].next_event(now);
            if !self.resp_backlog[p].is_empty() || !self.ingress_backlog[p].is_empty() {
                t = now;
            }
            if t != NEVER {
                self.timeq.schedule(self.comp_part(p), t);
            }
        }
        if let Some(t) = self.req_net.earliest_head_ready() {
            self.timeq.schedule(self.comp_req_net(), t.max(now));
        }
        if let Some(t) = self.resp_net.earliest_head_ready() {
            self.timeq.schedule(self.comp_resp_net(), t.max(now));
        }
        self.event_state_valid = true;
    }

    /// Batch-credits every core's per-cycle counters up to `now`. Cores
    /// with uncredited cycles are necessarily sleeping (awake cores are
    /// stepped — and credited — every cycle), so the batch credit is valid.
    fn flush_core_credits(&mut self) {
        let now = self.now;
        for (c, core) in self.cores.iter_mut().enumerate() {
            if self.credited_to[c] < now {
                core.credit_idle_cycles(now - self.credited_to[c]);
                self.credited_to[c] = now;
            }
        }
    }

    /// One cycle of the event engine: fires due timing-wheel entries into
    /// per-component due flags, runs the same five phases as
    /// [`Gpu::step_optimized`] restricted to due components, then
    /// reschedules everything that was touched. Bit-identical to stepping
    /// every component: a partition or crossbar is only skipped while its
    /// step would be a strict no-op (its "next event at" contract), and a
    /// skipped core's counters-only fast path is credited in batch before
    /// its next full step.
    fn step_event(&mut self) {
        let now = self.now;
        let n_cores = self.cores.len();
        let n_parts = self.partitions.len();
        let zero_lat = self.cfg.xbar_latency == 0;
        let mut req_due = false;
        let mut resp_due = false;
        {
            let core_due = &mut self.core_due;
            let part_due = &mut self.part_due;
            self.timeq.advance(now, |comp| {
                let comp = comp as usize;
                if comp < n_cores {
                    core_due[comp] = true;
                } else if comp < n_cores + n_parts {
                    part_due[comp - n_cores] = true;
                } else if comp == n_cores + n_parts {
                    req_due = true;
                } else {
                    resp_due = true;
                }
            });
        }
        let resp_was_empty = self.resp_net.is_empty();
        let req_was_empty = self.req_net.is_empty();
        let mut resp_pushed = false;
        let mut req_pushed = false;

        // 1. Due partitions produce responses; stage them toward the
        //    response network (the backlog retry makes a partition due, so
        //    non-due partitions have nothing staged).
        for p in 0..n_parts {
            if !self.part_due[p] {
                continue;
            }
            self.partition_steps += 1;
            self.partitions[p].step_into(now, &mut self.resp_backlog[p]);
            while let Some(resp) = self.resp_backlog[p].front() {
                if !self.resp_net.can_accept(p) {
                    break;
                }
                let dest = resp.core.index();
                let resp = self.resp_backlog[p].pop_front().expect("front checked");
                self.resp_net
                    .push(p, dest, resp, now)
                    .expect("can_accept checked");
                resp_pushed = true;
                if zero_lat {
                    resp_due = true; // deliverable this very cycle
                }
            }
        }

        // 2. Deliver responses to cores (crediting a woken core's skipped
        //    cycles before `receive` clears its sleep state).
        if resp_due {
            self.xbar_steps += 1;
            let cores = &mut self.cores;
            let credited = &mut self.credited_to;
            let core_due = &mut self.core_due;
            self.resp_net.step_with(now, |core_idx, resp| {
                credit_core(&mut cores[core_idx], &mut credited[core_idx], now);
                cores[core_idx].receive(resp);
                core_due[core_idx] = true;
            });
        }

        // 3. Due cores execute (skipped-cycle credit first, so the step
        //    observes exactly the state the per-cycle engine would). A step
        //    can enqueue egress, so the egress-pending set is refreshed.
        for c in 0..n_cores {
            if !self.core_due[c] {
                continue;
            }
            self.core_steps += 1;
            credit_core(&mut self.cores[c], &mut self.credited_to[c], now);
            self.cores[c].step(now);
            self.credited_to[c] = now + 1;
            let has = self.cores[c].has_egress();
            if has != self.egress_pending[c] {
                self.egress_pending[c] = has;
                if has {
                    self.egress_pending_count += 1;
                } else {
                    self.egress_pending_count -= 1;
                }
            }
        }

        // 4. Core egress into the request network — every core with queued
        //    requests, due or not: a struct-stalled core sleeps while its
        //    queue drains at the machine's pace, and the pop wakes it.
        //    Skipped cycles are credited before the pop can clear the
        //    sleep, keeping the lazy-credit bookkeeping exact.
        let n_partitions = self.cfg.n_partitions;
        if self.egress_pending_count > 0 {
            for ci in 0..n_cores {
                if !self.egress_pending[ci] {
                    continue;
                }
                let mut popped = false;
                for _ in 0..self.cfg.xbar_requests_per_cycle {
                    let Some(req) = self.cores[ci].peek_request().copied() else {
                        break;
                    };
                    if !self.req_net.can_accept(ci) {
                        break;
                    }
                    credit_core(&mut self.cores[ci], &mut self.credited_to[ci], now + 1);
                    let dest = req.addr.partition(n_partitions);
                    let req = self.cores[ci].pop_request().expect("peeked");
                    self.req_net
                        .push(ci, dest, req, now)
                        .expect("can_accept checked");
                    popped = true;
                    req_pushed = true;
                    if zero_lat {
                        req_due = true;
                    }
                }
                if popped {
                    if !self.cores[ci].has_egress() {
                        self.egress_pending[ci] = false;
                        self.egress_pending_count -= 1;
                    }
                    // A pop may have woken a struct-stalled sleeper; a
                    // non-due core is not rescheduled below, so do it here
                    // (due cores are covered by the epilogue either way).
                    if !self.core_due[ci] {
                        match self.cores[ci].next_event(now + 1) {
                            NEVER => self.timeq.cancel(ci),
                            t => self.timeq.schedule(ci, t),
                        }
                    }
                }
            }
        }

        // 5. Eject requests into partitions (retrying refused ones first).
        if req_due {
            self.xbar_steps += 1;
            let backlog = &mut self.ingress_backlog;
            self.req_net
                .step_with(now, |p, req| backlog[p].push_back(req));
        }
        for p in 0..n_parts {
            if self.ingress_backlog[p].is_empty() {
                continue;
            }
            let part = &mut self.partitions[p];
            while let Some(req) = self.ingress_backlog[p].front().copied() {
                if part.push(req).is_err() {
                    break;
                }
                self.ingress_backlog[p].pop_front();
            }
            // The partition has fresh ingress (or a backlog retry) — it
            // must step next cycle. Due partitions are rescheduled below.
            if !self.part_due[p] {
                self.timeq.schedule_min(self.comp_part(p), now + 1);
            }
        }

        // Reschedule everything stepped this cycle and clear the flags.
        for c in 0..n_cores {
            if !self.core_due[c] {
                continue;
            }
            self.core_due[c] = false;
            match self.cores[c].next_event(now + 1) {
                NEVER => self.timeq.cancel(c),
                t => self.timeq.schedule(c, t),
            }
        }
        for p in 0..n_parts {
            if !self.part_due[p] {
                continue;
            }
            self.part_due[p] = false;
            let mut t = self.partitions[p].next_event(now + 1);
            if !self.resp_backlog[p].is_empty() || !self.ingress_backlog[p].is_empty() {
                t = now + 1; // staging/ingress retries happen every cycle
            }
            match t {
                NEVER => self.timeq.cancel(self.comp_part(p)),
                t => self.timeq.schedule(self.comp_part(p), t),
            }
        }
        if req_due {
            match self.req_net.earliest_head_ready() {
                Some(t) => self.timeq.schedule(self.comp_req_net(), t.max(now + 1)),
                None => self.timeq.cancel(self.comp_req_net()),
            }
        } else if req_pushed && req_was_empty {
            // First flits into an empty network: all ready after the wire
            // latency (an already-populated network's earlier wake stands).
            self.timeq
                .schedule(self.comp_req_net(), now + self.cfg.xbar_latency as u64);
        }
        if resp_due {
            match self.resp_net.earliest_head_ready() {
                Some(t) => self.timeq.schedule(self.comp_resp_net(), t.max(now + 1)),
                None => self.timeq.cancel(self.comp_resp_net()),
            }
        } else if resp_pushed && resp_was_empty {
            self.timeq
                .schedule(self.comp_resp_net(), now + self.cfg.xbar_latency as u64);
        }

        self.now += 1;
        self.stepped_cycles += 1;
    }

    /// Runs the machine for `cycles` cycles. The event engine jumps from
    /// event to event: each iteration either steps the due components of
    /// one cycle or fast-forwards `now` to the next scheduled wake, with
    /// skipped cores' per-cycle counters credited lazily in batch. `now`,
    /// statistics and traced output advance exactly as if every component
    /// had been stepped every cycle (the reference engine checks this
    /// bit-for-bit in `engine_equivalence`).
    ///
    /// When more than one intra-simulation worker is configured
    /// ([`Gpu::set_sim_threads`] or `EBM_SIM_THREADS`), the stepped cycles
    /// run on the domain-parallel engine instead — bit-identical to the
    /// serial engine for every worker count (docs/PARALLELISM.md).
    pub fn run(&mut self, cycles: u64) {
        crate::metrics::add_cycles_simulated(cycles);
        if self.reference_mode {
            self.event_state_valid = false;
            for _ in 0..cycles {
                self.step_reference();
            }
            self.publish_engine_gauges();
            return;
        }
        let workers = self
            .sim_threads
            .unwrap_or_else(crate::exec::sim_worker_count)
            .min(self.cores.len());
        // The windowed parallel engine's lookahead is the crossbar
        // traversal latency; a zero-latency configuration has no lookahead
        // to exploit, so it runs serial regardless of the worker count.
        if workers > 1 && self.cfg.xbar_latency > 0 {
            self.run_parallel(cycles, workers);
            self.publish_engine_gauges();
            return;
        }
        if !self.event_state_valid {
            self.rebuild_event_state();
        }
        let end = self.now + cycles;
        while self.now < end {
            // Queued egress drains once per cycle (phase 4), so the machine
            // cannot jump while any core holds it, even though the holders
            // themselves may be asleep and skipped.
            if self.egress_pending_count == 0 {
                let next = self.timeq.next_at();
                if next > self.now {
                    // Nothing is due before `next`: jump (clamped to the span).
                    let to = next.min(end);
                    self.skipped_cycles += to - self.now;
                    self.now = to;
                    if to == end {
                        // The cycle at `end` belongs to the next run span.
                        break;
                    }
                }
            }
            self.step_event();
        }
        // Credit sleeping, skipped cores up to the span end so every
        // external read between runs (counters, snapshots, knob logic)
        // sees exactly the per-cycle engine's state.
        self.flush_core_credits();
        self.publish_engine_gauges();
    }

    /// Publishes the engine accounting onto the `engine.*` gauges of the
    /// [`crate::counters`] telemetry bus. Called once per run span — gauge
    /// granularity, never per cycle — so concurrently running machines
    /// overwrite each other last-writer-wins, which is the documented
    /// gauge semantics (docs/OBSERVABILITY.md).
    fn publish_engine_gauges(&self) {
        use crate::counters::{counter, Counter};
        struct Gauges {
            stepped: &'static Counter,
            fast_forwarded: &'static Counter,
            core_steps: &'static Counter,
            core_steps_skipped: &'static Counter,
            partition_steps: &'static Counter,
            partition_steps_skipped: &'static Counter,
            xbar_steps: &'static Counter,
            xbar_steps_skipped: &'static Counter,
            sync_points: &'static Counter,
            barrier_waits: &'static Counter,
            windows: &'static Counter,
            window_cycles: &'static Counter,
            mean_window_millicycles: &'static Counter,
        }
        static GAUGES: std::sync::OnceLock<Gauges> = std::sync::OnceLock::new();
        let g = GAUGES.get_or_init(|| Gauges {
            stepped: counter("engine.stepped"),
            fast_forwarded: counter("engine.fast_forwarded"),
            core_steps: counter("engine.core_steps"),
            core_steps_skipped: counter("engine.core_steps_skipped"),
            partition_steps: counter("engine.partition_steps"),
            partition_steps_skipped: counter("engine.partition_steps_skipped"),
            xbar_steps: counter("engine.xbar_steps"),
            xbar_steps_skipped: counter("engine.xbar_steps_skipped"),
            sync_points: counter("engine.sync_points"),
            barrier_waits: counter("engine.barrier_waits"),
            windows: counter("engine.windows"),
            window_cycles: counter("engine.window_cycles"),
            mean_window_millicycles: counter("engine.mean_window_millicycles"),
        });
        let s = self.engine_stats();
        g.stepped.set(s.stepped);
        g.fast_forwarded.set(s.fast_forwarded);
        g.core_steps.set(s.core_steps);
        g.core_steps_skipped.set(s.core_steps_skipped);
        g.partition_steps.set(s.partition_steps);
        g.partition_steps_skipped.set(s.partition_steps_skipped);
        g.xbar_steps.set(s.xbar_steps);
        g.xbar_steps_skipped.set(s.xbar_steps_skipped);
        g.sync_points.set(s.sync_points);
        g.barrier_waits.set(s.barrier_waits);
        g.windows.set(s.windows);
        g.window_cycles.set(s.window_cycles);
        g.mean_window_millicycles
            .set((s.mean_window_cycles() * 1000.0) as u64);
    }

    /// The lookahead-windowed domain-parallel engine: the machine is split
    /// into `workers` contiguous domains (cores with their credit/egress
    /// state, partitions with their backlogs), each owned by one scoped
    /// thread for the whole run span; the coordinator keeps both crossbars
    /// and every scalar counter. The crossbars' traversal latency `L` is
    /// conservative lookahead — a flit pushed at `t` is deliverable no
    /// earlier than `t + L` — so each gate broadcast releases the workers
    /// for an `L`-cycle window instead of one barriered cycle: the
    /// coordinator forward-simulates all in-window crossbar arbitration at
    /// the window start (exact, since in-window pushes cannot be granted
    /// in-window), hands each domain its cycle-tagged deliveries and exact
    /// per-port admission budgets, and replays the workers' origin-tagged
    /// pushes into the crossbars at the boundary — restoring a machine
    /// byte-identical to [`Gpu::run`]'s serial path for every worker count
    /// (docs/PARALLELISM.md). Machine-wide fast-forward happens between
    /// windows from the workers' reported next-event times; the timing
    /// wheel is neither read nor maintained here (workers own their
    /// components' wake state, which is dueness-equivalent), so the span
    /// ends with `event_state_valid = false` and the next serial span
    /// rebuilds. Zero-latency crossbars have no lookahead; [`Gpu::run`]
    /// keeps those configurations on the serial engine.
    fn run_parallel(&mut self, cycles: u64, workers: usize) {
        let end = self.now + cycles;
        let n_cores = self.cores.len();
        let n_parts = self.partitions.len();
        let core_chunk = n_cores.div_ceil(workers.min(n_cores));
        let d = n_cores.div_ceil(core_chunk);
        let part_chunk = n_parts.div_ceil(d);
        let lookahead = (self.cfg.xbar_latency as u64).min(domain::MAX_WINDOW);
        debug_assert!(lookahead >= 1, "zero-latency machines run serial");

        let mailboxes: Vec<std::sync::Mutex<domain::Mailbox>> = (0..d)
            .map(|w| {
                let cl = core_chunk.min(n_cores - w * core_chunk);
                let pl = part_chunk.min(n_parts.saturating_sub(w * part_chunk));
                std::sync::Mutex::new(domain::Mailbox::new(cl, pl))
            })
            .collect();
        let gate = domain::Gate::new();
        let latch = domain::Latch::new();
        // The domain count depends on the worker count; grow (never
        // shrink) so stats stay monotonic if the count changes mid-life.
        if self.domain_stats.len() < d {
            self.domain_stats.resize(d, DomainWindowStats::default());
        }

        // Disjoint mutable borrows of the machine: the chunked state the
        // workers own, and everything the coordinator keeps.
        let Gpu {
            cores,
            partitions,
            resp_backlog,
            ingress_backlog,
            credited_to,
            egress_pending,
            req_net,
            resp_net,
            cfg,
            now,
            stepped_cycles,
            skipped_cycles,
            core_steps,
            partition_steps,
            xbar_steps,
            sync_points,
            barrier_waits,
            windows,
            window_cycles,
            domain_stats,
            ..
        } = self;

        let mut worker_state: Vec<domain::DomainWorker<'_>> = Vec::with_capacity(d);
        {
            let mut part_sl: Vec<&mut [MemoryPartition]> =
                partitions.chunks_mut(part_chunk).collect();
            let mut rb_sl: Vec<&mut [VecDeque<MemRequest>]> =
                resp_backlog.chunks_mut(part_chunk).collect();
            let mut ib_sl: Vec<&mut [VecDeque<MemRequest>]> =
                ingress_backlog.chunks_mut(part_chunk).collect();
            // Workers outnumbering the partition chunks own empty slices.
            part_sl.resize_with(d, Default::default);
            rb_sl.resize_with(d, Default::default);
            ib_sl.resize_with(d, Default::default);
            let core_sl = cores
                .chunks_mut(core_chunk)
                .zip(credited_to.chunks_mut(core_chunk))
                .zip(egress_pending.chunks_mut(core_chunk));
            let parts = part_sl.into_iter().zip(rb_sl).zip(ib_sl);
            for (w, (((cores, credited), egress), ((partitions, rb), ib))) in
                core_sl.zip(parts).enumerate()
            {
                worker_state.push(domain::DomainWorker {
                    cores,
                    credited,
                    egress,
                    partitions,
                    resp_backlog: rb,
                    ingress_backlog: ib,
                    core_base: w * core_chunk,
                    part_base: w * part_chunk,
                    rate: cfg.xbar_requests_per_cycle,
                    n_partitions: cfg.n_partitions,
                    core_wake: Vec::new(),
                    part_wake: Vec::new(),
                    egress_count: 0,
                    req_used: Vec::new(),
                    resp_used: Vec::new(),
                });
            }
        }

        let span_start = *now;
        std::thread::scope(|scope| {
            for (w, state) in worker_state.into_iter().enumerate() {
                let (gate, latch, mailbox) = (&gate, &latch, &mailboxes[w]);
                scope.spawn(move || domain::worker_loop(state, gate, latch, mailbox, span_start));
            }

            let check = || {
                if gate.has_failed() {
                    gate.release(domain::PHASE_EXIT, 0);
                    panic!("an intra-sim domain worker panicked (see above)");
                }
            };

            // Crossbar dueness carried between windows. At every window
            // boundary these are recomputed from the physical nets —
            // earliest head-ready clamped to the boundary, [`NEVER`] when
            // empty — which is exactly the serial wheel's entry there.
            let mut next_due_req = req_net.earliest_head_ready().map_or(NEVER, |x| x.max(*now));
            let mut next_due_resp = resp_net
                .earliest_head_ready()
                .map_or(NEVER, |x| x.max(*now));
            // Per-domain next-event reports; `span_start` until each
            // domain's first report, which forbids jumping before it.
            let mut domain_next: Vec<u64> = vec![span_start; d];
            // Coordinator scratch, reused across windows (refunds indexed
            // by global port, counters by window offset).
            let mut req_refund: Vec<u64> = vec![0; n_cores];
            let mut resp_refund: Vec<u64> = vec![0; n_parts];
            let mut req_grant_cnt = [0u32; domain::MAX_WINDOW as usize];
            let mut resp_grant_cnt = [0u32; domain::MAX_WINDOW as usize];
            let mut req_push_cnt = [0u32; domain::MAX_WINDOW as usize];
            let mut resp_push_cnt = [0u32; domain::MAX_WINDOW as usize];

            while *now < end {
                // Machine-wide fast-forward between windows: every domain
                // reported its earliest future event at its last window
                // end, the crossbars contribute theirs, and the span jumps
                // over the gap — idle domains never shrink a window, they
                // just don't bound the jump.
                let mut global_next = next_due_req.min(next_due_resp);
                for &dn in &domain_next {
                    global_next = global_next.min(dn);
                }
                if global_next > *now {
                    let to = global_next.min(end);
                    *skipped_cycles += to - *now;
                    *now = to;
                    if to == end {
                        break;
                    }
                }

                let t0 = *now;
                let win = lookahead.min(end - t0);
                // Occupancy snapshots for the peak-buffered
                // reconstruction, taken before forward simulation pops.
                let b0_req = req_net.in_flight();
                let b0_resp = resp_net.in_flight();
                let mut xbar_mask = 0u64;

                {
                    // Fill every mailbox: window length, exact per-port
                    // admission budgets (free slots now, plus refunds from
                    // forward-simulated grants), and the window's tagged
                    // crossbar deliveries.
                    let mut guards: Vec<_> = mailboxes
                        .iter()
                        .map(|m| m.lock().expect("mailbox poisoned"))
                        .collect();
                    for (w, mb) in guards.iter_mut().enumerate() {
                        mb.win_len = win;
                        let cb = w * core_chunk;
                        for lc in 0..mb.req_free.len() {
                            mb.req_free[lc] = req_net.free_slots(cb + lc) as u32;
                        }
                        let pb = w * part_chunk;
                        for lp in 0..mb.resp_free.len() {
                            mb.resp_free[lp] = resp_net.free_slots(pb + lp) as u32;
                        }
                    }
                    // Forward-simulate both crossbars across the whole
                    // window. Exact: an in-window push is ready no earlier
                    // than the window end (ready = origin + latency ≥ t0 +
                    // win), so it can neither be granted here nor change
                    // which head-of-line flits the round-robin sees.
                    for t in t0..t0 + win {
                        let off = (t - t0) as usize;
                        if next_due_resp <= t {
                            *xbar_steps += 1;
                            xbar_mask |= 1u64 << off;
                            resp_net.step_routed(t, |inp, core_idx, resp| {
                                resp_refund[inp] |= 1u64 << off;
                                resp_grant_cnt[off] += 1;
                                let w = core_idx / core_chunk;
                                guards[w].grants.push((
                                    off as u64,
                                    core_idx - w * core_chunk,
                                    resp,
                                ));
                            });
                            next_due_resp = resp_net
                                .earliest_head_ready()
                                .map_or(NEVER, |x| x.max(t + 1));
                        }
                        if next_due_req <= t {
                            *xbar_steps += 1;
                            xbar_mask |= 1u64 << off;
                            req_net.step_routed(t, |inp, part_idx, req| {
                                req_refund[inp] |= 1u64 << off;
                                req_grant_cnt[off] += 1;
                                let w = part_idx / part_chunk;
                                guards[w]
                                    .ejects
                                    .push((off as u64, part_idx - w * part_chunk, req));
                            });
                            next_due_req = req_net
                                .earliest_head_ready()
                                .map_or(NEVER, |x| x.max(t + 1));
                        }
                    }
                    for (w, mb) in guards.iter_mut().enumerate() {
                        let cb = w * core_chunk;
                        for lc in 0..mb.req_refund.len() {
                            mb.req_refund[lc] = std::mem::take(&mut req_refund[cb + lc]);
                        }
                        let pb = w * part_chunk;
                        for lp in 0..mb.resp_refund.len() {
                            mb.resp_refund[lp] = std::mem::take(&mut resp_refund[pb + lp]);
                        }
                    }
                } // guards dropped before the release

                latch.reset(d);
                gate.release(domain::PHASE_WINDOW, t0);
                *sync_points += 1;
                latch.wait();
                *barrier_waits += 1;
                check();
                *windows += 1;
                *window_cycles += win;

                // Collect: replay staged flits into the crossbars with
                // their origin-cycle semantics. Ascending domain order and
                // ascending offset within a domain preserve per-input-port
                // FIFO order — ports are single-writer, so that is the
                // only order the crossbars can observe.
                let mut stepped_bits = xbar_mask;
                {
                    let mut guards: Vec<_> = mailboxes
                        .iter()
                        .map(|m| m.lock().expect("mailbox poisoned"))
                        .collect();
                    for (w, mb) in guards.iter_mut().enumerate() {
                        stepped_bits |= mb.stepped_mask;
                        mb.stepped_mask = 0;
                        domain_next[w] = mb.next_event;
                        let ds = &mut domain_stats[w];
                        ds.windows += 1;
                        ds.window_cycles += win;
                        ds.core_steps += mb.core_steps;
                        ds.partition_steps += mb.partition_steps;
                        *core_steps += mb.core_steps;
                        mb.core_steps = 0;
                        *partition_steps += mb.partition_steps;
                        mb.partition_steps = 0;
                        for (off, port, dest, resp) in mb.staged_resps.drain(..) {
                            resp_push_cnt[off as usize] += 1;
                            resp_net
                                .push(port, dest, resp, t0 + off)
                                .expect("staged within the admission budget");
                        }
                        for (off, port, dest, req) in mb.staged_reqs.drain(..) {
                            req_push_cnt[off as usize] += 1;
                            req_net
                                .push(port, dest, req, t0 + off)
                                .expect("staged within the admission budget");
                        }
                    }
                }

                let win_mask = if win >= 64 {
                    u64::MAX
                } else {
                    (1u64 << win) - 1
                };
                let stepped = u64::from((stepped_bits & win_mask).count_ones());
                *stepped_cycles += stepped;
                *skipped_cycles += win - stepped;

                // Reconstruct the serial running peak of buffered flits:
                // the serial candidate at a cycle with pushes is the
                // window-start occupancy plus pushes so far minus grants
                // at strictly earlier cycles (within a cycle pushes
                // precede grants on both nets). The replay above never
                // exceeds the maximum candidate — grants were popped
                // before any push went back in — so raising to it
                // restores the serial peak exactly.
                for (net, b0, push_cnt, grant_cnt) in [
                    (&mut *req_net, b0_req, &mut req_push_cnt, &mut req_grant_cnt),
                    (
                        &mut *resp_net,
                        b0_resp,
                        &mut resp_push_cnt,
                        &mut resp_grant_cnt,
                    ),
                ] {
                    let (mut cum_p, mut cum_g, mut peak) = (0usize, 0usize, 0usize);
                    for off in 0..win as usize {
                        cum_p += push_cnt[off] as usize;
                        if push_cnt[off] > 0 {
                            peak = peak.max(b0 + cum_p - cum_g);
                        }
                        cum_g += grant_cnt[off] as usize;
                        push_cnt[off] = 0;
                        grant_cnt[off] = 0;
                    }
                    if peak > 0 {
                        net.raise_peak(peak);
                    }
                }

                // Boundary dueness, recomputed from the physical nets.
                let boundary = t0 + win;
                next_due_req = req_net
                    .earliest_head_ready()
                    .map_or(NEVER, |x| x.max(boundary));
                next_due_resp = resp_net
                    .earliest_head_ready()
                    .map_or(NEVER, |x| x.max(boundary));
                *now = boundary;
            }

            gate.release(domain::PHASE_EXIT, 0);
            *sync_points += 1;
        });
        self.flush_core_credits();
        // Workers owned their components' wake state for the span; the
        // timing wheel was neither read nor maintained, so the next serial
        // span must rebuild the event state.
        self.event_state_valid = false;
    }

    /// Switches between the optimized engine and the naive cycle-by-cycle
    /// reference. The two are bit-for-bit equivalent (asserted by the
    /// `engine_equivalence` differential suite, the only intended user of
    /// the reference mode) — the reference is simply slower and allocates
    /// every cycle. The reference engine is also the debugging escape
    /// hatch: it ignores the timing wheel, idle skipping and intra-sim
    /// domain workers entirely, so a divergence between it and the default
    /// engine isolates a bug to the event/parallel machinery.
    pub fn set_reference_engine(&mut self, on: bool) {
        self.reference_mode = on;
        self.event_state_valid = false;
    }

    /// Pins the number of intra-simulation domain workers for this machine,
    /// overriding the `EBM_SIM_THREADS` environment variable (clamped to at
    /// least 1; the core count caps it at run time). Results are
    /// bit-identical for every value — the knob trades wall-clock for
    /// barrier overhead only (docs/PARALLELISM.md). Tests use this setter
    /// instead of the environment variable because environment mutation is
    /// racy under the multi-threaded test harness.
    pub fn set_sim_threads(&mut self, threads: usize) {
        self.sim_threads = Some(threads.max(1));
    }

    /// Enables or disables metrics recording machine-wide (per-warp stall
    /// breakdowns in every core, DRAM request-latency histograms in every
    /// memory controller).  Purely an accounting switch, gated exactly
    /// like `TraceSink::enabled()`: toggling it never changes simulation
    /// results, and when off (the default) the hot path pays only one
    /// untaken branch per step.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics = on;
        for core in &mut self.cores {
            core.set_metrics_enabled(on);
        }
        for p in &mut self.partitions {
            p.set_metrics_enabled(on);
        }
    }

    /// Whether metrics recording is currently enabled.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics
    }

    /// Returns and resets `app`'s per-warp stall breakdown, merged over
    /// its cores (all zero unless metrics recording is enabled).
    pub fn take_warp_stalls(&mut self, app: AppId) -> WarpStalls {
        let mut total = WarpStalls::default();
        for &ci in &self.app_cores[app.index()] {
            total.merge(&self.cores[ci].take_warp_stalls());
        }
        total
    }

    /// Returns and resets `app`'s DRAM queue-to-data latency histogram,
    /// merged over every memory partition (empty unless metrics recording
    /// is enabled).
    pub fn take_dram_latency(&mut self, app: AppId) -> Histogram {
        let mut total = Histogram::new();
        for p in &mut self.partitions {
            total.merge(&p.take_dram_latency(app));
        }
        total
    }

    /// Samples machine-wide occupancy gauges into the given histograms:
    /// one L2-MSHR occupancy sample per partition, one queue-depth sample
    /// per partition (L2 ingress + controller queue), and the since-last-
    /// sample peak in-flight depth of each crossbar.  Called by the
    /// metrics registry at window rollover; the crossbar peaks are
    /// re-armed as a side effect (invisible to the simulation).
    pub fn sample_occupancy(&mut self, mshr_occ: &mut Histogram, queue_depth: &mut Histogram) {
        for p in &self.partitions {
            let (used, _cap) = p.l2_mshr_occupancy();
            mshr_occ.record(used as u64);
            queue_depth.record(p.queue_depth() as u64);
        }
        queue_depth.record(self.req_net.take_peak_in_flight() as u64);
        queue_depth.record(self.resp_net.take_peak_in_flight() as u64);
    }

    /// Cycle-advance and per-component-class step accounting. Skipped
    /// counts are relative to the per-cycle engines, which step every
    /// component every cycle (`class size × total cycles`); the reference
    /// engine therefore always reports zero skips.
    pub fn engine_stats(&self) -> EngineStats {
        let total = self.stepped_cycles + self.skipped_cycles;
        EngineStats {
            stepped: self.stepped_cycles,
            fast_forwarded: self.skipped_cycles,
            core_steps: self.core_steps,
            core_steps_skipped: total * self.cores.len() as u64 - self.core_steps,
            partition_steps: self.partition_steps,
            partition_steps_skipped: total * self.partitions.len() as u64 - self.partition_steps,
            xbar_steps: self.xbar_steps,
            xbar_steps_skipped: total * 2 - self.xbar_steps,
            sync_points: self.sync_points,
            barrier_waits: self.barrier_waits,
            windows: self.windows,
            window_cycles: self.window_cycles,
        }
    }

    /// Per-domain accounting of the parallel engine, indexed by domain.
    /// Empty until the machine has run a parallel span (serial and
    /// reference runs never populate it); monotonic afterwards. The
    /// domain count is derived from the worker count, so entries appear
    /// when the first multi-worker span runs.
    pub fn domain_window_stats(&self) -> &[DomainWindowStats] {
        &self.domain_stats
    }

    /// Cumulative per-application counters, aggregated over the app's cores
    /// (L1, instructions) and every memory partition (L2, DRAM).
    ///
    /// The paper's hardware samples one designated core and one designated
    /// partition per application; because miss rates and bandwidth are
    /// uniformly distributed across cores/partitions (§V-E observes this and
    /// we verify it in tests), exact aggregation is behaviourally equivalent
    /// and the runtime overhead is modeled by the sampling window and relay
    /// latency instead.
    pub fn counters(&self, app: AppId) -> MemCounters {
        let mut c = MemCounters::new();
        for &ci in &self.app_cores[app.index()] {
            let l1 = self.cores[ci].l1_counters(app);
            c.l1_accesses += l1.accesses;
            c.l1_misses += l1.misses;
            c.warp_insts += self.cores[ci].stats().insts;
        }
        for p in &self.partitions {
            let pk = p.counters(app);
            c.l2_accesses += pk.l2_accesses;
            c.l2_misses += pk.l2_misses;
            c.dram_bytes += pk.mc.dram_bytes;
            c.row_hits += pk.mc.row_hits;
            c.row_misses += pk.mc.row_misses;
        }
        c
    }

    /// The Fig. 8 designated-sampling estimate of `app`'s counters: L1
    /// statistics from one designated core (scaled by the app's core
    /// count), L2/DRAM statistics from one designated memory partition
    /// (scaled by the partition count). §V-E argues miss rates and
    /// bandwidth are uniformly distributed, so this estimate tracks
    /// [`Gpu::counters`]; the `sampling` experiment quantifies the error.
    pub fn designated_counters(&self, app: AppId) -> MemCounters {
        let mut c = MemCounters::new();
        let cores = &self.app_cores[app.index()];
        let designated_core = cores[0];
        let l1 = self.cores[designated_core].l1_counters(app);
        let n_cores = cores.len() as u64;
        c.l1_accesses = l1.accesses * n_cores;
        c.l1_misses = l1.misses * n_cores;
        // Instruction counts stay exact: the SD-based metrics we *report*
        // are not part of the sampled hardware path; only the EB inputs are.
        for &ci in cores {
            c.warp_insts += self.cores[ci].stats().insts;
        }
        let n_parts = self.partitions.len() as u64;
        let pk = self.partitions[0].counters(app);
        c.l2_accesses = pk.l2_accesses * n_parts;
        c.l2_misses = pk.l2_misses * n_parts;
        c.dram_bytes = pk.mc.dram_bytes * n_parts;
        c.row_hits = pk.mc.row_hits * n_parts;
        c.row_misses = pk.mc.row_misses * n_parts;
        c
    }

    /// Aggregated core-pipeline statistics for `app` (sums over its cores).
    pub fn core_stats(&self, app: AppId) -> CoreStats {
        let mut total = CoreStats::default();
        for &ci in &self.app_cores[app.index()] {
            let s = self.cores[ci].stats();
            total.cycles += s.cycles;
            total.insts += s.insts;
            total.mem_stall_cycles += s.mem_stall_cycles;
            total.struct_stall_cycles += s.struct_stall_cycles;
            total.idle_cycles += s.idle_cycles;
            total.warp_mem_wait_cycles += s.warp_mem_wait_cycles;
            total.active_warp_cycles += s.active_warp_cycles;
        }
        total
    }

    /// Per-partition L2 access counts for `app` (used by tests to verify the
    /// uniformity assumption behind designated-partition sampling).
    pub fn per_partition_l2_accesses(&self, app: AppId) -> Vec<u64> {
        self.partitions
            .iter()
            .map(|p| p.counters(app).l2_accesses)
            .collect()
    }

    /// Number of memory partitions in the machine.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of instantiated cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Cumulative telemetry of one memory partition: per-application DRAM
    /// bytes, row-buffer hits/misses, and the current queue depth. The trace
    /// layer differences consecutive snapshots into
    /// [`crate::trace::TraceEvent::PartitionWindow`] events; the simulation
    /// itself never reads this.
    pub fn partition_telemetry(&self, partition: usize) -> PartitionTelemetry {
        let p = &self.partitions[partition];
        let per_app: Vec<_> = (0..self.n_apps())
            .map(|a| p.counters(AppId::new(a as u8)).mc)
            .collect();
        PartitionTelemetry {
            per_app_dram_bytes: per_app.iter().map(|c| c.dram_bytes).collect(),
            row_hits: per_app.iter().map(|c| c.row_hits).sum(),
            row_misses: per_app.iter().map(|c| c.row_misses).sum(),
            queue_depth: p.queue_depth(),
        }
    }

    /// Cumulative telemetry of one core: its application plus the pipeline
    /// statistics. The trace layer differences consecutive snapshots into
    /// [`crate::trace::TraceEvent::CoreWindow`] events.
    pub fn core_telemetry(&self, core: usize) -> (AppId, CoreStats) {
        let c = &self.cores[core];
        (c.app, c.stats())
    }
}

/// Batch-credits `core`'s skipped fast-path cycles up to (excluding)
/// `now`. Free function (not a method) so the response-delivery closure
/// can call it while the crossbar is mutably borrowed, and `pub(crate)`
/// so the domain workers ([`crate::domain`]) apply the identical credit
/// discipline. Must run *before* `receive`: the credit reads the sleep
/// kind that `receive` clears.
pub(crate) fn credit_core(core: &mut SimtCore, credited: &mut u64, now: u64) {
    if *credited < now {
        core.credit_idle_cycles(now - *credited);
        *credited = now;
    }
}

/// Cumulative counters of one memory partition, as sampled by
/// [`Gpu::partition_telemetry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionTelemetry {
    /// DRAM bytes transferred per application (in `AppId` order).
    pub per_app_dram_bytes: Vec<u64>,
    /// Row-buffer hits, summed over applications.
    pub row_hits: u64,
    /// Row-buffer misses (activations), summed over applications.
    pub row_misses: u64,
    /// Requests queued in the partition right now (not cumulative).
    pub queue_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workloads::by_name;

    fn small_two_app() -> Gpu {
        let cfg = GpuConfig::small();
        Gpu::new(
            &cfg,
            &[by_name("BLK").unwrap(), by_name("BFS").unwrap()],
            42,
        )
    }

    #[test]
    fn equal_split_assigns_disjoint_cores() {
        let gpu = small_two_app();
        let a = gpu.cores_of(AppId::new(0));
        let b = gpu.cores_of(AppId::new(1));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert!(a.iter().all(|c| !b.contains(c)));
    }

    #[test]
    fn both_apps_make_progress() {
        let mut gpu = small_two_app();
        gpu.run(3_000);
        for a in 0..2 {
            let c = gpu.counters(AppId::new(a));
            assert!(
                c.warp_insts > 100,
                "App-{a} issued only {} insts",
                c.warp_insts
            );
            assert!(c.dram_bytes > 0, "App-{a} never reached DRAM");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = small_two_app();
        let mut b = small_two_app();
        a.run(2_000);
        b.run(2_000);
        assert_eq!(a.counters(AppId::new(0)), b.counters(AppId::new(0)));
        assert_eq!(a.counters(AppId::new(1)), b.counters(AppId::new(1)));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GpuConfig::small();
        let apps = [by_name("BFS").unwrap(), by_name("BLK").unwrap()];
        let mut a = Gpu::new(&cfg, &apps, 1);
        let mut b = Gpu::new(&cfg, &apps, 2);
        a.run(2_000);
        b.run(2_000);
        assert_ne!(a.counters(AppId::new(0)), b.counters(AppId::new(0)));
    }

    #[test]
    fn tlp_knob_reaches_all_cores() {
        let mut gpu = small_two_app();
        gpu.set_tlp(AppId::new(0), TlpLevel::new(2).unwrap());
        assert_eq!(gpu.tlp_of(AppId::new(0)).get(), 2);
        // The other app is untouched (clamped machine max = 8).
        assert_eq!(gpu.tlp_of(AppId::new(1)).get(), 8);
    }

    #[test]
    fn set_combo_applies_per_app_levels() {
        let mut gpu = small_two_app();
        gpu.set_combo(&TlpCombo::pair(
            TlpLevel::new(1).unwrap(),
            TlpLevel::new(4).unwrap(),
        ));
        assert_eq!(gpu.tlp_of(AppId::new(0)).get(), 1);
        assert_eq!(gpu.tlp_of(AppId::new(1)).get(), 4);
    }

    #[test]
    fn lower_tlp_reduces_bandwidth_consumption() {
        let apps = [by_name("BLK").unwrap(), by_name("BLK").unwrap()];
        let cfg = GpuConfig::small();
        let mut high = Gpu::new(&cfg, &apps, 7);
        let mut low = Gpu::new(&cfg, &apps, 7);
        low.set_tlp(AppId::new(0), TlpLevel::new(1).unwrap());
        high.run(5_000);
        low.run(5_000);
        let bw_high = high.counters(AppId::new(0)).dram_bytes;
        let bw_low = low.counters(AppId::new(0)).dram_bytes;
        assert!(
            bw_low < bw_high,
            "TLP=1 should consume less bandwidth ({bw_low} vs {bw_high})"
        );
    }

    #[test]
    fn bypass_knob_silences_l1() {
        let mut gpu = small_two_app();
        gpu.set_bypass_l1(AppId::new(0), true);
        assert!(gpu.bypass_l1_of(AppId::new(0)));
        gpu.run(2_000);
        assert_eq!(gpu.counters(AppId::new(0)).l1_accesses, 0);
        assert!(gpu.counters(AppId::new(1)).l1_accesses > 0);
    }

    #[test]
    fn l2_traffic_is_roughly_uniform_across_partitions() {
        // Underpins the designated-partition sampling argument (§V-E).
        let mut gpu = small_two_app();
        gpu.run(8_000);
        let per = gpu.per_partition_l2_accesses(AppId::new(0));
        let total: u64 = per.iter().sum();
        assert!(total > 0);
        for &p in &per {
            let share = p as f64 / total as f64;
            let even = 1.0 / per.len() as f64;
            assert!(
                (share - even).abs() < 0.25,
                "partition share {share:.2} far from uniform {even:.2}"
            );
        }
    }

    #[test]
    fn designated_sampling_tracks_exact_aggregates() {
        let mut gpu = small_two_app();
        gpu.run(8_000);
        for a in 0..2u8 {
            let exact = gpu.counters(AppId::new(a));
            let est = gpu.designated_counters(AppId::new(a));
            let close = |x: u64, y: u64| {
                let (x, y) = (x as f64, y as f64);
                x == y || (x - y).abs() / x.max(y).max(1.0) < 0.4
            };
            assert!(
                close(exact.l1_accesses, est.l1_accesses),
                "App-{a}: L1 accesses exact {} vs designated {}",
                exact.l1_accesses,
                est.l1_accesses
            );
            assert!(
                close(exact.dram_bytes, est.dram_bytes),
                "App-{a}: DRAM bytes exact {} vs designated {}",
                exact.dram_bytes,
                est.dram_bytes
            );
            assert_eq!(
                exact.warp_insts, est.warp_insts,
                "instruction counts stay exact"
            );
        }
    }

    #[test]
    fn custom_split_sizes_respected() {
        let cfg = GpuConfig::small();
        let gpu = Gpu::with_core_split(
            &cfg,
            &[by_name("BLK").unwrap(), by_name("BFS").unwrap()],
            &[3, 1],
            1,
        );
        assert_eq!(gpu.cores_of(AppId::new(0)).len(), 3);
        assert_eq!(gpu.cores_of(AppId::new(1)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn uneven_split_panics() {
        let mut cfg = GpuConfig::small();
        cfg.n_cores = 5;
        // 5 cores cannot be split over 2 apps — but 5 cores also fails
        // validate? No: n_cores 5 is fine; the even split fails.
        let _ = Gpu::new(&cfg, &[by_name("BLK").unwrap(), by_name("BFS").unwrap()], 1);
    }

    #[test]
    fn single_app_alone_runs() {
        let cfg = GpuConfig::small();
        let mut gpu = Gpu::with_core_split(&cfg, &[by_name("SCP").unwrap()], &[2], 3);
        gpu.run(3_000);
        assert!(gpu.counters(AppId::new(0)).warp_insts > 100);
    }

    #[test]
    fn domain_parallel_run_matches_serial_exactly() {
        let mut serial = small_two_app();
        serial.set_sim_threads(1);
        serial.run(4_000);
        for threads in [2, 3, 4, 7] {
            let mut parallel = small_two_app();
            parallel.set_sim_threads(threads);
            parallel.run(4_000);
            for a in 0..2u8 {
                assert_eq!(
                    serial.counters(AppId::new(a)),
                    parallel.counters(AppId::new(a)),
                    "counters diverged at {threads} sim threads"
                );
                assert_eq!(
                    serial.core_stats(AppId::new(a)),
                    parallel.core_stats(AppId::new(a)),
                    "core stats diverged at {threads} sim threads"
                );
            }
            let stats = parallel.engine_stats();
            assert_eq!(
                serial.engine_stats().sans_sync(),
                stats.sans_sync(),
                "engine accounting diverged at {threads} sim threads"
            );
            assert!(
                stats.windows > 0
                    && stats.barrier_waits == stats.windows
                    && stats.sync_points > stats.windows,
                "windowed run must record its synchronization: {stats:?}"
            );
            assert!(
                stats.mean_window_cycles() >= 1.0,
                "windows are at least one cycle: {stats:?}"
            );
            assert_eq!(
                serial.engine_stats().sync_points,
                0,
                "serial runs never synchronize"
            );
        }
    }

    #[test]
    fn domain_parallel_survives_multiple_run_spans_and_knobs() {
        // Knob changes invalidate the wheel between spans; both engines
        // must rebuild identically and stay in lock-step.
        let mut serial = small_two_app();
        let mut parallel = small_two_app();
        parallel.set_sim_threads(4);
        for (i, span) in [700u64, 1, 1300, 250].iter().enumerate() {
            let level = TlpLevel::new(1 + (i as u32 * 3) % 8).unwrap();
            serial.set_tlp(AppId::new(0), level);
            parallel.set_tlp(AppId::new(0), level);
            serial.run(*span);
            parallel.run(*span);
            assert_eq!(serial.now(), parallel.now());
            for a in 0..2u8 {
                assert_eq!(
                    serial.counters(AppId::new(a)),
                    parallel.counters(AppId::new(a)),
                    "span {i} diverged"
                );
            }
        }
    }
}
