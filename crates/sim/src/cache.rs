//! Content-addressed memoization of deterministic simulation results.
//!
//! Every measurement in this workspace is a pure function of its inputs —
//! `(GpuConfig, application profiles, seed, RunSpec, TLP combination and
//! controller knobs)` fully determine the output, an invariant the
//! `engine_equivalence` and `parallel_determinism` suites pin. That makes
//! results cacheable by *content*: this module keys each one by a stable
//! 128-bit [`Fingerprint`] of a canonical byte-serialization of those inputs
//! (see [`gpu_types::canon`]) and memoizes the result bytes in two tiers:
//!
//! * an **in-process registry**, on by default, so one campaign process
//!   (e.g. `experiments` generating every figure) measures each distinct
//!   input once;
//! * a **persistent on-disk store** under a cache directory (`--cache-dir`
//!   or `EBM_CACHE_DIR`), so repeated invocations skip simulation entirely.
//!
//! The memory tier is **single-flight**: concurrent lookups of the same
//! fingerprint elect one leader to simulate while the others block and
//! share its bytes (see [`get_or_compute`]). Campaign-level parallelism can
//! therefore never duplicate a simulation, no matter how requests race.
//!
//! # Invalidation
//!
//! [`ENGINE_VERSION`] is folded into every fingerprint. **Any change to
//! engine semantics — anything that alters a simulated counter — and any
//! change to a cached payload encoding or to a [`Canon`] impl must bump
//! it**; the golden-fingerprint test (`crates/sim/tests/cache_store.rs`)
//! fails loudly on accidental drift. Entries written under another engine
//! version simply never match and are rewritten in place.
//!
//! # On-disk format
//!
//! One file per entry, `<32-hex-digit fingerprint>.rec`, framed as:
//!
//! ```text
//! magic "EBMC" | format u32 | engine u32 | fingerprint u128
//!             | payload_len u64 | checksum u128 | payload bytes
//! ```
//!
//! (all little-endian; the checksum is [`gpu_types::canon::fingerprint`] of
//! the payload). Readers treat *any* deviation — bad magic, version
//! mismatch, truncation, checksum failure — as a miss, so corrupt files are
//! ignored and rewritten. Writers stage into a unique temp file in the same
//! directory and `rename` it into place, which is atomic on POSIX: a
//! concurrent reader sees the old bytes, the new bytes, or no file — never
//! a torn record. Concurrent writers race benignly (same key ⇒ same bytes).
//!
//! # Verification
//!
//! With a verify fraction set (`--cache-verify`), a deterministic per-key
//! sample of hits is re-simulated and the stored bytes asserted
//! bit-identical — a cheap standing audit that the determinism invariant
//! (and therefore the whole cache) still holds.
//!
//! The cache stores opaque byte payloads; the typed encode/decode lives
//! next to each memoized entry point ([`crate::alone::profile_alone`],
//! `ComboSweep::measure`, the evaluator in `ebm-core`). All hits and misses
//! are counted ([`stats`]) and surfaced through the trace subsystem as a
//! [`TraceEvent::CacheStats`] event.
//!
//! [`Canon`]: gpu_types::canon::Canon
//! [`TraceEvent::CacheStats`]: crate::trace::TraceEvent::CacheStats

use crate::counters::Counter;
use gpu_types::canon::{fingerprint, CanonBuf, Fingerprint};
use gpu_types::{FxHashMap, SplitMix64};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Version of the simulation engine's observable semantics.
///
/// Folded into every cache fingerprint: results computed under different
/// engine versions never alias. Bump this when *any* of the following
/// changes:
///
/// * the cycle-level behaviour of the machine (anything that changes a
///   counter value for some input);
/// * a [`gpu_types::canon::Canon`] implementation of an input type;
/// * the byte encoding of any cached payload.
///
/// The golden-fingerprint test pins the `(ENGINE_VERSION, canonical
/// encoding, hash)` triple so accidental drift fails CI.
pub const ENGINE_VERSION: u32 = 1;

/// Version of the on-disk record *frame* (not the payload semantics).
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"EBMC";
/// Frame bytes preceding the payload: magic + format + engine + fingerprint
/// + payload length + checksum.
const HEADER_LEN: usize = 4 + 4 + 4 + 16 + 8 + 16;

/// Builder for a cache key: a canonical byte stream seeded with the entry
/// kind and [`ENGINE_VERSION`], reduced to a [`Fingerprint`].
#[derive(Debug)]
pub struct KeyBuilder {
    buf: CanonBuf,
}

impl KeyBuilder {
    /// Starts a key for entries of `kind` (e.g. `"sweep"`, `"alone"`).
    pub fn new(kind: &str) -> Self {
        let mut buf = CanonBuf::new();
        buf.push_str(kind);
        buf.push_u32(ENGINE_VERSION);
        KeyBuilder { buf }
    }

    /// Appends one input's canonical bytes.
    pub fn push<T: gpu_types::canon::Canon + ?Sized>(&mut self, v: &T) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a raw `u64` input (seeds, cycle counts).
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.buf.push_u64(v);
        self
    }

    /// Appends a raw `usize` input (core counts), widened to `u64`.
    pub fn push_usize(&mut self, v: usize) -> &mut Self {
        self.buf.push_usize(v);
        self
    }

    /// Appends a bool input (knobs).
    pub fn push_bool(&mut self, v: bool) -> &mut Self {
        self.buf.push_bool(v);
        self
    }

    /// Appends a string input (app names, scheme tags).
    pub fn push_str(&mut self, v: &str) -> &mut Self {
        self.buf.push_str(v);
        self
    }

    /// Hashes the accumulated bytes into the cache key.
    pub fn finish(&self) -> Fingerprint {
        fingerprint(self.buf.as_bytes())
    }
}

/// Hit/miss/bypass counters of the process-wide cache (monotonic since
/// process start or the last [`reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a tier (memory or disk).
    pub hits: u64,
    /// Hits served by the on-disk store specifically (subset of `hits`).
    pub disk_hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Lookups made while the cache was disabled.
    pub bypasses: u64,
    /// Records written to the on-disk store.
    pub stores: u64,
    /// Hits re-simulated and checked bit-identical by verify mode.
    pub verified: u64,
    /// Hits served by waiting on another thread's in-flight compute of the
    /// same fingerprint (single-flight joins; subset of `hits`).
    pub inflight_joined: u64,
}

impl CacheStats {
    /// Fraction of enabled lookups that hit, in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache's slice of the [`crate::counters`] telemetry bus, resolved
/// once so the hot lookup path pays a pointer load per increment.
struct Counters {
    hits: &'static Counter,
    disk_hits: &'static Counter,
    misses: &'static Counter,
    bypasses: &'static Counter,
    stores: &'static Counter,
    verified: &'static Counter,
    inflight_joined: &'static Counter,
}

fn counters() -> &'static Counters {
    static COUNTERS: OnceLock<Counters> = OnceLock::new();
    COUNTERS.get_or_init(|| Counters {
        hits: crate::counters::counter("cache.hits"),
        disk_hits: crate::counters::counter("cache.disk_hits"),
        misses: crate::counters::counter("cache.misses"),
        bypasses: crate::counters::counter("cache.bypasses"),
        stores: crate::counters::counter("cache.stores"),
        verified: crate::counters::counter("cache.verified"),
        inflight_joined: crate::counters::counter("cache.inflight_joined"),
    })
}

/// Runtime configuration of the process-wide cache.
#[derive(Debug, Clone)]
struct Config {
    enabled: bool,
    dir: Option<PathBuf>,
    verify_fraction: f64,
}

fn config() -> &'static Mutex<Config> {
    static CONFIG: OnceLock<Mutex<Config>> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let enabled = std::env::var("EBM_CACHE").map_or(true, |v| v != "0");
        let dir = std::env::var_os("EBM_CACHE_DIR")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let verify_fraction = std::env::var("EBM_CACHE_VERIFY")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .map_or(0.0, |f| f.clamp(0.0, 1.0));
        Mutex::new(Config {
            enabled,
            dir,
            verify_fraction,
        })
    })
}

fn memory() -> &'static Mutex<FxHashMap<Fingerprint, Arc<[u8]>>> {
    static MEM: OnceLock<Mutex<FxHashMap<Fingerprint, Arc<[u8]>>>> = OnceLock::new();
    MEM.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// State of one in-flight computation (single-flight batching).
enum FlightState {
    /// The leader is still computing; joiners wait on the condvar.
    Pending,
    /// The leader finished; joiners take the shared bytes.
    Done(Arc<[u8]>),
    /// The leader panicked; joiners retry the whole lookup (one of them
    /// becomes the next leader).
    Failed,
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, outcome: FlightState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = outcome;
        self.cv.notify_all();
    }
}

/// Registry of fingerprints currently being computed. An entry exists only
/// while a leader is between "memory miss" and "result published"; it is
/// removed (and waiters notified) before the leader returns.
fn inflight() -> &'static Mutex<FxHashMap<Fingerprint, Arc<Flight>>> {
    static INFLIGHT: OnceLock<Mutex<FxHashMap<Fingerprint, Arc<Flight>>>> = OnceLock::new();
    INFLIGHT.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// Removes the leader's registry entry on every exit path and marks the
/// flight failed if the leader never completed it — a panicking compute
/// must wake its joiners (they retry and re-raise the same panic themselves
/// rather than deadlocking on the condvar).
struct FlightGuard {
    fp: Fingerprint,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightGuard {
    /// Publishes `bytes` to every joiner and retires the flight.
    fn finish(mut self, bytes: Arc<[u8]>) {
        self.completed = true;
        inflight()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.fp);
        self.flight.complete(FlightState::Done(bytes));
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.completed {
            self.flight.complete(FlightState::Failed);
            inflight()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&self.fp);
        }
    }
}

/// Enables or disables the whole cache (both tiers). Disabled lookups call
/// straight through to the compute closure and count as bypasses.
pub fn set_enabled(enabled: bool) {
    config().lock().unwrap().enabled = enabled;
}

/// Points the persistent tier at `dir` (`None` keeps only the in-memory
/// registry). The directory is created on first write.
pub fn set_dir(dir: Option<PathBuf>) {
    config().lock().unwrap().dir = dir;
}

/// Sets the fraction of hits that verify mode re-simulates (clamped to
/// `[0, 1]`; 0 disables verification).
pub fn set_verify_fraction(fraction: f64) {
    config().lock().unwrap().verify_fraction = fraction.clamp(0.0, 1.0);
}

/// Drops every in-memory entry (the disk tier is untouched). Benchmarks use
/// this to measure disk-warm rather than memory-warm lookups.
pub fn clear_memory() {
    memory().lock().unwrap().clear();
}

/// Current counter snapshot (read off the `cache.*` telemetry counters).
pub fn stats() -> CacheStats {
    let c = counters();
    CacheStats {
        hits: c.hits.get(),
        disk_hits: c.disk_hits.get(),
        misses: c.misses.get(),
        bypasses: c.bypasses.get(),
        stores: c.stores.get(),
        verified: c.verified.get(),
        inflight_joined: c.inflight_joined.get(),
    }
}

/// Zeroes every counter. Works whether or not the telemetry bus is
/// recording ([`Counter::reset`] is ungated).
pub fn reset_stats() {
    let c = counters();
    for c in [
        c.hits,
        c.disk_hits,
        c.misses,
        c.bypasses,
        c.stores,
        c.verified,
        c.inflight_joined,
    ] {
        c.reset();
    }
}

/// Emits the current counters into `sink` as a
/// [`TraceEvent::CacheStats`](crate::trace::TraceEvent::CacheStats) event
/// plus one [`TraceEvent::CacheTier`](crate::trace::TraceEvent::CacheTier)
/// event per tier — the memory/disk hit funnel — (gated on the sink being
/// enabled, like every emission site).
pub fn emit_stats<S: crate::trace::TraceSink + ?Sized>(sink: &mut S) {
    if !sink.enabled() {
        return;
    }
    let s = stats();
    sink.emit(crate::trace::TraceEvent::CacheStats {
        cycle: 0,
        hits: s.hits,
        disk_hits: s.disk_hits,
        misses: s.misses,
        bypasses: s.bypasses,
        stores: s.stores,
        verified: s.verified,
        inflight_joined: s.inflight_joined,
    });
    // The funnel: a lookup that misses memory falls through to disk; a
    // disk hit or a compute back-fills the memory tier.
    sink.emit(crate::trace::TraceEvent::CacheTier {
        cycle: 0,
        tier: "memory".to_string(),
        hits: s.hits - s.disk_hits,
        misses: s.misses + s.disk_hits,
        stores: s.misses + s.disk_hits,
    });
    sink.emit(crate::trace::TraceEvent::CacheTier {
        cycle: 0,
        tier: "disk".to_string(),
        hits: s.disk_hits,
        misses: s.misses,
        stores: s.stores,
    });
}

/// Whether a hit on `fp` should be re-simulated under the given verify
/// fraction. Deterministic per key: the same sampled subset is audited on
/// every run, so a verify pass is reproducible.
fn should_verify(fp: Fingerprint, fraction: f64) -> bool {
    if fraction <= 0.0 {
        return false;
    }
    if fraction >= 1.0 {
        return true;
    }
    let seed = (fp.0 as u64) ^ ((fp.0 >> 64) as u64);
    SplitMix64::new(seed).next_f64() < fraction
}

fn verify_hit(fp: Fingerprint, cached: &[u8], compute: impl FnOnce() -> Vec<u8>) {
    let fresh = compute();
    assert!(
        fresh == cached,
        "cache verification failed for {fp}: stored {} bytes, re-simulation \
         produced {} bytes{} — either the determinism invariant broke or \
         ENGINE_VERSION was not bumped after an engine change",
        cached.len(),
        fresh.len(),
        if fresh.len() == cached.len() {
            " (same length, different content)"
        } else {
            ""
        }
    );
    counters().verified.incr();
}

/// Looks `fp` up in the memory tier, then the disk tier; on miss runs
/// `compute`, stores the bytes in both tiers and returns them.
///
/// The compute closure runs with no cache lock held, so it may fan out
/// across threads (and those threads may themselves call into the cache).
/// Concurrent lookups of the same fingerprint are **single-flight**: the
/// first thread to miss becomes the leader and computes; every other thread
/// arriving before the result is published blocks and shares the leader's
/// bytes (counted as a hit and as `inflight_joined`). Exactly one
/// simulation runs per distinct in-flight key — the request-batching
/// primitive the campaign scheduler and ROADMAP item 5's daemon rely on.
/// If the leader panics, waiters wake, retry the lookup, and one of them
/// recomputes (deterministic inputs mean they re-raise the same panic
/// rather than deadlock).
///
/// # Panics
///
/// Panics when verify mode re-simulates a hit and the result is not
/// bit-identical to the stored bytes.
pub fn get_or_compute(fp: Fingerprint, compute: impl FnOnce() -> Vec<u8>) -> Arc<[u8]> {
    let (enabled, dir, verify_fraction) = {
        let c = config().lock().unwrap();
        (c.enabled, c.dir.clone(), c.verify_fraction)
    };
    if !enabled {
        counters().bypasses.incr();
        return compute().into();
    }

    // Re-checked after every failed join: by then the memory tier may have
    // been filled, or the failed leader's registry entry removed.
    let guard = loop {
        if let Some(hit) = memory().lock().unwrap().get(&fp).cloned() {
            counters().hits.incr();
            if should_verify(fp, verify_fraction) {
                verify_hit(fp, &hit, compute);
            }
            return hit;
        }

        // `Err(flight)` means this thread registered the flight and leads;
        // `Ok(flight)` means another thread leads and this one joins.
        let role = {
            let mut inf = inflight().lock().unwrap_or_else(|e| e.into_inner());
            match inf.get(&fp) {
                Some(flight) => Ok(flight.clone()),
                None => {
                    let flight = Arc::new(Flight::new());
                    inf.insert(fp, flight.clone());
                    Err(flight)
                }
            }
        };
        match role {
            Err(flight) => {
                // This thread is the leader; the guard retires the registry
                // entry on every exit path, including a compute panic.
                break FlightGuard {
                    fp,
                    flight,
                    completed: false,
                };
            }
            Ok(flight) => {
                let mut state = flight.state.lock().unwrap_or_else(|e| e.into_inner());
                while matches!(*state, FlightState::Pending) {
                    state = flight.cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                match &*state {
                    FlightState::Done(bytes) => {
                        counters().hits.incr();
                        counters().inflight_joined.incr();
                        return bytes.clone();
                    }
                    // Leader panicked: retry from the top.
                    FlightState::Failed | FlightState::Pending => continue,
                }
            }
        }
    };

    if let Some(dir) = dir.as_deref() {
        if let Some(bytes) = DiskStore::new(dir).load(fp) {
            counters().hits.incr();
            counters().disk_hits.incr();
            if should_verify(fp, verify_fraction) {
                verify_hit(fp, &bytes, compute);
            }
            let arc: Arc<[u8]> = bytes.into();
            memory().lock().unwrap().insert(fp, arc.clone());
            guard.finish(arc.clone());
            return arc;
        }
    }

    counters().misses.incr();
    let bytes = compute();
    if let Some(dir) = dir.as_deref() {
        if DiskStore::new(dir).store(fp, &bytes) {
            counters().stores.incr();
        }
    }
    let arc: Arc<[u8]> = bytes.into();
    memory().lock().unwrap().insert(fp, arc.clone());
    guard.finish(arc.clone());
    arc
}

/// Typed front-end to [`get_or_compute`]: memoizes `compute`'s result under
/// `fp` using `encode`/`decode` for the byte payload.
///
/// On a miss the freshly computed value is returned directly (the encode is
/// only for storage), so the cold path pays one serialization and zero
/// deserializations. On a hit the stored bytes are decoded; a payload that
/// fails to decode panics, because checksummed bytes under the current
/// [`ENGINE_VERSION`] can only be undecodable if an encoding changed
/// without the mandatory version bump.
///
/// # Panics
///
/// Panics on an undecodable hit payload, and propagates verify-mode
/// mismatch panics from [`get_or_compute`].
pub fn memoize<T>(
    fp: Fingerprint,
    encode: impl FnOnce(&T) -> Vec<u8>,
    decode: impl FnOnce(&[u8]) -> Option<T>,
    compute: impl FnOnce() -> T,
) -> T {
    let mut fresh: Option<T> = None;
    let bytes = get_or_compute(fp, || {
        let v = compute();
        let b = encode(&v);
        fresh = Some(v);
        b
    });
    match fresh {
        Some(v) => v,
        None => decode(&bytes).unwrap_or_else(|| {
            panic!(
                "cache payload for {fp} does not decode ({} bytes): a payload \
                 encoding changed without bumping ENGINE_VERSION",
                bytes.len()
            )
        }),
    }
}

/// The persistent tier: one framed, checksummed record file per
/// fingerprint in a flat directory. See the module docs for the format and
/// atomicity guarantees. [`get_or_compute`] drives this internally; it is
/// public so tests (and external tooling) can exercise the format directly.
#[derive(Debug, Clone)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// A store rooted at `dir` (not created until the first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskStore { dir: dir.into() }
    }

    /// The record file path for `fp`.
    pub fn path_of(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{fp}.rec"))
    }

    /// Loads the payload stored for `fp`. Returns `None` on any deviation —
    /// missing file, bad magic, format or engine version mismatch, frame
    /// truncation, length mismatch or checksum failure — never an error:
    /// a bad record is simply a miss and will be rewritten.
    pub fn load(&self, fp: Fingerprint) -> Option<Vec<u8>> {
        let raw = std::fs::read(self.path_of(fp)).ok()?;
        Self::decode(&raw, fp)
    }

    fn decode(raw: &[u8], fp: Fingerprint) -> Option<Vec<u8>> {
        if raw.len() < HEADER_LEN || raw[..4] != MAGIC {
            return None;
        }
        let u32_at = |at: usize| u32::from_le_bytes(raw[at..at + 4].try_into().unwrap());
        let u64_at = |at: usize| u64::from_le_bytes(raw[at..at + 8].try_into().unwrap());
        let u128_at = |at: usize| u128::from_le_bytes(raw[at..at + 16].try_into().unwrap());
        if u32_at(4) != FORMAT_VERSION || u32_at(8) != ENGINE_VERSION || u128_at(12) != fp.0 {
            return None;
        }
        let len = usize::try_from(u64_at(28)).ok()?;
        let checksum = u128_at(36);
        let payload = raw.get(HEADER_LEN..)?;
        if payload.len() != len || fingerprint(payload).0 != checksum {
            return None;
        }
        Some(payload.to_vec())
    }

    fn encode(fp: Fingerprint, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&ENGINE_VERSION.to_le_bytes());
        out.extend_from_slice(&fp.0.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fingerprint(payload).0.to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Writes (or rewrites) the record for `fp` atomically: the bytes are
    /// staged into a process-unique temp file in the cache directory and
    /// renamed into place. Returns whether the record landed; I/O failures
    /// are swallowed — a read-only or full disk degrades the cache, never
    /// the simulation.
    pub fn store(&self, fp: Fingerprint, payload: &[u8]) -> bool {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{fp}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = Self::encode(fp, payload);
        if std::fs::write(&tmp, &bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        let ok = std::fs::rename(&tmp, self.path_of(fp)).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
        }
        ok
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Appends one [`AppWindow`](gpu_types::AppWindow) to a payload: the eight
/// raw counters, the window length and the peak-bandwidth normalizer, all
/// exact (floats as bit patterns). Payload helpers live here so every
/// memoized entry point (alone profiles, sweeps, evaluator results) encodes
/// windows identically.
pub fn push_window(buf: &mut CanonBuf, w: &gpu_types::AppWindow) {
    let c = &w.counters;
    for v in [
        c.l1_accesses,
        c.l1_misses,
        c.l2_accesses,
        c.l2_misses,
        c.dram_bytes,
        c.row_hits,
        c.row_misses,
        c.warp_insts,
    ] {
        buf.push_u64(v);
    }
    buf.push_u64(w.cycles);
    buf.push_f64(w.peak_bw_bytes_per_cycle);
}

/// Reads one window written by [`push_window`]; `None` on truncation or an
/// invalid (empty) window.
pub fn read_window(r: &mut gpu_types::CanonReader<'_>) -> Option<gpu_types::AppWindow> {
    let counters = gpu_types::MemCounters {
        l1_accesses: r.read_u64()?,
        l1_misses: r.read_u64()?,
        l2_accesses: r.read_u64()?,
        l2_misses: r.read_u64()?,
        dram_bytes: r.read_u64()?,
        row_hits: r.read_u64()?,
        row_misses: r.read_u64()?,
        warp_insts: r.read_u64()?,
    };
    let cycles = r.read_u64()?;
    let peak = r.read_f64()?;
    // `AppWindow::new` requires positive cycles and peak bandwidth; a NaN
    // peak (not greater than zero) is rejected here too.
    if cycles == 0 || peak.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return None;
    }
    Some(gpu_types::AppWindow::new(counters, cycles, peak))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ebm_cache_unit_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_round_trip() {
        let dir = temp_dir("roundtrip");
        let store = DiskStore::new(&dir);
        assert_eq!(store.load(fp(7)), None, "empty store misses");
        assert!(store.store(fp(7), b"payload bytes"));
        assert_eq!(store.load(fp(7)).as_deref(), Some(&b"payload bytes"[..]));
        // Overwrite with new content.
        assert!(store.store(fp(7), b"other"));
        assert_eq!(store.load(fp(7)).as_deref(), Some(&b"other"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_fingerprint_in_frame_is_a_miss() {
        let dir = temp_dir("wrongfp");
        let store = DiskStore::new(&dir);
        assert!(store.store(fp(1), b"data"));
        // A record renamed to another key's file name must not be served.
        std::fs::rename(store.path_of(fp(1)), store.path_of(fp(2))).unwrap();
        assert_eq!(store.load(fp(2)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_constant_matches_layout() {
        let frame = DiskStore::encode(fp(3), b"xy");
        assert_eq!(frame.len(), HEADER_LEN + 2);
        assert_eq!(
            DiskStore::decode(&frame, fp(3)).as_deref(),
            Some(&b"xy"[..])
        );
    }

    #[test]
    fn verify_sampling_is_deterministic_and_bounded() {
        assert!(!should_verify(fp(1), 0.0));
        assert!(should_verify(fp(1), 1.0));
        let f = 0.25;
        let picked: Vec<bool> = (0..64).map(|i| should_verify(fp(i), f)).collect();
        assert_eq!(
            picked,
            (0..64).map(|i| should_verify(fp(i), f)).collect::<Vec<_>>()
        );
        let n = picked.iter().filter(|&&p| p).count();
        assert!(n > 0 && n < 64, "sampled {n}/64 at fraction {f}");
    }
}
