//! Measurement harness: fixed-combination runs and controlled runs.

use crate::control::{AppObservation, Controller, Decision, Observation};
use crate::machine::{Gpu, PartitionTelemetry};
use crate::metrics::MetricsRegistry;
use crate::trace::{NullSink, StallBreakdown, TraceEvent, TraceSink};
use gpu_simt::CoreStats;
use gpu_types::canon::{Canon, CanonBuf, CanonReader};
use gpu_types::{AppId, AppWindow, GpuConfig, MemCounters, TlpCombo, TlpLevel};
use gpu_workloads::AppProfile;

/// Warmup/measurement lengths for a fixed-combination measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Cycles run before measurement starts (cache/row-buffer warmup).
    pub warmup: u64,
    /// Measured cycles.
    pub window: u64,
}

impl RunSpec {
    /// A spec with the given warmup and window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(warmup: u64, window: u64) -> Self {
        assert!(window > 0, "measurement window must be non-empty");
        RunSpec { warmup, window }
    }

    /// Short spec for unit tests on the small machine.
    pub fn quick() -> Self {
        RunSpec::new(1_000, 4_000)
    }
}

impl Canon for RunSpec {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u64(self.warmup);
        buf.push_u64(self.window);
    }
}

fn snapshot_all(gpu: &Gpu) -> Vec<MemCounters> {
    let mut buf = Vec::new();
    snapshot_all_into(gpu, &mut buf);
    buf
}

fn snapshot_all_into(gpu: &Gpu, buf: &mut Vec<MemCounters>) {
    buf.clear();
    buf.extend((0..gpu.n_apps()).map(|a| gpu.counters(AppId::new(a as u8))));
}

/// Counters as the controller's sampling hardware sees them: exact
/// aggregates, or the Fig. 8 designated core/partition estimate.
fn snapshot_sampled_into(gpu: &Gpu, buf: &mut Vec<MemCounters>) {
    if gpu.config().sampling.designated {
        buf.clear();
        buf.extend((0..gpu.n_apps()).map(|a| gpu.designated_counters(AppId::new(a as u8))));
    } else {
        snapshot_all_into(gpu, buf);
    }
}

fn core_stats_all_into(gpu: &Gpu, buf: &mut Vec<CoreStats>) {
    buf.clear();
    buf.extend((0..gpu.n_apps()).map(|a| gpu.core_stats(AppId::new(a as u8))));
}

fn windows_between(
    gpu: &Gpu,
    before: &[MemCounters],
    after: &[MemCounters],
    cycles: u64,
) -> Vec<AppWindow> {
    let peak = gpu.config().peak_bw_bytes_per_cycle();
    before
        .iter()
        .zip(after)
        .map(|(b, a)| AppWindow::new(*a - *b, cycles, peak))
        .collect()
}

/// Applies `combo`, warms up, then measures `spec.window` cycles; returns
/// one [`AppWindow`] per application.
pub fn measure_fixed(gpu: &mut Gpu, combo: &TlpCombo, spec: RunSpec) -> Vec<AppWindow> {
    gpu.set_combo(combo);
    gpu.run(spec.warmup);
    let before = snapshot_all(gpu);
    gpu.run(spec.window);
    let after = snapshot_all(gpu);
    windows_between(gpu, &before, &after, spec.window)
}

/// The complete machine-construction inputs of one fixed-combination
/// measurement, for [`measure_fixed_cached`]: everything needed to rebuild
/// the [`Gpu`] from scratch, and therefore everything that must feed the
/// cache fingerprint.
#[derive(Debug, Clone, Copy)]
pub struct FixedRunInputs<'a> {
    /// Machine description.
    pub cfg: &'a GpuConfig,
    /// Co-scheduled applications, in core-partition order.
    pub apps: &'a [&'a AppProfile],
    /// Explicit cores-per-application split ([`Gpu::with_core_split`]);
    /// `None` divides the cores equally ([`Gpu::new`]).
    pub core_split: Option<&'a [usize]>,
    /// Machine seed.
    pub seed: u64,
    /// Enables CCWS-style throttling on every application before measuring.
    pub ccws: bool,
}

impl FixedRunInputs<'_> {
    /// Builds the machine these inputs describe.
    pub fn build(&self) -> Gpu {
        let mut gpu = match self.core_split {
            Some(split) => Gpu::with_core_split(self.cfg, self.apps, split, self.seed),
            None => Gpu::new(self.cfg, self.apps, self.seed),
        };
        if self.ccws {
            for a in 0..self.apps.len() {
                gpu.set_ccws(AppId::new(a as u8), true);
            }
        }
        gpu
    }

    /// Appends the machine-construction inputs to a cache key. Shared by
    /// [`FixedRunInputs::fingerprint`] and by controller-run fingerprints
    /// one crate up (which add their own knobs on top).
    pub fn push_key(&self, key: &mut crate::cache::KeyBuilder) {
        key.push(self.cfg);
        key.push_usize(self.apps.len());
        for app in self.apps {
            key.push(*app);
        }
        match self.core_split {
            None => {
                key.push_bool(false);
            }
            Some(split) => {
                key.push_bool(true);
                key.push_usize(split.len());
                for &n in split {
                    key.push_usize(n);
                }
            }
        }
        key.push_u64(self.seed);
        key.push_bool(self.ccws);
    }

    /// Cache key of [`measure_fixed_cached`] for these inputs — public so a
    /// campaign planner can name the unit without running it.
    pub fn fingerprint(&self, combo: &TlpCombo, spec: RunSpec) -> gpu_types::Fingerprint {
        let mut key = crate::cache::KeyBuilder::new("fixed");
        self.push_key(&mut key);
        key.push(combo);
        key.push(&spec);
        key.finish()
    }
}

/// Cache-aware [`measure_fixed`] for runs on a freshly built machine: the
/// result is memoized under a fingerprint of `inputs`, `combo` and `spec`
/// (see [`crate::cache`]), so repeated figure generations re-simulate each
/// distinct static run once per cache lifetime. Bit-identical to building
/// the machine and calling [`measure_fixed`] directly.
pub fn measure_fixed_cached(
    inputs: &FixedRunInputs<'_>,
    combo: &TlpCombo,
    spec: RunSpec,
) -> Vec<AppWindow> {
    let fp = inputs.fingerprint(combo, spec);
    crate::cache::memoize(
        fp,
        |windows: &Vec<AppWindow>| {
            let mut buf = CanonBuf::new();
            buf.push_usize(windows.len());
            for w in windows {
                crate::cache::push_window(&mut buf, w);
            }
            buf.into_bytes()
        },
        |bytes| {
            let mut r = CanonReader::new(bytes);
            let n = r.read_usize()?;
            let mut windows = Vec::with_capacity(n);
            for _ in 0..n {
                windows.push(crate::cache::read_window(&mut r)?);
            }
            r.is_empty().then_some(windows)
        },
        || measure_fixed(&mut inputs.build(), combo, spec),
    )
}

/// Result of a controlled (policy-driven) run.
#[derive(Debug, Clone)]
pub struct ControlledRun {
    /// One overall measurement window per application, covering the entire
    /// measured region (search overheads included, as in the paper's PBS
    /// results).
    pub overall: Vec<AppWindow>,
    /// `(cycle, per-app TLP)` — every TLP change the controller made,
    /// including the initial setting (Fig. 11's traces).
    pub tlp_trace: Vec<(u64, Vec<TlpLevel>)>,
    /// Per-window observations handed to the controller (diagnostics).
    pub n_windows: u64,
    /// The full per-window time series `(window-end cycle, per-app
    /// windows)` — what the controller saw, for Fig. 11-style plots and
    /// CSV export.
    pub window_series: Vec<(u64, Vec<AppWindow>)>,
}

impl ControlledRun {
    /// Renders the per-window series as CSV
    /// (`cycle,app,tlp?,ipc,bw,cmr,eb` — TLP comes from the trace).
    pub fn series_csv(&self) -> String {
        let mut out = String::from("cycle,app,ipc,bw,cmr,eb\n");
        for (cycle, windows) in &self.window_series {
            for (a, w) in windows.iter().enumerate() {
                out.push_str(&format!(
                    "{cycle},{a},{:.4},{:.4},{:.4},{:.4}\n",
                    w.ipc(),
                    w.attained_bw(),
                    w.combined_miss_rate(),
                    w.effective_bandwidth()
                ));
            }
        }
        out
    }
}

/// Runs `gpu` for `total_cycles` under `controller`.
///
/// Every `sampling.window_cycles` the harness snapshots per-application
/// counters; the controller is invoked `sampling.relay_latency` cycles later
/// (modeling the designated-partition relay of Fig. 8) and its decision is
/// applied immediately. The overall measurement covers everything from
/// `measure_from` to the end, *including* all sampling-phase disturbance.
///
/// The harness advances the machine in *spans* — straight to the next event
/// boundary (window mark, measurement start, or run end) — instead of
/// interrogating the clock after every cycle. Nothing observable happens
/// between boundaries, so the span walk is cycle-for-cycle identical to a
/// per-cycle loop (the `span_equivalence` regression test pins this down).
pub fn run_controlled(
    gpu: &mut Gpu,
    controller: &mut dyn Controller,
    total_cycles: u64,
    measure_from: u64,
) -> ControlledRun {
    run_controlled_traced(gpu, controller, total_cycles, measure_from, &mut NullSink)
}

/// Telemetry snapshots the trace layer differences window-over-window.
/// Only maintained when the sink is enabled; the simulation never reads it.
struct TraceState {
    prev_cycle: u64,
    prev_parts: Vec<PartitionTelemetry>,
    prev_cores: Vec<(AppId, CoreStats)>,
    last_phase: Option<&'static str>,
}

impl TraceState {
    fn capture(gpu: &Gpu) -> Self {
        TraceState {
            prev_cycle: gpu.now(),
            prev_parts: (0..gpu.n_partitions())
                .map(|p| gpu.partition_telemetry(p))
                .collect(),
            prev_cores: (0..gpu.n_cores()).map(|c| gpu.core_telemetry(c)).collect(),
            last_phase: None,
        }
    }

    /// Emits the `PartitionWindow` and `CoreWindow` events of the window
    /// that just ended, then re-snapshots.
    fn emit_window<S: TraceSink + ?Sized>(&mut self, gpu: &Gpu, sink: &mut S) {
        let now = gpu.now();
        let elapsed = (now - self.prev_cycle).max(1) as f64;
        let peak = gpu.config().peak_bw_bytes_per_cycle();
        for p in 0..gpu.n_partitions() {
            let cur = gpu.partition_telemetry(p);
            let prev = &self.prev_parts[p];
            let per_app_bw = cur
                .per_app_dram_bytes
                .iter()
                .zip(&prev.per_app_dram_bytes)
                .map(|(c, b)| (c - b) as f64 / (elapsed * peak))
                .collect();
            let hits = cur.row_hits - prev.row_hits;
            let misses = cur.row_misses - prev.row_misses;
            let total = hits + misses;
            sink.emit(TraceEvent::PartitionWindow {
                cycle: now,
                partition: p as u32,
                per_app_bw,
                rowbuf_hit_rate: if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                },
                queue_depth: cur.queue_depth,
            });
            self.prev_parts[p] = cur;
        }
        for c in 0..gpu.n_cores() {
            let (app, cur) = gpu.core_telemetry(c);
            let prev = &self.prev_cores[c].1;
            sink.emit(TraceEvent::CoreWindow {
                cycle: now,
                core: c as u32,
                app: app.index() as u8,
                ipc: (cur.insts - prev.insts) as f64 / elapsed,
                active_warps: (cur.active_warp_cycles - prev.active_warp_cycles) as f64 / elapsed,
                stall: StallBreakdown {
                    mem: (cur.mem_stall_cycles - prev.mem_stall_cycles) as f64 / elapsed,
                    structural: (cur.struct_stall_cycles - prev.struct_stall_cycles) as f64
                        / elapsed,
                    idle: (cur.idle_cycles - prev.idle_cycles) as f64 / elapsed,
                },
            });
            self.prev_cores[c].1 = cur;
        }
        self.prev_cycle = now;
    }
}

/// [`run_controlled`] with a [`TraceSink`] receiving the run's structured
/// events (see [`crate::trace`] for the event kinds and
/// `docs/TRACE_SCHEMA.md` for the serialized contract).
///
/// Tracing is strictly off the decision path: the sink only *observes*
/// simulator state at window boundaries, every emission site is gated on
/// [`TraceSink::enabled`], and the returned [`ControlledRun`] is bit-for-bit
/// identical whichever sink is passed. [`run_controlled`] is exactly this
/// function with a [`NullSink`].
pub fn run_controlled_traced<S: TraceSink + ?Sized>(
    gpu: &mut Gpu,
    controller: &mut dyn Controller,
    total_cycles: u64,
    measure_from: u64,
    sink: &mut S,
) -> ControlledRun {
    let n_apps = gpu.n_apps();
    let window = gpu.config().sampling.window_cycles;
    let relay = gpu.config().sampling.relay_latency;
    let peak = gpu.config().peak_bw_bytes_per_cycle();

    let mut tlp_trace = vec![(
        gpu.now(),
        (0..n_apps)
            .map(|a| gpu.tlp_of(AppId::new(a as u8)))
            .collect::<Vec<_>>(),
    )];
    let mut measure_start: Option<Vec<MemCounters>> = None;
    // Window-boundary snapshots live in reused buffers: `win_*` hold the
    // window's opening state, `after_*` its closing state, and the pair is
    // swapped instead of reallocated every window.
    let mut win_counters = Vec::new();
    snapshot_sampled_into(gpu, &mut win_counters);
    let mut win_core = Vec::new();
    core_stats_all_into(gpu, &mut win_core);
    let mut after_counters: Vec<MemCounters> = Vec::new();
    let mut after_core: Vec<CoreStats> = Vec::new();
    let mut n_windows = 0;
    let mut window_series = Vec::new();
    // Telemetry baselines exist only when tracing is on; with a `NullSink`
    // the whole tracing path is dead code.  The metrics registry rides the
    // same gate: an enabled sink turns on machine-wide metrics recording
    // (stall breakdowns, latency histograms) for the duration of the run.
    let metrics_before = gpu.metrics_enabled();
    let mut registry = if sink.enabled() {
        gpu.set_metrics_enabled(true);
        Some(MetricsRegistry::new())
    } else {
        None
    };
    let mut trace_state = if sink.enabled() {
        Some(TraceState::capture(gpu))
    } else {
        None
    };

    let end = gpu.now() + total_cycles;
    let mut next_mark = gpu.now() + window;
    while gpu.now() < end {
        if measure_start.is_none() && gpu.now() >= measure_from {
            measure_start = Some(snapshot_all(gpu));
        }
        // Advance to the next boundary in one span. `measure_from` is a
        // stop only until its snapshot has been taken.
        let mut stop = end.min(next_mark);
        if measure_start.is_none() && measure_from > gpu.now() {
            stop = stop.min(measure_from);
        }
        gpu.run(stop - gpu.now());
        if gpu.now() == next_mark {
            // Window complete: capture it, then let the relay latency pass
            // before the controller sees the data.
            snapshot_sampled_into(gpu, &mut after_counters);
            core_stats_all_into(gpu, &mut after_core);
            let obs_windows = windows_between(gpu, &win_counters, &after_counters, window);
            window_series.push((gpu.now(), obs_windows.clone()));
            if let Some(ts) = trace_state.as_mut() {
                for (a, w) in obs_windows.iter().enumerate() {
                    sink.emit(TraceEvent::WindowSample {
                        cycle: gpu.now(),
                        app: a as u8,
                        eb: w.effective_bandwidth(),
                        bw: w.attained_bw(),
                        cmr: w.combined_miss_rate(),
                        l1mr: w.counters.l1_miss_rate(),
                        l2mr: w.counters.l2_miss_rate(),
                        ipc: w.ipc(),
                    });
                }
                ts.emit_window(gpu, sink);
            }
            if let Some(reg) = registry.as_mut() {
                reg.rollover(gpu, sink);
            }
            let obs_core: Vec<CoreStats> = win_core
                .iter()
                .zip(&after_core)
                .map(|(b, a)| CoreStats {
                    cycles: a.cycles - b.cycles,
                    insts: a.insts - b.insts,
                    mem_stall_cycles: a.mem_stall_cycles - b.mem_stall_cycles,
                    struct_stall_cycles: a.struct_stall_cycles - b.struct_stall_cycles,
                    idle_cycles: a.idle_cycles - b.idle_cycles,
                    warp_mem_wait_cycles: a.warp_mem_wait_cycles - b.warp_mem_wait_cycles,
                    active_warp_cycles: a.active_warp_cycles - b.active_warp_cycles,
                })
                .collect();
            gpu.run(relay.min(end.saturating_sub(gpu.now())));
            let obs = Observation {
                now: gpu.now(),
                window_cycles: window,
                apps: (0..n_apps)
                    .map(|a| AppObservation {
                        window: obs_windows[a],
                        core: obs_core[a],
                        tlp: gpu.tlp_of(AppId::new(a as u8)),
                        bypassed: gpu.bypass_l1_of(AppId::new(a as u8)),
                    })
                    .collect(),
            };
            let decision: Decision = controller.on_window(&obs);
            let mut changed = false;
            for a in 0..n_apps {
                if let Some(level) = decision.tlp.get(a).copied().flatten() {
                    let old = gpu.tlp_of(AppId::new(a as u8));
                    let new = gpu.config().clamp_tlp(level);
                    if old != new {
                        changed = true;
                        if let Some(_ts) = trace_state.as_ref() {
                            sink.emit(TraceEvent::TlpDecision {
                                cycle: gpu.now(),
                                app: a as u8,
                                old: old.get(),
                                new: new.get(),
                                reason: decision.reason.unwrap_or("policy"),
                            });
                        }
                    }
                    gpu.set_tlp(AppId::new(a as u8), level);
                }
                if let Some(b) = decision.bypass.get(a).copied().flatten() {
                    gpu.set_bypass_l1(AppId::new(a as u8), b);
                }
            }
            if let Some(ts) = trace_state.as_mut() {
                let phase = controller.phase();
                if phase != ts.last_phase {
                    ts.last_phase = phase;
                    if let Some(phase) = phase {
                        sink.emit(TraceEvent::SearchPhase {
                            cycle: gpu.now(),
                            scheme: controller.name().to_owned(),
                            phase: phase.to_owned(),
                        });
                    }
                }
            }
            if changed {
                tlp_trace.push((
                    gpu.now(),
                    (0..n_apps)
                        .map(|a| gpu.tlp_of(AppId::new(a as u8)))
                        .collect(),
                ));
            }
            n_windows += 1;
            snapshot_sampled_into(gpu, &mut win_counters);
            core_stats_all_into(gpu, &mut win_core);
            next_mark = gpu.now() + window;
        }
    }

    if trace_state.is_some() {
        sink.flush();
        gpu.set_metrics_enabled(metrics_before);
    }
    let start = measure_start.unwrap_or_else(|| snapshot_all(gpu));
    let final_counters = snapshot_all(gpu);
    let measured_cycles = (gpu.now() - measure_from.min(gpu.now())).max(1);
    let overall = start
        .iter()
        .zip(&final_counters)
        .map(|(b, a)| AppWindow::new(*a - *b, measured_cycles, peak))
        .collect();
    ControlledRun {
        overall,
        tlp_trace,
        n_windows,
        window_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::StaticController;
    use gpu_types::GpuConfig;
    use gpu_workloads::by_name;

    fn gpu() -> Gpu {
        Gpu::new(
            &GpuConfig::small(),
            &[by_name("BLK").unwrap(), by_name("BFS").unwrap()],
            11,
        )
    }

    #[test]
    fn measure_fixed_reports_positive_ipc() {
        let mut g = gpu();
        let combo = TlpCombo::uniform(TlpLevel::MAX, 2);
        let w = measure_fixed(&mut g, &combo, RunSpec::quick());
        assert_eq!(w.len(), 2);
        assert!(w[0].ipc() > 0.0);
        assert!(w[1].ipc() > 0.0);
    }

    #[test]
    fn measure_fixed_is_deterministic() {
        let combo = TlpCombo::uniform(TlpLevel::MAX, 2);
        let mut a = gpu();
        let mut b = gpu();
        let wa = measure_fixed(&mut a, &combo, RunSpec::quick());
        let wb = measure_fixed(&mut b, &combo, RunSpec::quick());
        assert_eq!(wa[0].counters, wb[0].counters);
    }

    #[test]
    fn controlled_run_invokes_controller_per_window() {
        let mut g = gpu();
        let window = g.config().sampling.window_cycles;
        let mut c = StaticController;
        let run = run_controlled(&mut g, &mut c, window * 4 + 100, 0);
        assert!(
            run.n_windows >= 3,
            "expected >=3 windows, got {}",
            run.n_windows
        );
        assert_eq!(run.overall.len(), 2);
        assert!(run.overall[0].ipc() > 0.0);
    }

    #[test]
    fn static_controller_leaves_single_trace_entry() {
        let mut g = gpu();
        let mut c = StaticController;
        let run = run_controlled(&mut g, &mut c, 10_000, 0);
        assert_eq!(run.tlp_trace.len(), 1, "no TLP changes expected");
    }

    struct FlipFlop(bool);
    impl Controller for FlipFlop {
        fn on_window(&mut self, obs: &Observation) -> Decision {
            self.0 = !self.0;
            let lvl = if self.0 {
                TlpLevel::MIN
            } else {
                TlpLevel::new(8).unwrap()
            };
            Decision::set_all(&vec![lvl; obs.apps.len()])
        }
        fn name(&self) -> &str {
            "flipflop"
        }
    }

    #[test]
    fn dynamic_controller_changes_are_traced() {
        let mut g = gpu();
        let window = g.config().sampling.window_cycles;
        let mut c = FlipFlop(false);
        let run = run_controlled(&mut g, &mut c, window * 4 + 100, 0);
        assert!(run.tlp_trace.len() >= 3, "trace: {:?}", run.tlp_trace);
    }

    #[test]
    fn window_series_records_every_window() {
        let mut g = gpu();
        let mut c = StaticController;
        let run = run_controlled(&mut g, &mut c, 10_000, 0);
        assert_eq!(run.window_series.len() as u64, run.n_windows);
        let cycles: Vec<u64> = run.window_series.iter().map(|(c, _)| *c).collect();
        assert!(
            cycles.windows(2).all(|w| w[0] < w[1]),
            "series must be time-ordered"
        );
        let csv = run.series_csv();
        assert!(csv.starts_with("cycle,app,"));
        assert!(csv.lines().count() as u64 >= run.n_windows * 2);
    }

    #[test]
    fn measure_from_skips_early_cycles() {
        let mut g1 = gpu();
        let mut g2 = gpu();
        let mut c = StaticController;
        let full = run_controlled(&mut g1, &mut c, 8_000, 0);
        let late = run_controlled(&mut g2, &mut c, 8_000, 4_000);
        assert!(late.overall[0].cycles < full.overall[0].cycles);
    }
}
