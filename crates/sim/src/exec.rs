//! Scoped-thread fan-out for independent simulations.
//!
//! The evaluation campaign is dominated by *independent* full simulations:
//! the 64 entries of a TLP-combination sweep table, the ladder levels of an
//! alone profile, and the dozen schemes run per workload. Each
//! one builds a fresh same-seed machine, so they can execute on any thread
//! in any order without changing a single number — the only requirement is
//! that results are collected back in *input order*, which [`par_map`]
//! guarantees.
//!
//! The pool is std-only: [`std::thread::scope`] workers pulling indices off
//! an atomic counter. No work stealing, no channels — simulation granules
//! are milliseconds to seconds, so a single shared counter is contention-free
//! in practice.
//!
//! Thread count resolution order:
//!
//! 1. an explicit count passed to [`par_map_with`];
//! 2. the `EBM_THREADS` environment variable, if set and positive;
//! 3. [`std::thread::available_parallelism`].
//!
//! `EBM_THREADS=1` disables fan-out entirely (useful for profiling and for
//! the determinism regression tests, although parallel results are identical
//! by construction).
//!
//! A second, independent knob — `EBM_SIM_THREADS`, resolved by
//! [`sim_worker_count`] — controls *intra-simulation* parallelism: how many
//! domain workers a single machine's event loop fans out over
//! (docs/PARALLELISM.md). The two never multiply: [`par_map_with`] workers
//! run with an [`in_sweep_fanout`] marker set, and `sim_worker_count`
//! returns 1 inside them, so a sweep of N simulations uses N-way across-sim
//! parallelism and each simulation steps serially.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// True on threads spawned by [`par_map_with`] — see [`in_sweep_fanout`].
    static IN_SWEEP_FANOUT: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is a [`par_map`]/[`par_map_with`] worker.
///
/// Used by [`sim_worker_count`] to suppress nested parallelism: inside a
/// sweep fan-out every CPU is already busy with an independent simulation,
/// so splitting each one across further intra-sim workers would only add
/// barrier overhead and oversubscription.
pub fn in_sweep_fanout() -> bool {
    IN_SWEEP_FANOUT.with(Cell::get)
}

/// Number of intra-simulation domain workers a single machine's event loop
/// uses: the `EBM_SIM_THREADS` environment variable when set to a positive
/// integer, otherwise 1 (serial — intra-sim parallelism is opt-in).
///
/// Always 1 on [`par_map`]/[`par_map_with`] worker threads, whatever the
/// environment says: across-sim fan-out already saturates the host
/// ([`in_sweep_fanout`]). An explicit per-machine override
/// (`Gpu::set_sim_threads`) bypasses this function entirely.
pub fn sim_worker_count() -> usize {
    if in_sweep_fanout() {
        return 1;
    }
    if let Ok(v) = std::env::var("EBM_SIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    1
}

/// Number of worker threads fan-outs use by default: the `EBM_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// host's available parallelism (1 if that cannot be determined).
///
/// Always 1 on fan-out worker threads (both [`par_map_with`] workers and
/// [`with_workers`] pool threads): a worker that fans out again would
/// oversubscribe the host with `N × N` threads, so nested [`par_map`]
/// calls run inline instead.
pub fn worker_count() -> usize {
    if in_sweep_fanout() {
        return 1;
    }
    if let Ok(v) = std::env::var("EBM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`worker_count`] scoped threads, returning the
/// results in input order.
///
/// See [`par_map_with`] for the guarantees.
///
/// # Examples
///
/// ```
/// use gpu_sim::exec::par_map;
/// // Results always come back in input order, whatever the thread count.
/// let doubled = par_map(vec![1, 2, 3], |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(worker_count(), items, f)
}

/// Maps `f` over `items` on at most `threads` scoped threads, returning the
/// results in input order.
///
/// Guarantees:
///
/// * **Index-ordered collection** — `result[i] == f(items[i])` regardless of
///   which worker ran it or when it finished.
/// * **Exactly-once execution** — each item is claimed by exactly one worker
///   via an atomic ticket counter.
/// * **Panic propagation** — a panic inside `f` propagates to the caller
///   when the scope joins (no silently missing entries).
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on the
/// caller's thread, bit-for-bit identical to the threaded path because `f`
/// is the same closure either way.
///
/// # Examples
///
/// ```
/// use gpu_sim::exec::par_map_with;
/// let squares = par_map_with(4, (0u64..100).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// ```
pub fn par_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = threads.min(n);
    // One slot per item. A Mutex<Option<_>> per slot costs nothing at the
    // granularity of full simulations and keeps everything in safe code:
    // the ticket counter already guarantees each input slot is taken (and
    // each output slot written) exactly once.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Mark the worker so nested intra-sim parallelism is
                    // suppressed ([`sim_worker_count`] returns 1 here).
                    IN_SWEEP_FANOUT.with(|flag| flag.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = inputs[i]
                            .lock()
                            .expect("input slot poisoned")
                            .take()
                            .expect("ticket counter hands out each index once");
                        let result = f(item);
                        *outputs[i].lock().expect("output slot poisoned") = Some(result);
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload reaches the caller
        // verbatim (the scope's implicit join would replace it with its own
        // generic message).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output slot poisoned")
                .expect("every index was claimed and completed")
        })
        .collect()
}

/// Runs `coordinator` on the calling thread while `threads` pool workers
/// run `worker(i)` (one call per worker, `i` in `0..threads`), then joins
/// the workers and returns the coordinator's result.
///
/// This is the long-lived sibling of [`par_map_with`]: instead of mapping a
/// closed item list, each worker runs a caller-supplied loop (typically
/// pulling work units off a shared queue until it drains). Worker threads
/// carry the [`in_sweep_fanout`] marker, so nested [`par_map`] calls and
/// intra-sim domain workers both collapse to serial inside them — a pool of
/// N workers uses exactly N threads, however deep the work nests.
///
/// A worker panic propagates to the caller with its original payload, after
/// the coordinator has returned (the caller's queue protocol must therefore
/// not let the coordinator block forever on a dead worker — see
/// `ebm_bench::campaign` for the catch-and-flag pattern).
pub fn with_workers<R>(
    threads: usize,
    worker: impl Fn(usize) + Sync,
    coordinator: impl FnOnce() -> R,
) -> R {
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                scope.spawn(move || {
                    IN_SWEEP_FANOUT.with(|flag| flag.set(true));
                    worker(i)
                })
            })
            .collect();
        let result = coordinator();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out = par_map_with(8, (0..1000u64).collect(), |x| x * 3);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let work = |x: u64| {
            let mut rng = gpu_types::SplitMix64::new(x);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let serial = par_map_with(1, (0..64).collect(), work);
        let parallel = par_map_with(6, (0..64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let e: Vec<u32> = par_map_with(4, Vec::<u32>::new(), |x| x);
        assert!(e.is_empty());
        assert_eq!(par_map_with(4, vec![9u32], |x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map_with(64, vec![1, 2, 3], |x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn sim_worker_count_suppressed_inside_fanout() {
        // Whatever EBM_SIM_THREADS says, a par_map worker must report 1:
        // nested intra-sim parallelism is disabled inside a sweep fan-out.
        assert!(!in_sweep_fanout(), "caller thread is not a fan-out worker");
        let counts = par_map_with(3, (0..8).collect::<Vec<u32>>(), |_| {
            (in_sweep_fanout(), sim_worker_count())
        });
        for (inside, n) in counts {
            assert!(inside, "worker threads must carry the fan-out marker");
            assert_eq!(n, 1, "intra-sim workers must be suppressed in fan-out");
        }
        assert!(!in_sweep_fanout(), "marker must not leak to the caller");
    }

    #[test]
    fn worker_count_suppressed_inside_fanout() {
        // A fan-out worker that fans out again must run inline: nested
        // par_map calls on worker threads report a width of 1.
        let widths = par_map_with(3, (0..6).collect::<Vec<u32>>(), |_| worker_count());
        for w in widths {
            assert_eq!(w, 1, "worker_count must be 1 on fan-out workers");
        }
    }

    #[test]
    fn with_workers_runs_pool_and_coordinator() {
        use std::sync::atomic::AtomicU64;
        let ran = AtomicU64::new(0);
        let marked = AtomicU64::new(0);
        let out = with_workers(
            3,
            |_i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if in_sweep_fanout() && worker_count() == 1 {
                    marked.fetch_add(1, Ordering::Relaxed);
                }
            },
            || 42u32,
        );
        assert_eq!(out, 42, "coordinator result is returned");
        assert_eq!(ran.load(Ordering::Relaxed), 3, "each worker ran once");
        assert_eq!(
            marked.load(Ordering::Relaxed),
            3,
            "pool workers carry the fan-out marker and report width 1"
        );
    }

    #[test]
    #[should_panic(expected = "pool boom")]
    fn with_workers_propagates_worker_panics() {
        with_workers(
            2,
            |i| {
                if i == 1 {
                    panic!("pool boom");
                }
            },
            || (),
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = par_map_with(2, vec![0u32, 1, 2, 3], |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
