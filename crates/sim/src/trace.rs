//! Structured trace/counter subsystem — zero-cost when disabled.
//!
//! The paper's mechanism is driven entirely by runtime introspection: the
//! Fig. 8 sampling hardware relays per-application miss rates and attained
//! bandwidth to the cores every window. This module makes those internal
//! dynamics observable as a stream of typed [`TraceEvent`]s without
//! perturbing the simulation:
//!
//! * [`TraceSink`] — the receiver trait. The harness gates every emission
//!   site on [`TraceSink::enabled`], so with the no-op [`NullSink`] (whose
//!   `enabled` is a constant `false`) the entire tracing path compiles away
//!   and the hot loop is untouched.
//! * [`RingSink`] — a bounded in-memory capture, for tests and programmatic
//!   replay ([`eb_series`], [`series_csv`]).
//! * [`JsonlSink`] — newline-delimited JSON written to a file (the
//!   `--trace <path>` flag of the `experiments`/`fig11` binaries).
//!
//! Events are **versioned**: every serialized record carries
//! [`TRACE_SCHEMA_VERSION`], and `docs/TRACE_SCHEMA.md` is the contract for
//! each event kind's fields. Tracing is strictly off the decision path —
//! sinks only *read* simulator state, so a run traced into a [`RingSink`] or
//! [`JsonlSink`] is bit-for-bit identical to the same run with a
//! [`NullSink`] (pinned by `crates/core/tests/parallel_determinism.rs`).
//!
//! # Examples
//!
//! ```
//! use gpu_sim::control::StaticController;
//! use gpu_sim::harness::run_controlled_traced;
//! use gpu_sim::machine::Gpu;
//! use gpu_sim::trace::{eb_series, RingSink};
//! use gpu_types::GpuConfig;
//! use gpu_workloads::Workload;
//!
//! let workload = Workload::pair("BLK", "BFS");
//! let mut gpu = Gpu::new(&GpuConfig::small(), workload.apps(), 42);
//! let mut sink = RingSink::new(4096);
//! let mut ctl = StaticController;
//! let run = run_controlled_traced(&mut gpu, &mut ctl, 10_000, 0, &mut sink);
//! // The EB trajectory of app 0, reconstructed from the generic trace,
//! // matches the harness's bespoke per-window series exactly.
//! let series = eb_series(sink.events(), 0);
//! assert_eq!(series.len() as u64, run.n_windows);
//! ```

use gpu_simt::WarpStalls;
use gpu_types::Histogram;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version stamped into every serialized trace record (`"v"` field).
///
/// Bump it whenever an event's fields change shape or meaning, and update
/// `docs/TRACE_SCHEMA.md` — the schema document is the contract consumers
/// parse against.
///
/// History: v2 added the `cache_stats` event (result-cache counters);
/// v3 added the `metrics_window` (metrics-registry snapshots) and
/// `profile_span` (bench self-profiler) events; v4 added the engine
/// skip diagnostics (`machine_fast_forward_fraction`,
/// `component_idle_skip_fraction`) to `metrics_window`; v5 added the
/// substrate telemetry events (`sched_unit`, `domain_window`,
/// `cache_tier`) and the `inflight_joined` field of `cache_stats`.
pub const TRACE_SCHEMA_VERSION: u32 = 5;

/// Per-core stall breakdown of one sampling window (fractions of the
/// window's cycles; the remainder is issue cycles).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StallBreakdown {
    /// Fraction stalled on outstanding memory.
    pub mem: f64,
    /// Fraction stalled on structural hazards (MSHRs / egress full).
    pub structural: f64,
    /// Fraction idle (ALU latency or all warps finished).
    pub idle: f64,
}

/// A typed observability event.
///
/// Every variant carries the cycle at which it was recorded; the remaining
/// fields are documented in `docs/TRACE_SCHEMA.md` (the serialization
/// contract).
// `MetricsWindow` carries three fixed-size histograms (~300 B each), which
// dwarfs the other variants. Events are transient — constructed only when a
// sink is enabled, serialized or ring-buffered in the thousands — so the
// per-event footprint is irrelevant and boxing would only add indirection
// to every emit site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One application's sampling-window observation — the quantities the
    /// Fig. 8 hardware relays to the cores (EB inputs) plus IPC.
    WindowSample {
        /// Window-end cycle.
        cycle: u64,
        /// Application index.
        app: u8,
        /// Effective bandwidth (`BW / CMR`).
        eb: f64,
        /// Attained DRAM bandwidth, normalized to the machine peak.
        bw: f64,
        /// Combined miss rate (`L1MR × L2MR`).
        cmr: f64,
        /// L1 miss rate over the window.
        l1mr: f64,
        /// L2 miss rate over the window.
        l2mr: f64,
        /// Warp-instruction IPC over the window.
        ipc: f64,
    },
    /// A controller changed one application's TLP level.
    TlpDecision {
        /// Cycle at which the new level took effect.
        cycle: u64,
        /// Application index.
        app: u8,
        /// Previous TLP level.
        old: u32,
        /// New TLP level (post-clamping; what the machine actually runs).
        new: u32,
        /// The controller's stated reason (e.g. `"search-sweep"`,
        /// `"hold-install"`, `"latency-tolerance"`).
        reason: &'static str,
    },
    /// A controller's internal phase transition (PBS's Fig. 11 search
    /// organization: boot → scale-sample → sweep → tune → hold).
    SearchPhase {
        /// Cycle of the transition (the window at which it was observed).
        cycle: u64,
        /// Controller name (e.g. `"PBS-WS"`).
        scheme: String,
        /// New phase label.
        phase: String,
    },
    /// One memory partition's sampling-window telemetry.
    PartitionWindow {
        /// Window-end cycle.
        cycle: u64,
        /// Partition index.
        partition: u32,
        /// Per-application attained DRAM bandwidth through this partition
        /// over the window, normalized to the whole-machine peak.
        per_app_bw: Vec<f64>,
        /// DRAM row-buffer hit rate over the window (0 when no accesses).
        rowbuf_hit_rate: f64,
        /// Queued requests (ingress + controller queue) at the window end.
        queue_depth: usize,
    },
    /// One SIMT core's sampling-window telemetry.
    CoreWindow {
        /// Window-end cycle.
        cycle: u64,
        /// Core index.
        core: u32,
        /// Application the core is assigned to.
        app: u8,
        /// Warp-instruction IPC over the window.
        ipc: f64,
        /// Average SWL-active warp slots over the window.
        active_warps: f64,
        /// Stall-cycle fractions over the window.
        stall: StallBreakdown,
    },
    /// Result-cache counters ([`crate::cache`]) at the moment of emission —
    /// campaigns emit one at the end of a run so traces record how much
    /// simulation was memoized away.
    CacheStats {
        /// Always 0: the cache lives outside simulated time.
        cycle: u64,
        /// Lookups served from a cache tier.
        hits: u64,
        /// Hits served by the on-disk store (subset of `hits`).
        disk_hits: u64,
        /// Lookups that had to simulate.
        misses: u64,
        /// Lookups made while the cache was disabled.
        bypasses: u64,
        /// Records written to the on-disk store.
        stores: u64,
        /// Hits re-simulated and checked bit-identical by verify mode.
        verified: u64,
        /// Hits served by waiting on another thread's in-flight compute of
        /// the same fingerprint (single-flight joins; subset of `hits`).
        inflight_joined: u64,
    },
    /// One campaign work-graph unit, emitted when a scheduled or serial
    /// campaign finishes. The identity fields (`unit` … `est`) come from
    /// the deterministic plan; the runtime fields (`worker` … `cycles`)
    /// describe the actual execution and are zero when the campaign ran
    /// serially (plan-only emission).
    SchedUnit {
        /// Always 0: scheduling lives outside simulated time.
        cycle: u64,
        /// Unit index in plan order.
        unit: u64,
        /// The unit's label (e.g. `"alone:BLK@8"`, `"scheme:BLK_BFS/pbs"`).
        label: String,
        /// The unit's 128-bit cache fingerprint, as 32 hex digits.
        fp: String,
        /// Number of dependencies the unit waited on.
        deps: u64,
        /// Cost-model estimate the scheduler ordered the unit by
        /// (simulated cycles, or the registration fallback).
        est: u64,
        /// Pool worker that executed the unit (0-based; 0 on serial runs).
        worker: u64,
        /// Milliseconds from campaign start to unit start (wall clock;
        /// nondeterministic, 0 on serial runs).
        start_ms: f64,
        /// Wall-clock milliseconds the unit ran for (nondeterministic,
        /// 0 on serial runs).
        wall_ms: f64,
        /// Simulated cycles the executing worker attributed to the unit
        /// (0 on serial runs and on cache hits).
        cycles: u64,
    },
    /// One intra-simulation domain's engine accounting over a metrics
    /// window, emitted at registry rollover when the machine ran with
    /// domain workers (`EBM_SIM_THREADS`); absent on serial-engine runs.
    DomainWindow {
        /// Window-end cycle.
        cycle: u64,
        /// Domain index (a contiguous chunk of cores + partitions).
        domain: u32,
        /// Lookahead windows the domain synchronized through.
        windows: u64,
        /// Simulated cycles those windows covered.
        window_cycles: u64,
        /// Core steps the domain's worker executed.
        core_steps: u64,
        /// Partition steps the domain's worker executed.
        partition_steps: u64,
    },
    /// One result-cache tier's hit funnel at the moment of emission
    /// (companion to `cache_stats`, split per tier).
    CacheTier {
        /// Always 0: the cache lives outside simulated time.
        cycle: u64,
        /// Tier name: `"memory"` or `"disk"`.
        tier: String,
        /// Lookups this tier served.
        hits: u64,
        /// Lookups that fell past this tier.
        misses: u64,
        /// Entries written into this tier.
        stores: u64,
    },
    /// One sampling window's metrics-registry snapshot (`gpu_sim::metrics`):
    /// per-warp stall breakdown, DRAM request-latency histogram, and — on
    /// the machine-wide aggregate record only — the MSHR-occupancy and
    /// queue-depth gauges sampled at rollover.
    MetricsWindow {
        /// Window-end cycle.
        cycle: u64,
        /// Application index, or `None` for the machine-wide aggregate
        /// record (serialized as JSON `null`).
        app: Option<u8>,
        /// Per-warp stall-reason breakdown over the window (warp-cycles).
        stalls: WarpStalls,
        /// DRAM queue-to-data request latency over the window (cycles).
        dram_lat: Histogram,
        /// L2-MSHR occupancy samples (one per partition per window; empty
        /// on per-app records — occupancy is not app-attributable).
        mshr_occ: Histogram,
        /// Queue-depth samples (partition queues and crossbar peaks; empty
        /// on per-app records).
        queue_depth: Histogram,
        /// Fraction of the window's cycles the engine advanced by
        /// whole-machine fast-forward jumps (no component work at all).
        /// `None` (JSON `null`) on per-app records — this is an engine
        /// diagnostic, not simulation state, so the per-cycle reference
        /// engine reports 0 where the event engine reports > 0.
        machine_fast_forward_fraction: Option<f64>,
        /// Fraction of individual component steps the engine skipped over
        /// the window, relative to stepping every component every cycle.
        /// `None` on per-app records; an engine diagnostic like
        /// `machine_fast_forward_fraction`.
        component_idle_skip_fraction: Option<f64>,
    },
    /// One bench self-profiler span (campaign → figure → sweep → run),
    /// emitted when a traced campaign finishes so the trace records where
    /// wall time and simulated cycles went.
    ProfileSpan {
        /// Always 0: profiling spans live outside simulated time.
        cycle: u64,
        /// Span level: `"campaign"`, `"figure"`, `"sweep"` or `"run"`.
        level: String,
        /// Human-readable span name (e.g. `"fig09"`).
        name: String,
        /// Nesting depth (campaign = 0).
        depth: u32,
        /// Wall-clock seconds spent in the span.
        wall_s: f64,
        /// Simulated cycles attributed to the span (process-wide counter
        /// delta, so parallel sweeps attribute work from every thread).
        cycles: u64,
        /// Result-cache hits during the span.
        cache_hits: u64,
        /// Result-cache misses (simulations executed) during the span.
        cache_misses: u64,
        /// Worker threads available to the span (`gpu_sim::exec`).
        workers: u32,
    },
}

/// Formats a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.6}");
    } else {
        out.push_str("null");
    }
}

/// Serializes a [`Histogram`] as the schema's histogram object:
/// `{"count":..,"sum":..,"min":..,"max":..,"buckets":[..]}` with trailing
/// zero buckets trimmed (an empty histogram has `"buckets":[]`).
fn push_hist(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.min(),
        h.max()
    );
    let buckets = h.buckets();
    let last = buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    for (i, b) in buckets[..last].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

/// Minimal JSON string escaping (controller names are ASCII, but the schema
/// must never emit invalid JSON).
fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl TraceEvent {
    /// The event's kind tag as serialized (`"kind"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::WindowSample { .. } => "window_sample",
            TraceEvent::TlpDecision { .. } => "tlp_decision",
            TraceEvent::SearchPhase { .. } => "search_phase",
            TraceEvent::PartitionWindow { .. } => "partition_window",
            TraceEvent::CoreWindow { .. } => "core_window",
            TraceEvent::CacheStats { .. } => "cache_stats",
            TraceEvent::MetricsWindow { .. } => "metrics_window",
            TraceEvent::ProfileSpan { .. } => "profile_span",
            TraceEvent::SchedUnit { .. } => "sched_unit",
            TraceEvent::DomainWindow { .. } => "domain_window",
            TraceEvent::CacheTier { .. } => "cache_tier",
        }
    }

    /// The cycle the event was recorded at.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::WindowSample { cycle, .. }
            | TraceEvent::TlpDecision { cycle, .. }
            | TraceEvent::SearchPhase { cycle, .. }
            | TraceEvent::PartitionWindow { cycle, .. }
            | TraceEvent::CoreWindow { cycle, .. }
            | TraceEvent::CacheStats { cycle, .. }
            | TraceEvent::MetricsWindow { cycle, .. }
            | TraceEvent::ProfileSpan { cycle, .. }
            | TraceEvent::SchedUnit { cycle, .. }
            | TraceEvent::DomainWindow { cycle, .. }
            | TraceEvent::CacheTier { cycle, .. } => *cycle,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline),
    /// following `docs/TRACE_SCHEMA.md`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"v\":{TRACE_SCHEMA_VERSION},\"kind\":\"{}\",\"cycle\":{}",
            self.kind(),
            self.cycle()
        );
        match self {
            TraceEvent::WindowSample {
                app,
                eb,
                bw,
                cmr,
                l1mr,
                l2mr,
                ipc,
                ..
            } => {
                let _ = write!(s, ",\"app\":{app}");
                for (name, v) in [
                    ("eb", eb),
                    ("bw", bw),
                    ("cmr", cmr),
                    ("l1mr", l1mr),
                    ("l2mr", l2mr),
                    ("ipc", ipc),
                ] {
                    let _ = write!(s, ",\"{name}\":");
                    push_f64(&mut s, *v);
                }
            }
            TraceEvent::TlpDecision {
                app,
                old,
                new,
                reason,
                ..
            } => {
                let _ = write!(s, ",\"app\":{app},\"old\":{old},\"new\":{new},\"reason\":");
                push_str(&mut s, reason);
            }
            TraceEvent::SearchPhase { scheme, phase, .. } => {
                s.push_str(",\"scheme\":");
                push_str(&mut s, scheme);
                s.push_str(",\"phase\":");
                push_str(&mut s, phase);
            }
            TraceEvent::PartitionWindow {
                partition,
                per_app_bw,
                rowbuf_hit_rate,
                queue_depth,
                ..
            } => {
                let _ = write!(s, ",\"partition\":{partition},\"per_app_bw\":[");
                for (i, bw) in per_app_bw.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_f64(&mut s, *bw);
                }
                s.push_str("],\"rowbuf_hit_rate\":");
                push_f64(&mut s, *rowbuf_hit_rate);
                let _ = write!(s, ",\"queue_depth\":{queue_depth}");
            }
            TraceEvent::CoreWindow {
                core,
                app,
                ipc,
                active_warps,
                stall,
                ..
            } => {
                let _ = write!(s, ",\"core\":{core},\"app\":{app},\"ipc\":");
                push_f64(&mut s, *ipc);
                s.push_str(",\"active_warps\":");
                push_f64(&mut s, *active_warps);
                s.push_str(",\"stall\":{\"mem\":");
                push_f64(&mut s, stall.mem);
                s.push_str(",\"struct\":");
                push_f64(&mut s, stall.structural);
                s.push_str(",\"idle\":");
                push_f64(&mut s, stall.idle);
                s.push('}');
            }
            TraceEvent::CacheStats {
                hits,
                disk_hits,
                misses,
                bypasses,
                stores,
                verified,
                inflight_joined,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"hits\":{hits},\"disk_hits\":{disk_hits},\"misses\":{misses},\
                     \"bypasses\":{bypasses},\"stores\":{stores},\"verified\":{verified},\
                     \"inflight_joined\":{inflight_joined}"
                );
            }
            TraceEvent::MetricsWindow {
                app,
                stalls,
                dram_lat,
                mshr_occ,
                queue_depth,
                machine_fast_forward_fraction,
                component_idle_skip_fraction,
                ..
            } => {
                match app {
                    Some(a) => {
                        let _ = write!(s, ",\"app\":{a}");
                    }
                    None => s.push_str(",\"app\":null"),
                }
                let _ = write!(
                    s,
                    ",\"stalls\":{{\"mem\":{},\"exec\":{},\"barrier\":{},\"tlp_capped\":{}}}",
                    stalls.mem, stalls.exec, stalls.barrier, stalls.tlp_capped
                );
                for (name, h) in [
                    ("dram_lat", dram_lat),
                    ("mshr_occ", mshr_occ),
                    ("queue_depth", queue_depth),
                ] {
                    let _ = write!(s, ",\"{name}\":");
                    push_hist(&mut s, h);
                }
                for (name, frac) in [
                    (
                        "machine_fast_forward_fraction",
                        machine_fast_forward_fraction,
                    ),
                    ("component_idle_skip_fraction", component_idle_skip_fraction),
                ] {
                    let _ = write!(s, ",\"{name}\":");
                    match frac {
                        Some(f) => push_f64(&mut s, *f),
                        None => s.push_str("null"),
                    }
                }
            }
            TraceEvent::ProfileSpan {
                level,
                name,
                depth,
                wall_s,
                cycles,
                cache_hits,
                cache_misses,
                workers,
                ..
            } => {
                s.push_str(",\"level\":");
                push_str(&mut s, level);
                s.push_str(",\"name\":");
                push_str(&mut s, name);
                let _ = write!(s, ",\"depth\":{depth},\"wall_s\":");
                push_f64(&mut s, *wall_s);
                let _ = write!(
                    s,
                    ",\"cycles\":{cycles},\"cache_hits\":{cache_hits},\
                     \"cache_misses\":{cache_misses},\"workers\":{workers}"
                );
            }
            TraceEvent::SchedUnit {
                unit,
                label,
                fp,
                deps,
                est,
                worker,
                start_ms,
                wall_ms,
                cycles,
                ..
            } => {
                let _ = write!(s, ",\"unit\":{unit},\"label\":");
                push_str(&mut s, label);
                s.push_str(",\"fp\":");
                push_str(&mut s, fp);
                let _ = write!(s, ",\"deps\":{deps},\"est\":{est},\"worker\":{worker}");
                s.push_str(",\"start_ms\":");
                push_f64(&mut s, *start_ms);
                s.push_str(",\"wall_ms\":");
                push_f64(&mut s, *wall_ms);
                let _ = write!(s, ",\"cycles\":{cycles}");
            }
            TraceEvent::DomainWindow {
                domain,
                windows,
                window_cycles,
                core_steps,
                partition_steps,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"domain\":{domain},\"windows\":{windows},\
                     \"window_cycles\":{window_cycles},\"core_steps\":{core_steps},\
                     \"partition_steps\":{partition_steps}"
                );
            }
            TraceEvent::CacheTier {
                tier,
                hits,
                misses,
                stores,
                ..
            } => {
                s.push_str(",\"tier\":");
                push_str(&mut s, tier);
                let _ = write!(
                    s,
                    ",\"hits\":{hits},\"misses\":{misses},\"stores\":{stores}"
                );
            }
        }
        s.push('}');
        s
    }
}

/// Receiver of trace events.
///
/// Emission sites are written as
/// `if sink.enabled() { sink.emit(...); }` — implementations whose
/// `enabled` is a constant `false` ([`NullSink`]) therefore cost nothing:
/// the event is never even constructed. `enabled` may be called once per
/// sampling window per site, so it must be cheap.
pub trait TraceSink {
    /// Whether emission sites should construct and send events.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event. Only called when [`TraceSink::enabled`] is true.
    fn emit(&mut self, event: TraceEvent);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn emit(&mut self, event: TraceEvent) {
        (**self).emit(event)
    }
    fn flush(&mut self) {
        (**self).flush()
    }
}

/// The disabled sink: `enabled()` is a constant `false`, so every gated
/// emission site folds to nothing. This is what the untraced entry points
/// ([`crate::harness::run_controlled`]) pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn emit(&mut self, _event: TraceEvent) {}
}

/// Bounded in-memory capture. When full, the **oldest** events are dropped
/// (ring semantics) and counted, so a long run keeps its most recent
/// history and the loss is visible.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// The captured events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.buf
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes the captured events out, leaving the sink empty.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// Newline-delimited-JSON file sink (one [`TraceEvent::to_json`] object per
/// line). Buffered; flushed explicitly and on drop.
#[derive(Debug)]
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
    written: u64,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlSink {
            out: std::io::BufWriter::new(file),
            path,
            written: 0,
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl TraceSink for JsonlSink {
    fn emit(&mut self, event: TraceEvent) {
        // Best-effort: a full disk loses trace lines, never the simulation.
        let _ = self.out.write_all(event.to_json().as_bytes());
        let _ = self.out.write_all(b"\n");
        self.written += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Reconstructs one application's EB-over-time series (Fig. 11's y-axis)
/// from captured [`TraceEvent::WindowSample`] events: `(window-end cycle,
/// EB)` pairs in trace order.
pub fn eb_series<'a, I>(events: I, app: u8) -> Vec<(u64, f64)>
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    events
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::WindowSample {
                cycle, app: a, eb, ..
            } if *a == app => Some((*cycle, *eb)),
            _ => None,
        })
        .collect()
}

/// Renders the captured [`TraceEvent::WindowSample`] events as the
/// `cycle,app,ipc,bw,cmr,eb` CSV of the Fig. 11 exports — byte-identical to
/// [`crate::harness::ControlledRun::series_csv`] for the same run, which is
/// how `fig11` regenerates its CSVs from the generic trace instead of
/// bespoke plumbing.
pub fn series_csv<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut out = String::from("cycle,app,ipc,bw,cmr,eb\n");
    for e in events {
        if let TraceEvent::WindowSample {
            cycle,
            app,
            eb,
            bw,
            cmr,
            ipc,
            ..
        } = e
        {
            let _ = writeln!(out, "{cycle},{app},{ipc:.4},{bw:.4},{cmr:.4},{eb:.4}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64, app: u8, eb: f64) -> TraceEvent {
        TraceEvent::WindowSample {
            cycle,
            app,
            eb,
            bw: 0.5,
            cmr: 0.25,
            l1mr: 0.5,
            l2mr: 0.5,
            ipc: 1.5,
        }
    }

    fn metrics_window_fixture() -> TraceEvent {
        let mut dram_lat = Histogram::new();
        dram_lat.record(100);
        dram_lat.record(260);
        TraceEvent::MetricsWindow {
            cycle: 15,
            app: Some(1),
            stalls: WarpStalls {
                mem: 40,
                exec: 10,
                barrier: 0,
                tlp_capped: 8,
            },
            dram_lat,
            mshr_occ: Histogram::new(),
            queue_depth: Histogram::new(),
            machine_fast_forward_fraction: None,
            component_idle_skip_fraction: None,
        }
    }

    /// Golden fixture pinning the schema-v5 `metrics_window` field names
    /// and histogram encoding byte-for-byte; any change here must bump
    /// [`TRACE_SCHEMA_VERSION`] and update `docs/TRACE_SCHEMA.md`.
    #[test]
    fn metrics_window_golden_v5() {
        assert_eq!(
            metrics_window_fixture().to_json(),
            "{\"v\":5,\"kind\":\"metrics_window\",\"cycle\":15,\"app\":1,\
             \"stalls\":{\"mem\":40,\"exec\":10,\"barrier\":0,\"tlp_capped\":8},\
             \"dram_lat\":{\"count\":2,\"sum\":360,\"min\":100,\"max\":260,\
             \"buckets\":[0,0,0,0,0,0,0,1,0,1]},\
             \"mshr_occ\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]},\
             \"queue_depth\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]},\
             \"machine_fast_forward_fraction\":null,\
             \"component_idle_skip_fraction\":null}"
        );
    }

    /// Aggregate records carry the engine skip fractions as numbers.
    #[test]
    fn metrics_window_aggregate_serializes_engine_fractions() {
        let e = TraceEvent::MetricsWindow {
            cycle: 20,
            app: None,
            stalls: WarpStalls::default(),
            dram_lat: Histogram::new(),
            mshr_occ: Histogram::new(),
            queue_depth: Histogram::new(),
            machine_fast_forward_fraction: Some(0.25),
            component_idle_skip_fraction: Some(0.5),
        };
        let json = e.to_json();
        assert!(
            json.ends_with(
                "\"machine_fast_forward_fraction\":0.250000,\
                 \"component_idle_skip_fraction\":0.500000}"
            ),
            "{json}"
        );
    }

    /// Golden fixture pinning the schema-v5 `profile_span` field names.
    #[test]
    fn profile_span_golden_v5() {
        let e = TraceEvent::ProfileSpan {
            cycle: 0,
            level: "sweep".into(),
            name: "BLK_BFS".into(),
            depth: 2,
            wall_s: 0.5,
            cycles: 200,
            cache_hits: 1,
            cache_misses: 2,
            workers: 8,
        };
        assert_eq!(
            e.to_json(),
            "{\"v\":5,\"kind\":\"profile_span\",\"cycle\":0,\"level\":\"sweep\",\
             \"name\":\"BLK_BFS\",\"depth\":2,\"wall_s\":0.500000,\"cycles\":200,\
             \"cache_hits\":1,\"cache_misses\":2,\"workers\":8}"
        );
    }

    /// Golden fixture pinning the schema-v5 `sched_unit` field names.
    #[test]
    fn sched_unit_golden_v5() {
        let e = TraceEvent::SchedUnit {
            cycle: 0,
            unit: 3,
            label: "alone:BLK@8".into(),
            fp: "00112233445566778899aabbccddeeff".into(),
            deps: 2,
            est: 450_000,
            worker: 1,
            start_ms: 1.5,
            wall_ms: 12.25,
            cycles: 300_000,
        };
        assert_eq!(
            e.to_json(),
            "{\"v\":5,\"kind\":\"sched_unit\",\"cycle\":0,\"unit\":3,\
             \"label\":\"alone:BLK@8\",\"fp\":\"00112233445566778899aabbccddeeff\",\
             \"deps\":2,\"est\":450000,\"worker\":1,\"start_ms\":1.500000,\
             \"wall_ms\":12.250000,\"cycles\":300000}"
        );
    }

    /// Golden fixture pinning the schema-v5 `domain_window` field names.
    #[test]
    fn domain_window_golden_v5() {
        let e = TraceEvent::DomainWindow {
            cycle: 5000,
            domain: 2,
            windows: 40,
            window_cycles: 2500,
            core_steps: 9000,
            partition_steps: 1200,
        };
        assert_eq!(
            e.to_json(),
            "{\"v\":5,\"kind\":\"domain_window\",\"cycle\":5000,\"domain\":2,\
             \"windows\":40,\"window_cycles\":2500,\"core_steps\":9000,\
             \"partition_steps\":1200}"
        );
    }

    /// Golden fixture pinning the schema-v5 `cache_tier` field names.
    #[test]
    fn cache_tier_golden_v5() {
        let e = TraceEvent::CacheTier {
            cycle: 0,
            tier: "memory".into(),
            hits: 6,
            misses: 4,
            stores: 4,
        };
        assert_eq!(
            e.to_json(),
            "{\"v\":5,\"kind\":\"cache_tier\",\"cycle\":0,\"tier\":\"memory\",\
             \"hits\":6,\"misses\":4,\"stores\":4}"
        );
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn ring_sink_keeps_newest_and_counts_drops() {
        let mut ring = RingSink::new(2);
        assert!(ring.enabled());
        for i in 0..5 {
            ring.emit(sample(i, 0, i as f64));
        }
        assert_eq!(ring.dropped(), 3);
        let cycles: Vec<u64> = ring.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![3, 4]);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.events().is_empty());
    }

    #[test]
    fn every_kind_serializes_with_version_and_tag() {
        let events = [
            sample(10, 1, 2.0),
            TraceEvent::TlpDecision {
                cycle: 11,
                app: 0,
                old: 24,
                new: 4,
                reason: "search-sweep",
            },
            TraceEvent::SearchPhase {
                cycle: 12,
                scheme: "PBS-WS".into(),
                phase: "sweep".into(),
            },
            TraceEvent::PartitionWindow {
                cycle: 13,
                partition: 3,
                per_app_bw: vec![0.1, 0.2],
                rowbuf_hit_rate: 0.75,
                queue_depth: 5,
            },
            TraceEvent::CoreWindow {
                cycle: 14,
                core: 7,
                app: 1,
                ipc: 0.8,
                active_warps: 6.5,
                stall: StallBreakdown {
                    mem: 0.5,
                    structural: 0.1,
                    idle: 0.2,
                },
            },
            TraceEvent::CacheStats {
                cycle: 0,
                hits: 10,
                disk_hits: 4,
                misses: 2,
                bypasses: 0,
                stores: 2,
                verified: 1,
                inflight_joined: 3,
            },
            metrics_window_fixture(),
            TraceEvent::MetricsWindow {
                cycle: 16,
                app: None,
                stalls: WarpStalls::default(),
                dram_lat: Histogram::new(),
                mshr_occ: Histogram::new(),
                queue_depth: Histogram::new(),
                machine_fast_forward_fraction: Some(0.0),
                component_idle_skip_fraction: Some(0.125),
            },
            TraceEvent::ProfileSpan {
                cycle: 0,
                level: "figure".into(),
                name: "fig09".into(),
                depth: 1,
                wall_s: 1.25,
                cycles: 1_000_000,
                cache_hits: 3,
                cache_misses: 7,
                workers: 4,
            },
            TraceEvent::SchedUnit {
                cycle: 0,
                unit: 0,
                label: "sweep:BLK_BFS".into(),
                fp: "ffeeddccbbaa99887766554433221100".into(),
                deps: 0,
                est: 7,
                worker: 0,
                start_ms: 0.0,
                wall_ms: 0.0,
                cycles: 0,
            },
            TraceEvent::DomainWindow {
                cycle: 17,
                domain: 0,
                windows: 1,
                window_cycles: 8,
                core_steps: 64,
                partition_steps: 8,
            },
            TraceEvent::CacheTier {
                cycle: 0,
                tier: "disk".into(),
                hits: 4,
                misses: 2,
                stores: 2,
            },
        ];
        for e in &events {
            let json = e.to_json();
            assert!(json.starts_with(&format!("{{\"v\":{TRACE_SCHEMA_VERSION},")));
            assert!(
                json.contains(&format!("\"kind\":\"{}\"", e.kind())),
                "{json}"
            );
            assert!(json.ends_with('}'), "{json}");
            // Balanced braces (no nested-object truncation).
            let open = json.matches('{').count();
            assert_eq!(open, json.matches('}').count(), "{json}");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let json = sample(0, 0, f64::INFINITY).to_json();
        assert!(json.contains("\"eb\":null"), "{json}");
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::SearchPhase {
            cycle: 0,
            scheme: "a\"b\\c".into(),
            phase: "p".into(),
        };
        assert!(e.to_json().contains("\"a\\\"b\\\\c\""));
    }

    #[test]
    fn eb_series_filters_by_app_in_order() {
        let events = vec![
            sample(100, 0, 1.0),
            sample(100, 1, 9.0),
            sample(200, 0, 2.0),
            TraceEvent::SearchPhase {
                cycle: 150,
                scheme: "s".into(),
                phase: "p".into(),
            },
        ];
        assert_eq!(eb_series(&events, 0), vec![(100, 1.0), (200, 2.0)]);
        assert_eq!(eb_series(&events, 1), vec![(100, 9.0)]);
    }

    #[test]
    fn series_csv_matches_bespoke_format() {
        let events = vec![sample(100, 0, 2.0)];
        let csv = series_csv(&events);
        assert_eq!(
            csv,
            "cycle,app,ipc,bw,cmr,eb\n100,0,1.5000,0.5000,0.2500,2.0000\n"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("gpu_ebm_trace_test_{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).expect("temp file");
            sink.emit(sample(1, 0, 1.0));
            sink.emit(sample(2, 1, 2.0));
            sink.flush();
            assert_eq!(sink.written(), 2);
            assert_eq!(sink.path(), path.as_path());
        }
        let text = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        let _ = std::fs::remove_file(&path);
    }
}
