//! Process-global telemetry bus: named atomic counters and gauges.
//!
//! Every substrate layer — the event engine, the result cache, the domain
//! workers, the campaign scheduler — publishes its statistics here under a
//! dotted name (`cache.hits`, `engine.stepped`, `sched.peak_ready`), so
//! one [`snapshot`] shows the whole machine instead of four ad-hoc
//! channels. The design mirrors the `metrics` crate's zero-cost-when-off
//! contract without the dependency:
//!
//! * [`counter`] interns a name once and hands back a `&'static Counter`;
//!   call sites cache the handle in a `OnceLock` so the steady state is
//!   one pointer load.
//! * [`Counter::add`] / [`Counter::incr`] / [`Counter::set`] are gated on
//!   a single process-global flag ([`set_enabled`]); when recording is
//!   off they cost one relaxed load and an untaken branch.
//! * Reads ([`Counter::get`], [`snapshot`]) and the administrative
//!   [`Counter::reset`] are never gated — a disabled bus still reports
//!   whatever was recorded while it was on.
//!
//! Counters record *events* (cache lookups, scheduler transitions, engine
//! run boundaries), never per-simulated-cycle increments: the hot cycle
//! loop keeps its plain `u64` fields and publishes them as gauges at run
//! boundaries ([`crate::machine::Gpu::run`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Recording is on by default: the cache statistics that CI gates on and
/// the campaign scheduler's own accounting ride on this bus.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// One named atomic cell. Monotonic counters use [`add`](Counter::add) /
/// [`incr`](Counter::incr); gauges overwrite with [`set`](Counter::set).
pub struct Counter(AtomicU64);

impl Counter {
    const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` when recording is enabled; a relaxed load and an untaken
    /// branch otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if ENABLED.load(Ordering::Relaxed) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one when recording is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Overwrites the value (gauge semantics) when recording is enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if ENABLED.load(Ordering::Relaxed) {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value. Never gated: a disabled bus still reads back.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero. Deliberately ungated — resets are administrative
    /// (e.g. [`crate::cache::reset_stats`]) and must work regardless of
    /// the recording flag.
    #[inline]
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, &'static Counter>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, &'static Counter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Interns `name` and returns its counter, creating it (zeroed) on first
/// use. The same name always maps to the same cell, so independent call
/// sites share one counter. Cache the returned handle — the lookup takes
/// the registry lock.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    reg.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Turns recording on or off process-wide. Reads and resets stay live.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the bus is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// All registered counters and their current values, sorted by name.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(name, c)| (*name, c.get()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: no test here toggles `set_enabled` — the process-global flag
    // is shared with concurrently running cache tests. The gating
    // behaviour is covered in the bench crate's `observability` test
    // binary, which owns its process.

    #[test]
    fn same_name_interns_to_same_cell() {
        let a = counter("test.intern");
        let b = counter("test.intern");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn add_incr_set_and_reset_round_trip() {
        let c = counter("test.roundtrip");
        c.reset();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        c.set(42);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_contains_registered_names() {
        counter("test.snap.b").reset();
        counter("test.snap.a").reset();
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        let a = names.iter().position(|n| *n == "test.snap.a").unwrap();
        let b = names.iter().position(|n| *n == "test.snap.b").unwrap();
        assert!(a < b, "snapshot must be name-sorted");
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
