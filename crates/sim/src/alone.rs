//! Alone-run profiling across the TLP ladder.
//!
//! Produces each application's `bestTLP` (the best-performing TLP when it
//! runs alone on its core partition), `IPC@bestTLP` and `EB@bestTLP` — the
//! inputs to Table IV, the bestTLP baseline, the SD denominators and the
//! exact EB scaling factors.

use crate::harness::{measure_fixed, RunSpec};
use crate::machine::Gpu;
use gpu_types::canon::{CanonBuf, CanonReader};
use gpu_types::{AppWindow, GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::AppProfile;

/// Measurements of one alone run at one TLP level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AloneSample {
    /// TLP level of the run.
    pub tlp: TlpLevel,
    /// Warp-instruction IPC.
    pub ipc: f64,
    /// Attained DRAM bandwidth, normalized to peak.
    pub bw: f64,
    /// Combined (L1 × L2) miss rate.
    pub cmr: f64,
    /// Effective bandwidth `BW / CMR`.
    pub eb: f64,
    /// L1 miss rate (diagnostics / Fig. 3).
    pub l1_miss_rate: f64,
    /// L2 miss rate (diagnostics / Fig. 3).
    pub l2_miss_rate: f64,
}

impl AloneSample {
    fn from_window(tlp: TlpLevel, w: &AppWindow) -> Self {
        AloneSample {
            tlp,
            ipc: w.ipc(),
            bw: w.attained_bw(),
            cmr: w.combined_miss_rate(),
            eb: w.effective_bandwidth(),
            l1_miss_rate: w.counters.l1_miss_rate(),
            l2_miss_rate: w.counters.l2_miss_rate(),
        }
    }
}

/// An application's alone-run profile over the full TLP ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct AloneProfile {
    /// Application abbreviation.
    pub app: &'static str,
    /// One sample per ladder level, in ladder order (clamped levels are
    /// deduplicated, so small test machines have fewer entries).
    pub samples: Vec<AloneSample>,
}

impl AloneProfile {
    /// The best-performing TLP: the *highest* ladder level whose alone IPC
    /// is within 0.5 % of the maximum. The tolerance makes the choice robust
    /// to measurement noise on the flat plateau that bandwidth-bound
    /// applications exhibit past their saturation point (where any real
    /// profiling methodology would report the plateau's edge rather than a
    /// noise-picked interior level).
    pub fn best_tlp(&self) -> TlpLevel {
        let max = self.samples.iter().map(|s| s.ipc).fold(0.0f64, f64::max);
        self.samples
            .iter()
            .filter(|s| s.ipc >= 0.995 * max)
            .map(|s| s.tlp)
            .max()
            .expect("profile is never empty")
    }

    /// The sample at `level` (exact match on the ladder).
    pub fn at(&self, level: TlpLevel) -> Option<&AloneSample> {
        self.samples.iter().find(|s| s.tlp == level)
    }

    /// The sample at the best-performing TLP.
    pub fn best(&self) -> &AloneSample {
        self.at(self.best_tlp())
            .expect("best_tlp comes from samples")
    }

    /// `IPC@bestTLP` (Table IV column A; the SD denominator).
    pub fn ipc_at_best(&self) -> f64 {
        self.best().ipc
    }

    /// `EB@bestTLP` (Table IV column B; the exact EB scaling factor).
    pub fn eb_at_best(&self) -> f64 {
        self.best().eb
    }
}

/// Profiles `app` running alone on `n_cores` cores across the TLP ladder.
///
/// The machine keeps its full complement of L2 slices and memory channels
/// (the paper's IPC-Alone runs the application "alone on the same set of
/// cores with bestTLP" — the rest of the GPU is idle, not absent).
///
/// Each ladder level is an independent run on a fresh same-seed machine, so
/// the levels fan out across [`crate::exec::worker_count`] threads; results
/// are collected in ladder order and are identical to a sequential sweep.
pub fn profile_alone(
    cfg: &GpuConfig,
    app: &AppProfile,
    n_cores: usize,
    seed: u64,
    spec: RunSpec,
) -> AloneProfile {
    profile_alone_with_threads(cfg, app, n_cores, seed, spec, crate::exec::worker_count())
}

/// Cache key of [`profile_alone`] — public so a campaign planner can name
/// the unit without running it.
pub fn alone_fingerprint(
    cfg: &GpuConfig,
    app: &AppProfile,
    n_cores: usize,
    seed: u64,
    spec: RunSpec,
) -> gpu_types::Fingerprint {
    let mut key = crate::cache::KeyBuilder::new("alone");
    key.push(cfg)
        .push(app)
        .push_usize(n_cores)
        .push_u64(seed)
        .push(&spec);
    key.finish()
}

/// [`profile_alone`] with an explicit thread count (1 = fully sequential).
///
/// The whole profile is memoized through [`crate::cache`] under a
/// fingerprint of `(cfg, app, n_cores, seed, spec)`; a hit skips every
/// ladder run.
pub fn profile_alone_with_threads(
    cfg: &GpuConfig,
    app: &AppProfile,
    n_cores: usize,
    seed: u64,
    spec: RunSpec,
    threads: usize,
) -> AloneProfile {
    let fp = alone_fingerprint(cfg, app, n_cores, seed, spec);
    crate::cache::memoize(
        fp,
        encode_profile,
        |bytes| decode_profile(bytes, app.name),
        || {
            let samples = crate::exec::par_map_with(threads, ladder_levels(cfg), |clamped| {
                let mut gpu = Gpu::with_core_split(cfg, &[app], &[n_cores], seed);
                let w = measure_fixed(&mut gpu, &TlpCombo::new(vec![clamped]), spec);
                AloneSample::from_window(clamped, &w[0])
            });
            AloneProfile {
                app: app.name,
                samples,
            }
        },
    )
}

/// The TLP ladder clamped to `cfg`, deduplicated in first-seen order (small
/// machines collapse the upper rungs).
fn ladder_levels(cfg: &GpuConfig) -> Vec<TlpLevel> {
    let mut seen = gpu_types::FxHashSet::default();
    TlpLevel::ladder()
        .map(|level| cfg.clamp_tlp(level))
        .filter(|clamped| seen.insert(*clamped))
        .collect()
}

fn encode_profile(p: &AloneProfile) -> Vec<u8> {
    let mut buf = CanonBuf::new();
    buf.push_usize(p.samples.len());
    for s in &p.samples {
        buf.push_u32(s.tlp.get());
        for v in [s.ipc, s.bw, s.cmr, s.eb, s.l1_miss_rate, s.l2_miss_rate] {
            buf.push_f64(v);
        }
    }
    buf.into_bytes()
}

fn decode_profile(bytes: &[u8], app: &'static str) -> Option<AloneProfile> {
    let mut r = CanonReader::new(bytes);
    let n = r.read_usize()?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let tlp = TlpLevel::new(r.read_u32()?)?;
        samples.push(AloneSample {
            tlp,
            ipc: r.read_f64()?,
            bw: r.read_f64()?,
            cmr: r.read_f64()?,
            eb: r.read_f64()?,
            l1_miss_rate: r.read_f64()?,
            l2_miss_rate: r.read_f64()?,
        });
    }
    r.is_empty().then_some(AloneProfile { app, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workloads::by_name;

    fn quick_profile(name: &str) -> AloneProfile {
        profile_alone(
            &GpuConfig::small(),
            by_name(name).unwrap(),
            2,
            5,
            RunSpec::new(500, 2_000),
        )
    }

    #[test]
    fn ladder_is_deduplicated_on_small_machine() {
        // small() clamps at 8, so levels 12/16/24 collapse into 8:
        // 1, 2, 4, 6, 8 remain.
        let p = quick_profile("BLK");
        assert_eq!(p.samples.len(), 5);
    }

    #[test]
    fn best_tlp_is_on_the_ladder() {
        let p = quick_profile("BFS");
        assert!(p.best_tlp().get() >= 1);
        assert!(p.at(p.best_tlp()).is_some());
        assert!(p.ipc_at_best() > 0.0);
        assert!(p.eb_at_best() > 0.0);
    }

    #[test]
    fn streaming_app_gains_bw_with_tlp() {
        let p = quick_profile("BLK");
        let low = p.at(TlpLevel::new(1).unwrap()).unwrap();
        let high = p.at(TlpLevel::new(8).unwrap()).unwrap();
        assert!(
            high.bw > low.bw,
            "BLK bandwidth should grow with TLP ({} vs {})",
            low.bw,
            high.bw
        );
    }

    #[test]
    fn best_tlp_prefers_plateau_edge_within_tolerance() {
        // Synthetic profile: IPC plateaus from level 4 upward within 0.5%.
        let samples = [1u32, 2, 4, 6, 8]
            .into_iter()
            .map(|l| AloneSample {
                tlp: TlpLevel::new(l).unwrap(),
                ipc: if l >= 4 { 2.0 - 0.001 * l as f64 } else { 1.0 },
                bw: 0.5,
                cmr: 1.0,
                eb: 0.5,
                l1_miss_rate: 1.0,
                l2_miss_rate: 1.0,
            })
            .collect();
        let p = AloneProfile { app: "X", samples };
        assert_eq!(p.best_tlp().get(), 8, "plateau edge wins within tolerance");
    }

    #[test]
    fn best_tlp_respects_real_peaks() {
        // A clear interior peak (more than 0.5% above everything else)
        // must win.
        let samples = [1u32, 2, 4, 8]
            .into_iter()
            .map(|l| AloneSample {
                tlp: TlpLevel::new(l).unwrap(),
                ipc: if l == 2 { 3.0 } else { 2.0 },
                bw: 0.5,
                cmr: 1.0,
                eb: 0.5,
                l1_miss_rate: 1.0,
                l2_miss_rate: 1.0,
            })
            .collect();
        let p = AloneProfile { app: "X", samples };
        assert_eq!(p.best_tlp().get(), 2);
    }

    #[test]
    fn cache_sensitive_app_cmr_grows_with_tlp() {
        let p = quick_profile("BFS");
        let low = p.at(TlpLevel::new(1).unwrap()).unwrap();
        let high = p.at(TlpLevel::new(8).unwrap()).unwrap();
        assert!(
            high.cmr > low.cmr,
            "BFS CMR should grow with TLP ({} vs {})",
            low.cmr,
            high.cmr
        );
    }
}
