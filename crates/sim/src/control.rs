//! Controller interface for runtime TLP-management policies.
//!
//! The harness ([`crate::harness::run_controlled`]) invokes the controller
//! once per sampling window, after the Fig. 8 relay latency has elapsed,
//! handing it the per-application observations of the completed window. The
//! controller answers with new TLP levels and/or L1-bypass settings, which
//! take effect immediately (the warp-limiting scheduler applies them at the
//! next issue cycle).
//!
//! The paper's PBS schemes, DynCTA and Mod+Bypass all implement this trait
//! (in the `ebm-core` crate).

use gpu_simt::CoreStats;
use gpu_types::{AppWindow, TlpLevel};

/// What one application did during one sampling window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppObservation {
    /// Memory-system and instruction counters over the window (provides
    /// IPC, BW, CMR and EB via [`AppWindow`]'s methods).
    pub window: AppWindow,
    /// Core-pipeline stall breakdown over the window (drives DynCTA).
    pub core: CoreStats,
    /// The TLP level the application ran at during the window.
    pub tlp: TlpLevel,
    /// Whether the application's L1s were bypassed during the window.
    pub bypassed: bool,
}

/// One sampling window's observations for all applications.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Cycle at which the decision is being made (window end + relay
    /// latency).
    pub now: u64,
    /// Length of the observed window in cycles.
    pub window_cycles: u64,
    /// Per-application observations, in `AppId` order.
    pub apps: Vec<AppObservation>,
}

/// A controller's response to an observation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Decision {
    /// New TLP levels per application (`None` = leave unchanged).
    pub tlp: Vec<Option<TlpLevel>>,
    /// New L1-bypass settings per application (`None` = leave unchanged).
    pub bypass: Vec<Option<bool>>,
    /// Why the controller decided this (free-form label recorded as the
    /// `reason` of [`crate::trace::TraceEvent::TlpDecision`] events; `None`
    /// falls back to `"policy"`).
    pub reason: Option<&'static str>,
}

impl Decision {
    /// A decision changing nothing, for `n_apps` applications.
    pub fn unchanged(n_apps: usize) -> Self {
        Decision {
            tlp: vec![None; n_apps],
            bypass: vec![None; n_apps],
            reason: None,
        }
    }

    /// A decision setting every application's TLP.
    pub fn set_all(levels: &[TlpLevel]) -> Self {
        Decision {
            tlp: levels.iter().map(|&l| Some(l)).collect(),
            bypass: vec![None; levels.len()],
            reason: None,
        }
    }

    /// Builder-style: sets one application's TLP.
    pub fn with_tlp(mut self, app: usize, level: TlpLevel) -> Self {
        self.tlp[app] = Some(level);
        self
    }

    /// Builder-style: sets one application's bypass flag.
    pub fn with_bypass(mut self, app: usize, bypass: bool) -> Self {
        self.bypass[app] = Some(bypass);
        self
    }

    /// Builder-style: labels the decision for the trace layer.
    pub fn with_reason(mut self, reason: &'static str) -> Self {
        self.reason = Some(reason);
        self
    }
}

/// A runtime TLP-management policy.
pub trait Controller {
    /// Called once per sampling window with the window's observations;
    /// returns the knob settings for the next window.
    fn on_window(&mut self, obs: &Observation) -> Decision;

    /// Policy name for traces and reports.
    fn name(&self) -> &str;

    /// The controller's current internal phase, for
    /// [`crate::trace::TraceEvent::SearchPhase`] events (PBS reports its
    /// Fig. 11 search organization: `scale-sample` → `sweep` → `tune` →
    /// `hold`). The harness emits an event whenever the label changes.
    /// `None` (the default) means the controller is phase-less.
    fn phase(&self) -> Option<&'static str> {
        None
    }
}

/// A controller that never changes anything (the static baselines:
/// ++bestTLP, ++maxTLP, oracle-chosen fixed combinations).
#[derive(Debug, Clone, Default)]
pub struct StaticController;

impl Controller for StaticController {
    fn on_window(&mut self, obs: &Observation) -> Decision {
        Decision::unchanged(obs.apps.len())
    }

    fn name(&self) -> &str {
        "static"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::MemCounters;

    fn obs(n: usize) -> Observation {
        let w = AppWindow::new(
            MemCounters {
                l1_accesses: 1,
                warp_insts: 10,
                ..MemCounters::new()
            },
            100,
            192.0,
        );
        Observation {
            now: 100,
            window_cycles: 100,
            apps: (0..n)
                .map(|_| AppObservation {
                    window: w,
                    core: CoreStats::default(),
                    tlp: TlpLevel::MAX,
                    bypassed: false,
                })
                .collect(),
        }
    }

    #[test]
    fn static_controller_changes_nothing() {
        let mut c = StaticController;
        let d = c.on_window(&obs(2));
        assert_eq!(d, Decision::unchanged(2));
        assert_eq!(c.name(), "static");
    }

    #[test]
    fn decision_builders() {
        let d = Decision::unchanged(2)
            .with_tlp(1, TlpLevel::new(4).unwrap())
            .with_bypass(0, true);
        assert_eq!(d.tlp[0], None);
        assert_eq!(d.tlp[1], TlpLevel::new(4));
        assert_eq!(d.bypass[0], Some(true));
    }

    #[test]
    fn set_all_sets_every_app() {
        let d = Decision::set_all(&[TlpLevel::MIN, TlpLevel::MAX]);
        assert_eq!(d.tlp[0], Some(TlpLevel::MIN));
        assert_eq!(d.tlp[1], Some(TlpLevel::MAX));
    }
}
