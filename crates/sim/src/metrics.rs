//! SD-based system metrics (Table III).
//!
//! The slowdown of an application is `SD = IPC-Shared / IPC-Alone`, where
//! the alone run uses the same cores at bestTLP. The system metrics combine
//! per-application slowdowns:
//!
//! * `WS = Σ SD_i` (weighted speedup / system throughput),
//! * `FI = min SD_i / max SD_i` (fairness index; 1 is perfectly fair),
//! * `HS = n / Σ (1/SD_i)` (harmonic weighted speedup).
//!
//! The same combinators applied to EB values yield the paper's EB-WS /
//! EB-FI / EB-HS runtime metrics, so [`ws_of`], [`fi_of`] and [`hs_of`] are
//! exposed generically.

/// Sum of values (WS when fed slowdowns, EB-WS when fed EBs).
///
/// # Examples
///
/// ```
/// use gpu_sim::metrics::ws_of;
/// // Two apps at 60% and 80% of their alone IPC: WS = 1.4.
/// assert_eq!(ws_of(&[0.6, 0.8]), 1.4);
/// ```
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn ws_of(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    values.iter().sum()
}

/// `min/max` imbalance (FI when fed slowdowns, EB-FI when fed EBs).
/// Returns 0 when any value is non-positive.
///
/// # Examples
///
/// ```
/// use gpu_sim::metrics::fi_of;
/// assert_eq!(fi_of(&[0.4, 0.8]), 0.5); // one app slowed twice as much
/// assert_eq!(fi_of(&[0.7, 0.7]), 1.0); // perfectly fair
/// ```
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn fi_of(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if min <= 0.0 || max <= 0.0 {
        return 0.0;
    }
    min / max
}

/// Harmonic mean scaled by count (HS when fed slowdowns).
/// Returns 0 when any value is non-positive.
///
/// # Examples
///
/// ```
/// use gpu_sim::metrics::hs_of;
/// // The harmonic mean rewards balance: it sits below the arithmetic
/// // mean whenever the slowdowns differ.
/// assert_eq!(hs_of(&[0.5, 0.5]), 0.5);
/// assert!(hs_of(&[0.2, 0.8]) < 0.5);
/// ```
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn hs_of(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    if values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Per-application slowdown `IPC-Shared / IPC-Alone`.
///
/// # Panics
///
/// Panics if `ipc_alone` is not positive.
pub fn slowdown(ipc_shared: f64, ipc_alone: f64) -> f64 {
    assert!(ipc_alone > 0.0, "alone IPC must be positive");
    ipc_shared / ipc_alone
}

/// The three SD-based metrics of one workload execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemMetrics {
    /// Per-application slowdowns.
    pub sds: Vec<f64>,
    /// Weighted speedup (system throughput).
    pub ws: f64,
    /// Fairness index.
    pub fi: f64,
    /// Harmonic weighted speedup.
    pub hs: f64,
}

impl SystemMetrics {
    /// Combines per-application slowdowns into the system metrics.
    ///
    /// # Panics
    ///
    /// Panics if `sds` is empty.
    pub fn from_slowdowns(sds: Vec<f64>) -> Self {
        let ws = ws_of(&sds);
        let fi = fi_of(&sds);
        let hs = hs_of(&sds);
        SystemMetrics { sds, ws, fi, hs }
    }
}

/// Geometric mean (used for the Gmean columns of Figs. 9 and 10).
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "gmean needs positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

// ---------------------------------------------------------------------------
// Machine-wide metrics registry (observability layer)
// ---------------------------------------------------------------------------

pub use gpu_simt::WarpStalls;
pub use gpu_types::{Histogram, HIST_BUCKETS};

use crate::machine::{DomainWindowStats, EngineStats, Gpu};
use crate::trace::{TraceEvent, TraceSink};
use gpu_types::AppId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of simulated cycles, across every [`Gpu`] instance
/// and worker thread.  The bench self-profiler diffs this around each
/// span to attribute simulation work to campaign phases.
static CYCLES_SIMULATED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's share of [`CYCLES_SIMULATED`]. The campaign
    /// scheduler diffs it around each unit to attribute simulation work
    /// exactly: pool workers carry the fan-out suppression flag
    /// (`crate::exec`), so a unit's nested sweeps collapse to serial on
    /// the worker's own thread and every cycle lands here.
    static THREAD_CYCLES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Adds `n` to the process-wide simulated-cycle counter (called by
/// [`Gpu::run`]; standalone `Gpu::step` loops are not counted).
pub fn add_cycles_simulated(n: u64) {
    CYCLES_SIMULATED.fetch_add(n, Ordering::Relaxed);
    THREAD_CYCLES.with(|c| c.set(c.get() + n));
}

/// Total cycles simulated by this process so far.
pub fn cycles_simulated() -> u64 {
    CYCLES_SIMULATED.load(Ordering::Relaxed)
}

/// Cycles simulated *by the calling thread* so far (its share of
/// [`cycles_simulated`]).
pub fn thread_cycles_simulated() -> u64 {
    THREAD_CYCLES.with(|c| c.get())
}

/// Collects the machine-wide metrics recorded by an instrumented [`Gpu`]
/// (per-warp stall breakdowns, DRAM request-latency histograms, MSHR /
/// queue-depth occupancy gauges) and snapshots them into
/// [`TraceEvent::MetricsWindow`] events at every sampling-window rollover.
///
/// Created by `run_controlled_traced` only when the sink is enabled, so a
/// disabled trace pays nothing.  Counters use take-and-reset semantics:
/// every window's events carry only that window's samples.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    mshr_occ: Histogram,
    queue_depth: Histogram,
    /// Engine accounting at the previous rollover, so each window's
    /// aggregate record carries window-local skip fractions rather than
    /// run-cumulative ones. The first window measures from [`Gpu`]
    /// creation (the counters start at zero with the registry).
    last_engine: EngineStats,
    /// Per-domain accounting at the previous rollover, for the same
    /// window-local delta on [`TraceEvent::DomainWindow`] events.
    last_domains: Vec<DomainWindowStats>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots one sampling window: takes every app's stall breakdown
    /// and DRAM latency histogram, samples the machine-wide occupancy
    /// gauges, and emits one per-app [`TraceEvent::MetricsWindow`] per
    /// application plus one machine-wide aggregate event (`app: None`).
    pub fn rollover<S: TraceSink + ?Sized>(&mut self, gpu: &mut Gpu, sink: &mut S) {
        let cycle = gpu.now();
        gpu.sample_occupancy(&mut self.mshr_occ, &mut self.queue_depth);
        let mut all_stalls = WarpStalls::default();
        let mut all_lat = Histogram::new();
        for a in 0..gpu.n_apps() {
            let app = AppId::new(a as u8);
            let stalls = gpu.take_warp_stalls(app);
            let dram_lat = gpu.take_dram_latency(app);
            all_stalls.merge(&stalls);
            all_lat.merge(&dram_lat);
            sink.emit(TraceEvent::MetricsWindow {
                cycle,
                app: Some(a as u8),
                stalls,
                dram_lat,
                mshr_occ: Histogram::new(),
                queue_depth: Histogram::new(),
                machine_fast_forward_fraction: None,
                component_idle_skip_fraction: None,
            });
        }
        let (machine_ff, comp_skip) = self.engine_fractions(gpu.engine_stats());
        sink.emit(TraceEvent::MetricsWindow {
            cycle,
            app: None,
            stalls: all_stalls,
            dram_lat: all_lat,
            mshr_occ: self.mshr_occ.take(),
            queue_depth: self.queue_depth.take(),
            machine_fast_forward_fraction: Some(machine_ff),
            component_idle_skip_fraction: Some(comp_skip),
        });
        // One window-local `domain_window` record per domain the parallel
        // engine synchronized in this window; serial-engine runs (no
        // domains, no new windows) emit none.
        let domains = gpu.domain_window_stats();
        self.last_domains
            .resize(domains.len(), DomainWindowStats::default());
        for (d, (cur, prev)) in domains.iter().zip(self.last_domains.iter_mut()).enumerate() {
            if cur.windows > prev.windows {
                sink.emit(TraceEvent::DomainWindow {
                    cycle,
                    domain: d as u32,
                    windows: cur.windows - prev.windows,
                    window_cycles: cur.window_cycles - prev.window_cycles,
                    core_steps: cur.core_steps - prev.core_steps,
                    partition_steps: cur.partition_steps - prev.partition_steps,
                });
            }
            *prev = *cur;
        }
    }

    /// Window-local engine skip fractions: diffs the cumulative
    /// [`EngineStats`] against the previous rollover's snapshot and
    /// reduces the delta to the two distinct quantities of the engine's
    /// skip accounting — whole-machine fast-forwarded cycles over total
    /// cycles, and skipped component steps over total component steps.
    fn engine_fractions(&mut self, eng: EngineStats) -> (f64, f64) {
        let prev = self.last_engine;
        self.last_engine = eng;
        let cycles = (eng.stepped + eng.fast_forwarded) - (prev.stepped + prev.fast_forwarded);
        let ff = eng.fast_forwarded - prev.fast_forwarded;
        let steps = (eng.core_steps + eng.partition_steps + eng.xbar_steps)
            - (prev.core_steps + prev.partition_steps + prev.xbar_steps);
        let skipped = (eng.core_steps_skipped
            + eng.partition_steps_skipped
            + eng.xbar_steps_skipped)
            - (prev.core_steps_skipped + prev.partition_steps_skipped + prev.xbar_steps_skipped);
        let machine_ff = ff as f64 / cycles.max(1) as f64;
        let comp_skip = skipped as f64 / (steps + skipped).max(1) as f64;
        (machine_ff, comp_skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_is_sum() {
        assert_eq!(ws_of(&[0.5, 0.7]), 1.2);
    }

    #[test]
    fn fi_is_min_over_max() {
        assert!((fi_of(&[0.5, 1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(fi_of(&[0.8, 0.8]), 1.0);
    }

    #[test]
    fn fi_of_three_apps_uses_extremes() {
        assert!((fi_of(&[0.2, 0.5, 0.8]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hs_matches_table_iii_for_two_apps() {
        // HS = 2/(1/SD1 + 1/SD2)... Table III writes it without the factor n
        // for two applications as 1/(1/SD1 + 1/SD2); the factor is a
        // constant scaling that cancels in all normalized comparisons. We
        // keep the n-scaled harmonic mean.
        let hs = hs_of(&[0.5, 0.5]);
        assert!((hs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_values_do_not_blow_up() {
        assert_eq!(fi_of(&[0.0, 1.0]), 0.0);
        assert_eq!(hs_of(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn slowdown_is_ratio() {
        assert!((slowdown(2.0, 4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn slowdown_rejects_zero_alone() {
        let _ = slowdown(1.0, 0.0);
    }

    #[test]
    fn system_metrics_bundle() {
        let m = SystemMetrics::from_slowdowns(vec![0.6, 0.3]);
        assert!((m.ws - 0.9).abs() < 1e-12);
        assert!((m.fi - 0.5).abs() < 1e-12);
        assert!(m.hs > 0.3 && m.hs < 0.6);
    }

    #[test]
    fn gmean_of_constant_is_constant() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_is_between_min_and_max() {
        let g = gmean(&[1.0, 4.0]);
        assert!(g > 1.0 && g < 4.0);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ws_panics() {
        let _ = ws_of(&[]);
    }
}
