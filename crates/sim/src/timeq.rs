//! Hierarchical timing wheel for the event-driven engine.
//!
//! [`TimeQ`] tracks, for a fixed set of components, the next cycle at
//! which each one has scheduled work. The engine asks two questions per
//! iteration — "when is the next event?" ([`TimeQ::next_at`]) and "which
//! components are due now?" ([`TimeQ::advance`]) — and jumps the clock
//! between answers instead of polling every component every cycle.
//!
//! # Layout
//!
//! Four wheel levels of 64 slots each cover horizons of 64, 64², 64³ and
//! 64⁴ cycles ahead of the wheel's base time; anything farther sits in an
//! overflow list that is folded back in when the base crosses a level-3
//! window boundary. A slot holds `(component, time)` entries; per-level
//! `u64` occupancy bitmasks let [`TimeQ::advance`] skip empty runs of
//! slots with a couple of bit operations.
//!
//! # Lazy invalidation
//!
//! `when[c]` is the authoritative wake time of component `c`
//! ([`NEVER`] = unscheduled). Rescheduling does not search the wheel for
//! the old entry: it just overwrites `when[c]` and inserts a new entry,
//! leaving the old one *stale*. An entry `(c, t)` is valid iff
//! `when[c] == t`; stale entries are discarded when their slot is drained
//! or cascaded, and both [`TimeQ::next_at`] and [`TimeQ::advance`] check
//! validity, so a stale entry can never surface as a spurious or late
//! wake. Every *valid* entry is physically present in some slot (or the
//! far list), so `next_at` is exact, never late.
//!
//! # Allocation
//!
//! Slot vectors are drained with `mem::take` and handed back, so they
//! keep their high-water capacity: steady-state operation performs no
//! heap allocation (the perf_smoke bench pins allocations per cycle
//! across the whole engine).

/// Sentinel wake time meaning "not scheduled".
pub const NEVER: u64 = u64::MAX;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Entry {
    comp: u32,
    at: u64,
}

#[derive(Debug, Default)]
struct Level {
    /// Bit `s` set ⇔ `slots[s]` is non-empty (possibly only stale entries).
    occupied: u64,
    slots: Vec<Vec<Entry>>,
}

/// A hierarchical timing wheel over components `0..n`.
#[derive(Debug)]
pub struct TimeQ {
    /// The wheel's current time; every stored entry satisfies `at >= base`
    /// (entries at `base` are due).
    base: u64,
    /// Authoritative wake time per component ([`NEVER`] = unscheduled).
    when: Vec<u64>,
    levels: [Level; LEVELS],
    /// Entries more than `64^4` cycles ahead of `base` at insert time.
    far: Vec<Entry>,
    /// Components with `when != NEVER`.
    live: usize,
    /// Entries physically stored in slots + far (valid and stale).
    stored: usize,
}

impl TimeQ {
    /// Creates a wheel for `n` components, all unscheduled, with its base
    /// at cycle 0.
    pub fn new(n: usize) -> Self {
        let mk = || Level {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        };
        TimeQ {
            base: 0,
            when: vec![NEVER; n],
            levels: [mk(), mk(), mk(), mk()],
            far: Vec::new(),
            live: 0,
            stored: 0,
        }
    }

    /// Number of scheduled (live) components.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no component is scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The authoritative wake time of `comp` ([`NEVER`] = unscheduled).
    pub fn when(&self, comp: usize) -> u64 {
        self.when[comp]
    }

    /// Clears every schedule and rebases the wheel at `base` (capacity is
    /// retained). The engine calls this when a knob change invalidates all
    /// cached wake times.
    pub fn reset(&mut self, base: u64) {
        self.base = base;
        for w in &mut self.when {
            *w = NEVER;
        }
        for lv in &mut self.levels {
            if lv.occupied != 0 {
                for s in &mut lv.slots {
                    s.clear();
                }
                lv.occupied = 0;
            }
        }
        self.far.clear();
        self.live = 0;
        self.stored = 0;
    }

    /// Sets `comp`'s wake time to exactly `at`, replacing any previous
    /// schedule ([`NEVER`] unschedules). `at` must be `>= base`.
    pub fn schedule(&mut self, comp: usize, at: u64) {
        let old = self.when[comp];
        if old == at {
            return;
        }
        debug_assert!(
            at == NEVER || at >= self.base,
            "cannot schedule in the past"
        );
        match (old == NEVER, at == NEVER) {
            (true, false) => self.live += 1,
            (false, true) => self.live -= 1,
            _ => {}
        }
        self.when[comp] = at;
        if at != NEVER {
            self.insert(Entry {
                comp: comp as u32,
                at,
            });
        }
        // A replaced entry stays in its slot as stale and is discarded on
        // drain/cascade (validity check: `when[comp] == at`).
    }

    /// Moves `comp`'s wake time earlier to `at` if that improves it; a
    /// later `at` is ignored (the existing earlier wake stands).
    pub fn schedule_min(&mut self, comp: usize, at: u64) {
        if at < self.when[comp] {
            self.schedule(comp, at);
        }
    }

    /// Unschedules `comp`.
    pub fn cancel(&mut self, comp: usize) {
        self.schedule(comp, NEVER);
    }

    /// The earliest scheduled wake time, or [`NEVER`] when nothing is
    /// scheduled. Exact: every valid entry is stored, and stale entries
    /// are skipped by the validity check.
    pub fn next_at(&self) -> u64 {
        if self.live == 0 {
            return NEVER;
        }
        let mut next = NEVER;
        for lv in &self.levels {
            let mut occ = lv.occupied;
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                for e in &lv.slots[s] {
                    if self.when[e.comp as usize] == e.at {
                        next = next.min(e.at);
                    }
                }
            }
        }
        for e in &self.far {
            if self.when[e.comp as usize] == e.at {
                next = next.min(e.at);
            }
        }
        debug_assert_ne!(next, NEVER, "live > 0 but no valid entry stored");
        next
    }

    /// Advances the wheel's base to `now`, invoking `fire` once for every
    /// component whose valid wake time lies in `[base, now]` (in wheel
    /// order, not strictly time order within a single call) and marking it
    /// unscheduled. `now` must be `>= base`.
    pub fn advance(&mut self, now: u64, mut fire: impl FnMut(u32)) {
        debug_assert!(now >= self.base, "advance must move forward");
        if self.stored == 0 {
            self.base = now;
            return;
        }
        loop {
            let s = (self.base & 63) as usize;
            if self.levels[0].occupied >> s & 1 == 1 {
                self.drain_l0_slot(s, &mut fire);
            }
            if self.base == now {
                return;
            }
            // Jump to the next occupied level-0 slot in this 64-window, or
            // cross into the next window (cascading higher levels down).
            let later = if s == 63 {
                0
            } else {
                self.levels[0].occupied & (u64::MAX << (s + 1))
            };
            let window_last = self.base | 63;
            if later != 0 {
                let t = self.base + (later.trailing_zeros() as u64 - s as u64);
                if t <= now {
                    self.base = t;
                    continue;
                }
            }
            if window_last >= now {
                // No occupied slot in (base, now]; nothing more can fire.
                self.base = now;
                return;
            }
            self.base = window_last + 1;
            self.on_window_boundary();
            if self.stored == 0 {
                self.base = now;
                return;
            }
        }
    }

    /// Drains level-0 slot `s`: valid entries at the base fire; wrapped
    /// entries (a full ring ahead) are re-inserted; stale entries vanish.
    fn drain_l0_slot(&mut self, s: usize, fire: &mut impl FnMut(u32)) {
        let mut v = std::mem::take(&mut self.levels[0].slots[s]);
        self.levels[0].occupied &= !(1 << s);
        for e in v.drain(..) {
            self.stored -= 1;
            if self.when[e.comp as usize] != e.at {
                continue; // stale
            }
            if e.at <= self.base {
                self.when[e.comp as usize] = NEVER;
                self.live -= 1;
                fire(e.comp);
            } else {
                // Same slot index, next revolution: delta >= 64, so this
                // re-inserts into level 1+, never back into slot `s`.
                self.insert(e);
            }
        }
        self.levels[0].slots[s] = v;
    }

    /// Called when `base` just crossed onto a multiple of 64: pulls the
    /// matching higher-level slots down (highest level first, so entries
    /// cascade through at most one re-insert each).
    fn on_window_boundary(&mut self) {
        let b = self.base;
        debug_assert_eq!(b & 63, 0);
        if b & ((1 << (2 * SLOT_BITS)) - 1) == 0 {
            if b & ((1 << (3 * SLOT_BITS)) - 1) == 0 {
                if b & ((1 << (4 * SLOT_BITS)) - 1) == 0 {
                    let far = std::mem::take(&mut self.far);
                    self.stored -= far.len();
                    for e in far {
                        if self.when[e.comp as usize] == e.at {
                            self.insert(e);
                        }
                    }
                }
                self.cascade(3, ((b >> (3 * SLOT_BITS)) & 63) as usize);
            }
            self.cascade(2, ((b >> (2 * SLOT_BITS)) & 63) as usize);
        }
        self.cascade(1, ((b >> SLOT_BITS) & 63) as usize);
    }

    /// Re-inserts the valid entries of `slots[slot]` at `level` relative
    /// to the new base. An entry never lands back in the slot being
    /// cascaded (equal slot index at the same level implies a smaller
    /// delta, hence a lower level), so take-and-put-back is safe.
    fn cascade(&mut self, level: usize, slot: usize) {
        if self.levels[level].occupied >> slot & 1 == 0 {
            return;
        }
        let mut v = std::mem::take(&mut self.levels[level].slots[slot]);
        self.levels[level].occupied &= !(1 << slot);
        for e in v.drain(..) {
            self.stored -= 1;
            if self.when[e.comp as usize] == e.at {
                self.insert(e);
            }
        }
        self.levels[level].slots[slot] = v;
    }

    /// Stores an entry in the level selected by its distance from `base`.
    fn insert(&mut self, e: Entry) {
        debug_assert!(e.at >= self.base);
        let delta = e.at - self.base;
        let level = match delta {
            d if d < 1 << SLOT_BITS => 0,
            d if d < 1 << (2 * SLOT_BITS) => 1,
            d if d < 1 << (3 * SLOT_BITS) => 2,
            d if d < 1 << (4 * SLOT_BITS) => 3,
            _ => {
                self.far.push(e);
                self.stored += 1;
                return;
            }
        };
        let slot = ((e.at >> (level as u32 * SLOT_BITS)) & 63) as usize;
        self.levels[level].slots[slot].push(e);
        self.levels[level].occupied |= 1 << slot;
        self.stored += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference model: the authoritative `when` array alone.
    struct Naive {
        when: Vec<u64>,
    }

    impl Naive {
        fn new(n: usize) -> Self {
            Naive {
                when: vec![NEVER; n],
            }
        }
        fn schedule(&mut self, comp: usize, at: u64) {
            self.when[comp] = at;
        }
        fn schedule_min(&mut self, comp: usize, at: u64) {
            if at < self.when[comp] {
                self.when[comp] = at;
            }
        }
        fn next_at(&self) -> u64 {
            self.when.iter().copied().min().unwrap_or(NEVER)
        }
        fn advance(&mut self, now: u64) -> Vec<u32> {
            let mut fired: Vec<u32> = (0..self.when.len())
                .filter(|&c| self.when[c] <= now)
                .map(|c| c as u32)
                .collect();
            for &c in &fired {
                self.when[c as usize] = NEVER;
            }
            fired.sort_unstable();
            fired
        }
    }

    /// Splitmix64 — deterministic, dependency-free.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn empty_wheel_reports_never() {
        let q = TimeQ::new(4);
        assert!(q.is_empty());
        assert_eq!(q.next_at(), NEVER);
    }

    #[test]
    fn single_entry_fires_once_at_its_time() {
        let mut q = TimeQ::new(2);
        q.schedule(1, 17);
        assert_eq!(q.next_at(), 17);
        let mut fired = Vec::new();
        q.advance(16, |c| fired.push(c));
        assert!(fired.is_empty());
        q.advance(17, |c| fired.push(c));
        assert_eq!(fired, [1]);
        assert!(q.is_empty());
        assert_eq!(q.next_at(), NEVER);
    }

    #[test]
    fn fires_entry_scheduled_at_base() {
        let mut q = TimeQ::new(1);
        q.advance(100, |_| panic!("nothing scheduled"));
        q.schedule(0, 100);
        let mut fired = Vec::new();
        q.advance(100, |c| fired.push(c));
        assert_eq!(fired, [0]);
    }

    #[test]
    fn reschedule_moves_the_wake_and_stales_the_old_entry() {
        let mut q = TimeQ::new(1);
        q.schedule(0, 10);
        q.schedule(0, 500); // later: old slot entry goes stale
        assert_eq!(q.next_at(), 500);
        let mut fired = Vec::new();
        q.advance(499, |c| fired.push(c));
        assert!(fired.is_empty(), "stale entry at 10 must not fire");
        q.advance(500, |c| fired.push(c));
        assert_eq!(fired, [0]);
    }

    #[test]
    fn schedule_min_only_improves() {
        let mut q = TimeQ::new(1);
        q.schedule(0, 100);
        q.schedule_min(0, 200);
        assert_eq!(q.next_at(), 100);
        q.schedule_min(0, 40);
        assert_eq!(q.next_at(), 40);
    }

    #[test]
    fn cancel_unschedules() {
        let mut q = TimeQ::new(2);
        q.schedule(0, 64);
        q.schedule(1, 70);
        q.cancel(0);
        assert_eq!(q.len(), 1);
        let mut fired = Vec::new();
        q.advance(1000, |c| fired.push(c));
        assert_eq!(fired, [1]);
    }

    #[test]
    fn level0_ring_wrap_within_one_window() {
        // base = 62, wake at 65: slot index 1 < base's slot 62 — the entry
        // wraps within level 0 and must still fire exactly at 65.
        let mut q = TimeQ::new(1);
        q.advance(62, |_| unreachable!());
        q.schedule(0, 65);
        assert_eq!(q.next_at(), 65);
        let mut fired = Vec::new();
        q.advance(64, |c| fired.push(c));
        assert!(fired.is_empty());
        q.advance(65, |c| fired.push(c));
        assert_eq!(fired, [0]);
    }

    #[test]
    fn far_horizon_entries_survive_cascades() {
        let mut q = TimeQ::new(3);
        let far = (1 << 24) + 12_345; // beyond all four levels
        q.schedule(0, far);
        q.schedule(1, 1 << 13); // level 2
        q.schedule(2, 1 << 19); // level 3
        assert_eq!(q.next_at(), 1 << 13);
        let mut fired = Vec::new();
        q.advance(far, |c| fired.push(c));
        assert_eq!(fired.len(), 3);
        assert_eq!(q.next_at(), NEVER);
    }

    #[test]
    fn reset_clears_everything_and_rebases() {
        let mut q = TimeQ::new(2);
        q.schedule(0, 5);
        q.schedule(1, 9_999_999);
        q.reset(1000);
        assert!(q.is_empty());
        assert_eq!(q.next_at(), NEVER);
        q.schedule(0, 1001);
        let mut fired = Vec::new();
        q.advance(2000, |c| fired.push(c));
        assert_eq!(fired, [0]);
    }

    #[test]
    fn differential_vs_naive_model() {
        // Random schedules, reschedules, cancels and jumps, checked
        // against the authoritative-array model at every step.
        let mut rng = Rng(0x0007_157E_0E57);
        for _trial in 0..20 {
            let n = 1 + rng.below(12) as usize;
            let mut q = TimeQ::new(n);
            let mut m = Naive::new(n);
            let mut now = 0u64;
            for _op in 0..400 {
                match rng.below(10) {
                    0..=4 => {
                        let c = rng.below(n as u64) as usize;
                        // Mix of near, mid, far and very far horizons.
                        let d = match rng.below(4) {
                            0 => rng.below(64),
                            1 => rng.below(1 << 12),
                            2 => rng.below(1 << 18),
                            _ => rng.below(1 << 25),
                        };
                        q.schedule(c, now + d);
                        m.schedule(c, now + d);
                    }
                    5 => {
                        let c = rng.below(n as u64) as usize;
                        let d = rng.below(1 << 12);
                        q.schedule_min(c, now + d);
                        m.schedule_min(c, now + d);
                    }
                    6 => {
                        let c = rng.below(n as u64) as usize;
                        q.cancel(c);
                        m.schedule(c, NEVER);
                    }
                    _ => {
                        let d = match rng.below(3) {
                            0 => rng.below(8),
                            1 => rng.below(1 << 10),
                            _ => rng.below(1 << 20),
                        };
                        now += d;
                        let mut fired = Vec::new();
                        q.advance(now, |c| fired.push(c));
                        fired.sort_unstable();
                        assert_eq!(fired, m.advance(now), "fire set diverged");
                    }
                }
                assert_eq!(q.next_at(), m.next_at(), "next_at diverged");
                assert_eq!(
                    q.len(),
                    m.when.iter().filter(|&&w| w != NEVER).count(),
                    "live count diverged"
                );
            }
        }
    }
}
