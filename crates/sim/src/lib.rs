//! Multi-application GPU simulator.
//!
//! Ties the substrate crates together into the machine of §II-A: each
//! co-scheduled application runs on an exclusive, equal set of SIMT cores
//! ([`machine::Gpu`]), all cores share the crossbar, the L2 slices and the
//! GDDR5 channels. On top of the machine this crate provides:
//!
//! * [`metrics`] — the SD-based system metrics of Table III (WS, FI, HS);
//! * [`alone`] — alone-run profiling across the TLP ladder, producing each
//!   application's `bestTLP`, `IPC@bestTLP` and `EB@bestTLP` (Table IV);
//! * [`control`] — the controller interface TLP-management policies
//!   implement (the paper's PBS and the baselines live in `ebm-core`);
//! * [`harness`] — fixed-combination measurement and controlled runs with
//!   windowed sampling and the Fig. 8 relay latency;
//! * [`exec`] — a scoped-thread fan-out layer ([`exec::par_map`]) for the
//!   independent simulations of sweeps, profiles and campaigns, plus the
//!   `EBM_SIM_THREADS` resolution ([`exec::sim_worker_count`]) for the
//!   machine's *intra*-simulation domain workers (docs/PARALLELISM.md);
//! * [`cache`] — content-addressed memoization of deterministic results:
//!   a stable 128-bit fingerprint of each simulation's inputs keys an
//!   in-process registry plus a persistent on-disk store
//!   (`EBM_CACHE_DIR`), with versioned invalidation ([`cache::ENGINE_VERSION`])
//!   and a verify mode that re-simulates sampled hits;
//! * [`timeq`] — the hierarchical timing wheel the event-driven engine
//!   schedules per-component wake times into ([`timeq::TimeQ`]);
//! * [`trace`] — the structured, zero-cost-when-disabled observability
//!   layer: typed events ([`trace::TraceEvent`]) emitted at every sampling
//!   window, received by pluggable [`trace::TraceSink`]s (in-memory ring,
//!   JSONL file). `docs/TRACE_SCHEMA.md` documents the serialized contract;
//! * [`counters`] — the process-global telemetry bus: named atomic
//!   counters/gauges (`cache.*`, `engine.*`, `sched.*`) every substrate
//!   layer publishes into, one relaxed load + untaken branch when
//!   recording is off (docs/OBSERVABILITY.md).

#![deny(missing_docs)]

pub mod alone;
pub mod cache;
pub mod control;
pub mod counters;
pub(crate) mod domain;
pub mod exec;
pub mod harness;
pub mod machine;
pub mod metrics;
pub mod timeq;
pub mod trace;

pub use alone::{profile_alone, profile_alone_with_threads, AloneProfile, AloneSample};
pub use cache::{CacheStats, DiskStore, KeyBuilder, ENGINE_VERSION};
pub use control::{Controller, Decision, Observation};
pub use exec::{par_map, par_map_with, worker_count};
pub use harness::{
    measure_fixed, measure_fixed_cached, run_controlled, run_controlled_traced, ControlledRun,
    FixedRunInputs, RunSpec,
};
pub use machine::Gpu;
pub use metrics::{fi_of, hs_of, ws_of, MetricsRegistry, SystemMetrics};
pub use trace::{JsonlSink, NullSink, RingSink, TraceEvent, TraceSink};
