//! Developer utility: measures every application model's alone
//! characteristics and prints them sorted by effective bandwidth — the tool
//! used to assign the G1–G4 groups in `gpu-workloads` (see DESIGN.md §6).

use gpu_sim::{profile_alone, RunSpec};
use gpu_types::GpuConfig;
use gpu_workloads::all_apps;

fn main() {
    let cfg = GpuConfig::paper();
    let mut rows = Vec::new();
    for app in all_apps() {
        let p = profile_alone(&cfg, app, 8, 5, RunSpec::new(20_000, 40_000));
        let b = p.best();
        rows.push((app.name, app.group, b.tlp.get(), b.ipc, b.eb, b.bw, b.cmr));
        eprint!(".");
    }
    eprintln!();
    rows.sort_by(|a, b| a.4.total_cmp(&b.4));
    println!(
        "{:<6} {:<4} {:>5} {:>7} {:>6} {:>6} {:>6}",
        "app", "grp", "bTLP", "IPC", "EB", "BW", "CMR"
    );
    for (n, g, t, ipc, eb, bw, cmr) in rows {
        println!("{n:<6} {g:<4?} {t:>5} {ipc:>7.3} {eb:>6.3} {bw:>6.3} {cmr:>6.3}");
    }
}
