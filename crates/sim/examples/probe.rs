//! Developer utility: alone-run TLP profiles for selected applications on
//! the paper machine (`cargo run -p gpu-sim --example probe --release -- BFS BLK`).
//! The user-facing equivalent lives in the workspace root: `tlp_sweep`.

use gpu_sim::{profile_alone, RunSpec};
use gpu_types::GpuConfig;
use gpu_workloads::all_apps;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let names: Vec<&str> = if args.len() > 1 {
        args[1..].iter().map(|s| s.as_str()).collect()
    } else {
        vec!["BLK", "BFS", "TRD", "GUPS", "LUD"]
    };
    let cfg = GpuConfig::paper();
    for name in names {
        let app = all_apps().iter().find(|a| a.name == name).unwrap();
        let t0 = std::time::Instant::now();
        let p = profile_alone(&cfg, app, 8, 5, RunSpec::new(20_000, 40_000));
        println!("== {name}  ({:?})", t0.elapsed());
        for s in &p.samples {
            println!(
                "  tlp={:<3} ipc={:.3} bw={:.3} cmr={:.3} eb={:.3} l1mr={:.2} l2mr={:.2}",
                s.tlp.get(),
                s.ipc,
                s.bw,
                s.cmr,
                s.eb,
                s.l1_miss_rate,
                s.l2_miss_rate
            );
        }
        println!(
            "  bestTLP={} ipc@best={:.3} eb@best={:.3}",
            p.best_tlp(),
            p.ipc_at_best(),
            p.eb_at_best()
        );
    }
}
