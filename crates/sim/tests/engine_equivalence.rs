//! Differential tests pinning the optimized engine to the naive reference.
//!
//! The optimized engine (drain-into/callback component APIs, reused scratch
//! buffers, core sleep states and whole-machine quiescence fast-forwarding)
//! must be *bit-for-bit* identical to the naive cycle-by-cycle reference
//! engine, which steps every component every cycle with the original
//! `Vec`-returning APIs and never skips. These tests run both engines over
//! randomized configurations, workload pairs and mid-run knob changes
//! (driven by the in-repo [`SplitMix64`], so failures reproduce exactly)
//! and compare every observable output: the clock, per-app [`MemCounters`]
//! (full and designated-sampled), per-app [`CoreStats`], controlled-run
//! results and the structured trace event stream.

use gpu_sim::control::{Controller, Decision, Observation};
use gpu_sim::harness::run_controlled_traced;
use gpu_sim::machine::Gpu;
use gpu_sim::trace::{RingSink, TraceEvent};
use gpu_simt::CoreStats;
use gpu_types::{AppId, GpuConfig, MemCounters, SplitMix64, TlpLevel};
use gpu_workloads::{all_apps, Workload};

/// A randomized small machine: both returned [`Gpu`]s are identically
/// constructed; the caller flips one into reference mode.
fn random_pair(rng: &mut SplitMix64) -> (Gpu, Gpu) {
    let mut cfg = GpuConfig::small();
    // Structural variation, kept within the divisibility constraints
    // (cores split evenly across two apps, warps across schedulers).
    cfg.n_cores = [2, 4, 6][rng.next_below(3) as usize];
    cfg.warps_per_core = [8, 16][rng.next_below(2) as usize];
    cfg.n_partitions = [1, 2, 4][rng.next_below(3) as usize];
    cfg.xbar_latency = 1 + rng.next_below(7) as u32;
    cfg.xbar_requests_per_cycle = 1 + rng.next_below(2) as usize;
    cfg.l1.hit_latency = 1 + rng.next_below(4) as u32;
    cfg.sampling.designated = rng.next_below(2) == 0;
    let apps = all_apps();
    let a = rng.next_below(apps.len() as u64) as usize;
    let b = rng.next_below(apps.len() as u64) as usize;
    let seed = rng.next_below(1 << 20);
    let build = || Gpu::new(&cfg, &[&apps[a], &apps[b]], seed);
    (build(), build())
}

fn snapshot(gpu: &Gpu) -> (u64, Vec<MemCounters>, Vec<MemCounters>, Vec<CoreStats>) {
    let apps = 0..gpu.n_apps();
    (
        gpu.now(),
        apps.clone()
            .map(|a| gpu.counters(AppId::new(a as u8)))
            .collect(),
        apps.clone()
            .map(|a| gpu.designated_counters(AppId::new(a as u8)))
            .collect(),
        apps.map(|a| gpu.core_stats(AppId::new(a as u8))).collect(),
    )
}

fn assert_machines_equal(opt: &Gpu, reference: &Gpu, ctx: &str) {
    assert_eq!(
        snapshot(opt),
        snapshot(reference),
        "{ctx}: engines diverged"
    );
}

/// Optimized and reference engines agree over randomized machines and
/// uneven run spans, with no mid-run reconfiguration.
#[test]
fn random_machines_agree_cycle_for_cycle() {
    let mut rng = SplitMix64::new(0xE961_7E57);
    for trial in 0..8 {
        let (mut opt, mut reference) = random_pair(&mut rng);
        reference.set_reference_engine(true);
        for leg in 0..6 {
            // Ragged span lengths exercise fast-forward truncation at span
            // ends as well as mid-span wake-ups.
            let span = 1 + rng.next_below(700);
            opt.run(span);
            reference.run(span);
            assert_machines_equal(&opt, &reference, &format!("trial {trial} leg {leg}"));
        }
    }
}

/// Agreement holds across mid-run TLP, L1-bypass and CCWS changes — the
/// knobs that invalidate core sleep states.
#[test]
fn random_knob_changes_preserve_agreement() {
    let mut rng = SplitMix64::new(0xE961_7E58);
    for trial in 0..6 {
        let (mut opt, mut reference) = random_pair(&mut rng);
        reference.set_reference_engine(true);
        for leg in 0..8 {
            let app = AppId::new(rng.next_below(2) as u8);
            match rng.next_below(4) {
                0 => {
                    let lvl = TlpLevel::new(1 + rng.next_below(16) as u32).unwrap();
                    opt.set_tlp(app, lvl);
                    reference.set_tlp(app, lvl);
                }
                1 => {
                    let bypass = rng.next_below(2) == 0;
                    opt.set_bypass_l1(app, bypass);
                    reference.set_bypass_l1(app, bypass);
                }
                2 => {
                    let on = rng.next_below(2) == 0;
                    opt.set_ccws(app, on);
                    reference.set_ccws(app, on);
                }
                _ => {}
            }
            let span = 1 + rng.next_below(500);
            opt.run(span);
            reference.run(span);
            assert_machines_equal(&opt, &reference, &format!("trial {trial} leg {leg}"));
        }
    }
}

/// CCWS cores never sleep; a machine running CCWS from cycle zero must
/// still match the reference exactly.
#[test]
fn ccws_machines_agree() {
    let mut rng = SplitMix64::new(0xE961_7E59);
    let (mut opt, mut reference) = random_pair(&mut rng);
    reference.set_reference_engine(true);
    for gpu in [&mut opt, &mut reference] {
        gpu.set_ccws(AppId::new(0), true);
        gpu.set_ccws(AppId::new(1), true);
    }
    opt.run(3_000);
    reference.run(3_000);
    assert_machines_equal(&opt, &reference, "ccws");
}

struct FlipFlop(bool);
impl Controller for FlipFlop {
    fn on_window(&mut self, obs: &Observation) -> Decision {
        self.0 = !self.0;
        let lvl = if self.0 {
            TlpLevel::MIN
        } else {
            TlpLevel::new(8).unwrap()
        };
        Decision::set_all(&vec![lvl; obs.apps.len()])
    }
    fn name(&self) -> &str {
        "flipflop"
    }
}

/// A traced controlled run produces the identical event stream and results
/// on both engines: tracing must observe fast-forwarded time exactly as if
/// every cycle had been stepped.
#[test]
fn traced_controlled_runs_emit_identical_event_streams() {
    let mut rng = SplitMix64::new(0xE961_7E5A);
    for trial in 0..4 {
        let (mut opt, mut reference) = random_pair(&mut rng);
        reference.set_reference_engine(true);
        let window = opt.config().sampling.window_cycles;
        let total = window * 3 + 171;
        let mut sink_opt = RingSink::new(1 << 14);
        let mut sink_ref = RingSink::new(1 << 14);
        let run_opt =
            run_controlled_traced(&mut opt, &mut FlipFlop(false), total, 0, &mut sink_opt);
        let run_ref = run_controlled_traced(
            &mut reference,
            &mut FlipFlop(false),
            total,
            0,
            &mut sink_ref,
        );
        assert_eq!(
            run_opt.n_windows, run_ref.n_windows,
            "trial {trial}: window counts differ"
        );
        assert_eq!(
            run_opt.tlp_trace, run_ref.tlp_trace,
            "trial {trial}: TLP traces differ"
        );
        for (a, b) in run_opt.overall.iter().zip(&run_ref.overall) {
            assert_eq!(a.counters, b.counters, "trial {trial}: overall differs");
            assert_eq!(a.cycles, b.cycles, "trial {trial}: spans differ");
        }
        assert_eq!(sink_opt.dropped(), 0, "ring sink overflowed");
        // The aggregate metrics_window records carry engine *diagnostics*
        // (fast-forward / idle-skip fractions) that legitimately differ:
        // the reference engine never skips, so it reports 0 where the
        // event engine reports > 0. Blank them before comparing — every
        // simulation-state field must still match exactly.
        let scrub = |events: &std::collections::VecDeque<TraceEvent>| -> Vec<TraceEvent> {
            events
                .iter()
                .cloned()
                .map(|mut e| {
                    if let TraceEvent::MetricsWindow {
                        machine_fast_forward_fraction,
                        component_idle_skip_fraction,
                        ..
                    } = &mut e
                    {
                        *machine_fast_forward_fraction = None;
                        *component_idle_skip_fraction = None;
                    }
                    e
                })
                .collect()
        };
        assert_eq!(
            scrub(sink_opt.events()),
            scrub(sink_ref.events()),
            "trial {trial}: traced event streams differ"
        );
        assert_machines_equal(&opt, &reference, &format!("trial {trial} post-run"));
    }
}

/// The flagship memory-bound co-run (BLK + TRD, both DRAM-saturating
/// streams) on the event engine: cores spend most cycles struct-stalled
/// behind egress/MSHR back-pressure and sleep through them while the
/// machine drains their egress queues, so this pins the drain-while-asleep
/// path against the reference over ragged spans and TLP throttling.
#[test]
fn memory_bound_corun_agrees_cycle_for_cycle() {
    let mut rng = SplitMix64::new(0xE961_7E5B);
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "TRD");
    let build = || Gpu::new(&cfg, w.apps(), 42);
    let (mut opt, mut reference) = (build(), build());
    reference.set_reference_engine(true);
    for gpu in [&mut opt, &mut reference] {
        gpu.set_tlp(AppId::new(0), TlpLevel::new(8).unwrap());
        gpu.set_tlp(AppId::new(1), TlpLevel::new(8).unwrap());
    }
    for leg in 0..8 {
        let span = 1 + rng.next_below(2_000);
        opt.run(span);
        reference.run(span);
        assert_machines_equal(&opt, &reference, &format!("mem-bound leg {leg}"));
        // Occasionally throttle one app hard, the paper's actual control
        // action, to move the DRAM bottleneck mid-run.
        if leg % 3 == 2 {
            let lvl = TlpLevel::new(1 + rng.next_below(8) as u32).unwrap();
            opt.set_tlp(AppId::new(1), lvl);
            reference.set_tlp(AppId::new(1), lvl);
        }
    }
}

/// Knob changes landing exactly at event boundaries: legs are short and
/// ragged (often shorter than sleep horizons), so spans routinely end with
/// cores mid-sleep and the next leg begins with a knob change that
/// invalidates the scheduled wake. Manual single `step()` calls are mixed
/// in — they bypass the timing wheel entirely and must leave the lazy
/// credit bookkeeping exact (a `step(); run()` sequence once double-credited
/// skipped cycles).
#[test]
fn knob_changes_at_event_boundaries_preserve_agreement() {
    let mut rng = SplitMix64::new(0xE961_7E5C);
    for trial in 0..6 {
        let (mut opt, mut reference) = random_pair(&mut rng);
        reference.set_reference_engine(true);
        for leg in 0..24 {
            match rng.next_below(5) {
                0 => {
                    let app = AppId::new(rng.next_below(2) as u8);
                    let lvl = TlpLevel::new(1 + rng.next_below(16) as u32).unwrap();
                    opt.set_tlp(app, lvl);
                    reference.set_tlp(app, lvl);
                }
                1 => {
                    let app = AppId::new(rng.next_below(2) as u8);
                    let bypass = rng.next_below(2) == 0;
                    opt.set_bypass_l1(app, bypass);
                    reference.set_bypass_l1(app, bypass);
                }
                2 => {
                    let steps = 1 + rng.next_below(3);
                    for _ in 0..steps {
                        opt.step();
                        reference.step();
                    }
                }
                _ => {}
            }
            let span = 1 + rng.next_below(50);
            opt.run(span);
            reference.run(span);
            assert_machines_equal(&opt, &reference, &format!("trial {trial} leg {leg}"));
        }
    }
}

/// On a DRAM-stalled co-run the event engine must actually skip most
/// component-steps — otherwise the per-component skip machinery (and the
/// BENCH_engine.json speedup it buys) would be vacuous. Cores dominate the
/// component population and sleep through egress/MSHR back-pressure, so
/// well over half of all component×cycle slots go unstepped.
#[test]
fn event_engine_skips_majority_of_component_steps_when_dram_stalled() {
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "TRD");
    let mut gpu = Gpu::new(&cfg, w.apps(), 42);
    gpu.set_tlp(AppId::new(0), TlpLevel::new(8).unwrap());
    gpu.set_tlp(AppId::new(1), TlpLevel::new(8).unwrap());
    gpu.run(20_000);
    let s = gpu.engine_stats();
    let stepped = s.core_steps + s.partition_steps + s.xbar_steps;
    let skipped = s.core_steps_skipped + s.partition_steps_skipped + s.xbar_steps_skipped;
    let frac = skipped as f64 / (stepped + skipped) as f64;
    assert!(
        frac > 0.5,
        "expected most component-steps skipped on a DRAM-stalled co-run, got {frac:.3} \
         ({stepped} stepped, {skipped} skipped)"
    );
    assert!(
        s.core_steps_skipped > 0 && s.partition_steps_skipped > 0 && s.xbar_steps_skipped > 0,
        "every component class should contribute skips: {s:?}"
    );
}

/// The domain-parallel engine (`Gpu::set_sim_threads` > 1) against the
/// naive reference, over randomized machines, worker counts and ragged
/// spans: intra-simulation parallelism must be invisible in every
/// observable output, whatever the domain decomposition.
#[test]
fn random_machines_agree_for_every_sim_thread_count() {
    let mut rng = SplitMix64::new(0xE961_7E5D);
    for trial in 0..6 {
        let (mut par, mut reference) = random_pair(&mut rng);
        let threads = [2, 4, 7][rng.next_below(3) as usize];
        par.set_sim_threads(threads);
        reference.set_reference_engine(true);
        for leg in 0..4 {
            let span = 1 + rng.next_below(600);
            par.run(span);
            reference.run(span);
            assert_machines_equal(
                &par,
                &reference,
                &format!("trial {trial} leg {leg} at {threads} sim threads"),
            );
        }
    }
}

/// The flagship memory-bound co-run at every interesting intra-sim worker
/// count at once: the serial event engine and 2/4/7-worker machines must
/// stay byte-identical leg for leg — including the engine's own step/skip
/// accounting — across ragged spans and mid-run TLP throttles.
#[test]
fn memory_bound_corun_is_byte_identical_across_sim_thread_counts() {
    let mut rng = SplitMix64::new(0xE961_7E5E);
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "TRD");
    let build = |threads: usize| {
        let mut g = Gpu::new(&cfg, w.apps(), 42);
        g.set_sim_threads(threads);
        g.set_tlp(AppId::new(0), TlpLevel::new(8).unwrap());
        g.set_tlp(AppId::new(1), TlpLevel::new(8).unwrap());
        g
    };
    let mut serial = build(1);
    let mut parallel: Vec<Gpu> = [2, 4, 7].iter().map(|&t| build(t)).collect();
    for leg in 0..6 {
        let span = 1 + rng.next_below(1_000);
        serial.run(span);
        for m in &mut parallel {
            m.run(span);
        }
        for (i, m) in parallel.iter().enumerate() {
            assert_machines_equal(m, &serial, &format!("mem-bound leg {leg} machine {i}"));
            assert_eq!(
                m.engine_stats().sans_sync(),
                serial.engine_stats().sans_sync(),
                "leg {leg} machine {i}: engine accounting diverged"
            );
        }
        // The synchronization schedule itself is deterministic: the window
        // sequence depends only on machine-wide next-event times, which are
        // partition-independent, so every worker count must report the
        // same sync_points / windows / window_cycles.
        let sync = parallel[0].engine_stats();
        for (i, m) in parallel.iter().enumerate().skip(1) {
            assert_eq!(
                m.engine_stats(),
                sync,
                "leg {leg} machine {i}: sync accounting diverged across worker counts"
            );
        }
        // Mid-run TLP throttles and L1-bypass flips end the run span —
        // each is a forced window flush the engines must agree across.
        if leg % 3 == 2 {
            let lvl = TlpLevel::new(1 + rng.next_below(8) as u32).unwrap();
            serial.set_tlp(AppId::new(1), lvl);
            for m in &mut parallel {
                m.set_tlp(AppId::new(1), lvl);
            }
        }
        if leg % 2 == 1 {
            let bypass = rng.next_below(2) == 0;
            serial.set_bypass_l1(AppId::new(0), bypass);
            for m in &mut parallel {
                m.set_bypass_l1(AppId::new(0), bypass);
            }
        }
    }
    // The whole point of windowed synchronization on a memory-bound co-run:
    // each barrier crossing covers more than one simulated cycle.
    let sync = parallel[0].engine_stats();
    assert!(
        sync.windows > 0 && sync.mean_window_cycles() > 1.0,
        "memory-bound co-run must amortize barriers across windows: {sync:?}"
    );
    assert_eq!(
        serial.engine_stats().sync_points,
        0,
        "the serial engine never synchronizes"
    );
}

/// Heavy congestion at the minimum crossbar latency: lookahead 1 pins
/// every window to a single cycle (the windowed engine's degenerate
/// worst case), and the results must still be byte-identical to serial.
#[test]
fn unit_latency_congestion_drives_windows_to_one_cycle() {
    let mut rng = SplitMix64::new(0xE961_7E60);
    let mut cfg = GpuConfig::small();
    cfg.xbar_latency = 1;
    let w = Workload::pair("BLK", "TRD");
    let build = |threads: usize| {
        let mut g = Gpu::new(&cfg, w.apps(), 42);
        g.set_sim_threads(threads);
        g.set_tlp(AppId::new(0), TlpLevel::new(8).unwrap());
        g.set_tlp(AppId::new(1), TlpLevel::new(8).unwrap());
        g
    };
    let mut serial = build(1);
    let mut parallel: Vec<Gpu> = [2, 4, 7].iter().map(|&t| build(t)).collect();
    for leg in 0..4 {
        let span = 1 + rng.next_below(1_200);
        serial.run(span);
        for (i, m) in parallel.iter_mut().enumerate() {
            m.run(span);
            assert_machines_equal(m, &serial, &format!("congested leg {leg} machine {i}"));
        }
    }
    let s = parallel[0].engine_stats();
    assert_eq!(s.sans_sync(), serial.engine_stats().sans_sync());
    assert_eq!(
        s.windows, s.window_cycles,
        "a 1-cycle lookahead pins every window to one cycle: {s:?}"
    );
    assert!(s.windows > 0 && s.mean_window_cycles() == 1.0);
}

/// The lookahead window tracks the crossbar latency: every latency from 1
/// to 8 must agree with serial at multiple worker counts, with mean window
/// length never exceeding the lookahead.
#[test]
fn every_crossbar_latency_agrees_across_sim_thread_counts() {
    let mut rng = SplitMix64::new(0xE961_7E61);
    for lat in 1..=8u32 {
        let mut cfg = GpuConfig::small();
        cfg.xbar_latency = lat;
        let w = Workload::pair("BLK", "TRD");
        let build = |threads: usize| {
            let mut g = Gpu::new(&cfg, w.apps(), 7 + lat as u64);
            g.set_sim_threads(threads);
            g
        };
        let mut serial = build(1);
        let mut parallel: Vec<Gpu> = [2, 7].iter().map(|&t| build(t)).collect();
        for leg in 0..3 {
            if leg == 1 {
                let lvl = TlpLevel::new(1 + rng.next_below(8) as u32).unwrap();
                serial.set_tlp(AppId::new(0), lvl);
                serial.set_bypass_l1(AppId::new(1), true);
                for m in &mut parallel {
                    m.set_tlp(AppId::new(0), lvl);
                    m.set_bypass_l1(AppId::new(1), true);
                }
            }
            let span = 1 + rng.next_below(900);
            serial.run(span);
            for (i, m) in parallel.iter_mut().enumerate() {
                m.run(span);
                assert_machines_equal(m, &serial, &format!("latency {lat} leg {leg} machine {i}"));
            }
        }
        for m in &parallel {
            let s = m.engine_stats();
            assert_eq!(s.sans_sync(), serial.engine_stats().sans_sync());
            assert!(
                s.mean_window_cycles() <= f64::from(lat),
                "latency {lat}: windows cannot exceed the lookahead: {s:?}"
            );
        }
    }
}

/// Traced controlled runs — the controller changing knobs at every window
/// boundary — must be *fully* byte-identical between the serial and
/// domain-parallel engines, with no diagnostic scrubbing: unlike the
/// reference comparison above, both sides are the same event engine, so
/// even the fast-forward / idle-skip fractions must match exactly.
///
/// The one exception is `domain_window`: it reports on the domain workers
/// themselves (sync windows, per-domain step counts), which only exist on
/// the parallel engine, so it is excluded from the comparison — and the
/// serial stream must carry none at all.
#[test]
fn traced_controlled_runs_identical_serial_vs_domain_parallel() {
    let mut rng = SplitMix64::new(0xE961_7E5F);
    for trial in 0..3 {
        let (mut par, mut serial) = random_pair(&mut rng);
        let threads = [2, 4, 7][rng.next_below(3) as usize];
        par.set_sim_threads(threads);
        serial.set_sim_threads(1);
        let window = serial.config().sampling.window_cycles;
        let total = window * 3 + 89;
        let mut sink_par = RingSink::new(1 << 14);
        let mut sink_ser = RingSink::new(1 << 14);
        let run_par =
            run_controlled_traced(&mut par, &mut FlipFlop(false), total, 0, &mut sink_par);
        let run_ser =
            run_controlled_traced(&mut serial, &mut FlipFlop(false), total, 0, &mut sink_ser);
        assert_eq!(
            run_par.tlp_trace, run_ser.tlp_trace,
            "trial {trial}: TLP traces differ at {threads} sim threads"
        );
        for (a, b) in run_par.overall.iter().zip(&run_ser.overall) {
            assert_eq!(a.counters, b.counters, "trial {trial}: overall differs");
            assert_eq!(a.cycles, b.cycles, "trial {trial}: spans differ");
        }
        assert_eq!(sink_par.dropped(), 0, "ring sink overflowed");
        let not_domain = |e: &&TraceEvent| !matches!(e, TraceEvent::DomainWindow { .. });
        assert!(
            sink_ser.events().iter().all(|e| not_domain(&e)),
            "trial {trial}: serial engine must not emit domain_window"
        );
        assert_eq!(
            sink_par
                .events()
                .iter()
                .filter(not_domain)
                .collect::<Vec<_>>(),
            sink_ser
                .events()
                .iter()
                .filter(not_domain)
                .collect::<Vec<_>>(),
            "trial {trial}: traced event streams differ at {threads} sim threads"
        );
        assert_machines_equal(&par, &serial, &format!("trial {trial} post-run"));
    }
}

/// The fast-forward path actually engages — otherwise the equivalence
/// above would be vacuous. Whole-machine quiescence needs every core
/// asleep *and* the memory system event-free at once, so the test uses the
/// most compute-bound app (NW: 5% memory, 4-cycle ALU) at minimum TLP,
/// where multi-cycle ALU bubbles drain the machine completely. It then
/// pins that a fast-forwarded run matches the reference bit-for-bit.
#[test]
fn fast_forward_engages_on_quiescent_stretches() {
    let apps = all_apps();
    let nw = apps
        .iter()
        .find(|p| p.name == "NW")
        .expect("NW profile exists");
    let cfg = GpuConfig::small();
    let build = || Gpu::new(&cfg, &[nw, nw], 11);
    let (mut opt, mut reference) = (build(), build());
    reference.set_reference_engine(true);
    for gpu in [&mut opt, &mut reference] {
        gpu.set_tlp(AppId::new(0), TlpLevel::MIN);
        gpu.set_tlp(AppId::new(1), TlpLevel::MIN);
        gpu.run(20_000);
    }
    let stats = opt.engine_stats();
    assert_eq!(stats.stepped + stats.fast_forwarded, 20_000);
    assert!(
        stats.fast_forwarded > 0,
        "compute-bound machine at minimum TLP never fast-forwarded"
    );
    assert_eq!(
        reference.engine_stats().fast_forwarded,
        0,
        "reference engine must never skip"
    );
    assert_machines_equal(&opt, &reference, "fast-forwarded run");
}
