//! Cache-layer regression tests: golden-fingerprint stability, on-disk
//! store corruption recovery and concurrent writers.
//!
//! These tests drive [`gpu_sim::cache::DiskStore`] and the fingerprint
//! primitives directly; none of them touch the process-global cache
//! configuration, so they can share a binary with anything.

use gpu_sim::cache::{DiskStore, KeyBuilder, ENGINE_VERSION};
use gpu_sim::harness::RunSpec;
use gpu_types::canon::{fingerprint, Fingerprint};
use gpu_types::GpuConfig;
use gpu_workloads::by_name;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ebm_cache_store_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pins the `(ENGINE_VERSION, canonical encoding, hash)` triple for a fixed
/// representative key. If this value drifts, previously written cache
/// directories silently stop matching — which is only correct when
/// [`ENGINE_VERSION`] was bumped deliberately. When you bump the version
/// (or deliberately change a `Canon` impl), recompute the constant and
/// update it in the same commit.
#[test]
fn golden_fingerprint_is_stable() {
    assert_eq!(ENGINE_VERSION, 1, "update the golden hash with the bump");
    let mut key = KeyBuilder::new("golden");
    key.push(&GpuConfig::small())
        .push(by_name("BLK").expect("known app"))
        .push_u64(42)
        .push(&RunSpec::new(500, 2_000));
    assert_eq!(
        key.finish().to_hex(),
        "ef3b8709a682acbf52082aedef130585",
        "canonical encoding or hash changed: bump ENGINE_VERSION and update \
         this constant in the same commit"
    );
}

/// The raw byte hash itself is pinned independently of any `Canon` impl.
#[test]
fn raw_fingerprint_is_stable() {
    assert_eq!(
        fingerprint(b"ebm").to_hex(),
        "3413c7bd2546ed18c253f12d0d71e3c7"
    );
}

#[test]
fn fingerprints_differ_across_kinds_and_inputs() {
    let base = KeyBuilder::new("alone").push_u64(1).finish();
    assert_ne!(base, KeyBuilder::new("sweep").push_u64(1).finish());
    assert_ne!(base, KeyBuilder::new("alone").push_u64(2).finish());
    assert_eq!(base, KeyBuilder::new("alone").push_u64(1).finish());
}

#[test]
fn corrupt_records_are_misses_and_rewritable() {
    let dir = temp_dir("corrupt");
    let store = DiskStore::new(&dir);
    let fp = Fingerprint(0xABCD);
    let payload = b"simulation result bytes".to_vec();
    assert!(store.store(fp, &payload));
    let path = store.path_of(fp);

    // Flip one payload byte: checksum mismatch => miss.
    let mut raw = std::fs::read(&path).unwrap();
    *raw.last_mut().unwrap() ^= 0xFF;
    std::fs::write(&path, &raw).unwrap();
    assert_eq!(store.load(fp), None, "corrupt payload must miss");

    // Rewrite heals the entry.
    assert!(store.store(fp, &payload));
    assert_eq!(store.load(fp), Some(payload.clone()));

    // Truncate mid-frame: miss, not a panic.
    let raw = std::fs::read(&path).unwrap();
    std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
    assert_eq!(store.load(fp), None, "truncated record must miss");

    // Garbage shorter than the header: miss.
    std::fs::write(&path, b"xx").unwrap();
    assert_eq!(store.load(fp), None, "tiny garbage must miss");

    // An empty file (e.g. a crashed writer's leftovers): miss.
    std::fs::write(&path, b"").unwrap();
    assert_eq!(store.load(fp), None, "empty file must miss");

    assert!(store.store(fp, &payload));
    assert_eq!(store.load(fp), Some(payload));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two threads hammering one directory with interleaved writes and reads:
/// every load must return either `None` or a complete, checksummed payload
/// — never torn bytes (the atomic temp-file + rename contract).
#[test]
fn concurrent_writers_never_produce_torn_reads() {
    let dir = temp_dir("concurrent");
    let keys: Vec<Fingerprint> = (0..8).map(|i| Fingerprint(0x1000 + i)).collect();
    let payload_of = |fp: Fingerprint, writer: u64| -> Vec<u8> {
        // Both writers store different (but self-identifying) payloads for
        // the same keys, so a read can validate whichever version it sees.
        let mut p = fp.0.to_le_bytes().to_vec();
        p.extend_from_slice(&writer.to_le_bytes());
        p.extend(std::iter::repeat_n(writer as u8, 512));
        p
    };
    std::thread::scope(|scope| {
        for writer in 0u64..2 {
            let dir = &dir;
            let keys = &keys;
            scope.spawn(move || {
                let store = DiskStore::new(dir);
                for round in 0..30 {
                    for &fp in keys {
                        store.store(fp, &payload_of(fp, writer));
                        if let Some(bytes) = store.load(fp) {
                            // Whatever version landed, it must be one of
                            // the two complete payloads.
                            assert!(
                                bytes == payload_of(fp, 0) || bytes == payload_of(fp, 1),
                                "torn read at {fp} round {round}"
                            );
                        }
                    }
                }
            });
        }
    });
    // After the dust settles every key resolves to a complete record.
    let store = DiskStore::new(&dir);
    for &fp in &keys {
        let bytes = store.load(fp).expect("record must exist");
        assert!(bytes == payload_of(fp, 0) || bytes == payload_of(fp, 1));
    }
    // No temp files were leaked by successful writers.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .collect();
    assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
