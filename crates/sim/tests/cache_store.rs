//! Cache-layer regression tests: golden-fingerprint stability, on-disk
//! store corruption recovery, concurrent writers, and single-flight
//! semantics of the in-memory tier.
//!
//! These tests drive [`gpu_sim::cache::DiskStore`] and the fingerprint
//! primitives directly; none of them mutate the process-global cache
//! configuration (the single-flight tests use the global memory tier, but
//! only under fingerprints private to this file), so they can share a
//! binary with anything.

use gpu_sim::cache::{get_or_compute, DiskStore, KeyBuilder, ENGINE_VERSION};
use gpu_sim::harness::RunSpec;
use gpu_types::canon::{fingerprint, Fingerprint};
use gpu_types::GpuConfig;
use gpu_workloads::by_name;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ebm_cache_store_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pins the `(ENGINE_VERSION, canonical encoding, hash)` triple for a fixed
/// representative key. If this value drifts, previously written cache
/// directories silently stop matching — which is only correct when
/// [`ENGINE_VERSION`] was bumped deliberately. When you bump the version
/// (or deliberately change a `Canon` impl), recompute the constant and
/// update it in the same commit.
#[test]
fn golden_fingerprint_is_stable() {
    assert_eq!(ENGINE_VERSION, 1, "update the golden hash with the bump");
    let mut key = KeyBuilder::new("golden");
    key.push(&GpuConfig::small())
        .push(by_name("BLK").expect("known app"))
        .push_u64(42)
        .push(&RunSpec::new(500, 2_000));
    assert_eq!(
        key.finish().to_hex(),
        "ef3b8709a682acbf52082aedef130585",
        "canonical encoding or hash changed: bump ENGINE_VERSION and update \
         this constant in the same commit"
    );
}

/// The raw byte hash itself is pinned independently of any `Canon` impl.
#[test]
fn raw_fingerprint_is_stable() {
    assert_eq!(
        fingerprint(b"ebm").to_hex(),
        "3413c7bd2546ed18c253f12d0d71e3c7"
    );
}

#[test]
fn fingerprints_differ_across_kinds_and_inputs() {
    let base = KeyBuilder::new("alone").push_u64(1).finish();
    assert_ne!(base, KeyBuilder::new("sweep").push_u64(1).finish());
    assert_ne!(base, KeyBuilder::new("alone").push_u64(2).finish());
    assert_eq!(base, KeyBuilder::new("alone").push_u64(1).finish());
}

#[test]
fn corrupt_records_are_misses_and_rewritable() {
    let dir = temp_dir("corrupt");
    let store = DiskStore::new(&dir);
    let fp = Fingerprint(0xABCD);
    let payload = b"simulation result bytes".to_vec();
    assert!(store.store(fp, &payload));
    let path = store.path_of(fp);

    // Flip one payload byte: checksum mismatch => miss.
    let mut raw = std::fs::read(&path).unwrap();
    *raw.last_mut().unwrap() ^= 0xFF;
    std::fs::write(&path, &raw).unwrap();
    assert_eq!(store.load(fp), None, "corrupt payload must miss");

    // Rewrite heals the entry.
    assert!(store.store(fp, &payload));
    assert_eq!(store.load(fp), Some(payload.clone()));

    // Truncate mid-frame: miss, not a panic.
    let raw = std::fs::read(&path).unwrap();
    std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
    assert_eq!(store.load(fp), None, "truncated record must miss");

    // Garbage shorter than the header: miss.
    std::fs::write(&path, b"xx").unwrap();
    assert_eq!(store.load(fp), None, "tiny garbage must miss");

    // An empty file (e.g. a crashed writer's leftovers): miss.
    std::fs::write(&path, b"").unwrap();
    assert_eq!(store.load(fp), None, "empty file must miss");

    assert!(store.store(fp, &payload));
    assert_eq!(store.load(fp), Some(payload));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two threads hammering one directory with interleaved writes and reads:
/// every load must return either `None` or a complete, checksummed payload
/// — never torn bytes (the atomic temp-file + rename contract).
#[test]
fn concurrent_writers_never_produce_torn_reads() {
    let dir = temp_dir("concurrent");
    let keys: Vec<Fingerprint> = (0..8).map(|i| Fingerprint(0x1000 + i)).collect();
    let payload_of = |fp: Fingerprint, writer: u64| -> Vec<u8> {
        // Both writers store different (but self-identifying) payloads for
        // the same keys, so a read can validate whichever version it sees.
        let mut p = fp.0.to_le_bytes().to_vec();
        p.extend_from_slice(&writer.to_le_bytes());
        p.extend(std::iter::repeat_n(writer as u8, 512));
        p
    };
    std::thread::scope(|scope| {
        for writer in 0u64..2 {
            let dir = &dir;
            let keys = &keys;
            scope.spawn(move || {
                let store = DiskStore::new(dir);
                for round in 0..30 {
                    for &fp in keys {
                        store.store(fp, &payload_of(fp, writer));
                        if let Some(bytes) = store.load(fp) {
                            // Whatever version landed, it must be one of
                            // the two complete payloads.
                            assert!(
                                bytes == payload_of(fp, 0) || bytes == payload_of(fp, 1),
                                "torn read at {fp} round {round}"
                            );
                        }
                    }
                }
            });
        }
    });
    // After the dust settles every key resolves to a complete record.
    let store = DiskStore::new(&dir);
    for &fp in &keys {
        let bytes = store.load(fp).expect("record must exist");
        assert!(bytes == payload_of(fp, 0) || bytes == payload_of(fp, 1));
    }
    // No temp files were leaked by successful writers.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .collect();
    assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Single-flight: N threads requesting the same fingerprint while the
/// leader is mid-compute must all block, share the leader's bytes, and run
/// the compute closure exactly once.
#[test]
fn concurrent_requesters_share_one_execution() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Private to this test; no other get_or_compute caller in the workspace
    // uses a literal fingerprint in this range.
    let fp = Fingerprint(0x5F5F_0000_0000_0001);
    const JOINERS: usize = 3;
    let executions = AtomicUsize::new(0);
    let arrived = AtomicUsize::new(0);

    let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let leader = scope.spawn(|| {
            get_or_compute(fp, || {
                executions.fetch_add(1, Ordering::SeqCst);
                // Hold the flight open until every joiner has announced
                // itself, plus a grace period for them to reach the
                // condvar, so the joins genuinely overlap the compute.
                while arrived.load(Ordering::SeqCst) < JOINERS {
                    std::thread::yield_now();
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
                b"single-flight payload".to_vec()
            })
            .to_vec()
        });
        let joiners: Vec<_> = (0..JOINERS)
            .map(|_| {
                scope.spawn(|| {
                    // Wait until the leader is provably inside its compute
                    // closure before looking up the same key.
                    while executions.load(Ordering::SeqCst) == 0 {
                        std::thread::yield_now();
                    }
                    arrived.fetch_add(1, Ordering::SeqCst);
                    get_or_compute(fp, || {
                        executions.fetch_add(1, Ordering::SeqCst);
                        b"single-flight payload".to_vec()
                    })
                    .to_vec()
                })
            })
            .collect();
        let mut out = vec![leader.join().expect("leader must not panic")];
        out.extend(
            joiners
                .into_iter()
                .map(|j| j.join().expect("joiner must not panic")),
        );
        out
    });

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "exactly one simulation must run for one in-flight fingerprint"
    );
    for r in &results {
        assert_eq!(
            r.as_slice(),
            b"single-flight payload",
            "result must be shared"
        );
    }
    let joined = gpu_sim::cache::stats().inflight_joined;
    assert!(
        joined >= JOINERS as u64,
        "joiners must be counted as in-flight joins (saw {joined})"
    );
}

/// A panicking leader must not strand its joiners: they wake, retry, and
/// one of them recomputes the entry.
#[test]
fn failed_leader_lets_joiners_retry() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let fp = Fingerprint(0x5F5F_0000_0000_0002);
    let attempts = AtomicUsize::new(0);
    let joiner_waiting = AtomicUsize::new(0);

    let joined_value = std::thread::scope(|scope| {
        let leader = scope.spawn(|| {
            get_or_compute(fp, || {
                attempts.fetch_add(1, Ordering::SeqCst);
                while joiner_waiting.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                panic!("leader dies mid-flight");
            })
        });
        let joiner = scope.spawn(|| {
            while attempts.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            joiner_waiting.store(1, Ordering::SeqCst);
            get_or_compute(fp, || {
                attempts.fetch_add(1, Ordering::SeqCst);
                b"recovered".to_vec()
            })
            .to_vec()
        });
        assert!(leader.join().is_err(), "leader must propagate its panic");
        joiner.join().expect("joiner must recover, not deadlock")
    });

    assert_eq!(joined_value.as_slice(), b"recovered");
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        2,
        "the joiner must have recomputed after the leader failed"
    );
}
