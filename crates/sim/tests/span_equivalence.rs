//! Regression tests pinning span-stepping to per-cycle semantics.
//!
//! `run_controlled` advances the machine in spans — straight to the next
//! window mark / measurement start / run end — instead of checking the
//! clock after every cycle. Nothing observable happens between those
//! boundaries, so the results must be *identical* to the historical
//! per-cycle loop. This test reimplements that loop through the public API
//! and compares every observable output.

use gpu_sim::control::{AppObservation, Controller, Decision, Observation, StaticController};
use gpu_sim::harness::{run_controlled, ControlledRun};
use gpu_sim::machine::Gpu;
use gpu_simt::CoreStats;
use gpu_types::{AppId, AppWindow, GpuConfig, MemCounters, TlpLevel};
use gpu_workloads::by_name;

fn snapshot_all(gpu: &Gpu) -> Vec<MemCounters> {
    (0..gpu.n_apps())
        .map(|a| gpu.counters(AppId::new(a as u8)))
        .collect()
}

fn snapshot_sampled(gpu: &Gpu) -> Vec<MemCounters> {
    if gpu.config().sampling.designated {
        (0..gpu.n_apps())
            .map(|a| gpu.designated_counters(AppId::new(a as u8)))
            .collect()
    } else {
        snapshot_all(gpu)
    }
}

fn core_stats_all(gpu: &Gpu) -> Vec<CoreStats> {
    (0..gpu.n_apps())
        .map(|a| gpu.core_stats(AppId::new(a as u8)))
        .collect()
}

fn windows_between(
    gpu: &Gpu,
    before: &[MemCounters],
    after: &[MemCounters],
    cycles: u64,
) -> Vec<AppWindow> {
    let peak = gpu.config().peak_bw_bytes_per_cycle();
    before
        .iter()
        .zip(after)
        .map(|(b, a)| AppWindow::new(*a - *b, cycles, peak))
        .collect()
}

/// The historical per-cycle controlled-run loop: advance one cycle at a
/// time, test every boundary with equality checks against the clock.
fn run_controlled_per_cycle(
    gpu: &mut Gpu,
    controller: &mut dyn Controller,
    total_cycles: u64,
    measure_from: u64,
) -> ControlledRun {
    let n_apps = gpu.n_apps();
    let window = gpu.config().sampling.window_cycles;
    let relay = gpu.config().sampling.relay_latency;
    let peak = gpu.config().peak_bw_bytes_per_cycle();

    let mut tlp_trace = vec![(
        gpu.now(),
        (0..n_apps)
            .map(|a| gpu.tlp_of(AppId::new(a as u8)))
            .collect::<Vec<_>>(),
    )];
    let mut measure_start: Option<Vec<MemCounters>> = None;
    let mut win_counters = snapshot_sampled(gpu);
    let mut win_core = core_stats_all(gpu);
    let mut n_windows = 0;
    let mut window_series = Vec::new();

    let end = gpu.now() + total_cycles;
    let mut next_mark = gpu.now() + window;
    while gpu.now() < end {
        if measure_start.is_none() && gpu.now() >= measure_from {
            measure_start = Some(snapshot_all(gpu));
        }
        gpu.run(1);
        if gpu.now() == next_mark {
            let after_counters = snapshot_sampled(gpu);
            let after_core = core_stats_all(gpu);
            let obs_windows = windows_between(gpu, &win_counters, &after_counters, window);
            window_series.push((gpu.now(), obs_windows.clone()));
            let obs_core: Vec<CoreStats> = win_core
                .iter()
                .zip(&after_core)
                .map(|(b, a)| CoreStats {
                    cycles: a.cycles - b.cycles,
                    insts: a.insts - b.insts,
                    mem_stall_cycles: a.mem_stall_cycles - b.mem_stall_cycles,
                    struct_stall_cycles: a.struct_stall_cycles - b.struct_stall_cycles,
                    idle_cycles: a.idle_cycles - b.idle_cycles,
                    warp_mem_wait_cycles: a.warp_mem_wait_cycles - b.warp_mem_wait_cycles,
                    active_warp_cycles: a.active_warp_cycles - b.active_warp_cycles,
                })
                .collect();
            gpu.run(relay.min(end.saturating_sub(gpu.now())));
            let obs = Observation {
                now: gpu.now(),
                window_cycles: window,
                apps: (0..n_apps)
                    .map(|a| AppObservation {
                        window: obs_windows[a],
                        core: obs_core[a],
                        tlp: gpu.tlp_of(AppId::new(a as u8)),
                        bypassed: gpu.bypass_l1_of(AppId::new(a as u8)),
                    })
                    .collect(),
            };
            let decision: Decision = controller.on_window(&obs);
            let mut changed = false;
            for a in 0..n_apps {
                if let Some(level) = decision.tlp.get(a).copied().flatten() {
                    if gpu.tlp_of(AppId::new(a as u8)) != gpu.config().clamp_tlp(level) {
                        changed = true;
                    }
                    gpu.set_tlp(AppId::new(a as u8), level);
                }
                if let Some(b) = decision.bypass.get(a).copied().flatten() {
                    gpu.set_bypass_l1(AppId::new(a as u8), b);
                }
            }
            if changed {
                tlp_trace.push((
                    gpu.now(),
                    (0..n_apps)
                        .map(|a| gpu.tlp_of(AppId::new(a as u8)))
                        .collect(),
                ));
            }
            n_windows += 1;
            win_counters = snapshot_sampled(gpu);
            win_core = core_stats_all(gpu);
            next_mark = gpu.now() + window;
        }
    }

    let start = measure_start.unwrap_or_else(|| snapshot_all(gpu));
    let final_counters = snapshot_all(gpu);
    let measured_cycles = (gpu.now() - measure_from.min(gpu.now())).max(1);
    let overall = start
        .iter()
        .zip(&final_counters)
        .map(|(b, a)| AppWindow::new(*a - *b, measured_cycles, peak))
        .collect();
    ControlledRun {
        overall,
        tlp_trace,
        n_windows,
        window_series,
    }
}

fn gpu_with(designated: bool) -> Gpu {
    let mut cfg = GpuConfig::small();
    cfg.sampling.designated = designated;
    Gpu::new(
        &cfg,
        &[by_name("BLK").unwrap(), by_name("BFS").unwrap()],
        11,
    )
}

struct FlipFlop(bool);
impl Controller for FlipFlop {
    fn on_window(&mut self, obs: &Observation) -> Decision {
        self.0 = !self.0;
        let lvl = if self.0 {
            TlpLevel::MIN
        } else {
            TlpLevel::new(8).unwrap()
        };
        Decision::set_all(&vec![lvl; obs.apps.len()])
    }
    fn name(&self) -> &str {
        "flipflop"
    }
}

fn assert_runs_equal(a: &ControlledRun, b: &ControlledRun) {
    assert_eq!(a.n_windows, b.n_windows, "window counts differ");
    assert_eq!(a.tlp_trace, b.tlp_trace, "TLP traces differ");
    assert_eq!(a.overall.len(), b.overall.len());
    for (wa, wb) in a.overall.iter().zip(&b.overall) {
        assert_eq!(wa.counters, wb.counters, "overall counters differ");
        assert_eq!(wa.cycles, wb.cycles, "overall cycle spans differ");
    }
    assert_eq!(a.window_series.len(), b.window_series.len());
    for ((ca, wsa), (cb, wsb)) in a.window_series.iter().zip(&b.window_series) {
        assert_eq!(ca, cb, "window-series marks differ");
        for (wa, wb) in wsa.iter().zip(wsb) {
            assert_eq!(wa.counters, wb.counters, "window-series counters differ");
        }
    }
}

#[test]
fn span_stepping_matches_per_cycle_static() {
    let window = GpuConfig::small().sampling.window_cycles;
    // Include a ragged tail (not a multiple of the window) on purpose.
    let total = window * 5 + 137;
    let fast = run_controlled(&mut gpu_with(false), &mut StaticController, total, 0);
    let slow = run_controlled_per_cycle(&mut gpu_with(false), &mut StaticController, total, 0);
    assert_runs_equal(&fast, &slow);
}

#[test]
fn span_stepping_matches_per_cycle_dynamic() {
    let window = GpuConfig::small().sampling.window_cycles;
    let total = window * 6 + 41;
    let fast = run_controlled(&mut gpu_with(false), &mut FlipFlop(false), total, 0);
    let slow = run_controlled_per_cycle(&mut gpu_with(false), &mut FlipFlop(false), total, 0);
    assert!(
        fast.tlp_trace.len() >= 3,
        "dynamic controller must actually change TLP"
    );
    assert_runs_equal(&fast, &slow);
}

#[test]
fn span_stepping_matches_per_cycle_with_measure_from() {
    let window = GpuConfig::small().sampling.window_cycles;
    let total = window * 5 + 23;
    // measure_from off any window boundary.
    let measure_from = window + window / 3 + 7;
    let fast = run_controlled(
        &mut gpu_with(false),
        &mut FlipFlop(true),
        total,
        measure_from,
    );
    let slow = run_controlled_per_cycle(
        &mut gpu_with(false),
        &mut FlipFlop(true),
        total,
        measure_from,
    );
    assert_runs_equal(&fast, &slow);
}

#[test]
fn span_stepping_matches_per_cycle_designated_sampling() {
    let window = GpuConfig::small().sampling.window_cycles;
    let total = window * 4 + 61;
    let fast = run_controlled(&mut gpu_with(true), &mut FlipFlop(false), total, window / 2);
    let slow =
        run_controlled_per_cycle(&mut gpu_with(true), &mut FlipFlop(false), total, window / 2);
    assert_runs_equal(&fast, &slow);
}

#[test]
fn span_stepping_handles_run_shorter_than_one_window() {
    let window = GpuConfig::small().sampling.window_cycles;
    let total = window / 2;
    let fast = run_controlled(&mut gpu_with(false), &mut StaticController, total, 0);
    let slow = run_controlled_per_cycle(&mut gpu_with(false), &mut StaticController, total, 0);
    assert_eq!(fast.n_windows, 0);
    assert_runs_equal(&fast, &slow);
}
