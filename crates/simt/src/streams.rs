//! Simple instruction streams for tests and micro-experiments.
//!
//! The paper's 26 application models live in `gpu-workloads`; these streams
//! exercise the core machinery with fully predictable behaviour.

use crate::inst::{AddrList, Inst, InstStream};
use gpu_types::Address;

/// Replays a fixed instruction list once.
#[derive(Debug, Clone)]
pub struct Scripted {
    insts: std::collections::VecDeque<Inst>,
}

impl Scripted {
    /// Creates a stream that yields `insts` in order, then ends.
    pub fn new(insts: Vec<Inst>) -> Self {
        Scripted {
            insts: insts.into(),
        }
    }
}

impl InstStream for Scripted {
    fn next_inst(&mut self) -> Option<Inst> {
        self.insts.pop_front()
    }
}

/// An endless strided load stream: `compute` ALU instructions, then one
/// fully-coalesced load, advancing by `stride` bytes each iteration.
#[derive(Debug, Clone)]
pub struct Streaming {
    next_addr: u64,
    stride: u64,
    compute: u32,
    phase: u32,
}

impl Streaming {
    /// Creates a stream starting at `base`, striding by `stride` bytes, with
    /// `compute` ALU instructions between loads.
    pub fn new(base: u64, stride: u64, compute: u32) -> Self {
        Streaming {
            next_addr: base,
            stride,
            compute,
            phase: 0,
        }
    }
}

impl InstStream for Streaming {
    fn next_inst(&mut self) -> Option<Inst> {
        if self.phase < self.compute {
            self.phase += 1;
            return Some(Inst::alu1());
        }
        self.phase = 0;
        let a = self.next_addr;
        self.next_addr = self.next_addr.wrapping_add(self.stride);
        Some(Inst::Load {
            addrs: AddrList::one(Address::new(a)),
        })
    }
}

/// An endless loop over a fixed working set of lines — a perfectly
/// cacheable stream once the set fits in cache.
#[derive(Debug, Clone)]
pub struct LoopOverSet {
    lines: Vec<u64>,
    idx: usize,
}

impl LoopOverSet {
    /// Loops over `n_lines` consecutive lines starting at `base`.
    pub fn new(base: u64, n_lines: usize) -> Self {
        assert!(n_lines > 0, "working set must be non-empty");
        LoopOverSet {
            lines: (0..n_lines as u64)
                .map(|i| base + i * gpu_types::LINE_SIZE)
                .collect(),
            idx: 0,
        }
    }
}

impl InstStream for LoopOverSet {
    fn next_inst(&mut self) -> Option<Inst> {
        let a = self.lines[self.idx];
        self.idx = (self.idx + 1) % self.lines.len();
        Some(Inst::Load {
            addrs: AddrList::one(Address::new(a)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_ends() {
        let mut s = Scripted::new(vec![Inst::alu1()]);
        assert!(s.next_inst().is_some());
        assert!(s.next_inst().is_none());
    }

    #[test]
    fn streaming_alternates_compute_and_loads() {
        let mut s = Streaming::new(0, 128, 2);
        assert_eq!(s.next_inst(), Some(Inst::alu1()));
        assert_eq!(s.next_inst(), Some(Inst::alu1()));
        assert_eq!(s.next_inst(), Some(Inst::load1(0)));
        assert_eq!(s.next_inst(), Some(Inst::alu1()));
    }

    #[test]
    fn streaming_strides() {
        let mut s = Streaming::new(0, 256, 0);
        assert_eq!(s.next_inst(), Some(Inst::load1(0)));
        assert_eq!(s.next_inst(), Some(Inst::load1(256)));
    }

    #[test]
    fn loop_over_set_wraps() {
        let mut s = LoopOverSet::new(0, 2);
        assert_eq!(s.next_inst(), Some(Inst::load1(0)));
        assert_eq!(s.next_inst(), Some(Inst::load1(128)));
        assert_eq!(s.next_inst(), Some(Inst::load1(0)));
    }
}
