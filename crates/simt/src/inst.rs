//! Warp instructions and the stream abstraction applications implement.

use gpu_types::Address;

/// Maximum per-thread addresses one warp instruction can carry (the warp
/// width of Table I).
pub const WARP_WIDTH: usize = 32;

/// A fixed-capacity, inline list of per-thread addresses.
///
/// Instruction streams produce one of these per memory instruction on the
/// hot path of every simulated cycle, so it must not touch the heap: the
/// addresses live inline (capacity [`WARP_WIDTH`]) and the list is `Copy`.
/// It dereferences to `&[Address]`, so slice methods (`iter`, `len`,
/// indexing) work directly.
///
/// ```
/// use gpu_simt::inst::AddrList;
/// use gpu_types::Address;
/// let l: AddrList = (0..4).map(|i| Address::new(i * 128)).collect();
/// assert_eq!(l.len(), 4);
/// assert_eq!(l[2], Address::new(256));
/// ```
#[derive(Clone, Copy)]
pub struct AddrList {
    len: u8,
    buf: [Address; WARP_WIDTH],
}

impl AddrList {
    /// Creates an empty list.
    pub const fn new() -> Self {
        AddrList {
            len: 0,
            buf: [Address::new(0); WARP_WIDTH],
        }
    }

    /// Creates a single-address list.
    pub const fn one(addr: Address) -> Self {
        let mut l = Self::new();
        l.buf[0] = addr;
        l.len = 1;
        l
    }

    /// Appends an address.
    ///
    /// # Panics
    ///
    /// Panics when the list already holds [`WARP_WIDTH`] addresses — a warp
    /// cannot generate more per-thread accesses than it has threads.
    pub fn push(&mut self, addr: Address) {
        assert!(
            (self.len as usize) < WARP_WIDTH,
            "more than {WARP_WIDTH} addresses in one warp instruction"
        );
        self.buf[self.len as usize] = addr;
        self.len += 1;
    }

    /// Shortens the list to at most `n` addresses (no-op when already
    /// shorter).
    pub fn truncate(&mut self, n: usize) {
        if n < self.len as usize {
            self.len = n as u8;
        }
    }
}

impl Default for AddrList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for AddrList {
    type Target = [Address];

    fn deref(&self) -> &[Address] {
        &self.buf[..self.len as usize]
    }
}

impl FromIterator<Address> for AddrList {
    fn from_iter<I: IntoIterator<Item = Address>>(iter: I) -> Self {
        let mut l = AddrList::new();
        for a in iter {
            l.push(a);
        }
        l
    }
}

impl From<&[Address]> for AddrList {
    fn from(addrs: &[Address]) -> Self {
        addrs.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a AddrList {
    type Item = &'a Address;
    type IntoIter = std::slice::Iter<'a, Address>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for AddrList {
    type Item = Address;
    type IntoIter = std::iter::Take<std::array::IntoIter<Address, WARP_WIDTH>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len as usize)
    }
}

impl PartialEq for AddrList {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for AddrList {}

impl std::fmt::Debug for AddrList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// One warp-level instruction.
///
/// The simulator is trace-driven at warp granularity: an application model
/// emits a stream of these per warp, and the core's issue logic, coalescer,
/// caches and the memory system below produce all timing behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// An arithmetic (or scratchpad-served) instruction occupying the warp
    /// for `cycles` cycles. Scratchpad traffic is folded in here because the
    /// paper's EB metric deliberately excludes scratchpad bandwidth (§III
    /// footnote: the scratchpad "is not susceptible to contention due to
    /// high TLP").
    Alu {
        /// Cycles before the warp may issue again.
        cycles: u32,
    },
    /// A global load; `addrs` are the per-thread byte addresses, which the
    /// coalescer merges into unique 128-byte transactions. The warp blocks
    /// once its outstanding-load tolerance is exceeded.
    Load {
        /// Per-thread addresses (any length `1..=32`), stored inline so
        /// instruction generation never allocates.
        addrs: AddrList,
    },
    /// A global store: write-through, no-allocate, fire-and-forget.
    Store {
        /// Per-thread addresses.
        addrs: AddrList,
    },
}

impl Inst {
    /// Convenience constructor for a single-cycle ALU instruction.
    pub fn alu1() -> Inst {
        Inst::Alu { cycles: 1 }
    }

    /// Convenience constructor for a one-address load.
    pub fn load1(addr: u64) -> Inst {
        Inst::Load {
            addrs: AddrList::one(Address::new(addr)),
        }
    }

    /// Convenience constructor for a one-address store.
    pub fn store1(addr: u64) -> Inst {
        Inst::Store {
            addrs: AddrList::one(Address::new(addr)),
        }
    }
}

/// A per-warp instruction source.
///
/// Implementations must be deterministic given their construction seed; the
/// whole simulator is reproducible from `(config, seed)`. The `Send` bound
/// lets whole cores migrate to intra-simulation domain workers (the
/// `gpu-sim` crate's parallel engine); streams are plain data plus a seeded
/// RNG, so this costs implementors nothing.
pub trait InstStream: Send {
    /// Produces the warp's next instruction, or `None` when the warp has
    /// retired (streams modeling steady-state kernels never return `None`).
    fn next_inst(&mut self) -> Option<Inst>;
}

/// Coalesces per-thread addresses into unique line-aligned transaction
/// addresses, preserving first-appearance order (Table I: "memory coalescing
/// and inter-warp merging enabled" — inter-warp merging happens in the
/// MSHRs). The result is stack-allocated: this runs once per memory
/// instruction on the per-cycle hot path.
pub fn coalesce(addrs: &[Address]) -> AddrList {
    let mut lines = AddrList::new();
    for a in addrs {
        let line = a.line();
        if !lines.contains(&line) {
            lines.push(line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::LINE_SIZE;

    #[test]
    fn coalesce_merges_same_line() {
        let addrs: Vec<Address> = (0..32).map(|i| Address::new(i * 4)).collect();
        assert_eq!(&coalesce(&addrs)[..], &[Address::new(0)]);
    }

    #[test]
    fn coalesce_fully_divergent() {
        let addrs: Vec<Address> = (0..4).map(|i| Address::new(i * LINE_SIZE * 7)).collect();
        assert_eq!(coalesce(&addrs).len(), 4);
    }

    #[test]
    fn coalesce_preserves_first_appearance_order() {
        // 300 falls in the line of 256; 10 falls in the line of 0.
        let addrs = vec![
            Address::new(256),
            Address::new(0),
            Address::new(300),
            Address::new(10),
        ];
        assert_eq!(&coalesce(&addrs)[..], &[Address::new(256), Address::new(0)]);
    }

    #[test]
    fn inst_constructors() {
        assert_eq!(Inst::alu1(), Inst::Alu { cycles: 1 });
        assert_eq!(
            Inst::load1(5),
            Inst::Load {
                addrs: AddrList::one(Address::new(5))
            }
        );
        assert!(matches!(Inst::store1(7), Inst::Store { addrs } if addrs[0] == Address::new(7)));
    }

    #[test]
    fn addr_list_pushes_and_truncates() {
        let mut l: AddrList = (0..5).map(|i| Address::new(i * 128)).collect();
        assert_eq!(l.len(), 5);
        l.truncate(2);
        assert_eq!(&l[..], &[Address::new(0), Address::new(128)]);
        l.truncate(10);
        assert_eq!(l.len(), 2, "truncate never grows");
        l.push(Address::new(999));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn addr_list_holds_a_full_warp() {
        let l: AddrList = (0..32).map(Address::new).collect();
        assert_eq!(l.len(), 32);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn addr_list_overflow_panics() {
        let _: AddrList = (0..33).map(Address::new).collect();
    }
}
