//! Warp instructions and the stream abstraction applications implement.

use gpu_types::Address;

/// One warp-level instruction.
///
/// The simulator is trace-driven at warp granularity: an application model
/// emits a stream of these per warp, and the core's issue logic, coalescer,
/// caches and the memory system below produce all timing behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// An arithmetic (or scratchpad-served) instruction occupying the warp
    /// for `cycles` cycles. Scratchpad traffic is folded in here because the
    /// paper's EB metric deliberately excludes scratchpad bandwidth (§III
    /// footnote: the scratchpad "is not susceptible to contention due to
    /// high TLP").
    Alu {
        /// Cycles before the warp may issue again.
        cycles: u32,
    },
    /// A global load; `addrs` are the per-thread byte addresses, which the
    /// coalescer merges into unique 128-byte transactions. The warp blocks
    /// once its outstanding-load tolerance is exceeded.
    Load {
        /// Per-thread addresses (any length `1..=32`).
        addrs: Vec<Address>,
    },
    /// A global store: write-through, no-allocate, fire-and-forget.
    Store {
        /// Per-thread addresses.
        addrs: Vec<Address>,
    },
}

impl Inst {
    /// Convenience constructor for a single-cycle ALU instruction.
    pub fn alu1() -> Inst {
        Inst::Alu { cycles: 1 }
    }

    /// Convenience constructor for a one-address load.
    pub fn load1(addr: u64) -> Inst {
        Inst::Load {
            addrs: vec![Address::new(addr)],
        }
    }
}

/// A per-warp instruction source.
///
/// Implementations must be deterministic given their construction seed; the
/// whole simulator is reproducible from `(config, seed)`.
pub trait InstStream {
    /// Produces the warp's next instruction, or `None` when the warp has
    /// retired (streams modeling steady-state kernels never return `None`).
    fn next_inst(&mut self) -> Option<Inst>;
}

/// Coalesces per-thread addresses into unique line-aligned transaction
/// addresses, preserving first-appearance order (Table I: "memory coalescing
/// and inter-warp merging enabled" — inter-warp merging happens in the
/// MSHRs).
pub fn coalesce(addrs: &[Address]) -> Vec<Address> {
    let mut lines: Vec<Address> = Vec::new();
    for a in addrs {
        let line = a.line();
        if !lines.contains(&line) {
            lines.push(line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::LINE_SIZE;

    #[test]
    fn coalesce_merges_same_line() {
        let addrs: Vec<Address> = (0..32).map(|i| Address::new(i * 4)).collect();
        assert_eq!(coalesce(&addrs), vec![Address::new(0)]);
    }

    #[test]
    fn coalesce_fully_divergent() {
        let addrs: Vec<Address> = (0..4).map(|i| Address::new(i * LINE_SIZE * 7)).collect();
        assert_eq!(coalesce(&addrs).len(), 4);
    }

    #[test]
    fn coalesce_preserves_first_appearance_order() {
        // 300 falls in the line of 256; 10 falls in the line of 0.
        let addrs = vec![
            Address::new(256),
            Address::new(0),
            Address::new(300),
            Address::new(10),
        ];
        assert_eq!(coalesce(&addrs), vec![Address::new(256), Address::new(0)]);
    }

    #[test]
    fn inst_constructors() {
        assert_eq!(Inst::alu1(), Inst::Alu { cycles: 1 });
        assert_eq!(
            Inst::load1(5),
            Inst::Load {
                addrs: vec![Address::new(5)]
            }
        );
    }
}
