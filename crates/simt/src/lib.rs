//! SIMT core model for the `gpu-ebm` simulator.
//!
//! Each core executes warps drawn from an application-supplied
//! [`InstStream`] (the `gpu-workloads` crate provides the paper's synthetic
//! application models; tests use the simple streams in [`streams`]).
//! The core implements the §II machine model of the paper:
//!
//! * two greedy-then-oldest (GTO) warp schedulers per core, each issuing at
//!   most one warp instruction per cycle;
//! * **static warp limiting (SWL)**: a per-core TLP level caps how many warp
//!   slots each scheduler may issue from — the knob every TLP-management
//!   scheme in the paper turns ([`SimtCore::set_tlp`]);
//! * a memory coalescer that merges a warp's thread accesses into unique
//!   128-byte transactions;
//! * a private L1 data cache with MSHRs (from `gpu-mem`), optionally
//!   bypassed per-core (the Mod+Bypass baseline);
//! * per-core statistics for IPC accounting and for DynCTA-style
//!   latency-tolerance heuristics.

#![deny(missing_docs)]

pub mod ccws;
pub mod core;
pub mod inst;
pub mod scheduler;
pub mod streams;
pub mod warp;

pub use crate::ccws::{CcwsParams, CcwsThrottle};
pub use crate::core::{CoreParams, CoreStats, SimtCore, WarpStalls};
pub use inst::{Inst, InstStream};
pub use scheduler::GtoScheduler;
pub use warp::Warp;
