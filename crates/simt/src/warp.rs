//! Per-warp execution state.

use crate::inst::InstStream;

/// A warp: an instruction stream plus the issue/stall state the scheduler
/// inspects every cycle.
pub struct Warp {
    stream: Box<dyn InstStream>,
    /// An instruction fetched but not issued (structural hazard); retried
    /// before the stream is consulted again.
    stashed: Option<crate::inst::Inst>,
    /// Earliest cycle the warp may issue again (ALU latency).
    ready_at: u64,
    /// Load transactions issued but not yet returned.
    inflight_loads: usize,
    /// Outstanding-load tolerance: once `inflight_loads` reaches this, the
    /// warp stalls until returns bring it back below. Models the dependency
    /// distance of the application's code — small values make it
    /// latency-bound, large values give memory-level parallelism.
    max_outstanding: usize,
    /// The stream returned `None`; the warp has retired.
    finished: bool,
    /// Warp instructions issued (for per-warp diagnostics).
    issued: u64,
}

impl std::fmt::Debug for Warp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warp")
            .field("ready_at", &self.ready_at)
            .field("inflight_loads", &self.inflight_loads)
            .field("max_outstanding", &self.max_outstanding)
            .field("finished", &self.finished)
            .field("issued", &self.issued)
            .finish()
    }
}

impl Warp {
    /// Creates a warp over `stream` with the given outstanding-load
    /// tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero.
    pub fn new(stream: Box<dyn InstStream>, max_outstanding: usize) -> Self {
        assert!(
            max_outstanding > 0,
            "a warp must tolerate at least one outstanding load"
        );
        Warp {
            stream,
            stashed: None,
            ready_at: 0,
            inflight_loads: 0,
            max_outstanding,
            finished: false,
            issued: 0,
        }
    }

    /// True when the warp could issue an instruction at `now` (ignoring
    /// structural hazards, which the core checks separately).
    pub fn ready(&self, now: u64) -> bool {
        !self.finished && self.ready_at <= now && self.inflight_loads < self.max_outstanding
    }

    /// True when the warp is alive but blocked on outstanding loads.
    pub fn waiting_mem(&self) -> bool {
        !self.finished && self.inflight_loads >= self.max_outstanding
    }

    /// True when the warp has retired.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Pulls the next instruction (a previously stashed one first); marks
    /// the warp finished when the stream ends. Only call when [`Self::ready`].
    pub fn fetch(&mut self) -> Option<crate::inst::Inst> {
        if let Some(i) = self.stashed.take() {
            return Some(i);
        }
        match self.stream.next_inst() {
            Some(i) => Some(i),
            None => {
                self.finished = true;
                None
            }
        }
    }

    /// Puts back an instruction that could not issue due to a structural
    /// hazard; the next [`Self::fetch`] returns it again.
    pub fn stash(&mut self, inst: crate::inst::Inst) {
        debug_assert!(self.stashed.is_none(), "double stash");
        self.stashed = Some(inst);
    }

    /// The next instruction *without* consuming it, filling the one-entry
    /// stash from the stream on first peek; marks the warp finished when
    /// the stream ends. The hot issue path peeks by reference so a
    /// structural-hazard retry moves no instruction bytes at all
    /// ([`crate::inst::Inst`] carries a full warp-width address list), and
    /// calls [`Self::consume_inst`] only on successful issue. Equivalent to
    /// [`Self::fetch`] + [`Self::stash`], which the reference engine keeps.
    pub fn peek_inst(&mut self) -> Option<&crate::inst::Inst> {
        if self.stashed.is_none() {
            match self.stream.next_inst() {
                Some(i) => self.stashed = Some(i),
                None => {
                    self.finished = true;
                    return None;
                }
            }
        }
        self.stashed.as_ref()
    }

    /// Consumes the instruction returned by the last [`Self::peek_inst`].
    pub fn consume_inst(&mut self) {
        debug_assert!(self.stashed.is_some(), "consume without a peeked inst");
        self.stashed = None;
    }

    /// Records the issue of an ALU instruction taking `cycles`.
    pub fn issue_alu(&mut self, now: u64, cycles: u32) {
        self.issued += 1;
        self.ready_at = now + cycles.max(1) as u64;
    }

    /// Records the issue of a memory instruction that produced
    /// `transactions` in-flight loads (zero for stores and all-hit loads
    /// resolved instantly — though the core still routes hits through the
    /// in-flight path to model hit latency).
    pub fn issue_mem(&mut self, now: u64, transactions: usize) {
        self.issued += 1;
        self.ready_at = now + 1;
        self.inflight_loads += transactions;
    }

    /// One of this warp's load transactions returned.
    ///
    /// # Panics
    ///
    /// Panics if no loads were in flight (a routing bug in the caller).
    pub fn load_returned(&mut self) {
        assert!(
            self.inflight_loads > 0,
            "load return routed to a warp with none in flight"
        );
        self.inflight_loads -= 1;
    }

    /// Warp instructions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Earliest cycle the warp may issue again (ALU/issue latency). The
    /// core's quiescence tracking uses this to compute the next cycle at
    /// which any warp could become schedulable.
    pub fn next_ready_at(&self) -> u64 {
        self.ready_at
    }

    /// Loads currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight_loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::streams::Scripted;

    fn warp_with(insts: Vec<Inst>, tol: usize) -> Warp {
        Warp::new(Box::new(Scripted::new(insts)), tol)
    }

    #[test]
    fn alu_latency_blocks_reissue() {
        let mut w = warp_with(vec![Inst::Alu { cycles: 3 }], 1);
        assert!(w.ready(0));
        w.fetch().unwrap();
        w.issue_alu(0, 3);
        assert!(!w.ready(2));
        assert!(w.ready(3));
    }

    #[test]
    fn outstanding_loads_block_at_tolerance() {
        let mut w = warp_with(vec![Inst::load1(0), Inst::load1(128)], 2);
        w.issue_mem(0, 1);
        assert!(w.ready(1), "one outstanding load below tolerance 2");
        w.issue_mem(1, 1);
        assert!(!w.ready(2));
        assert!(w.waiting_mem());
        w.load_returned();
        assert!(w.ready(2));
    }

    #[test]
    fn finished_when_stream_ends() {
        let mut w = warp_with(vec![Inst::alu1()], 1);
        assert!(w.fetch().is_some());
        w.issue_alu(0, 1);
        assert!(w.fetch().is_none());
        assert!(w.finished());
        assert!(!w.ready(100));
    }

    #[test]
    fn issue_counts() {
        let mut w = warp_with(vec![Inst::alu1(), Inst::load1(0)], 4);
        w.fetch().unwrap();
        w.issue_alu(0, 1);
        w.fetch().unwrap();
        w.issue_mem(1, 3);
        assert_eq!(w.issued(), 2);
        assert_eq!(w.inflight(), 3);
    }

    #[test]
    #[should_panic(expected = "none in flight")]
    fn spurious_return_panics() {
        let mut w = warp_with(vec![], 1);
        w.load_returned();
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_tolerance_panics() {
        let _ = warp_with(vec![], 0);
    }
}
