//! Greedy-then-oldest (GTO) warp scheduling with static warp limiting.
//!
//! GTO keeps issuing from the same warp while it stays ready (exploiting its
//! row-buffer and cache locality), otherwise falls back to the oldest ready
//! warp. SWL restricts the schedulable slots to the first `tlp` slots the
//! scheduler owns — the mechanism behind every TLP configuration in Table II
//! of the paper. Warps outside the limit keep their architectural state and
//! may still receive outstanding responses; they simply cannot issue.

use gpu_types::WarpSchedPolicy;

/// One warp scheduler's selection state.
#[derive(Debug, Clone)]
pub struct GtoScheduler {
    /// Slots this scheduler owns, oldest first.
    slots: Vec<usize>,
    /// The warp issued from most recently (GTO's greedy candidate / LRR's
    /// rotation anchor).
    greedy: Option<usize>,
    /// Active TLP limit: only the first `limit` slots may issue.
    limit: usize,
    /// GTO (default) or loose round-robin.
    policy: WarpSchedPolicy,
}

impl GtoScheduler {
    /// Creates a GTO scheduler owning `slots` (oldest first), initially
    /// allowed to issue from all of them.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    pub fn new(slots: Vec<usize>) -> Self {
        Self::with_policy(slots, WarpSchedPolicy::Gto)
    }

    /// Creates a scheduler with an explicit policy.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    pub fn with_policy(slots: Vec<usize>, policy: WarpSchedPolicy) -> Self {
        assert!(
            !slots.is_empty(),
            "a scheduler must own at least one warp slot"
        );
        let limit = slots.len();
        GtoScheduler {
            slots,
            greedy: None,
            limit,
            policy,
        }
    }

    /// Priority-ordered candidate slots for this cycle: GTO puts the greedy
    /// warp first then oldest-first; LRR starts after the last issued warp.
    pub fn candidate(&self, k: usize) -> Option<usize> {
        let active = self.active_slots();
        match self.policy {
            WarpSchedPolicy::Gto => {
                if k == 0 {
                    self.greedy
                } else {
                    let s = *active.get(k - 1)?;
                    // The greedy warp was already offered at k = 0.
                    if Some(s) == self.greedy {
                        None
                    } else {
                        Some(s)
                    }
                }
            }
            WarpSchedPolicy::Lrr => {
                if k >= active.len() {
                    return None;
                }
                let start = self
                    .greedy
                    .and_then(|g| active.iter().position(|&s| s == g))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                Some(active[(start + k) % active.len()])
            }
        }
    }

    /// Number of candidate positions to try per cycle.
    pub fn n_candidates(&self) -> usize {
        match self.policy {
            WarpSchedPolicy::Gto => self.limit + 1,
            WarpSchedPolicy::Lrr => self.limit,
        }
    }

    /// Sets the SWL limit (clamped to the owned slot count; at least 1).
    pub fn set_limit(&mut self, limit: usize) {
        self.limit = limit.clamp(1, self.slots.len());
        // Drop the greedy pointer if it fell outside the active window.
        if let Some(g) = self.greedy {
            if !self.active_slots().contains(&g) {
                self.greedy = None;
            }
        }
    }

    /// The current SWL limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Slots currently allowed to issue.
    pub fn active_slots(&self) -> &[usize] {
        &self.slots[..self.limit]
    }

    /// All slots owned by this scheduler.
    pub fn slots(&self) -> &[usize] {
        &self.slots
    }

    /// The current greedy (most recently issued) warp slot, if any.
    pub fn greedy(&self) -> Option<usize> {
        self.greedy
    }

    /// Records that `slot` issued this cycle, making it the greedy warp.
    pub fn record_issue(&mut self, slot: usize) {
        debug_assert!(
            self.active_slots().contains(&slot),
            "issued slot outside SWL window"
        );
        self.greedy = Some(slot);
    }

    /// Picks the slot to issue from among active slots for which
    /// `ready(slot)` holds: the greedy warp if still ready, else the oldest
    /// ready warp. Records the pick as the new greedy warp.
    pub fn pick(&mut self, mut ready: impl FnMut(usize) -> bool) -> Option<usize> {
        if let Some(g) = self.greedy {
            if ready(g) {
                return Some(g);
            }
        }
        let pick = self.active_slots().iter().copied().find(|&s| ready(s));
        if pick.is_some() {
            self.greedy = pick;
        }
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lrr_rotates_past_the_last_issued_warp() {
        let mut s = GtoScheduler::with_policy(vec![0, 1, 2, 3], WarpSchedPolicy::Lrr);
        s.record_issue(1);
        // Next cycle, scanning starts at slot 2.
        assert_eq!(s.candidate(0), Some(2));
        assert_eq!(s.candidate(1), Some(3));
        assert_eq!(s.candidate(2), Some(0));
        assert_eq!(s.candidate(3), Some(1));
        assert_eq!(s.candidate(4), None);
    }

    #[test]
    fn gto_candidates_offer_greedy_first() {
        let mut s = GtoScheduler::new(vec![0, 1, 2, 3]);
        s.record_issue(2);
        assert_eq!(s.candidate(0), Some(2));
        assert_eq!(s.candidate(1), Some(0));
        assert_eq!(s.candidate(3), None, "greedy slot not offered twice");
        assert_eq!(s.candidate(4), Some(3));
    }

    #[test]
    fn greedy_sticks_to_ready_warp() {
        let mut s = GtoScheduler::new(vec![0, 1, 2, 3]);
        assert_eq!(s.pick(|w| w == 2), Some(2));
        // Warp 2 stays ready: greedy keeps it even though 0 is also ready.
        assert_eq!(s.pick(|w| w == 2 || w == 0), Some(2));
    }

    #[test]
    fn falls_back_to_oldest_ready() {
        let mut s = GtoScheduler::new(vec![0, 1, 2, 3]);
        assert_eq!(s.pick(|w| w == 3), Some(3));
        // Greedy warp 3 stalls: oldest ready (1) wins over younger (2).
        assert_eq!(s.pick(|w| w == 1 || w == 2), Some(1));
        // And 1 becomes the new greedy warp.
        assert_eq!(s.pick(|w| w == 1 || w == 2), Some(1));
    }

    #[test]
    fn swl_masks_younger_slots() {
        let mut s = GtoScheduler::new(vec![0, 1, 2, 3]);
        s.set_limit(2);
        assert_eq!(s.active_slots(), &[0, 1]);
        assert_eq!(s.pick(|w| w >= 2), None, "limited-out warps must not issue");
        assert_eq!(s.pick(|w| w == 1), Some(1));
    }

    #[test]
    fn lowering_limit_evicts_greedy_pointer() {
        let mut s = GtoScheduler::new(vec![0, 1, 2, 3]);
        assert_eq!(s.pick(|w| w == 3), Some(3));
        s.set_limit(2);
        // Greedy warp 3 is outside the window; even if "ready", it may not
        // be picked.
        assert_eq!(s.pick(|w| w == 3 || w == 0), Some(0));
    }

    #[test]
    fn limit_clamps() {
        let mut s = GtoScheduler::new(vec![0, 1]);
        s.set_limit(0);
        assert_eq!(s.limit(), 1);
        s.set_limit(99);
        assert_eq!(s.limit(), 2);
    }

    #[test]
    fn no_ready_warp_returns_none() {
        let mut s = GtoScheduler::new(vec![0, 1]);
        assert_eq!(s.pick(|_| false), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_scheduler_panics() {
        let _ = GtoScheduler::new(vec![]);
    }
}
