//! CCWS-style cache-conscious warp throttling (Rogers et al., MICRO 2012),
//! re-implemented from its published mechanism as the second prior-art
//! single-application TLP finder the paper names ("these individual best
//! TLP configurations can also be effectively calculated using previously
//! proposed runtime mechanisms (e.g., DynCTA, CCWS)").
//!
//! Mechanism: each warp owns a small **victim tag array** recording the
//! lines it lost from the L1. A miss that hits the warp's own victim tags
//! is *lost intra-warp locality* — evidence that too many warps share the
//! cache. Lost-locality scores accumulate per warp and decay over time;
//! when the core's total score is high the throttle lowers the number of
//! schedulable warps (protecting the cache), and when locality stops being
//! lost it raises it again.
//!
//! The published scheme prioritizes individual high-score warps; this
//! implementation modulates the SWL warp-limit instead (the knob everything
//! else in this workspace speaks), which preserves the behaviour the HPCA
//! paper relies on: CCWS converges near the best-performing TLP of a
//! cache-sensitive application running alone.

use gpu_types::Address;
use std::collections::VecDeque;

/// Tuning of the CCWS throttle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcwsParams {
    /// Victim tags remembered per warp.
    pub victim_entries: usize,
    /// Score added per lost-locality event.
    pub score_per_hit: f64,
    /// Cycles between throttle decisions.
    pub interval: u64,
    /// Total score (per active warp) above which the limit steps down.
    pub high_score: f64,
    /// Total score (per active warp) below which the limit steps up.
    pub low_score: f64,
}

impl Default for CcwsParams {
    fn default() -> Self {
        CcwsParams {
            victim_entries: 32,
            score_per_hit: 1.0,
            interval: 2_000,
            high_score: 0.25,
            low_score: 0.05,
        }
    }
}

/// Per-core CCWS state: victim tags, lost-locality scores and the warp
/// limit they currently justify.
#[derive(Debug)]
pub struct CcwsThrottle {
    params: CcwsParams,
    victim_tags: Vec<VecDeque<u64>>,
    scores: Vec<f64>,
    /// Current per-scheduler warp limit chosen by CCWS.
    limit: usize,
    max_limit: usize,
    next_decision: u64,
}

impl CcwsThrottle {
    /// Creates a throttle for `n_warps` warp slots with `max_limit` warps
    /// per scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `max_limit` is zero.
    pub fn new(n_warps: usize, max_limit: usize, params: CcwsParams) -> Self {
        assert!(max_limit > 0, "max limit must be non-zero");
        CcwsThrottle {
            params,
            victim_tags: vec![VecDeque::new(); n_warps],
            scores: vec![0.0; n_warps],
            limit: max_limit,
            max_limit,
            next_decision: params.interval,
        }
    }

    /// Records that `slot` lost `line` from the L1 (an eviction of a line
    /// it brought in).
    pub fn on_evict(&mut self, slot: usize, line: Address) {
        let tags = &mut self.victim_tags[slot];
        if tags.len() == self.params.victim_entries {
            tags.pop_front();
        }
        tags.push_back(line.line_index());
    }

    /// Records an L1 miss by `slot`; returns true when the miss hit the
    /// warp's victim tags (lost locality).
    pub fn on_miss(&mut self, slot: usize, line: Address) -> bool {
        let idx = line.line_index();
        let tags = &mut self.victim_tags[slot];
        if let Some(pos) = tags.iter().position(|&t| t == idx) {
            tags.remove(pos);
            self.scores[slot] += self.params.score_per_hit;
            true
        } else {
            false
        }
    }

    /// Advances time; at each decision interval, modulates the warp limit
    /// from the per-active-warp lost-locality score and halves the scores
    /// (exponential decay).
    pub fn tick(&mut self, now: u64) {
        if now < self.next_decision {
            return;
        }
        self.next_decision = now + self.params.interval;
        let total: f64 = self.scores.iter().sum();
        let per_warp = total / self.limit.max(1) as f64;
        if per_warp > self.params.high_score && self.limit > 1 {
            self.limit -= 1;
        } else if per_warp < self.params.low_score && self.limit < self.max_limit {
            self.limit += 1;
        }
        for s in &mut self.scores {
            *s *= 0.5;
        }
    }

    /// The warp limit CCWS currently justifies (per scheduler).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Current lost-locality score of `slot` (diagnostics).
    pub fn score(&self, slot: usize) -> f64 {
        self.scores[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> Address {
        Address::new(i * 128)
    }

    fn throttle() -> CcwsThrottle {
        CcwsThrottle::new(16, 8, CcwsParams::default())
    }

    #[test]
    fn miss_on_own_victim_scores() {
        let mut c = throttle();
        c.on_evict(3, line(7));
        assert!(
            c.on_miss(3, line(7)),
            "re-missing an evicted line is lost locality"
        );
        assert!(c.score(3) > 0.0);
    }

    #[test]
    fn miss_on_other_warps_victim_does_not_score() {
        let mut c = throttle();
        c.on_evict(3, line(7));
        assert!(!c.on_miss(4, line(7)), "victim tags are per-warp");
        assert_eq!(c.score(4), 0.0);
    }

    #[test]
    fn cold_misses_do_not_score() {
        let mut c = throttle();
        assert!(!c.on_miss(0, line(9)));
    }

    #[test]
    fn victim_tags_are_bounded() {
        let mut c = CcwsThrottle::new(
            4,
            4,
            CcwsParams {
                victim_entries: 2,
                ..Default::default()
            },
        );
        c.on_evict(0, line(1));
        c.on_evict(0, line(2));
        c.on_evict(0, line(3)); // evicts tag for line 1
        assert!(
            !c.on_miss(0, line(1)),
            "oldest victim tag must be forgotten"
        );
        assert!(c.on_miss(0, line(3)));
    }

    #[test]
    fn high_lost_locality_throttles_down() {
        let mut c = throttle();
        for _ in 0..16 {
            c.on_evict(0, line(1));
            c.on_miss(0, line(1));
        }
        c.tick(2_000);
        assert!(c.limit() < 8, "limit should step down, got {}", c.limit());
    }

    #[test]
    fn quiet_cache_recovers_the_limit() {
        let mut c = throttle();
        for _ in 0..16 {
            c.on_evict(0, line(1));
            c.on_miss(0, line(1));
        }
        c.tick(2_000);
        let throttled = c.limit();
        // Quiet intervals: scores decay exponentially while the limit first
        // keeps falling, bottoms out, then climbs all the way back.
        for k in 1..30 {
            c.tick(2_000 + k * 2_000);
        }
        assert!(c.limit() > throttled);
        assert_eq!(c.limit(), 8);
    }

    #[test]
    fn decisions_only_fire_at_intervals() {
        let mut c = throttle();
        for _ in 0..16 {
            c.on_evict(0, line(1));
            c.on_miss(0, line(1));
        }
        c.tick(100); // before the first interval
        assert_eq!(c.limit(), 8);
        c.tick(2_000);
        assert!(c.limit() < 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_limit_panics() {
        let _ = CcwsThrottle::new(4, 0, CcwsParams::default());
    }
}
