//! The SIMT core: warps + GTO schedulers + coalescer + private L1.
//!
//! A core is self-contained and `Send`: it talks to the memory system only
//! through its egress queue (`pop_request`) and `receive`, so the machine
//! layer may step disjoint sets of cores on different threads (the
//! `gpu-sim` crate's intra-simulation domain workers, docs/PARALLELISM.md)
//! without any synchronization inside this crate.

use crate::ccws::{CcwsParams, CcwsThrottle};
use crate::inst::{coalesce, Inst, InstStream};
use crate::scheduler::GtoScheduler;
use crate::warp::Warp;
use gpu_mem::cache::{Cache, CacheCounters, Lookup};
use gpu_mem::req::{AccessKind, MemRequest, ReqId};
use gpu_types::FxHashMap;
use gpu_types::{Address, AppId, CoreId, GpuConfig, TlpLevel};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Per-application tuning of a core's warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Outstanding-load tolerance per warp (dependency distance of the
    /// application's code).
    pub max_outstanding_loads: usize,
    /// Upper bound on transactions one instruction may generate after
    /// coalescing (32 = fully divergent warp).
    pub max_txn_per_inst: usize,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            max_outstanding_loads: 2,
            max_txn_per_inst: 32,
        }
    }
}

/// Cumulative per-core statistics.
///
/// `mem_stall_cycles` and `idle_cycles` drive the DynCTA baseline's
/// latency-tolerance heuristic; `insts` drives IPC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles stepped.
    pub cycles: u64,
    /// Warp instructions issued.
    pub insts: u64,
    /// Cycles where no scheduler issued and at least one active warp was
    /// blocked on outstanding memory.
    pub mem_stall_cycles: u64,
    /// Cycles where no scheduler issued although a warp was ready
    /// (structural hazard: L1 MSHRs or the egress queue were full).
    pub struct_stall_cycles: u64,
    /// Cycles where no active warp could issue for any other reason
    /// (ALU latency, or all warps finished).
    pub idle_cycles: u64,
    /// Sum over cycles of the number of active warps blocked on outstanding
    /// memory — `warp_mem_wait_cycles / active_warp_cycles` is the
    /// memory-wait occupancy DynCTA's latency-tolerance heuristic reads.
    pub warp_mem_wait_cycles: u64,
    /// Sum over cycles of the number of SWL-active warp slots.
    pub active_warp_cycles: u64,
}

impl CoreStats {
    /// Fraction of active warp-cycles spent blocked on memory (0 when no
    /// warps were active).
    pub fn mem_wait_occupancy(&self) -> f64 {
        if self.active_warp_cycles == 0 {
            0.0
        } else {
            self.warp_mem_wait_cycles as f64 / self.active_warp_cycles as f64
        }
    }
}

/// Per-warp stall-reason breakdown, in warp-cycles: each cycle, every warp
/// slot of the core is charged to exactly one bucket.  Recorded only while
/// metrics are enabled ([`SimtCore::set_metrics_enabled`]) and snapshotted
/// per sampling window by the `gpu_sim::metrics` registry.
///
/// Invariant: `mem + exec + barrier + tlp_capped + <issued insts>` equals
/// `warps × cycles` over any recorded stretch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarpStalls {
    /// Warp-cycles of SWL-active warps blocked on outstanding memory.
    pub mem: u64,
    /// Warp-cycles of SWL-active warps not blocked on memory and not
    /// issuing (ALU latency, scheduler lost arbitration, or finished).
    pub exec: u64,
    /// Warp-cycles blocked at a barrier.  Reserved: the synthetic ISA
    /// ([`Inst`]) has no barrier instruction, so this is always zero —
    /// kept so the trace schema does not change when barriers land.
    pub barrier: u64,
    /// Warp-cycles of slots deactivated by the SWL/TLP limit (the paper's
    /// throttling knob) or CCWS.
    pub tlp_capped: u64,
}

impl WarpStalls {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &WarpStalls) {
        self.mem += other.mem;
        self.exec += other.exec;
        self.barrier += other.barrier;
        self.tlp_capped += other.tlp_capped;
    }

    /// Returns the accumulated counters and resets `self` — the per-window
    /// snapshot operation.
    pub fn take(&mut self) -> WarpStalls {
        std::mem::take(self)
    }

    /// Total warp-cycles across all buckets.
    pub fn total(&self) -> u64 {
        self.mem + self.exec + self.barrier + self.tlp_capped
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    warp_slot: usize,
    /// False when the request bypassed the L1 (its response is routed
    /// straight to the warp instead of through a cache fill).
    cached: bool,
}

/// Why a sleeping core's cycles are charged: the stall classification is
/// constant over the whole quiescent stretch (it only depends on
/// `waiting_mem` state, which changes only via [`SimtCore::receive`] — and a
/// receive wakes the core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SleepKind {
    /// At least one active warp is blocked on outstanding memory.
    Mem,
    /// No active warp can issue for any other reason (ALU latency or all
    /// warps finished).
    Idle,
    /// A ready warp exists but every one is structurally blocked (egress
    /// queue or L1 MSHRs full). Cleared by [`SimtCore::pop_request`] — the
    /// only way egress space frees — as well as the usual response/knob
    /// wakes (MSHRs free only via [`SimtCore::receive`]).
    Struct,
}

/// One SIMT core running a single application's warps.
pub struct SimtCore {
    /// This core's identity.
    pub id: CoreId,
    /// The application the core is assigned to (§II-A: exclusive core sets).
    pub app: AppId,
    warps: Vec<Warp>,
    schedulers: Vec<GtoScheduler>,
    l1: Cache,
    l1_hit_latency: u64,
    bypass_l1: bool,
    pending: FxHashMap<ReqId, PendingLoad>,
    hit_returns: BinaryHeap<Reverse<(u64, u64, ReqId)>>,
    egress: VecDeque<MemRequest>,
    egress_capacity: usize,
    params: CoreParams,
    next_req: u64,
    seq: u64,
    /// Active warps currently blocked on outstanding memory (maintained
    /// incrementally; feeds `CoreStats::warp_mem_wait_cycles`).
    waiting_now: usize,
    /// CCWS-style cache-conscious throttling, when enabled: modulates an
    /// additional warp limit from lost-locality scores.
    ccws: Option<CcwsThrottle>,
    /// Owner (warp slot) of each L1-resident line, for victim attribution.
    line_owner: FxHashMap<u64, usize>,
    /// The externally requested SWL level (CCWS caps below it).
    swl_limit: usize,
    /// Sum of SWL-active warp slots across schedulers, maintained
    /// incrementally by [`SimtCore::apply_limits`] instead of being
    /// recomputed from `active_slots().len()` every cycle.
    active_slots_total: u64,
    /// When `Some((until, kind))`, a full step at any cycle strictly before
    /// `until` is proven to issue nothing and change no state besides the
    /// per-cycle counters — [`SimtCore::step`] takes a counters-only fast
    /// path. Cleared by anything that could change issue eligibility
    /// (responses, TLP/CCWS/bypass knobs).
    sleep: Option<(u64, SleepKind)>,
    /// Reused buffer for the waiters released by an L1 fill (avoids a heap
    /// allocation per response on the hot path).
    waiter_scratch: Vec<ReqId>,
    stats: CoreStats,
    /// When true, the per-warp stall breakdown below is recorded each
    /// cycle; off by default (gated like `TraceSink::enabled()`).
    metrics: bool,
    warp_stalls: WarpStalls,
}

impl std::fmt::Debug for SimtCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimtCore")
            .field("id", &self.id)
            .field("app", &self.app)
            .field("warps", &self.warps.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SimtCore {
    /// Builds a core for application `app` with one instruction stream per
    /// warp slot.
    ///
    /// # Panics
    ///
    /// Panics if `streams` does not provide exactly
    /// `cfg.warps_per_core` streams.
    pub fn new(
        id: CoreId,
        app: AppId,
        cfg: &GpuConfig,
        params: CoreParams,
        streams: Vec<Box<dyn InstStream>>,
    ) -> Self {
        assert_eq!(
            streams.len(),
            cfg.warps_per_core,
            "need one instruction stream per warp slot"
        );
        let warps: Vec<Warp> = streams
            .into_iter()
            .map(|s| Warp::new(s, params.max_outstanding_loads))
            .collect();
        let per_sched = cfg.warps_per_scheduler();
        let schedulers = (0..cfg.schedulers_per_core)
            .map(|s| {
                GtoScheduler::with_policy(
                    (s * per_sched..(s + 1) * per_sched).collect(),
                    cfg.scheduler,
                )
            })
            .collect();
        SimtCore {
            id,
            app,
            warps,
            schedulers,
            // The L1 is private to this core's application, but counters are
            // indexed by the machine-wide AppId, so size up to it.
            l1: Cache::new(&cfg.l1, app.index() + 1),
            l1_hit_latency: cfg.l1.hit_latency as u64,
            bypass_l1: false,
            pending: FxHashMap::default(),
            hit_returns: BinaryHeap::new(),
            egress: VecDeque::new(),
            egress_capacity: 16,
            params,
            next_req: 0,
            seq: 0,
            waiting_now: 0,
            ccws: None,
            line_owner: FxHashMap::default(),
            swl_limit: cfg.warps_per_scheduler(),
            active_slots_total: (cfg.schedulers_per_core * cfg.warps_per_scheduler()) as u64,
            sleep: None,
            waiter_scratch: Vec::new(),
            stats: CoreStats::default(),
            metrics: false,
            warp_stalls: WarpStalls::default(),
        }
    }

    /// Enables or disables per-warp stall-reason recording.  Purely an
    /// accounting switch: it never perturbs scheduling or sleep state, so
    /// toggling it cannot change simulation results.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics = on;
    }

    /// Charges `k` cycles' worth of warp slots to stall buckets, given
    /// that `issued` warps issued an instruction this cycle.  Called from
    /// all four step paths (full, reference, sleep fast path, batch idle
    /// credit) with identical arithmetic, so the engine-equivalence
    /// invariant (optimized == reference, bit for bit) extends to these
    /// counters.
    #[inline]
    fn record_warp_stalls(&mut self, issued: u64, k: u64) {
        if !self.metrics {
            return;
        }
        let total = self.warps.len() as u64;
        let active = self.active_slots_total;
        let waiting = self.waiting_now as u64;
        self.warp_stalls.mem += waiting * k;
        self.warp_stalls.tlp_capped += total.saturating_sub(active) * k;
        self.warp_stalls.exec += active.saturating_sub(waiting + issued) * k;
    }

    /// The stall breakdown accumulated since the last take (all zero
    /// unless metrics recording is enabled).
    pub fn warp_stalls(&self) -> WarpStalls {
        self.warp_stalls
    }

    /// Returns and resets the accumulated stall breakdown — the
    /// per-window snapshot operation.
    pub fn take_warp_stalls(&mut self) -> WarpStalls {
        self.warp_stalls.take()
    }

    /// Applies a TLP level to every scheduler (the SWL knob). When CCWS is
    /// enabled, the effective limit is the minimum of the two.
    pub fn set_tlp(&mut self, level: TlpLevel) {
        self.swl_limit = level.get() as usize;
        self.apply_limits();
    }

    fn apply_limits(&mut self) {
        let eff = match &self.ccws {
            Some(c) => self.swl_limit.min(c.limit()),
            None => self.swl_limit,
        };
        for s in &mut self.schedulers {
            s.set_limit(eff);
        }
        // Schedulers clamp the limit to their slot count, so re-sum the
        // actual limits rather than assuming `eff` stuck.
        self.active_slots_total = self.schedulers.iter().map(|s| s.limit() as u64).sum();
        self.sleep = None;
    }

    /// Enables or disables CCWS-style cache-conscious throttling.
    pub fn set_ccws(&mut self, enabled: bool) {
        if enabled && self.ccws.is_none() {
            let per_sched = self.warps.len() / self.schedulers.len();
            self.ccws = Some(CcwsThrottle::new(
                self.warps.len(),
                per_sched,
                CcwsParams::default(),
            ));
        } else if !enabled {
            self.ccws = None;
        }
        self.apply_limits();
    }

    /// True when CCWS throttling is active.
    pub fn ccws_enabled(&self) -> bool {
        self.ccws.is_some()
    }

    /// The TLP level currently applied (all schedulers share it).
    pub fn tlp(&self) -> usize {
        self.schedulers[0].limit()
    }

    /// Enables or disables L1 bypassing (Mod+Bypass baseline). Takes effect
    /// for future loads; in-flight cached loads still fill the L1.
    pub fn set_bypass_l1(&mut self, bypass: bool) {
        self.bypass_l1 = bypass;
        self.sleep = None;
    }

    /// True when L1 accesses currently bypass the cache.
    pub fn bypass_l1(&self) -> bool {
        self.bypass_l1
    }

    fn fresh_id(&mut self) -> ReqId {
        self.next_req += 1;
        ReqId(((self.id.index() as u64) << 40) | self.next_req)
    }

    fn complete(&mut self, id: ReqId) {
        if let Some(p) = self.pending.remove(&id) {
            let was_waiting = self.warps[p.warp_slot].waiting_mem();
            self.warps[p.warp_slot].load_returned();
            if was_waiting && !self.warps[p.warp_slot].waiting_mem() {
                self.waiting_now -= 1;
            }
        }
    }

    /// Delivers a load response from the interconnect.
    pub fn receive(&mut self, resp: MemRequest) {
        debug_assert_eq!(resp.core, self.id, "response misrouted");
        // A response can make a blocked warp schedulable again.
        self.sleep = None;
        let cached = self
            .pending
            .get(&resp.id)
            .map(|p| p.cached)
            .unwrap_or(false);
        if cached {
            let mut waiters = std::mem::take(&mut self.waiter_scratch);
            let victim = self.l1.fill_into(resp.addr, &mut waiters);
            if self.ccws.is_some() {
                self.line_owner
                    .insert(resp.addr.line_index(), resp.warp_slot);
                if let Some(v) = victim {
                    if let Some(owner) = self.line_owner.remove(&v.line_index()) {
                        if let Some(ccws) = &mut self.ccws {
                            ccws.on_evict(owner, v);
                        }
                    }
                }
            }
            for &w in &waiters {
                self.complete(w);
            }
            // Defensive: the allocating request is always in the waiter list,
            // but make sure it is not leaked if the fill raced.
            self.complete(resp.id);
            waiters.clear();
            self.waiter_scratch = waiters;
        } else {
            self.complete(resp.id);
        }
    }

    /// Next outbound memory request, if the interconnect can take one.
    ///
    /// Popping frees egress space, which is one of the two conditions a
    /// struct-stalled sleep waits on — so it wakes that sleep (Mem/Idle
    /// sleeps don't care about egress space and stay put).
    pub fn pop_request(&mut self) -> Option<MemRequest> {
        let r = self.egress.pop_front();
        if r.is_some() && matches!(self.sleep, Some((_, SleepKind::Struct))) {
            self.sleep = None;
        }
        r
    }

    /// Peeks the next outbound request without removing it.
    pub fn peek_request(&self) -> Option<&MemRequest> {
        self.egress.front()
    }

    fn issue_load(&mut self, slot: usize, addrs: &[Address], now: u64) -> bool {
        let mut lines = coalesce(addrs);
        lines.truncate(self.params.max_txn_per_inst);
        // Structural hazards: egress space for the worst case (all miss or
        // bypass), and enough free L1 MSHR headroom when cached.
        if self.egress.len() + lines.len() > self.egress_capacity {
            return false;
        }
        if !self.bypass_l1 && self.l1.mshr_free() < lines.len() {
            return false;
        }
        let n = lines.len();
        let was_waiting = self.warps[slot].waiting_mem();
        for &line in &lines {
            let id = self.fresh_id();
            self.pending.insert(
                id,
                PendingLoad {
                    warp_slot: slot,
                    cached: !self.bypass_l1,
                },
            );
            let req = MemRequest::new(id, self.app, self.id, slot, line, AccessKind::Load);
            if self.bypass_l1 {
                self.egress.push_back(req.bypassing());
                continue;
            }
            match self.l1.access_load(self.app, line, id) {
                Lookup::Hit => {
                    self.seq += 1;
                    self.hit_returns
                        .push(Reverse((now + self.l1_hit_latency, self.seq, id)));
                }
                Lookup::MissToLower => {
                    if let Some(ccws) = &mut self.ccws {
                        ccws.on_miss(slot, line);
                    }
                    self.egress.push_back(req);
                }
                Lookup::MissMerged => {
                    if let Some(ccws) = &mut self.ccws {
                        ccws.on_miss(slot, line);
                    }
                }
                Lookup::Stall => {
                    // Entry headroom was checked, so this is a full *merge*
                    // list on an in-flight line. Fall back to an uncached
                    // direct request (egress space was reserved for every
                    // line of this instruction).
                    self.pending.insert(
                        id,
                        PendingLoad {
                            warp_slot: slot,
                            cached: false,
                        },
                    );
                    self.egress.push_back(req);
                }
            }
        }
        self.warps[slot].issue_mem(now, n);
        if !was_waiting && self.warps[slot].waiting_mem() {
            self.waiting_now += 1;
        }
        true
    }

    fn issue_store(&mut self, slot: usize, addrs: &[Address], now: u64) -> bool {
        let mut lines = coalesce(addrs);
        lines.truncate(self.params.max_txn_per_inst);
        if self.egress.len() + lines.len() > self.egress_capacity {
            return false;
        }
        for &line in &lines {
            let id = self.fresh_id();
            self.egress.push_back(MemRequest::new(
                id,
                self.app,
                self.id,
                slot,
                line,
                AccessKind::Store,
            ));
        }
        self.warps[slot].issue_mem(now, 0);
        true
    }

    /// Advances the core one cycle: returns L1 hits that completed and lets
    /// each scheduler issue at most one warp instruction.
    ///
    /// When the core proved itself quiescent on a previous cycle (see
    /// [`Self::quiescent_until`]) this takes a counters-only fast path that
    /// records exactly what the full step would have recorded; the
    /// engine-equivalence suite checks this bit-for-bit against
    /// [`Self::step_reference`].
    pub fn step(&mut self, now: u64) {
        if let Some((until, kind)) = self.sleep {
            if now < until {
                self.stats.cycles += 1;
                self.stats.warp_mem_wait_cycles += self.waiting_now as u64;
                self.stats.active_warp_cycles += self.active_slots_total;
                match kind {
                    SleepKind::Mem => self.stats.mem_stall_cycles += 1,
                    SleepKind::Idle => self.stats.idle_cycles += 1,
                    SleepKind::Struct => self.stats.struct_stall_cycles += 1,
                }
                self.record_warp_stalls(0, 1);
                return;
            }
            self.sleep = None;
        }
        self.step_full(now);
    }

    fn step_full(&mut self, now: u64) {
        self.stats.cycles += 1;
        if let Some(ccws) = &mut self.ccws {
            let before = ccws.limit();
            ccws.tick(now);
            if ccws.limit() != before {
                self.apply_limits();
            }
        }
        self.stats.warp_mem_wait_cycles += self.waiting_now as u64;
        debug_assert_eq!(
            self.active_slots_total,
            self.schedulers
                .iter()
                .map(|s| s.active_slots().len() as u64)
                .sum::<u64>(),
            "incremental active-slot count diverged from the scan"
        );
        self.stats.active_warp_cycles += self.active_slots_total;

        // 1. L1 hits whose latency elapsed wake their warps.
        while matches!(self.hit_returns.peek(), Some(Reverse((t, _, _))) if *t <= now) {
            let Reverse((_, _, id)) = self.hit_returns.pop().expect("peeked");
            self.complete(id);
        }

        // 2. Issue: per scheduler, walk GTO priority order and issue the
        //    first warp whose instruction clears structural hazards.
        let mut issued_total = 0;
        let mut saw_struct_block = false;
        for si in 0..self.schedulers.len() {
            // Policy-defined priority order (GTO: greedy then oldest-first;
            // LRR: rotate past the last issued warp), walked by index to
            // avoid per-cycle allocation.
            let n_candidates = self.schedulers[si].n_candidates();
            for k in 0..n_candidates {
                let Some(slot) = self.schedulers[si].candidate(k) else {
                    continue;
                };
                if !self.warps[slot].ready(now) {
                    continue;
                }
                // O(1) structural gates, read before touching the
                // instruction: under congestion every scheduler re-offers
                // its blocked warps each cycle, and peeking by reference
                // with these gates keeps that retry free of both the
                // coalesce scan and any copy of the warp-width address
                // list. The gated outcome is exactly what `issue_load` /
                // `issue_store` would return (their line count is >= 1 for
                // a non-empty address list).
                let egress_full = self.egress.len() >= self.egress_capacity;
                let mshr_exhausted = !self.bypass_l1 && self.l1.mshr_free() == 0;
                let ok = match self.warps[slot].peek_inst() {
                    None => continue,
                    Some(Inst::Alu { cycles }) => {
                        let cycles = *cycles;
                        self.warps[slot].consume_inst();
                        self.warps[slot].issue_alu(now, cycles);
                        true
                    }
                    Some(Inst::Load { addrs }) => {
                        if !addrs.is_empty() && (egress_full || mshr_exhausted) {
                            false
                        } else {
                            let addrs = *addrs;
                            let ok = self.issue_load(slot, &addrs, now);
                            if ok {
                                self.warps[slot].consume_inst();
                            }
                            ok
                        }
                    }
                    Some(Inst::Store { addrs }) => {
                        if !addrs.is_empty() && egress_full {
                            false
                        } else {
                            let addrs = *addrs;
                            let ok = self.issue_store(slot, &addrs, now);
                            if ok {
                                self.warps[slot].consume_inst();
                            }
                            ok
                        }
                    }
                };
                if ok {
                    self.stats.insts += 1;
                    issued_total += 1;
                    self.schedulers[si].record_issue(slot);
                    break;
                }
                // Structural hazard: the instruction stays in the warp's
                // stash; the next peek returns it again.
                saw_struct_block = true;
            }
        }

        // 3. Stall classification for DynCTA-style heuristics, fused with
        //    the sleep-horizon computation: in a no-issue, no-struct-block
        //    cycle every active ready warp was offered and declined (only
        //    possible by being finished or not yet ready), so nothing can
        //    happen before the earliest of {pending hit return, earliest
        //    warp ready_at} — unless an external event (receive, knob
        //    change) clears the sleep first.
        if issued_total == 0 {
            if saw_struct_block {
                self.stats.struct_stall_cycles += 1;
                // Every ready warp was offered and structurally blocked.
                // Egress and MSHR space free only via pop_request / receive,
                // which clear the sleep, so until then the only internal
                // events are pending hit returns and ALU-latency warps
                // becoming ready.
                if self.ccws.is_none() {
                    let mut wake = u64::MAX;
                    if let Some(Reverse((t, _, _))) = self.hit_returns.peek() {
                        wake = *t;
                    }
                    for s in &self.schedulers {
                        for &slot in s.active_slots() {
                            let w = &self.warps[slot];
                            if w.finished() || w.waiting_mem() || w.ready(now) {
                                continue;
                            }
                            wake = wake.min(w.next_ready_at());
                        }
                    }
                    debug_assert!(wake > now, "pending wakes must lie in the future");
                    self.sleep = Some((wake, SleepKind::Struct));
                }
            } else {
                let mut any_waiting = false;
                let mut wake = u64::MAX;
                if let Some(Reverse((t, _, _))) = self.hit_returns.peek() {
                    wake = *t;
                }
                for s in &self.schedulers {
                    for &slot in s.active_slots() {
                        let w = &self.warps[slot];
                        if w.finished() {
                            continue;
                        }
                        if w.waiting_mem() {
                            any_waiting = true;
                        } else {
                            wake = wake.min(w.next_ready_at());
                        }
                    }
                }
                if any_waiting {
                    self.stats.mem_stall_cycles += 1;
                } else {
                    self.stats.idle_cycles += 1;
                }
                // CCWS must tick every cycle, so throttled cores never sleep.
                if self.ccws.is_none() {
                    debug_assert!(wake > now, "a ready warp should have issued this cycle");
                    self.sleep = Some((
                        wake,
                        if any_waiting {
                            SleepKind::Mem
                        } else {
                            SleepKind::Idle
                        },
                    ));
                }
            }
        }
        self.record_warp_stalls(issued_total, 1);
    }

    /// Reference implementation of [`Self::step`]: the original per-cycle
    /// algorithm with no sleep fast path and the active-slot sum recomputed
    /// by scanning every cycle. Kept only for differential testing
    /// (`engine_equivalence`); never used on the hot path.
    pub fn step_reference(&mut self, now: u64) {
        self.sleep = None;
        self.stats.cycles += 1;
        if let Some(ccws) = &mut self.ccws {
            let before = ccws.limit();
            ccws.tick(now);
            if ccws.limit() != before {
                self.apply_limits();
            }
        }
        self.stats.warp_mem_wait_cycles += self.waiting_now as u64;
        self.stats.active_warp_cycles += self
            .schedulers
            .iter()
            .map(|s| s.active_slots().len() as u64)
            .sum::<u64>();

        while matches!(self.hit_returns.peek(), Some(Reverse((t, _, _))) if *t <= now) {
            let Reverse((_, _, id)) = self.hit_returns.pop().expect("peeked");
            self.complete(id);
        }

        let mut issued_total = 0;
        let mut saw_struct_block = false;
        for si in 0..self.schedulers.len() {
            let n_candidates = self.schedulers[si].n_candidates();
            for k in 0..n_candidates {
                let Some(slot) = self.schedulers[si].candidate(k) else {
                    continue;
                };
                if !self.warps[slot].ready(now) {
                    continue;
                }
                let Some(inst) = self.warps[slot].fetch() else {
                    continue;
                };
                let ok = match &inst {
                    Inst::Alu { cycles } => {
                        self.warps[slot].issue_alu(now, *cycles);
                        true
                    }
                    Inst::Load { addrs } => self.issue_load(slot, addrs, now),
                    Inst::Store { addrs } => self.issue_store(slot, addrs, now),
                };
                if ok {
                    self.stats.insts += 1;
                    issued_total += 1;
                    self.schedulers[si].record_issue(slot);
                    break;
                }
                self.warps[slot].stash(inst);
                saw_struct_block = true;
            }
        }

        if issued_total == 0 {
            if saw_struct_block {
                self.stats.struct_stall_cycles += 1;
            } else {
                let any_waiting_mem = self
                    .schedulers
                    .iter()
                    .flat_map(|s| s.active_slots())
                    .any(|&slot| self.warps[slot].waiting_mem());
                if any_waiting_mem {
                    self.stats.mem_stall_cycles += 1;
                } else {
                    self.stats.idle_cycles += 1;
                }
            }
        }
        self.record_warp_stalls(issued_total, 1);
    }

    /// The cycle (exclusive) until which stepping this core is provably a
    /// counters-only no-op, or `None` when the core must be stepped at
    /// `now`. The engine uses this to fast-forward quiescent stretches.
    pub fn quiescent_until(&self, now: u64) -> Option<u64> {
        match self.sleep {
            Some((until, _)) if until > now => Some(until),
            _ => None,
        }
    }

    /// The earliest cycle `>= from` at which this core must be stepped —
    /// its "next event at" contract for the event engine. Returns `from`
    /// while the core is awake (it issues or classifies a stall every
    /// cycle); the sleep horizon otherwise. `u64::MAX` means no
    /// self-scheduled wake exists: only an external event — a response
    /// delivery, an egress pop, a knob change — can create work, and the
    /// engine credits the skipped cycles in one batch via
    /// [`Self::credit_idle_cycles`] when that happens. Queued egress does
    /// NOT force per-cycle stepping: the machine drains a sleeping core's
    /// egress on its own (tracking it in an egress-pending set) and the
    /// pop wakes the core if that could change issue eligibility.
    pub fn next_event(&self, from: u64) -> u64 {
        match self.sleep {
            Some((until, _)) => until.max(from),
            None => from,
        }
    }

    /// Charges `k` cycles of quiescent time in one batch — exactly what `k`
    /// consecutive fast-path [`Self::step`] calls would have recorded. Only
    /// valid while the core is sleeping (all charged cycles must lie before
    /// the sleep horizon).
    pub fn credit_idle_cycles(&mut self, k: u64) {
        let Some((_, kind)) = self.sleep else {
            debug_assert!(false, "credit_idle_cycles on an awake core");
            return;
        };
        self.stats.cycles += k;
        self.stats.warp_mem_wait_cycles += self.waiting_now as u64 * k;
        self.stats.active_warp_cycles += self.active_slots_total * k;
        match kind {
            SleepKind::Mem => self.stats.mem_stall_cycles += k,
            SleepKind::Idle => self.stats.idle_cycles += k,
            SleepKind::Struct => self.stats.struct_stall_cycles += k,
        }
        self.record_warp_stalls(0, k);
    }

    /// True when outbound memory requests are queued for the interconnect.
    pub fn has_egress(&self) -> bool {
        !self.egress.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// L1 counters for `app` (normally this core's own application).
    pub fn l1_counters(&self, app: AppId) -> CacheCounters {
        self.l1.counters(app)
    }

    /// True when every warp has retired and no memory is outstanding.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.egress.is_empty() && self.warps.iter().all(|w| w.finished())
    }

    /// Loads in flight from this core.
    pub fn outstanding_loads(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::AddrList;
    use crate::streams::{LoopOverSet, Scripted, Streaming};

    fn small_cfg() -> GpuConfig {
        GpuConfig::small()
    }

    fn idle_streams(cfg: &GpuConfig) -> Vec<Box<dyn InstStream>> {
        (0..cfg.warps_per_core)
            .map(|_| Box::new(Scripted::new(vec![])) as Box<dyn InstStream>)
            .collect()
    }

    fn core_with_one_stream(stream: Box<dyn InstStream>, params: CoreParams) -> SimtCore {
        let cfg = small_cfg();
        let mut streams = idle_streams(&cfg);
        streams[0] = stream;
        SimtCore::new(CoreId(0), AppId::new(0), &cfg, params, streams)
    }

    /// Run the core standalone, echoing every egress load back after
    /// `mem_latency` cycles, for `cycles` cycles. Returns final stats.
    fn run_closed_loop(core: &mut SimtCore, cycles: u64, mem_latency: u64) -> CoreStats {
        let mut returns: std::collections::VecDeque<(u64, MemRequest)> = Default::default();
        for now in 0..cycles {
            while matches!(returns.front(), Some((t, _)) if *t <= now) {
                let (_, req) = returns.pop_front().unwrap();
                core.receive(req);
            }
            core.step(now);
            while let Some(req) = core.pop_request() {
                if req.needs_response() {
                    returns.push_back((now + mem_latency, req));
                }
            }
        }
        core.stats()
    }

    #[test]
    fn alu_stream_issues_one_inst_per_cycle() {
        let insts = vec![Inst::alu1(); 10];
        let mut core = core_with_one_stream(Box::new(Scripted::new(insts)), CoreParams::default());
        let stats = run_closed_loop(&mut core, 12, 1);
        assert_eq!(stats.insts, 10);
    }

    #[test]
    fn two_schedulers_issue_in_parallel() {
        let cfg = small_cfg();
        let mut streams = idle_streams(&cfg);
        // One ALU-heavy warp per scheduler: slot 0 (scheduler 0) and the
        // first slot of scheduler 1.
        let per_sched = cfg.warps_per_scheduler();
        streams[0] = Box::new(Scripted::new(vec![Inst::alu1(); 5]));
        streams[per_sched] = Box::new(Scripted::new(vec![Inst::alu1(); 5]));
        let mut core = SimtCore::new(
            CoreId(0),
            AppId::new(0),
            &cfg,
            CoreParams::default(),
            streams,
        );
        core.step(0);
        assert_eq!(
            core.stats().insts,
            2,
            "both schedulers must issue in the same cycle"
        );
    }

    #[test]
    fn load_misses_produce_requests_and_block_warp() {
        let mut core = core_with_one_stream(
            Box::new(Scripted::new(vec![Inst::load1(0), Inst::alu1()])),
            CoreParams {
                max_outstanding_loads: 1,
                max_txn_per_inst: 32,
            },
        );
        core.step(0);
        let req = core.pop_request().expect("cold load must miss to memory");
        assert_eq!(req.kind, AccessKind::Load);
        // Warp is blocked: no further instruction issues.
        core.step(1);
        assert_eq!(core.stats().insts, 1);
        assert!(core.stats().mem_stall_cycles >= 1);
        // Return the data: the ALU instruction can now issue.
        core.receive(req);
        core.step(2);
        assert_eq!(core.stats().insts, 2);
    }

    #[test]
    fn l1_hit_completes_without_memory_traffic() {
        let mut core = core_with_one_stream(
            Box::new(LoopOverSet::new(0, 1)),
            CoreParams {
                max_outstanding_loads: 1,
                max_txn_per_inst: 32,
            },
        );
        let stats = run_closed_loop(&mut core, 200, 20);
        let k = core.l1_counters(AppId::new(0));
        assert_eq!(k.misses, 1, "only the cold miss goes to memory");
        assert!(k.accesses > 10);
        assert!(stats.insts > 10);
    }

    #[test]
    fn bypass_skips_the_l1() {
        let mut core = core_with_one_stream(
            Box::new(LoopOverSet::new(0, 1)),
            CoreParams {
                max_outstanding_loads: 1,
                max_txn_per_inst: 32,
            },
        );
        core.set_bypass_l1(true);
        run_closed_loop(&mut core, 200, 5);
        let k = core.l1_counters(AppId::new(0));
        assert_eq!(k.accesses, 0, "bypassed loads never touch the L1");
        assert!(
            core.stats().insts > 5,
            "warp still makes progress via direct returns"
        );
    }

    #[test]
    fn coalesced_load_generates_one_transaction() {
        let addrs: AddrList = (0..32).map(|i| Address::new(i * 4)).collect();
        let mut core = core_with_one_stream(
            Box::new(Scripted::new(vec![Inst::Load { addrs }])),
            CoreParams::default(),
        );
        core.step(0);
        assert!(core.pop_request().is_some());
        assert!(
            core.pop_request().is_none(),
            "32 threads in one line coalesce to 1 txn"
        );
    }

    #[test]
    fn divergent_load_generates_many_transactions() {
        let addrs: AddrList = (0..8).map(|i| Address::new(i * 128 * 1024)).collect();
        let mut core = core_with_one_stream(
            Box::new(Scripted::new(vec![Inst::Load { addrs }])),
            CoreParams {
                max_outstanding_loads: 8,
                max_txn_per_inst: 32,
            },
        );
        core.step(0);
        let mut n = 0;
        while core.pop_request().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
    }

    #[test]
    fn swl_limits_active_warps() {
        let cfg = small_cfg();
        // Every warp is an infinite streaming kernel.
        let streams: Vec<Box<dyn InstStream>> = (0..cfg.warps_per_core)
            .map(|i| Box::new(Streaming::new((i as u64) << 20, 128, 0)) as Box<dyn InstStream>)
            .collect();
        let mut core = SimtCore::new(
            CoreId(0),
            AppId::new(0),
            &cfg,
            CoreParams {
                max_outstanding_loads: 1,
                max_txn_per_inst: 32,
            },
            streams,
        );
        core.set_tlp(TlpLevel::new(1).unwrap());
        core.step(0);
        core.step(1);
        // With TLP=1 and tolerance 1, at most one load per scheduler can be
        // outstanding.
        assert!(
            core.outstanding_loads() <= cfg.schedulers_per_core,
            "SWL failed to limit concurrency: {} outstanding",
            core.outstanding_loads()
        );
        assert_eq!(core.tlp(), 1);
    }

    #[test]
    fn stores_do_not_block_warps() {
        let mut core = core_with_one_stream(
            Box::new(Scripted::new(vec![Inst::store1(0), Inst::alu1()])),
            CoreParams {
                max_outstanding_loads: 1,
                max_txn_per_inst: 32,
            },
        );
        core.step(0);
        core.step(1);
        assert_eq!(core.stats().insts, 2);
        let req = core.pop_request().unwrap();
        assert_eq!(req.kind, AccessKind::Store);
    }

    #[test]
    fn struct_stall_when_egress_saturated() {
        // A warp issuing highly divergent loads with huge tolerance will
        // eventually fill the 16-entry egress queue if nothing drains it.
        let addrs: AddrList = (0..32).map(|i| Address::new(i * 128 * 4096)).collect();
        let insts = vec![Inst::Load { addrs }; 4];
        let mut core = core_with_one_stream(
            Box::new(Scripted::new(insts)),
            CoreParams {
                max_outstanding_loads: 1024,
                max_txn_per_inst: 32,
            },
        );
        for now in 0..8 {
            core.step(now);
        }
        assert!(core.stats().struct_stall_cycles > 0);
    }

    #[test]
    fn greedy_warp_keeps_issuing() {
        let cfg = small_cfg();
        let mut streams = idle_streams(&cfg);
        streams[0] = Box::new(Scripted::new(vec![Inst::alu1(); 3]));
        streams[1] = Box::new(Scripted::new(vec![Inst::alu1(); 3]));
        let mut core = SimtCore::new(
            CoreId(0),
            AppId::new(0),
            &cfg,
            CoreParams::default(),
            streams,
        );
        // Warp 0 is oldest: GTO picks it and sticks with it 3 cycles.
        core.step(0);
        core.step(1);
        core.step(2);
        assert_eq!(core.stats().insts, 3);
    }

    #[test]
    fn raising_tlp_reactivates_limited_warps() {
        let cfg = small_cfg();
        let streams: Vec<Box<dyn InstStream>> = (0..cfg.warps_per_core)
            .map(|_| Box::new(Scripted::new(vec![Inst::alu1(); 4])) as Box<dyn InstStream>)
            .collect();
        let mut core = SimtCore::new(
            CoreId(0),
            AppId::new(0),
            &cfg,
            CoreParams::default(),
            streams,
        );
        core.set_tlp(TlpLevel::new(1).unwrap());
        core.step(0);
        let limited = core.stats().insts;
        assert_eq!(limited, 2, "one warp per scheduler at TLP 1");
        core.set_tlp(TlpLevel::new(8).unwrap());
        // More warps can now issue concurrently across cycles.
        core.step(1);
        core.step(2);
        assert!(core.stats().insts > limited + 2);
    }

    #[test]
    fn bypass_toggle_mid_flight_preserves_all_responses() {
        // A cached load is outstanding when bypassing turns on; its
        // response must still wake the warp through the fill path.
        let mut core = core_with_one_stream(
            Box::new(Scripted::new(vec![Inst::load1(0), Inst::load1(1 << 20)])),
            CoreParams {
                max_outstanding_loads: 2,
                max_txn_per_inst: 32,
            },
        );
        core.step(0);
        let first = core.pop_request().expect("first load misses");
        assert!(!first.bypass_caches);
        core.set_bypass_l1(true);
        core.step(1);
        let second = core.pop_request().expect("second load issued");
        assert!(second.bypass_caches, "new loads carry the bypass flag");
        core.receive(first);
        core.receive(second);
        assert_eq!(core.outstanding_loads(), 0, "both warps woken");
    }

    #[test]
    fn ccws_throttles_a_thrashing_core() {
        // Every warp loops over its own private 8-line set (matching the
        // victim-tag depth); collectively they exceed the 4 KB
        // small-machine L1, so CCWS observes lost intra-warp locality and
        // lowers the warp limit.
        let cfg = small_cfg();
        let streams: Vec<Box<dyn InstStream>> = (0..cfg.warps_per_core)
            .map(|i| Box::new(LoopOverSet::new((i as u64) << 20, 8)) as Box<dyn InstStream>)
            .collect();
        let mut core = SimtCore::new(
            CoreId(0),
            AppId::new(0),
            &cfg,
            CoreParams {
                max_outstanding_loads: 2,
                max_txn_per_inst: 32,
            },
            streams,
        );
        core.set_ccws(true);
        assert!(core.ccws_enabled());
        // Closed loop with a short memory latency.
        let mut returns: std::collections::VecDeque<(u64, MemRequest)> = Default::default();
        for now in 0..30_000u64 {
            while matches!(returns.front(), Some((t, _)) if *t <= now) {
                let (_, req) = returns.pop_front().unwrap();
                core.receive(req);
            }
            core.step(now);
            while let Some(req) = core.pop_request() {
                if req.needs_response() {
                    returns.push_back((now + 40, req));
                }
            }
        }
        assert!(
            core.tlp() < cfg.warps_per_scheduler(),
            "CCWS never throttled: limit {}",
            core.tlp()
        );
    }

    #[test]
    fn ccws_leaves_cache_friendly_cores_alone() {
        // All warps share one tiny hot set: no lost locality, full TLP.
        let cfg = small_cfg();
        let streams: Vec<Box<dyn InstStream>> = (0..cfg.warps_per_core)
            .map(|_| Box::new(LoopOverSet::new(0, 4)) as Box<dyn InstStream>)
            .collect();
        let mut core = SimtCore::new(
            CoreId(0),
            AppId::new(0),
            &cfg,
            CoreParams {
                max_outstanding_loads: 2,
                max_txn_per_inst: 32,
            },
            streams,
        );
        core.set_ccws(true);
        let mut returns: std::collections::VecDeque<(u64, MemRequest)> = Default::default();
        for now in 0..20_000u64 {
            while matches!(returns.front(), Some((t, _)) if *t <= now) {
                let (_, req) = returns.pop_front().unwrap();
                core.receive(req);
            }
            core.step(now);
            while let Some(req) = core.pop_request() {
                if req.needs_response() {
                    returns.push_back((now + 40, req));
                }
            }
        }
        assert_eq!(
            core.tlp(),
            cfg.warps_per_scheduler(),
            "no reason to throttle"
        );
    }

    #[test]
    fn disabling_ccws_restores_the_swl_limit() {
        let cfg = small_cfg();
        let mut core = SimtCore::new(
            CoreId(0),
            AppId::new(0),
            &cfg,
            CoreParams::default(),
            idle_streams(&cfg),
        );
        core.set_tlp(TlpLevel::new(6).unwrap());
        core.set_ccws(true);
        core.set_ccws(false);
        assert_eq!(core.tlp(), 6);
    }

    #[test]
    fn sleep_fast_path_matches_reference_stats() {
        // A mix of long ALU latencies and blocking loads produces plenty of
        // quiescent stretches; the sleeping engine must record the exact
        // same statistics as the cycle-by-cycle reference.
        let make = || {
            core_with_one_stream(
                Box::new(Scripted::new(vec![
                    Inst::Alu { cycles: 9 },
                    Inst::load1(0),
                    Inst::Alu { cycles: 5 },
                    Inst::load1(1 << 20),
                    Inst::alu1(),
                ])),
                CoreParams {
                    max_outstanding_loads: 1,
                    max_txn_per_inst: 32,
                },
            )
        };
        let run = |core: &mut SimtCore, reference: bool| {
            let mut returns: std::collections::VecDeque<(u64, MemRequest)> = Default::default();
            for now in 0..300u64 {
                while matches!(returns.front(), Some((t, _)) if *t <= now) {
                    let (_, req) = returns.pop_front().unwrap();
                    core.receive(req);
                }
                if reference {
                    core.step_reference(now);
                } else {
                    core.step(now);
                }
                while let Some(req) = core.pop_request() {
                    if req.needs_response() {
                        returns.push_back((now + 37, req));
                    }
                }
            }
        };
        let mut fast = make();
        let mut slow = make();
        fast.set_metrics_enabled(true);
        slow.set_metrics_enabled(true);
        run(&mut fast, false);
        run(&mut slow, true);
        assert_eq!(fast.stats(), slow.stats());
        // The metrics-layer stall breakdown obeys the same fast == reference
        // invariant, and every warp-cycle is accounted for exactly once.
        assert_eq!(fast.warp_stalls(), slow.warp_stalls());
        let ws = fast.warp_stalls();
        assert!(ws.total() > 0);
        assert_eq!(ws.barrier, 0, "no barrier instruction in the ISA");
        // Per cycle the buckets cover every warp slot except the issuing
        // ones, so buckets + issues is (warp slots) x cycles.
        assert_eq!(
            (ws.total() + fast.stats().insts) % fast.stats().cycles,
            0,
            "stall buckets + issues must cover a whole number of slots per cycle"
        );
    }

    #[test]
    fn warp_stalls_zero_when_metrics_disabled() {
        let mut core = core_with_one_stream(
            Box::new(Scripted::new(vec![Inst::alu1(), Inst::alu1()])),
            CoreParams::default(),
        );
        for now in 0..50 {
            core.step(now);
        }
        assert_eq!(core.warp_stalls(), WarpStalls::default());
    }

    #[test]
    fn credit_idle_cycles_matches_repeated_fast_steps() {
        // An all-finished core goes idle-asleep; batching k cycles must
        // equal k single fast steps.
        let make = || {
            core_with_one_stream(
                Box::new(Scripted::new(vec![Inst::alu1()])),
                CoreParams::default(),
            )
        };
        let mut batched = make();
        let mut stepped = make();
        batched.set_metrics_enabled(true);
        stepped.set_metrics_enabled(true);
        for now in 0..3u64 {
            batched.step(now);
            stepped.step(now);
        }
        assert!(batched.quiescent_until(3).is_some(), "core should sleep");
        batched.credit_idle_cycles(10);
        for now in 3..13u64 {
            stepped.step(now);
        }
        assert_eq!(batched.stats(), stepped.stats());
        assert_eq!(batched.warp_stalls(), stepped.warp_stalls());
    }

    #[test]
    fn is_idle_after_finite_work_drains() {
        let mut core = core_with_one_stream(
            Box::new(Scripted::new(vec![Inst::load1(0)])),
            CoreParams::default(),
        );
        run_closed_loop(&mut core, 100, 10);
        assert!(core.is_idle());
    }
}
