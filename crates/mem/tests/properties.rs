//! Property-based tests over the memory-system substrate.
//!
//! These check conservation and ordering invariants that must hold for *any*
//! request stream — the cycle-level simulator on top silently depends on all
//! of them.
//!
//! Cases are generated with the in-repo [`SplitMix64`] generator (fixed
//! seeds, so failures reproduce exactly) — the build must work fully
//! offline.

use gpu_mem::cache::{Cache, Lookup};
use gpu_mem::dram::DramChannel;
use gpu_mem::mc::MemoryController;
use gpu_mem::req::{AccessKind, MemRequest, ReqId};
use gpu_mem::xbar::Crossbar;
use gpu_types::{Address, AppId, CacheConfig, CoreId, DramConfig, SplitMix64, LINE_SIZE};
use std::collections::HashSet;

const CASES: usize = 128;

fn cache_cfg() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 2048,
        associativity: 4,
        mshr_entries: 8,
        mshr_merge: 4,
        hit_latency: 1,
    }
}

fn dram_cfg() -> DramConfig {
    DramConfig {
        n_banks: 8,
        n_bank_groups: 4,
        row_bytes: 1024,
        t_cl: 12,
        t_rp: 12,
        t_rcd: 12,
        t_ras: 28,
        t_ccd_l: 4,
        t_ccd_s: 2,
        t_rrd: 6,
        burst_cycles: 4,
        page_policy: gpu_types::PagePolicy::Open,
    }
}

fn arb_vec(rng: &mut SplitMix64, bound: u64, min_len: u64, max_len: u64) -> Vec<u64> {
    let len = min_len + rng.next_below(max_len - min_len);
    (0..len).map(|_| rng.next_below(bound)).collect()
}

/// Every load either hits, misses (fresh or merged) or stalls, and the
/// number of responses eventually released equals the number of
/// non-stalled misses; hits never have outstanding state.
#[test]
fn cache_conserves_requests() {
    let mut rng = SplitMix64::new(0x3E3_0001);
    for _ in 0..CASES {
        let lines = arb_vec(&mut rng, 64, 1, 200);
        let mut cache = Cache::new(&cache_cfg(), 1);
        let app = AppId::new(0);
        let mut outstanding: Vec<u64> = Vec::new(); // distinct miss lines
        let mut expected_releases = 0usize;
        let mut released = 0usize;
        let mut hits = 0usize;
        let mut fresh = 0usize;
        let mut merged = 0usize;
        for (i, &l) in lines.iter().enumerate() {
            let line = Address::new(l * LINE_SIZE);
            match cache.access_load(app, line, ReqId(i as u64)) {
                Lookup::Hit => hits += 1,
                Lookup::MissToLower => {
                    outstanding.push(l);
                    fresh += 1;
                    expected_releases += 1;
                }
                Lookup::MissMerged => {
                    merged += 1;
                    expected_releases += 1;
                }
                Lookup::Stall => {
                    // Drain one outstanding line to make room, then retry
                    // is legal; here we simply drop the access (a stall is
                    // not an access).
                    if let Some(f) = outstanding.first().copied() {
                        released += cache.fill(Address::new(f * LINE_SIZE)).len();
                        outstanding.remove(0);
                    }
                }
            }
        }
        for l in outstanding {
            released += cache.fill(Address::new(l * LINE_SIZE)).len();
        }
        assert_eq!(released, expected_releases);
        let k = cache.counters(app);
        assert_eq!(k.accesses as usize, hits + expected_releases);
        assert_eq!(
            k.misses as usize, fresh,
            "only fresh misses fetch downstream"
        );
        assert_eq!(k.merged as usize, merged);
        assert!(cache.outstanding_misses() == 0);
    }
}

/// After any fill sequence, the number of distinct resident lines per set
/// never exceeds the associativity (probed indirectly: filling `assoc`
/// fresh lines into one set must evict something).
#[test]
fn cache_respects_capacity() {
    let mut rng = SplitMix64::new(0x3E3_0002);
    for _ in 0..CASES {
        let seed_lines = arb_vec(&mut rng, 256, 1, 100);
        let cfg = cache_cfg();
        let n_sets = cfg.n_sets() as u64;
        let mut cache = Cache::new(&cfg, 1);
        for (i, &l) in seed_lines.iter().enumerate() {
            let line = Address::new(l * LINE_SIZE);
            if cache.access_load(AppId::new(0), line, ReqId(i as u64)) == Lookup::MissToLower {
                cache.fill(line);
            }
        }
        // Count resident lines of set 0 among all possible tags we used.
        let resident = (0u64..256)
            .filter(|l| l % n_sets == 0)
            .filter(|&l| cache.probe(Address::new(l * LINE_SIZE)))
            .count();
        assert!(
            resident <= cfg.associativity,
            "set 0 holds {} lines > associativity {}",
            resident,
            cfg.associativity
        );
    }
}

/// The crossbar neither drops nor duplicates payloads, and every payload
/// arrives at its destination no earlier than `latency` cycles after
/// injection.
#[test]
fn crossbar_conserves_payloads() {
    let mut rng = SplitMix64::new(0x3E3_0003);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(99) as usize;
        let flits: Vec<(usize, usize)> = (0..len)
            .map(|_| (rng.next_below(4) as usize, rng.next_below(3) as usize))
            .collect();
        let latency = rng.next_below(8);
        let mut x: Crossbar<usize> = Crossbar::new(4, 3, latency, 1, 4);
        let mut sent: Vec<(usize, u64)> = Vec::new(); // (payload, sent_at)
        let mut received: Vec<(usize, usize, u64)> = Vec::new(); // (payload, port, at)
        let mut pending: Vec<(usize, usize)> = flits.clone();
        let mut now = 0u64;
        let mut payload_counter = 0usize;
        while !pending.is_empty() || x.in_flight() > 0 {
            // Try to inject the next pending flit.
            if let Some(&(input, dest)) = pending.first() {
                if x.push(input, dest, payload_counter, now).is_ok() {
                    sent.push((payload_counter, now));
                    payload_counter += 1;
                    pending.remove(0);
                }
            }
            for (port, p) in x.step(now) {
                received.push((p, port, now));
            }
            now += 1;
            assert!(now < 10_000, "crossbar failed to drain");
        }
        assert_eq!(received.len(), sent.len());
        let ids: HashSet<usize> = received.iter().map(|&(p, _, _)| p).collect();
        assert_eq!(ids.len(), sent.len(), "duplicated payloads");
        for &(p, port, at) in &received {
            let (_, sent_at) = sent[p];
            assert!(at >= sent_at + latency, "payload {} beat the latency", p);
            assert_eq!(port, flits[p].1, "payload {} misrouted", p);
        }
    }
}

/// DRAM service times move forward: each successive service's completion
/// is strictly later than the previous one (shared bus), and a row hit is
/// never slower than the row miss that opened the row, issued at the same
/// relative state.
#[test]
fn dram_completions_progress() {
    let mut rng = SplitMix64::new(0x3E3_0004);
    for _ in 0..CASES {
        let chunks = arb_vec(&mut rng, 512, 1, 100);
        let mut ch = DramChannel::new(dram_cfg(), 1);
        let mut prev_done = 0u64;
        for (now, &c) in chunks.iter().enumerate() {
            let addr = Address::new(c * 256);
            let svc = ch.service(addr, now as u64);
            assert!(svc.done_at > prev_done, "bus must serialize bursts");
            assert!(svc.done_at > now as u64);
            prev_done = svc.done_at;
        }
    }
}

/// The FR-FCFS controller completes every load exactly once, regardless
/// of the address mix.
#[test]
fn controller_conserves_loads() {
    let mut rng = SplitMix64::new(0x3E3_0005);
    for _ in 0..CASES {
        let chunks = arb_vec(&mut rng, 128, 1, 64);
        let mut mc = MemoryController::new(64);
        let mut ch = DramChannel::new(dram_cfg(), 1);
        let mut pending: Vec<MemRequest> = chunks
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                MemRequest::new(
                    ReqId(i as u64),
                    AppId::new((i % 2) as u8),
                    CoreId(0),
                    0,
                    Address::new(c * 256),
                    AccessKind::Load,
                )
            })
            .collect();
        let total = pending.len();
        let mut done: Vec<ReqId> = Vec::new();
        let mut now = 0u64;
        while done.len() < total {
            if let Some(req) = pending.first().copied() {
                if mc.push_with(req, &ch, now).is_ok() {
                    pending.remove(0);
                }
            }
            done.extend(mc.step(now, &mut ch).into_iter().map(|r| r.id));
            now += 1;
            assert!(now < 200_000, "controller failed to drain");
        }
        let unique: HashSet<ReqId> = done.iter().copied().collect();
        assert_eq!(unique.len(), total);
        // Attribution: bytes split across the two apps must sum to the total.
        let b0 = mc.counters(AppId::new(0)).dram_bytes;
        let b1 = mc.counters(AppId::new(1)).dram_bytes;
        assert_eq!(b0 + b1, total as u64 * LINE_SIZE);
    }
}
