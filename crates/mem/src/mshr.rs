//! Miss-status holding registers (MSHRs).
//!
//! An MSHR table tracks the set of cache lines with an outstanding miss and
//! the requests waiting on each ("targets"). A second miss to an in-flight
//! line *merges* into the existing entry instead of issuing a duplicate
//! request to the next level — the inter-warp merging of Table I.

use crate::req::ReqId;
use gpu_types::{Address, FxHashMap};

/// Outcome of attempting to register a miss with the MSHR table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must forward the request to the
    /// next memory level.
    Allocated,
    /// The line already had an outstanding miss; this request was attached
    /// to it and no new downstream request is needed.
    Merged,
    /// No entry or merge slot available; the access must be retried later
    /// (a structural-hazard stall).
    Full,
}

#[derive(Debug, Default)]
struct Entry {
    targets: Vec<ReqId>,
}

/// MSHR table with bounded entries and bounded merge fan-in per entry.
#[derive(Debug)]
pub struct MshrTable {
    entries: FxHashMap<Address, Entry>,
    max_entries: usize,
    max_merge: usize,
    /// Recycled entries whose target buffers keep their capacity, so a
    /// steady-state register/fill cycle performs no heap allocation.
    spare: Vec<Entry>,
}

impl MshrTable {
    /// Creates a table with `max_entries` distinct in-flight lines and at
    /// most `max_merge` requests per line.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    pub fn new(max_entries: usize, max_merge: usize) -> Self {
        assert!(
            max_entries > 0 && max_merge > 0,
            "MSHR bounds must be non-zero"
        );
        MshrTable {
            entries: FxHashMap::default(),
            max_entries,
            max_merge,
            spare: Vec::new(),
        }
    }

    /// Registers a missing `line` for `req`.
    pub fn register(&mut self, line: Address, req: ReqId) -> MshrOutcome {
        debug_assert_eq!(line, line.line(), "MSHR addresses must be line-aligned");
        if let Some(entry) = self.entries.get_mut(&line) {
            if entry.targets.len() >= self.max_merge {
                return MshrOutcome::Full;
            }
            entry.targets.push(req);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.max_entries {
            return MshrOutcome::Full;
        }
        let mut entry = self.spare.pop().unwrap_or_default();
        entry.targets.push(req);
        self.entries.insert(line, entry);
        MshrOutcome::Allocated
    }

    /// Completes the miss for `line`, appending every waiting request (in
    /// arrival order) to `out`. No-op when the line had no entry (e.g. a
    /// prefetch-style fill). Allocation-free in steady state: the entry's
    /// target buffer is recycled for future misses.
    pub fn fill_into(&mut self, line: Address, out: &mut Vec<ReqId>) {
        if let Some(mut e) = self.entries.remove(&line) {
            out.extend_from_slice(&e.targets);
            e.targets.clear();
            self.spare.push(e);
        }
    }

    /// Completes the miss for `line`, releasing and returning every waiting
    /// request (in arrival order). Returns an empty vector when the line had
    /// no entry. Allocating wrapper over [`MshrTable::fill_into`], kept for
    /// tests and non-hot-path callers.
    pub fn fill(&mut self, line: Address) -> Vec<ReqId> {
        let mut out = Vec::new();
        self.fill_into(line, &mut out);
        out
    }

    /// True when `line` has an outstanding miss.
    pub fn contains(&self, line: Address) -> bool {
        self.entries.contains_key(&line)
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a *new* line could not currently be allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max_entries
    }

    /// Entries still available for new lines.
    pub fn free_entries(&self) -> usize {
        self.max_entries - self.entries.len()
    }

    /// Occupied entries out of total capacity, as a `(used, capacity)`
    /// pair — what the observability layer samples into its MSHR-occupancy
    /// histogram at window rollover.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.entries.len(), self.max_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> Address {
        Address::new(i * 128)
    }

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrTable::new(4, 2);
        assert_eq!(m.register(line(1), ReqId(10)), MshrOutcome::Allocated);
        assert_eq!(m.register(line(1), ReqId(11)), MshrOutcome::Merged);
        // merge limit of 2 reached
        assert_eq!(m.register(line(1), ReqId(12)), MshrOutcome::Full);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn fill_releases_targets_in_order() {
        let mut m = MshrTable::new(4, 4);
        m.register(line(2), ReqId(1));
        m.register(line(2), ReqId(2));
        m.register(line(2), ReqId(3));
        assert_eq!(m.fill(line(2)), vec![ReqId(1), ReqId(2), ReqId(3)]);
        assert!(m.is_empty());
        assert!(!m.contains(line(2)));
    }

    #[test]
    fn entry_capacity_enforced() {
        let mut m = MshrTable::new(2, 8);
        assert_eq!(m.register(line(1), ReqId(1)), MshrOutcome::Allocated);
        assert_eq!(m.register(line(2), ReqId(2)), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.register(line(3), ReqId(3)), MshrOutcome::Full);
        // ...but merging into existing entries still works at full table.
        assert_eq!(m.register(line(1), ReqId(4)), MshrOutcome::Merged);
    }

    #[test]
    fn fill_unknown_line_is_empty() {
        let mut m = MshrTable::new(2, 2);
        assert!(m.fill(line(9)).is_empty());
    }

    #[test]
    fn freed_entry_is_reusable() {
        let mut m = MshrTable::new(1, 1);
        assert_eq!(m.register(line(1), ReqId(1)), MshrOutcome::Allocated);
        assert_eq!(m.register(line(2), ReqId(2)), MshrOutcome::Full);
        m.fill(line(1));
        assert_eq!(m.register(line(2), ReqId(2)), MshrOutcome::Allocated);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bounds_panic() {
        let _ = MshrTable::new(0, 1);
    }
}
