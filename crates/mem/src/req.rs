//! Memory requests flowing between cores, caches and memory partitions.

use gpu_types::{Address, AppId, CoreId};
use std::fmt;

/// Globally unique identifier of an in-flight memory request.
///
/// Ids are handed out by the issuing core's load/store unit; the memory
/// system treats them as opaque routing tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Whether a request reads or writes memory.
///
/// Stores are modeled write-through / no-allocate: they consume interconnect
/// and DRAM bandwidth but produce no response and never stall a warp
/// (GPU stores retire immediately from the warp's perspective).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; the issuing warp waits for the response.
    Load,
    /// A store; fire-and-forget.
    Store,
}

/// A line-granular memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Routing/merging tag.
    pub id: ReqId,
    /// Application the request belongs to (drives per-app accounting).
    pub app: AppId,
    /// Issuing core (return route for the response).
    pub core: CoreId,
    /// Warp slot on the issuing core (which warp to wake).
    pub warp_slot: usize,
    /// Line-aligned address.
    pub addr: Address,
    /// Load or store.
    pub kind: AccessKind,
    /// True when the issuing core's application bypasses the caches
    /// (Mod+Bypass): the L2 treats the request as no-allocate, so a
    /// cache-insensitive streaming application stops polluting the shared
    /// L2 — the benefit the paper credits Mod+Bypass with (§VI-A).
    pub bypass_caches: bool,
}

impl MemRequest {
    /// Creates a request, aligning `addr` down to its cache line.
    pub fn new(
        id: ReqId,
        app: AppId,
        core: CoreId,
        warp_slot: usize,
        addr: Address,
        kind: AccessKind,
    ) -> Self {
        MemRequest {
            id,
            app,
            core,
            warp_slot,
            addr: addr.line(),
            kind,
            bypass_caches: false,
        }
    }

    /// Marks the request as cache-bypassing (see `bypass_caches`).
    pub fn bypassing(mut self) -> Self {
        self.bypass_caches = true;
        self
    }

    /// True for loads, which require a response.
    pub fn needs_response(&self) -> bool {
        self.kind == AccessKind::Load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: AccessKind) -> MemRequest {
        MemRequest::new(
            ReqId(1),
            AppId::new(0),
            CoreId(2),
            3,
            Address::new(0x1234),
            kind,
        )
    }

    #[test]
    fn constructor_line_aligns() {
        assert_eq!(req(AccessKind::Load).addr, Address::new(0x1234).line());
    }

    #[test]
    fn loads_need_responses_stores_do_not() {
        assert!(req(AccessKind::Load).needs_response());
        assert!(!req(AccessKind::Store).needs_response());
    }

    #[test]
    fn req_id_display() {
        assert_eq!(ReqId(42).to_string(), "req#42");
    }
}
