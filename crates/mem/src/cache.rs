//! Set-associative cache with LRU replacement and an integrated MSHR table.
//!
//! Used both for the per-core L1 data caches and the per-partition L2
//! slices. Lines are allocated on fill (no way reservation), misses to an
//! in-flight line merge in the MSHR, and per-application access/miss
//! counters feed the paper's runtime sampling.

use crate::mshr::{MshrOutcome, MshrTable};
use crate::req::ReqId;
use gpu_types::{Address, AppId, CacheConfig};

/// Result of a load access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present; data returns after the hit latency.
    Hit,
    /// Miss with a fresh MSHR entry; the caller must forward the request to
    /// the next memory level.
    MissToLower,
    /// Miss merged into an outstanding MSHR entry; nothing to forward.
    MissMerged,
    /// Structural stall (MSHR table or merge slots exhausted); the caller
    /// must retry the access on a later cycle. Not counted as an access.
    Stall,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    last_use: u64,
    valid: bool,
}

/// Per-application access/miss counts maintained by a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Load accesses that completed lookup (hits + misses + merges,
    /// excluding stalls).
    pub accesses: u64,
    /// Load accesses that required a fetch from the next level. Merges into
    /// an in-flight line are *not* misses: they generate no downstream
    /// traffic, so counting them would corrupt the miss rate's meaning as
    /// "fetches per access" — the quantity the paper's EB = BW/CMR
    /// amplification argument builds on (§III-B).
    pub misses: u64,
    /// Load accesses merged into an in-flight miss (latency of a miss, no
    /// downstream traffic).
    pub merged: u64,
}

/// A set-associative, LRU, allocate-on-fill cache with MSHRs.
#[derive(Debug)]
pub struct Cache {
    ways: Vec<Way>,
    set_mask: u64,
    set_shift: u32,
    assoc: usize,
    mshr: MshrTable,
    counters: Vec<CacheCounters>,
    tick: u64,
}

impl Cache {
    /// Builds a cache from its configuration, with counter slots for
    /// application indices `0..n_apps` (the machine's co-scheduled app
    /// count). Sizing the counters up front keeps the per-access counter
    /// update a plain index instead of a length check and possible resize.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets (use
    /// [`gpu_types::GpuConfig::validate`] first).
    pub fn new(cfg: &CacheConfig, n_apps: usize) -> Self {
        let n_sets = cfg.n_sets();
        assert!(n_sets > 0, "cache must have at least one set");
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            ways: vec![
                Way {
                    tag: 0,
                    last_use: 0,
                    valid: false
                };
                n_sets * cfg.associativity
            ],
            set_mask: n_sets as u64 - 1,
            set_shift: n_sets.trailing_zeros(),
            assoc: cfg.associativity,
            mshr: MshrTable::new(cfg.mshr_entries, cfg.mshr_merge),
            counters: vec![CacheCounters::default(); n_apps],
            tick: 0,
        }
    }

    fn set_of(&self, line: Address) -> usize {
        (line.line_index() & self.set_mask) as usize
    }

    fn tag_of(&self, line: Address) -> u64 {
        line.line_index() >> self.set_shift
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn counters_mut(&mut self, app: AppId) -> &mut CacheCounters {
        // Slots were sized at construction; an out-of-range app index is a
        // machine-assembly bug and panics via the index.
        &mut self.counters[app.index()]
    }

    /// Performs a load lookup for `line` on behalf of `req`.
    ///
    /// Access and miss counters for `app` are updated unless the access
    /// stalls on MSHR capacity.
    pub fn access_load(&mut self, app: AppId, line: Address, req: ReqId) -> Lookup {
        let line = line.line();
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let base = set * self.assoc;
        let now = self.bump();
        for way in &mut self.ways[base..base + self.assoc] {
            if way.valid && way.tag == tag {
                way.last_use = now;
                self.counters_mut(app).accesses += 1;
                return Lookup::Hit;
            }
        }
        match self.mshr.register(line, req) {
            MshrOutcome::Allocated => {
                let c = self.counters_mut(app);
                c.accesses += 1;
                c.misses += 1;
                Lookup::MissToLower
            }
            MshrOutcome::Merged => {
                let c = self.counters_mut(app);
                c.accesses += 1;
                c.merged += 1;
                Lookup::MissMerged
            }
            MshrOutcome::Full => Lookup::Stall,
        }
    }

    /// A counted, no-allocate lookup: hits update LRU and count as hits;
    /// misses count but allocate neither a line nor an MSHR entry. Used for
    /// cache-bypassing requests (Mod+Bypass) that may still consume data
    /// already resident.
    pub fn access_load_no_alloc(&mut self, app: AppId, line: Address) -> bool {
        let line = line.line();
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let base = set * self.assoc;
        let now = self.bump();
        for way in &mut self.ways[base..base + self.assoc] {
            if way.valid && way.tag == tag {
                way.last_use = now;
                self.counters_mut(app).accesses += 1;
                return true;
            }
        }
        let c = self.counters_mut(app);
        c.accesses += 1;
        c.misses += 1;
        false
    }

    /// Probes for `line` without touching LRU state, counters or MSHRs.
    /// Used by stores (write-through, no-allocate) and by tests.
    pub fn probe(&self, line: Address) -> bool {
        let line = line.line();
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let base = set * self.assoc;
        self.ways[base..base + self.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line` (completing its outstanding miss, if any) and returns
    /// the requests that were waiting on it, in arrival order.
    ///
    /// The victim is the LRU way of the set; invalid ways are filled first.
    /// Allocating wrapper over [`Cache::fill_into`], kept for tests and
    /// non-hot-path callers.
    pub fn fill(&mut self, line: Address) -> Vec<ReqId> {
        self.fill_with_victim(line).0
    }

    /// Like [`Cache::fill`], but also reports the line that was evicted to
    /// make room (used by the CCWS victim-tag mechanism).
    pub fn fill_with_victim(&mut self, line: Address) -> (Vec<ReqId>, Option<Address>) {
        let mut waiters = Vec::new();
        let victim = self.fill_into(line, &mut waiters);
        (waiters, victim)
    }

    /// Hot-path form of [`Cache::fill_with_victim`]: appends the released
    /// waiters to a caller-owned buffer instead of allocating, and returns
    /// the evicted line, if any.
    pub fn fill_into(&mut self, line: Address, waiters: &mut Vec<ReqId>) -> Option<Address> {
        let line = line.line();
        self.mshr.fill_into(line, waiters);
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let base = set * self.assoc;
        let now = self.bump();
        // Already present (e.g. refill racing a prior fill): refresh LRU only.
        if let Some(way) = self.ways[base..base + self.assoc]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.last_use = now;
            return None;
        }
        let set_shift = self.set_shift;
        let victim = self.ways[base..base + self.assoc]
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_use } else { 0 })
            .expect("associativity >= 1");
        let evicted = victim
            .valid
            .then(|| Address::new(((victim.tag << set_shift) | set as u64) * crate::LINE_SIZE_U64));
        *victim = Way {
            tag,
            last_use: now,
            valid: true,
        };
        evicted
    }

    /// True when a new miss line cannot currently be tracked.
    pub fn mshr_full(&self) -> bool {
        self.mshr.is_full()
    }

    /// Free MSHR entries (distinct new miss lines that could be tracked).
    pub fn mshr_free(&self) -> usize {
        self.mshr.free_entries()
    }

    /// Outstanding distinct miss lines.
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.len()
    }

    /// MSHR occupancy as a `(used, capacity)` pair, for the metrics layer.
    pub fn mshr_occupancy(&self) -> (usize, usize) {
        self.mshr.occupancy()
    }

    /// Per-application counters (zero for apps never seen).
    pub fn counters(&self, app: AppId) -> CacheCounters {
        self.counters.get(app.index()).copied().unwrap_or_default()
    }

    /// Invalidates every line and clears counters; MSHRs must be drained by
    /// the caller first (used between measurement phases).
    ///
    /// # Panics
    ///
    /// Panics if misses are still outstanding.
    pub fn reset(&mut self) {
        assert!(
            self.mshr.is_empty(),
            "cannot reset a cache with outstanding misses"
        );
        for w in &mut self.ways {
            w.valid = false;
        }
        self.counters.fill(CacheCounters::default());
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::LINE_SIZE;

    fn cfg() -> CacheConfig {
        // 4 sets x 2 ways x 128 B lines = 1 KiB.
        CacheConfig {
            capacity_bytes: 1024,
            associativity: 2,
            mshr_entries: 4,
            mshr_merge: 4,
            hit_latency: 1,
        }
    }

    fn line(i: u64) -> Address {
        Address::new(i * LINE_SIZE)
    }

    const APP: AppId = AppId::new(0);

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(&cfg(), 2);
        assert_eq!(c.access_load(APP, line(3), ReqId(1)), Lookup::MissToLower);
        assert_eq!(c.fill(line(3)), vec![ReqId(1)]);
        assert_eq!(c.access_load(APP, line(3), ReqId(2)), Lookup::Hit);
        let k = c.counters(APP);
        assert_eq!((k.accesses, k.misses), (2, 1));
    }

    #[test]
    fn second_miss_to_same_line_merges() {
        let mut c = Cache::new(&cfg(), 2);
        assert_eq!(c.access_load(APP, line(3), ReqId(1)), Lookup::MissToLower);
        assert_eq!(c.access_load(APP, line(3), ReqId(2)), Lookup::MissMerged);
        assert_eq!(c.fill(line(3)), vec![ReqId(1), ReqId(2)]);
        let k = c.counters(APP);
        assert_eq!((k.accesses, k.misses, k.merged), (2, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = Cache::new(&cfg(), 2);
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        for (i, l) in [0u64, 4, 8].iter().enumerate() {
            c.access_load(APP, line(*l), ReqId(i as u64));
            c.fill(line(*l));
        }
        // Set 0 is 2-way: filling 0 then 4 then 8 evicts 0.
        assert!(!c.probe(line(0)));
        assert!(c.probe(line(4)));
        assert!(c.probe(line(8)));
    }

    #[test]
    fn hit_refreshes_lru() {
        let mut c = Cache::new(&cfg(), 2);
        for l in [0u64, 4] {
            c.access_load(APP, line(l), ReqId(l));
            c.fill(line(l));
        }
        // Touch line 0 so line 4 becomes LRU.
        assert_eq!(c.access_load(APP, line(0), ReqId(9)), Lookup::Hit);
        c.access_load(APP, line(8), ReqId(10));
        c.fill(line(8));
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(4)));
    }

    #[test]
    fn stall_on_mshr_exhaustion_counts_nothing() {
        let mut c = Cache::new(&cfg(), 2);
        for i in 0..4u64 {
            assert_eq!(c.access_load(APP, line(i), ReqId(i)), Lookup::MissToLower);
        }
        assert!(c.mshr_full());
        assert_eq!(c.access_load(APP, line(7), ReqId(7)), Lookup::Stall);
        let k = c.counters(APP);
        assert_eq!((k.accesses, k.misses), (4, 4));
    }

    #[test]
    fn per_app_counters_are_separate() {
        let mut c = Cache::new(&cfg(), 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.access_load(a0, line(0), ReqId(1));
        c.fill(line(0));
        c.access_load(a1, line(0), ReqId(2));
        assert_eq!(c.counters(a0).misses, 1);
        assert_eq!(c.counters(a1).misses, 0);
        assert_eq!(c.counters(a1).accesses, 1);
    }

    #[test]
    fn fill_of_present_line_does_not_duplicate() {
        let mut c = Cache::new(&cfg(), 2);
        c.access_load(APP, line(0), ReqId(1));
        c.fill(line(0));
        // Unsolicited second fill: no waiters, still present, set not polluted.
        assert!(c.fill(line(0)).is_empty());
        assert!(c.probe(line(0)));
        // The other way of set 0 is still free.
        c.access_load(APP, line(4), ReqId(2));
        c.fill(line(4));
        assert!(c.probe(line(0)) && c.probe(line(4)));
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = Cache::new(&cfg(), 2);
        c.access_load(APP, line(1), ReqId(1));
        c.fill(line(1));
        c.reset();
        assert!(!c.probe(line(1)));
        assert_eq!(c.counters(APP), CacheCounters::default());
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn reset_with_outstanding_misses_panics() {
        let mut c = Cache::new(&cfg(), 2);
        c.access_load(APP, line(1), ReqId(1));
        c.reset();
    }

    #[test]
    fn fill_reports_the_evicted_line() {
        let mut c = Cache::new(&cfg(), 2);
        // Fill both ways of set 0 (lines 0 and 4), then evict with line 8.
        for l in [0u64, 4] {
            c.access_load(APP, line(l), ReqId(l));
            let (_, victim) = c.fill_with_victim(line(l));
            assert_eq!(victim, None, "filling an invalid way evicts nothing");
        }
        c.access_load(APP, line(8), ReqId(8));
        let (_, victim) = c.fill_with_victim(line(8));
        assert_eq!(victim, Some(line(0)), "LRU way of set 0 holds line 0");
    }

    #[test]
    fn probe_does_not_count() {
        let c = Cache::new(&cfg(), 2);
        assert!(!c.probe(line(5)));
        assert_eq!(c.counters(APP).accesses, 0);
    }
}
