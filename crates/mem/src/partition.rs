//! A memory partition: one L2 slice plus one FR-FCFS controller and its
//! GDDR5 channel.
//!
//! This is the unit the paper's Fig. 8 hardware reads its per-application
//! counters from: L2 accesses/misses and attained DRAM bandwidth are tracked
//! here per [`AppId`]. Requests arrive from the interconnect into a bounded
//! ingress queue; L2 hits return after the L2 hit latency; misses allocate
//! an L2 MSHR and go to DRAM; fills release all merged waiters.
//!
//! Like the SIMT core, a partition is self-contained and `Send`: its whole
//! interface to the rest of the machine is `push` (ingress) and
//! `step_into` (egress into a caller-owned buffer), so the machine layer
//! may step disjoint sets of partitions on different threads (the
//! `gpu-sim` crate's intra-simulation domain workers, docs/PARALLELISM.md)
//! without any synchronization here.

use crate::cache::{Cache, Lookup};
use crate::dram::DramChannel;
use crate::mc::{McCounters, MemoryController};
use crate::req::{AccessKind, MemRequest, ReqId};
use gpu_types::{AppId, FxHashMap, GpuConfig, PartitionId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Per-application snapshot of a partition's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionCounters {
    /// L2 load accesses.
    pub l2_accesses: u64,
    /// L2 load misses.
    pub l2_misses: u64,
    /// DRAM-side counters (bytes, row hits/misses).
    pub mc: McCounters,
}

#[derive(Debug, PartialEq, Eq)]
struct Timed<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T: Eq> PartialOrd for Timed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Eq> Ord for Timed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One memory partition (L2 slice + memory controller + DRAM channel).
#[derive(Debug)]
pub struct MemoryPartition {
    /// Which partition this is (diagnostics only).
    pub id: PartitionId,
    l2: Cache,
    mc: MemoryController,
    dram: DramChannel,
    ingress: VecDeque<MemRequest>,
    ingress_capacity: usize,
    hit_latency: u64,
    /// L2 hits waiting out the hit latency.
    hit_returns: BinaryHeap<Reverse<Timed<MemRequest>>>,
    /// Loads that missed L2, keyed by the request id recorded in the MSHR.
    missed: FxHashMap<ReqId, MemRequest>,
    seq: u64,
    /// Reused buffer for the controller's completed loads (hot path scratch).
    mc_done: Vec<MemRequest>,
    /// Reused buffer for the waiters released by an L2 fill (hot path
    /// scratch).
    waiter_scratch: Vec<ReqId>,
}

impl MemoryPartition {
    /// Builds a partition from the machine configuration, with L2 counter
    /// slots for `n_apps` co-scheduled applications.
    pub fn new(id: PartitionId, cfg: &GpuConfig, n_apps: usize) -> Self {
        MemoryPartition {
            id,
            l2: Cache::new(&cfg.l2, n_apps),
            mc: MemoryController::new(64),
            dram: DramChannel::new(cfg.dram.clone(), cfg.n_partitions),
            ingress: VecDeque::new(),
            ingress_capacity: 32,
            hit_latency: cfg.l2.hit_latency as u64,
            hit_returns: BinaryHeap::new(),
            missed: FxHashMap::default(),
            seq: 0,
            mc_done: Vec::new(),
            waiter_scratch: Vec::new(),
        }
    }

    /// True when the interconnect may deliver another request.
    pub fn can_accept(&self) -> bool {
        self.ingress.len() < self.ingress_capacity
    }

    /// Delivers a request from the interconnect.
    ///
    /// # Errors
    ///
    /// Returns the request back when the ingress queue is full; the caller
    /// (the crossbar ejection logic) must retry later.
    pub fn push(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        if !self.can_accept() {
            return Err(req);
        }
        self.ingress.push_back(req);
        Ok(())
    }

    /// Hot-path form of [`MemoryPartition::step`]: appends load responses to
    /// `responses` and reuses partition-owned scratch buffers, so a
    /// steady-state cycle performs no heap allocation. Identical behaviour
    /// and response order to the allocating form.
    pub fn step_into(&mut self, now: u64, responses: &mut VecDeque<MemRequest>) {
        // 1. DRAM completions: bypassing loads return directly (no-allocate);
        //    everything else fills the L2 and releases merged waiters.
        let mut mc_done = std::mem::take(&mut self.mc_done);
        self.mc.step_into(now, &mut self.dram, &mut mc_done);
        for &fill in &mc_done {
            if fill.bypass_caches {
                responses.push_back(fill);
                continue;
            }
            let mut waiters = std::mem::take(&mut self.waiter_scratch);
            self.l2.fill_into(fill.addr, &mut waiters);
            for &w in &waiters {
                if let Some(orig) = self.missed.remove(&w) {
                    responses.push_back(orig);
                }
            }
            waiters.clear();
            self.waiter_scratch = waiters;
        }
        mc_done.clear();
        self.mc_done = mc_done;

        // 2. L2 hits whose latency elapsed.
        while matches!(self.hit_returns.peek(), Some(Reverse(t)) if t.at <= now) {
            responses.push_back(self.hit_returns.pop().expect("peeked").0.item);
        }

        // 3. Service one ingress request per cycle (the L2 port).
        self.service_ingress(now);
    }

    /// Advances one cycle; returns load responses ready to enter the
    /// response interconnect. Allocating reference form (per-cycle `Vec`s),
    /// kept for tests and the reference engine.
    pub fn step(&mut self, now: u64) -> Vec<MemRequest> {
        let mut responses = Vec::new();

        for fill in self.mc.step(now, &mut self.dram) {
            if fill.bypass_caches {
                responses.push(fill);
                continue;
            }
            for waiter in self.l2.fill(fill.addr) {
                if let Some(orig) = self.missed.remove(&waiter) {
                    responses.push(orig);
                }
            }
        }

        while matches!(self.hit_returns.peek(), Some(Reverse(t)) if t.at <= now) {
            responses.push(self.hit_returns.pop().expect("peeked").0.item);
        }

        self.service_ingress(now);

        responses
    }

    /// Services one ingress request at the L2 port (shared by both step
    /// forms — it never produces responses directly).
    fn service_ingress(&mut self, now: u64) {
        if let Some(&req) = self.ingress.front() {
            match req.kind {
                AccessKind::Store => {
                    // Write-through no-allocate: forward to DRAM, or stall
                    // this cycle if the controller is full.
                    if self.mc.can_accept() {
                        self.ingress.pop_front();
                        self.mc
                            .push_with(req, &self.dram, now)
                            .expect("can_accept checked");
                    }
                }
                AccessKind::Load if req.bypass_caches => {
                    // No-allocate: a resident line may still serve the
                    // request, but misses go straight to DRAM and will not
                    // pollute the slice.
                    if self.mc.can_accept() {
                        self.ingress.pop_front();
                        if self.l2.access_load_no_alloc(req.app, req.addr) {
                            self.seq += 1;
                            self.hit_returns.push(Reverse(Timed {
                                at: now + self.hit_latency,
                                seq: self.seq,
                                item: req,
                            }));
                        } else {
                            self.mc
                                .push_with(req, &self.dram, now)
                                .expect("can_accept checked");
                        }
                    }
                }
                AccessKind::Load => {
                    // Only start the lookup if a miss could be forwarded;
                    // otherwise the L2 port stalls this cycle.
                    if self.mc.can_accept() {
                        self.ingress.pop_front();
                        match self.l2.access_load(req.app, req.addr, req.id) {
                            Lookup::Hit => {
                                self.seq += 1;
                                self.hit_returns.push(Reverse(Timed {
                                    at: now + self.hit_latency,
                                    seq: self.seq,
                                    item: req,
                                }));
                            }
                            Lookup::MissToLower => {
                                self.missed.insert(req.id, req);
                                self.mc
                                    .push_with(req, &self.dram, now)
                                    .expect("can_accept checked");
                            }
                            Lookup::MissMerged => {
                                self.missed.insert(req.id, req);
                            }
                            Lookup::Stall => {
                                // MSHRs exhausted: put it back and retry.
                                self.ingress.push_front(req);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The earliest cycle `>= from` at which stepping this partition can
    /// have any observable effect — its "next event at" contract for the
    /// event engine. Until then, [`MemoryPartition::step_into`] is provably
    /// a strict no-op: no DRAM completion is due, no L2 hit return is due,
    /// the L2 port cannot service ingress (empty, or the controller is
    /// full), and the controller cannot issue (empty, or every targeted
    /// bank is busy — bank state only changes when *this* partition
    /// issues, so the horizon stays exact between steps). `u64::MAX`
    /// signals a fully drained partition that only an ingress push can
    /// reawaken.
    pub fn next_event(&self, from: u64) -> u64 {
        if !self.ingress.is_empty() && self.mc.can_accept() {
            return from; // the L2 port can service a request now
        }
        let mut next = u64::MAX;
        if let Some(t) = self.mc.next_completion() {
            next = next.min(t.max(from));
        }
        if let Some(Reverse(t)) = self.hit_returns.peek() {
            next = next.min(t.at.max(from));
        }
        if self.mc.queued() > 0 {
            next = next.min(self.mc.next_issue_at(&self.dram, from));
        }
        next
    }

    /// The cycle (exclusive) until which stepping this partition is provably
    /// a no-op, or `None` when it must be stepped at `now`. Thin adapter
    /// over [`MemoryPartition::next_event`]; `Some(u64::MAX)` signals a
    /// fully drained partition.
    pub fn quiescent_until(&self, now: u64) -> Option<u64> {
        let next = self.next_event(now);
        if next <= now {
            None
        } else {
            Some(next)
        }
    }

    /// Enables or disables metrics recording in the memory controller
    /// (request-latency histograms); off by default.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.mc.set_metrics_enabled(on);
    }

    /// Returns and resets the DRAM queue-to-data latency histogram for
    /// `app` (empty unless metrics recording is enabled).
    pub fn take_dram_latency(&mut self, app: AppId) -> gpu_types::Histogram {
        self.mc.take_latency(app)
    }

    /// L2 MSHR occupancy as a `(used, capacity)` pair, sampled by the
    /// metrics layer at window rollover.
    pub fn l2_mshr_occupancy(&self) -> (usize, usize) {
        self.l2.mshr_occupancy()
    }

    /// Per-application counters (L2 + DRAM side).
    pub fn counters(&self, app: AppId) -> PartitionCounters {
        let l2 = self.l2.counters(app);
        PartitionCounters {
            l2_accesses: l2.accesses,
            l2_misses: l2.misses,
            mc: self.mc.counters(app),
        }
    }

    /// Requests currently queued in the partition (ingress + memory
    /// controller), the congestion signal exported as
    /// `PartitionWindow.queue_depth` by the trace layer.
    pub fn queue_depth(&self) -> usize {
        self.ingress.len() + self.mc.queued()
    }

    /// True when the partition holds no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.ingress.is_empty()
            && self.hit_returns.is_empty()
            && self.missed.is_empty()
            && self.mc.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::{Address, CoreId};

    fn partition() -> MemoryPartition {
        MemoryPartition::new(PartitionId(0), &GpuConfig::small(), 2)
    }

    fn load(id: u64, addr: u64) -> MemRequest {
        MemRequest::new(
            ReqId(id),
            AppId::new(0),
            CoreId(0),
            0,
            Address::new(addr),
            AccessKind::Load,
        )
    }

    fn drain(p: &mut MemoryPartition) -> Vec<(u64, MemRequest)> {
        let mut out = Vec::new();
        let mut now = 0;
        while !p.is_idle() {
            for r in p.step(now) {
                out.push((now, r));
            }
            now += 1;
            assert!(now < 100_000, "partition failed to drain");
        }
        out
    }

    #[test]
    fn cold_load_misses_then_warm_load_hits() {
        let mut p = partition();
        p.push(load(1, 0)).unwrap();
        let first = drain(&mut p);
        assert_eq!(first.len(), 1);
        let t_miss = first[0].0;

        p.push(load(2, 0)).unwrap();
        let second = drain(&mut p);
        assert_eq!(second.len(), 1);
        let t_hit = second[0].0;
        assert!(
            t_hit < t_miss,
            "L2 hit ({t_hit}) must be faster than miss ({t_miss})"
        );

        let k = p.counters(AppId::new(0));
        assert_eq!((k.l2_accesses, k.l2_misses), (2, 1));
        assert_eq!(k.mc.dram_bytes, gpu_types::LINE_SIZE);
    }

    #[test]
    fn merged_misses_release_together() {
        let mut p = partition();
        p.push(load(1, 0)).unwrap();
        p.push(load(2, 0)).unwrap();
        let out = drain(&mut p);
        assert_eq!(out.len(), 2);
        // One DRAM transfer served both; only one true miss, one merge.
        assert_eq!(
            p.counters(AppId::new(0)).mc.dram_bytes,
            gpu_types::LINE_SIZE
        );
        assert_eq!(p.counters(AppId::new(0)).l2_misses, 1);
    }

    #[test]
    fn stores_consume_bandwidth_without_response() {
        let mut p = partition();
        let mut st = load(1, 0);
        st.kind = AccessKind::Store;
        p.push(st).unwrap();
        let out = drain(&mut p);
        assert!(out.is_empty());
        let k = p.counters(AppId::new(0));
        assert_eq!(
            k.l2_accesses, 0,
            "stores are not counted in L2 miss-rate accounting"
        );
        assert_eq!(k.mc.dram_bytes, gpu_types::LINE_SIZE);
    }

    #[test]
    fn ingress_backpressure() {
        let mut p = partition();
        for i in 0..32 {
            p.push(load(i, i * 128)).unwrap();
        }
        assert!(!p.can_accept());
        assert!(p.push(load(99, 0)).is_err());
    }

    #[test]
    fn per_app_l2_counters_are_separate() {
        let mut p = partition();
        p.push(load(1, 0)).unwrap();
        let mut r = load(2, 1 << 20);
        r.app = AppId::new(1);
        p.push(r).unwrap();
        drain(&mut p);
        assert_eq!(p.counters(AppId::new(0)).l2_accesses, 1);
        assert_eq!(p.counters(AppId::new(1)).l2_accesses, 1);
    }

    #[test]
    fn bypassing_load_does_not_allocate_in_l2() {
        let mut p = partition();
        p.push(load(1, 0).bypassing()).unwrap();
        let out = drain(&mut p);
        assert_eq!(out.len(), 1, "bypassed load still returns data");
        // A second bypassed load to the same line misses again: nothing was
        // allocated.
        p.push(load(2, 0).bypassing()).unwrap();
        drain(&mut p);
        let k = p.counters(AppId::new(0));
        assert_eq!((k.l2_accesses, k.l2_misses), (2, 2));
        assert_eq!(k.mc.dram_bytes, 2 * gpu_types::LINE_SIZE);
    }

    #[test]
    fn bypassing_load_may_still_hit_resident_lines() {
        let mut p = partition();
        // Warm the line with a normal load...
        p.push(load(1, 0)).unwrap();
        drain(&mut p);
        // ...then a bypassed load to it hits without DRAM traffic.
        p.push(load(2, 0).bypassing()).unwrap();
        drain(&mut p);
        let k = p.counters(AppId::new(0));
        assert_eq!(k.l2_misses, 1, "only the warming load missed");
        assert_eq!(k.mc.dram_bytes, gpu_types::LINE_SIZE);
    }

    #[test]
    fn bypassing_and_cached_loads_coexist_on_one_line() {
        let mut p = partition();
        p.push(load(1, 0)).unwrap();
        p.push(load(2, 0).bypassing()).unwrap();
        let out = drain(&mut p);
        assert_eq!(out.len(), 2, "both loads must complete");
    }

    #[test]
    fn one_request_serviced_per_cycle() {
        let mut p = partition();
        // Warm two lines.
        p.push(load(1, 0)).unwrap();
        p.push(load(2, 128)).unwrap();
        drain(&mut p);
        // Both hit now, but the single L2 port takes them one per cycle.
        p.push(load(3, 0)).unwrap();
        p.push(load(4, 128)).unwrap();
        let out = drain(&mut p);
        assert_eq!(out.len(), 2);
        assert_ne!(out[0].0, out[1].0, "hits must be staggered by the L2 port");
    }
}
