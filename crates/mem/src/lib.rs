//! GPU memory-system substrate for the `gpu-ebm` simulator.
//!
//! Implements, from the cores outward (Fig. 8 of the paper):
//!
//! * [`req`] — memory request/response records tagged with the issuing
//!   application, core and warp, so every downstream counter can be
//!   attributed per application (the paper computes BW and L1/L2 miss rates
//!   *separately for each application even in the multi-application
//!   scenario*, §II-B).
//! * [`cache`] + [`mshr`] — set-associative caches with LRU replacement,
//!   miss-status holding registers with request merging, and per-application
//!   bypass (used by the Mod+Bypass baseline).
//! * [`xbar`] — the cores ⇄ memory-partition crossbar with per-port queues,
//!   round-robin output arbitration and a fixed traversal latency.
//! * [`dram`] — a GDDR5 channel: banks, bank groups, row buffers and the
//!   tCL/tRP/tRCD/tRAS/tCCD/tRRD command timings of Table I.
//! * [`mc`] — an FR-FCFS (first-ready, first-come-first-served) memory
//!   controller in front of each channel.
//! * [`partition`] — a memory partition: one L2 slice plus one controller,
//!   the unit the paper's designated-partition sampling reads its per-app
//!   BW and L2-miss-rate counters from.

#![deny(missing_docs)]

pub(crate) const LINE_SIZE_U64: u64 = gpu_types::LINE_SIZE;

pub mod cache;
pub mod dram;
pub mod mc;
pub mod mshr;
pub mod partition;
pub mod req;
pub mod xbar;

pub use cache::{Cache, Lookup};
pub use dram::DramChannel;
pub use mc::MemoryController;
pub use partition::MemoryPartition;
pub use req::{AccessKind, MemRequest, ReqId};
pub use xbar::Crossbar;
