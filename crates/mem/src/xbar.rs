//! Crossbar interconnect between cores and memory partitions.
//!
//! One instance models each direction (request and response networks are
//! independent crossbars, as in GPGPU-Sim). Each input port owns a bounded
//! FIFO; every cycle each output port grants up to a configured number of
//! head-of-line flits, arbitrating among contending inputs round-robin
//! (a single-iteration iSLIP). A flit becomes eligible for delivery
//! `latency` cycles after it was pushed, modeling wire/router traversal.

use std::collections::VecDeque;

#[derive(Debug)]
struct Flit<T> {
    dest: usize,
    ready_at: u64,
    payload: T,
}

/// A fixed-latency, input-queued crossbar carrying payloads of type `T`.
#[derive(Debug)]
pub struct Crossbar<T> {
    inputs: Vec<VecDeque<Flit<T>>>,
    n_outputs: usize,
    latency: u64,
    grants_per_output: usize,
    queue_capacity: usize,
    rr: Vec<usize>,
}

impl<T> Crossbar<T> {
    /// Creates a crossbar with `n_inputs` input ports, `n_outputs` output
    /// ports, a traversal `latency` in cycles, up to `grants_per_output`
    /// deliveries per output per cycle, and `queue_capacity` flits of
    /// buffering per input port.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        n_inputs: usize,
        n_outputs: usize,
        latency: u64,
        grants_per_output: usize,
        queue_capacity: usize,
    ) -> Self {
        assert!(
            n_inputs > 0 && n_outputs > 0 && grants_per_output > 0 && queue_capacity > 0,
            "crossbar dimensions must be non-zero"
        );
        Crossbar {
            inputs: (0..n_inputs).map(|_| VecDeque::new()).collect(),
            n_outputs,
            latency,
            grants_per_output,
            queue_capacity,
            rr: vec![0; n_outputs],
        }
    }

    /// True when input port `input` can accept another flit.
    pub fn can_accept(&self, input: usize) -> bool {
        self.inputs[input].len() < self.queue_capacity
    }

    /// Enqueues `payload` at `input` destined for `dest`, becoming
    /// deliverable at `now + latency`.
    ///
    /// # Errors
    ///
    /// Returns the payload back when the input queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `dest` is out of range.
    pub fn push(&mut self, input: usize, dest: usize, payload: T, now: u64) -> Result<(), T> {
        assert!(dest < self.n_outputs, "destination {dest} out of range");
        if !self.can_accept(input) {
            return Err(payload);
        }
        self.inputs[input].push_back(Flit {
            dest,
            ready_at: now + self.latency,
            payload,
        });
        Ok(())
    }

    /// Advances one cycle: each output port grants up to
    /// `grants_per_output` eligible head-of-line flits, round-robin over
    /// inputs; each input sends at most one flit per cycle. Returns the
    /// delivered `(output_port, payload)` pairs.
    pub fn step(&mut self, now: u64) -> Vec<(usize, T)> {
        let n_inputs = self.inputs.len();
        let mut delivered = Vec::new();
        let mut input_used = vec![false; n_inputs];
        for out in 0..self.n_outputs {
            let mut grants = 0;
            let start = self.rr[out];
            for k in 0..n_inputs {
                if grants == self.grants_per_output {
                    break;
                }
                let i = (start + k) % n_inputs;
                if input_used[i] {
                    continue;
                }
                let eligible = matches!(
                    self.inputs[i].front(),
                    Some(f) if f.dest == out && f.ready_at <= now
                );
                if eligible {
                    let flit = self.inputs[i].pop_front().expect("front checked above");
                    delivered.push((out, flit.payload));
                    input_used[i] = true;
                    grants += 1;
                    // Advance the pointer past the last granted input so a
                    // persistent sender cannot starve others.
                    self.rr[out] = (i + 1) % n_inputs;
                }
            }
        }
        delivered
    }

    /// Total flits currently buffered.
    pub fn in_flight(&self) -> usize {
        self.inputs.iter().map(VecDeque::len).sum()
    }

    /// True when no flits are buffered.
    pub fn is_empty(&self) -> bool {
        self.inputs.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 3, 1, 4);
        x.push(0, 1, 42, 10).unwrap();
        assert!(x.step(10).is_empty());
        assert!(x.step(12).is_empty());
        assert_eq!(x.step(13), vec![(1, 42)]);
        assert!(x.is_empty());
    }

    #[test]
    fn zero_latency_delivers_same_cycle() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0, 1, 4);
        x.push(0, 0, 7, 5).unwrap();
        assert_eq!(x.step(5), vec![(0, 7)]);
    }

    #[test]
    fn backpressure_on_full_queue() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0, 1, 2);
        x.push(0, 0, 1, 0).unwrap();
        x.push(0, 0, 2, 0).unwrap();
        assert!(!x.can_accept(0));
        assert_eq!(x.push(0, 0, 3, 0), Err(3));
    }

    #[test]
    fn output_rate_limits_throughput() {
        let mut x: Crossbar<u32> = Crossbar::new(4, 1, 0, 1, 4);
        for i in 0..4 {
            x.push(i, 0, i as u32, 0).unwrap();
        }
        // One grant per cycle at the single output.
        for cycle in 0..4u64 {
            assert_eq!(x.step(cycle).len(), 1);
        }
        assert!(x.is_empty());
    }

    #[test]
    fn round_robin_is_fair_under_contention() {
        let mut x: Crossbar<usize> = Crossbar::new(3, 1, 0, 1, 8);
        for i in 0..3 {
            for _ in 0..4 {
                x.push(i, 0, i, 0).unwrap();
            }
        }
        let mut served = [0usize; 3];
        for cycle in 0..12u64 {
            for (_, src) in x.step(cycle) {
                served[src] += 1;
            }
        }
        assert_eq!(served, [4, 4, 4]);
    }

    #[test]
    fn head_of_line_blocking() {
        // Input 0's head targets output 0 (busy via rate), the flit behind it
        // targets output 1 but cannot overtake.
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 0, 1, 4);
        x.push(0, 0, 10, 0).unwrap();
        x.push(0, 1, 11, 0).unwrap();
        x.push(1, 0, 20, 0).unwrap();
        let first = x.step(0);
        // Output 0 grants one of the two contenders; output 1 gets nothing
        // if input 0's head went to output 0, or gets nothing because input 0
        // already sent — either way flit 11 is not delivered in cycle 0
        // unless input 0 lost arbitration at output 0.
        let got_11 = first.iter().any(|&(_, p)| p == 11);
        assert!(!got_11, "second flit of input 0 must not overtake its head");
    }

    #[test]
    fn distinct_outputs_deliver_in_parallel() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 0, 1, 4);
        x.push(0, 0, 1, 0).unwrap();
        x.push(1, 1, 2, 0).unwrap();
        let mut got = x.step(0);
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn one_flit_per_input_per_cycle() {
        // Same input has heads for both outputs across cycles; even with two
        // free outputs it can send only one flit per cycle.
        let mut x: Crossbar<u32> = Crossbar::new(1, 2, 0, 2, 4);
        x.push(0, 0, 1, 0).unwrap();
        x.push(0, 1, 2, 0).unwrap();
        assert_eq!(x.step(0).len(), 1);
        assert_eq!(x.step(1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0, 1, 1);
        let _ = x.push(0, 5, 0, 0);
    }
}
