//! Crossbar interconnect between cores and memory partitions.
//!
//! One instance models each direction (request and response networks are
//! independent crossbars, as in GPGPU-Sim). Each input port owns a bounded
//! FIFO; every cycle each output port grants up to a configured number of
//! head-of-line flits, arbitrating among contending inputs round-robin
//! (a single-iteration iSLIP). A flit becomes eligible for delivery
//! `latency` cycles after it was pushed, modeling wire/router traversal.

use std::collections::VecDeque;

#[derive(Debug)]
struct Flit<T> {
    dest: usize,
    ready_at: u64,
    payload: T,
}

/// A fixed-latency, input-queued crossbar carrying payloads of type `T`.
#[derive(Debug)]
pub struct Crossbar<T> {
    inputs: Vec<VecDeque<Flit<T>>>,
    n_outputs: usize,
    latency: u64,
    grants_per_output: usize,
    queue_capacity: usize,
    rr: Vec<usize>,
    /// Running count of buffered flits, so [`Crossbar::in_flight`] /
    /// [`Crossbar::is_empty`] and the engine's idle-skip check are O(1)
    /// instead of an O(n_inputs) scan.
    buffered: usize,
    /// High-water mark of `buffered` since the last
    /// [`Crossbar::take_peak_in_flight`] — one compare per push, cheap
    /// enough to track unconditionally.
    peak_buffered: usize,
    /// Arbitration scratch ("this input already sent a flit this cycle"),
    /// kept as a member so [`Crossbar::step_with`] allocates nothing.
    input_used: Vec<bool>,
}

impl<T> Crossbar<T> {
    /// Creates a crossbar with `n_inputs` input ports, `n_outputs` output
    /// ports, a traversal `latency` in cycles, up to `grants_per_output`
    /// deliveries per output per cycle, and `queue_capacity` flits of
    /// buffering per input port.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        n_inputs: usize,
        n_outputs: usize,
        latency: u64,
        grants_per_output: usize,
        queue_capacity: usize,
    ) -> Self {
        assert!(
            n_inputs > 0 && n_outputs > 0 && grants_per_output > 0 && queue_capacity > 0,
            "crossbar dimensions must be non-zero"
        );
        Crossbar {
            inputs: (0..n_inputs).map(|_| VecDeque::new()).collect(),
            n_outputs,
            latency,
            grants_per_output,
            queue_capacity,
            rr: vec![0; n_outputs],
            buffered: 0,
            peak_buffered: 0,
            input_used: vec![false; n_inputs],
        }
    }

    /// True when input port `input` can accept another flit.
    pub fn can_accept(&self, input: usize) -> bool {
        self.inputs[input].len() < self.queue_capacity
    }

    /// Number of flits input port `input` can still accept this cycle.
    ///
    /// Because each input FIFO is filled only by its owning component and
    /// drained only by [`Crossbar::step_with`], a snapshot taken before the
    /// cycle's push phase is an exact admission budget for that phase — the
    /// parallel engine (docs/PARALLELISM.md) uses this to let domains stage
    /// pushes without consulting the shared crossbar mid-cycle.
    pub fn free_slots(&self, input: usize) -> usize {
        self.queue_capacity - self.inputs[input].len()
    }

    /// Enqueues `payload` at `input` destined for `dest`, becoming
    /// deliverable at `now + latency`.
    ///
    /// # Errors
    ///
    /// Returns the payload back when the input queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `dest` is out of range.
    pub fn push(&mut self, input: usize, dest: usize, payload: T, now: u64) -> Result<(), T> {
        assert!(dest < self.n_outputs, "destination {dest} out of range");
        if !self.can_accept(input) {
            return Err(payload);
        }
        self.inputs[input].push_back(Flit {
            dest,
            ready_at: now + self.latency,
            payload,
        });
        self.buffered += 1;
        if self.buffered > self.peak_buffered {
            self.peak_buffered = self.buffered;
        }
        Ok(())
    }

    /// Advances one cycle: each output port grants up to
    /// `grants_per_output` eligible head-of-line flits, round-robin over
    /// inputs; each input sends at most one flit per cycle, delivered
    /// through `deliver(output_port, payload)` in grant order.
    ///
    /// This is the hot-path form: arbitration scratch lives on the crossbar
    /// and nothing is allocated. When no head-of-line flit is deliverable it
    /// returns immediately — exact, because grants (and thus `rr` pointer
    /// movement) only ever happen for deliverable flits.
    pub fn step_with(&mut self, now: u64, mut deliver: impl FnMut(usize, T)) {
        self.step_routed(now, |_input, out, payload| deliver(out, payload));
    }

    /// [`Crossbar::step_with`] with the granted *input* port reported
    /// alongside the output: `deliver(input_port, output_port, payload)`.
    ///
    /// The windowed parallel engine (docs/PARALLELISM.md) forward-simulates
    /// arbitration for a whole lookahead window at the window boundary and
    /// needs the source port of every grant to compute exact per-port
    /// admission-budget refunds for the domain workers.
    pub fn step_routed(&mut self, now: u64, mut deliver: impl FnMut(usize, usize, T)) {
        if self.buffered == 0 {
            return;
        }
        if !self
            .inputs
            .iter()
            .any(|q| matches!(q.front(), Some(f) if f.ready_at <= now))
        {
            return;
        }
        let n_inputs = self.inputs.len();
        for u in &mut self.input_used {
            *u = false;
        }
        for out in 0..self.n_outputs {
            let mut grants = 0;
            let start = self.rr[out];
            for k in 0..n_inputs {
                if grants == self.grants_per_output {
                    break;
                }
                let i = (start + k) % n_inputs;
                if self.input_used[i] {
                    continue;
                }
                let eligible = matches!(
                    self.inputs[i].front(),
                    Some(f) if f.dest == out && f.ready_at <= now
                );
                if eligible {
                    let flit = self.inputs[i].pop_front().expect("front checked above");
                    self.buffered -= 1;
                    deliver(i, out, flit.payload);
                    self.input_used[i] = true;
                    grants += 1;
                    // Advance the pointer past the last granted input so a
                    // persistent sender cannot starve others.
                    self.rr[out] = (i + 1) % n_inputs;
                }
            }
        }
        debug_assert_eq!(
            self.buffered,
            self.inputs.iter().map(VecDeque::len).sum::<usize>(),
            "running flit count diverged from the scan"
        );
    }

    /// Reference form of [`Crossbar::step_with`]: the original per-cycle
    /// algorithm with freshly allocated scratch and a collected result
    /// vector, no early-outs. Kept for differential testing
    /// (`engine_equivalence`) and unit tests; never used on the hot path.
    pub fn step(&mut self, now: u64) -> Vec<(usize, T)> {
        let n_inputs = self.inputs.len();
        let mut delivered = Vec::new();
        let mut input_used = vec![false; n_inputs];
        for out in 0..self.n_outputs {
            let mut grants = 0;
            let start = self.rr[out];
            for k in 0..n_inputs {
                if grants == self.grants_per_output {
                    break;
                }
                let i = (start + k) % n_inputs;
                if input_used[i] {
                    continue;
                }
                let eligible = matches!(
                    self.inputs[i].front(),
                    Some(f) if f.dest == out && f.ready_at <= now
                );
                if eligible {
                    let flit = self.inputs[i].pop_front().expect("front checked above");
                    self.buffered -= 1;
                    delivered.push((out, flit.payload));
                    input_used[i] = true;
                    grants += 1;
                    self.rr[out] = (i + 1) % n_inputs;
                }
            }
        }
        delivered
    }

    /// The cycle (exclusive) until which this crossbar is provably inert:
    /// `Some(u64::MAX)` when empty, the earliest head-of-line `ready_at`
    /// when every buffered flit is still in wire traversal, and `None` when
    /// a flit is deliverable at `now` (the crossbar must be stepped).
    /// Head-of-line flits suffice: only they can be granted, and latency is
    /// constant so each FIFO's head has its queue's earliest `ready_at`.
    pub fn quiescent_until(&self, now: u64) -> Option<u64> {
        if self.buffered == 0 {
            return Some(u64::MAX);
        }
        let mut next = u64::MAX;
        for q in &self.inputs {
            if let Some(f) = q.front() {
                if f.ready_at <= now {
                    return None;
                }
                next = next.min(f.ready_at);
            }
        }
        Some(next)
    }

    /// The earliest head-of-line `ready_at`, or `None` when the crossbar
    /// is empty — its "next event at" contract for the event engine:
    /// nothing can be delivered before the returned cycle. Head-of-line
    /// flits suffice because only they can be granted and latency is
    /// constant, so each FIFO's head carries its queue's minimum.
    pub fn earliest_head_ready(&self) -> Option<u64> {
        if self.buffered == 0 {
            return None;
        }
        let mut next = u64::MAX;
        for q in &self.inputs {
            if let Some(f) = q.front() {
                next = next.min(f.ready_at);
            }
        }
        Some(next)
    }

    /// Total flits currently buffered (O(1): a running count).
    pub fn in_flight(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            self.inputs.iter().map(VecDeque::len).sum::<usize>(),
            "running flit count diverged from the scan"
        );
        self.buffered
    }

    /// True when no flits are buffered (O(1): a running count).
    pub fn is_empty(&self) -> bool {
        debug_assert_eq!(
            self.buffered == 0,
            self.inputs.iter().all(VecDeque::is_empty),
            "running flit count diverged from the scan"
        );
        self.buffered == 0
    }

    /// Returns the high-water mark of buffered flits since the last call
    /// and re-arms it at the current depth — the metrics layer reads this
    /// once per sampling window as a queue-depth sample.
    pub fn take_peak_in_flight(&mut self) -> usize {
        std::mem::replace(&mut self.peak_buffered, self.buffered)
    }

    /// Raises the buffered-flit high-water mark to at least `to`.
    ///
    /// The windowed parallel engine pops a window's grants (forward
    /// simulation at the window boundary) *before* physically replaying the
    /// window's pushes, so the physical occupancy never reaches the depth
    /// the serial interleaving (per-cycle pushes before grants) would have
    /// touched. The coordinator reconstructs the serial per-cycle peak from
    /// its push/grant counts and restores it here, keeping
    /// [`Crossbar::take_peak_in_flight`] byte-identical to serial.
    pub fn raise_peak(&mut self, to: usize) {
        if to > self.peak_buffered {
            self.peak_buffered = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 3, 1, 4);
        x.push(0, 1, 42, 10).unwrap();
        assert!(x.step(10).is_empty());
        assert!(x.step(12).is_empty());
        assert_eq!(x.step(13), vec![(1, 42)]);
        assert!(x.is_empty());
    }

    #[test]
    fn zero_latency_delivers_same_cycle() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0, 1, 4);
        x.push(0, 0, 7, 5).unwrap();
        assert_eq!(x.step(5), vec![(0, 7)]);
    }

    #[test]
    fn peak_in_flight_tracks_high_water_mark() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 3, 1, 4);
        x.push(0, 0, 1, 0).unwrap();
        x.push(1, 1, 2, 0).unwrap();
        x.step(3); // drains both
        assert!(x.is_empty());
        assert_eq!(x.take_peak_in_flight(), 2);
        // Re-armed at the current (empty) depth.
        assert_eq!(x.take_peak_in_flight(), 0);
    }

    #[test]
    fn backpressure_on_full_queue() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0, 1, 2);
        x.push(0, 0, 1, 0).unwrap();
        x.push(0, 0, 2, 0).unwrap();
        assert!(!x.can_accept(0));
        assert_eq!(x.push(0, 0, 3, 0), Err(3));
    }

    #[test]
    fn free_slots_counts_down_to_zero() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 1, 0, 1, 3);
        assert_eq!(x.free_slots(0), 3);
        x.push(0, 0, 1, 0).unwrap();
        x.push(0, 0, 2, 0).unwrap();
        assert_eq!(x.free_slots(0), 1);
        assert_eq!(x.free_slots(1), 3, "ports are independent");
        x.push(0, 0, 3, 0).unwrap();
        assert_eq!(x.free_slots(0), 0);
        assert!(!x.can_accept(0));
        x.step(0);
        assert_eq!(x.free_slots(0), 1, "a grant frees exactly one slot");
    }

    #[test]
    fn output_rate_limits_throughput() {
        let mut x: Crossbar<u32> = Crossbar::new(4, 1, 0, 1, 4);
        for i in 0..4 {
            x.push(i, 0, i as u32, 0).unwrap();
        }
        // One grant per cycle at the single output.
        for cycle in 0..4u64 {
            assert_eq!(x.step(cycle).len(), 1);
        }
        assert!(x.is_empty());
    }

    #[test]
    fn round_robin_is_fair_under_contention() {
        let mut x: Crossbar<usize> = Crossbar::new(3, 1, 0, 1, 8);
        for i in 0..3 {
            for _ in 0..4 {
                x.push(i, 0, i, 0).unwrap();
            }
        }
        let mut served = [0usize; 3];
        for cycle in 0..12u64 {
            for (_, src) in x.step(cycle) {
                served[src] += 1;
            }
        }
        assert_eq!(served, [4, 4, 4]);
    }

    #[test]
    fn head_of_line_blocking() {
        // Input 0's head targets output 0 (busy via rate), the flit behind it
        // targets output 1 but cannot overtake.
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 0, 1, 4);
        x.push(0, 0, 10, 0).unwrap();
        x.push(0, 1, 11, 0).unwrap();
        x.push(1, 0, 20, 0).unwrap();
        let first = x.step(0);
        // Output 0 grants one of the two contenders; output 1 gets nothing
        // if input 0's head went to output 0, or gets nothing because input 0
        // already sent — either way flit 11 is not delivered in cycle 0
        // unless input 0 lost arbitration at output 0.
        let got_11 = first.iter().any(|&(_, p)| p == 11);
        assert!(!got_11, "second flit of input 0 must not overtake its head");
    }

    #[test]
    fn distinct_outputs_deliver_in_parallel() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 0, 1, 4);
        x.push(0, 0, 1, 0).unwrap();
        x.push(1, 1, 2, 0).unwrap();
        let mut got = x.step(0);
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn one_flit_per_input_per_cycle() {
        // Same input has heads for both outputs across cycles; even with two
        // free outputs it can send only one flit per cycle.
        let mut x: Crossbar<u32> = Crossbar::new(1, 2, 0, 2, 4);
        x.push(0, 0, 1, 0).unwrap();
        x.push(0, 1, 2, 0).unwrap();
        assert_eq!(x.step(0).len(), 1);
        assert_eq!(x.step(1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0, 1, 1);
        let _ = x.push(0, 5, 0, 0);
    }

    #[test]
    fn running_count_tracks_pushes_and_grants() {
        let mut x: Crossbar<u32> = Crossbar::new(3, 2, 1, 1, 4);
        assert!(x.is_empty());
        x.push(0, 0, 1, 0).unwrap();
        x.push(1, 1, 2, 0).unwrap();
        x.push(2, 0, 3, 0).unwrap();
        assert_eq!(x.in_flight(), 3);
        let delivered = x.step(1).len();
        assert_eq!(x.in_flight(), 3 - delivered);
        while !x.is_empty() {
            x.step(2);
        }
        assert_eq!(x.in_flight(), 0);
    }

    #[test]
    fn step_with_matches_step() {
        // Same stimulus through both step forms: identical deliveries in
        // identical order, cycle by cycle.
        let stimulate = |x: &mut Crossbar<u32>, now: u64| {
            if now % 3 != 2 {
                let _ = x.push((now % 4) as usize, (now % 2) as usize, now as u32, now);
                let _ = x.push(
                    ((now + 2) % 4) as usize,
                    ((now + 1) % 2) as usize,
                    100 + now as u32,
                    now,
                );
            }
        };
        let mut a: Crossbar<u32> = Crossbar::new(4, 2, 2, 1, 4);
        let mut b: Crossbar<u32> = Crossbar::new(4, 2, 2, 1, 4);
        for now in 0..40u64 {
            stimulate(&mut a, now);
            stimulate(&mut b, now);
            let mut got_a = Vec::new();
            a.step_with(now, |out, p| got_a.push((out, p)));
            assert_eq!(got_a, b.step(now), "divergence at cycle {now}");
        }
    }

    #[test]
    fn step_routed_reports_source_ports() {
        let mut x: Crossbar<u32> = Crossbar::new(3, 2, 0, 1, 4);
        x.push(0, 0, 10, 0).unwrap();
        x.push(1, 1, 21, 0).unwrap();
        x.push(2, 0, 30, 0).unwrap();
        let mut got = Vec::new();
        x.step_routed(0, |inp, out, p| got.push((inp, out, p)));
        got.sort_unstable();
        // Output 0 grants input 0 (rr starts there); output 1 grants input 1.
        assert_eq!(got, vec![(0, 0, 10), (1, 1, 21)]);
    }

    #[test]
    fn raise_peak_only_raises() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0, 1, 4);
        x.push(0, 0, 1, 0).unwrap();
        x.raise_peak(3);
        assert_eq!(x.take_peak_in_flight(), 3);
        x.raise_peak(0);
        assert_eq!(x.take_peak_in_flight(), 1, "never lowers below the mark");
    }

    #[test]
    fn quiescent_until_reports_traversal_horizon() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 5, 1, 4);
        assert_eq!(x.quiescent_until(0), Some(u64::MAX), "empty crossbar");
        x.push(0, 1, 9, 10).unwrap();
        assert_eq!(x.quiescent_until(10), Some(15), "in traversal until 15");
        assert_eq!(x.quiescent_until(15), None, "deliverable now");
    }
}
