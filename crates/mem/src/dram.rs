//! GDDR5 DRAM channel timing model.
//!
//! Models banks with row buffers, bank groups, and the command timing
//! constraints of Table I (Hynix GDDR5): `tCL`, `tRP`, `tRCD`, `tRAS`,
//! `tCCD` (long within a bank group, short across groups) and `tRRD`, plus
//! data-bus occupancy per burst. The controller ([`crate::mc`]) picks which
//! queued request to serve; this module answers *when* that service
//! completes and tracks the resulting bank/bus state.
//!
//! Address mapping within a partition is row-contiguous: consecutive
//! interleave chunks fill a row before moving to the next bank, so streaming
//! access patterns naturally enjoy high row-buffer locality while irregular
//! patterns pay frequent ACTIVATE/PRECHARGE pairs — exactly the contention
//! behaviour the paper's §III analysis relies on.

use gpu_types::addr::INTERLEAVE_BYTES;
use gpu_types::{Address, DramConfig, PagePolicy};

/// Completed-service summary returned by [`DramChannel::service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Service {
    /// Cycle at which the last data beat has transferred.
    pub done_at: u64,
    /// True when the access hit an open row.
    pub row_hit: bool,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next command. Set to the last
    /// column command plus `tCCD_L`, so consecutive row hits pipeline their
    /// column commands while the previous burst is still on the bus —
    /// without this, per-bank bandwidth would be capped at
    /// `LINE_SIZE / (tCL + burst)` and FR-FCFS streams could never reach
    /// the peak the paper normalizes BW against.
    busy_until: u64,
    /// Cycle of the most recent ACTIVATE (for tRAS).
    activated_at: u64,
}

/// One GDDR5 channel: a set of banks behind a shared command/data bus.
#[derive(Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    n_partitions: usize,
    /// Earliest cycle the shared data bus is free.
    bus_free_at: u64,
    /// Earliest cycle the next ACTIVATE may issue on any bank (tRRD window).
    next_act_ok: u64,
    /// Cycle of the most recent column command per bank group (for tCCD);
    /// `None` until the group has seen one.
    last_col_at: Vec<Option<u64>>,
}

impl DramChannel {
    /// Creates a channel. `n_partitions` is needed to strip the partition
    /// interleaving out of global addresses.
    pub fn new(cfg: DramConfig, n_partitions: usize) -> Self {
        assert!(n_partitions > 0, "partition count must be non-zero");
        let banks = vec![
            Bank {
                open_row: None,
                busy_until: 0,
                activated_at: 0
            };
            cfg.n_banks
        ];
        let groups = cfg.n_bank_groups;
        DramChannel {
            cfg,
            banks,
            n_partitions,
            bus_free_at: 0,
            next_act_ok: 0,
            last_col_at: vec![None; groups],
        }
    }

    fn local_chunk(&self, addr: Address) -> u64 {
        (addr.raw() / INTERLEAVE_BYTES) / self.n_partitions as u64
    }

    fn chunks_per_row(&self) -> u64 {
        self.cfg.row_bytes / INTERLEAVE_BYTES
    }

    /// The bank index a global address maps to.
    pub fn bank_of(&self, addr: Address) -> usize {
        ((self.local_chunk(addr) / self.chunks_per_row()) % self.cfg.n_banks as u64) as usize
    }

    /// The row index (within its bank) a global address maps to.
    pub fn row_of(&self, addr: Address) -> u64 {
        self.local_chunk(addr) / self.chunks_per_row() / self.cfg.n_banks as u64
    }

    fn group_of(&self, bank: usize) -> usize {
        bank % self.cfg.n_bank_groups
    }

    /// True when `addr`'s bank currently has `addr`'s row open — the
    /// "first-ready" predicate of FR-FCFS.
    pub fn is_row_hit(&self, addr: Address) -> bool {
        self.row_open(self.bank_of(addr), self.row_of(addr))
    }

    /// True when `addr`'s bank can accept a request at `now`.
    pub fn bank_free(&self, addr: Address, now: u64) -> bool {
        self.bank_free_idx(self.bank_of(addr), now)
    }

    /// [`Self::is_row_hit`] with a precomputed bank/row (the controller
    /// caches both per queued request to keep the FR-FCFS scan free of
    /// divisions).
    pub fn row_open(&self, bank: usize, row: u64) -> bool {
        self.banks[bank].open_row == Some(row)
    }

    /// [`Self::bank_free`] with a precomputed bank index.
    pub fn bank_free_idx(&self, bank: usize, now: u64) -> bool {
        self.banks[bank].busy_until <= now
    }

    /// The cycle at which `bank` finishes its current operation (0 when it
    /// has never been used): `bank_free_idx(bank, t)` holds exactly for
    /// `t >= bank_busy_until(bank)`. Bank state mutates only on
    /// [`Self::service_at`], so between controller issues this horizon is
    /// exact — the event engine builds the controller's next-issue time
    /// from it.
    pub fn bank_busy_until(&self, bank: usize) -> u64 {
        self.banks[bank].busy_until
    }

    /// Services one line-sized access starting no earlier than `now`,
    /// updating bank and bus state, and returns its completion time.
    ///
    /// The caller (the memory controller) is responsible for only invoking
    /// this when [`Self::bank_free`] holds.
    pub fn service(&mut self, addr: Address, now: u64) -> Service {
        self.service_at(self.bank_of(addr), self.row_of(addr), now)
    }

    /// [`Self::service`] with a precomputed bank/row.
    pub fn service_at(&mut self, bank_idx: usize, row: u64, now: u64) -> Service {
        let group = self.group_of(bank_idx);
        let c = &self.cfg;
        let bank = self.banks[bank_idx];
        let start = now.max(bank.busy_until);

        let (col_ready, row_hit) = match bank.open_row {
            Some(open) if open == row => (start, true),
            Some(_) => {
                // Conflict: PRECHARGE (respecting tRAS) then ACTIVATE
                // (respecting tRRD) then tRCD before the column command.
                let pre_at = start.max(bank.activated_at + c.t_ras as u64);
                let act_at = (pre_at + c.t_rp as u64).max(self.next_act_ok);
                self.next_act_ok = act_at + c.t_rrd as u64;
                self.banks[bank_idx].activated_at = act_at;
                (act_at + c.t_rcd as u64, false)
            }
            None => {
                // Closed bank: ACTIVATE then tRCD.
                let act_at = start.max(self.next_act_ok);
                self.next_act_ok = act_at + c.t_rrd as u64;
                self.banks[bank_idx].activated_at = act_at;
                (act_at + c.t_rcd as u64, false)
            }
        };

        // Column command spacing within/across bank groups, and the data bus
        // must be free when this access's burst begins.
        let ccd = self
            .last_col_at
            .iter()
            .enumerate()
            .filter_map(|(g, &t)| {
                let gap = if g == group { c.t_ccd_l } else { c.t_ccd_s };
                t.map(|t| t + gap as u64)
            })
            .max()
            .unwrap_or(0);
        let col_at = col_ready
            .max(ccd)
            .max(self.bus_free_at.saturating_sub(c.t_cl as u64));
        let data_start = (col_at + c.t_cl as u64).max(self.bus_free_at);
        let done_at = data_start + c.burst_cycles as u64;

        self.last_col_at[group] = Some(col_at);
        self.bus_free_at = done_at;
        match c.page_policy {
            PagePolicy::Open => {
                self.banks[bank_idx].open_row = Some(row);
                self.banks[bank_idx].busy_until = col_at + c.t_ccd_l as u64;
            }
            PagePolicy::Closed => {
                // Auto-precharge: the row closes behind the access and the
                // bank may not activate again until the precharge finishes.
                self.banks[bank_idx].open_row = None;
                self.banks[bank_idx].busy_until =
                    (col_at + c.t_ccd_l as u64).max(col_at + c.t_rp as u64);
            }
        }
        Service { done_at, row_hit }
    }

    /// Number of banks in the channel.
    pub fn n_banks(&self) -> usize {
        self.cfg.n_banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::LINE_SIZE;

    fn cfg() -> DramConfig {
        DramConfig {
            n_banks: 8,
            n_bank_groups: 4,
            row_bytes: 1024,
            t_cl: 12,
            t_rp: 12,
            t_rcd: 12,
            t_ras: 28,
            t_ccd_l: 4,
            t_ccd_s: 2,
            t_rrd: 6,
            burst_cycles: 4,
            page_policy: PagePolicy::Open,
        }
    }

    #[test]
    fn closed_page_never_row_hits() {
        let mut closed = cfg();
        closed.page_policy = PagePolicy::Closed;
        let mut ch = DramChannel::new(closed, 1);
        let a = addr_in(&ch, 0, 0, 0);
        let b = addr_in(&ch, 0, 0, 1);
        let s1 = ch.service(a, 0);
        assert!(!s1.row_hit);
        assert!(!ch.is_row_hit(b), "row auto-precharged");
        let s2 = ch.service(b, s1.done_at);
        assert!(!s2.row_hit, "closed-page policy forfeits row hits");
    }

    #[test]
    fn closed_page_streams_slower_than_open() {
        let run = |policy: PagePolicy| {
            let mut c = cfg();
            c.page_policy = policy;
            let mut ch = DramChannel::new(c, 1);
            let mut issue_at = 0u64;
            let mut done = 0u64;
            for i in 0..32 {
                let a = addr_in(&ch, 0, 0, i % 8);
                while !ch.bank_free(a, issue_at) {
                    issue_at += 1;
                }
                done = ch.service(a, issue_at).done_at;
            }
            done
        };
        assert!(
            run(PagePolicy::Closed) > run(PagePolicy::Open),
            "a single-bank stream must be slower under closed page"
        );
    }

    /// Address of the `i`-th line within `bank`/`row` for a 1-partition
    /// channel (local chunk == global chunk).
    fn addr_in(ch: &DramChannel, bank: usize, row: u64, line: u64) -> Address {
        let chunks_per_row = ch.chunks_per_row();
        let chunk = (row * ch.cfg.n_banks as u64 + bank as u64) * chunks_per_row + line / 2;
        Address::new(chunk * INTERLEAVE_BYTES + (line % 2) * LINE_SIZE)
    }

    #[test]
    fn mapping_is_row_contiguous() {
        let ch = DramChannel::new(cfg(), 1);
        // 1024-byte rows = 4 chunks = 8 lines per row.
        let a0 = addr_in(&ch, 0, 0, 0);
        let a7 = addr_in(&ch, 0, 0, 7);
        assert_eq!(ch.bank_of(a0), ch.bank_of(a7));
        assert_eq!(ch.row_of(a0), ch.row_of(a7));
        // The next row index moves to the next bank.
        let b = Address::new(a7.raw() + LINE_SIZE);
        assert_eq!(ch.bank_of(b), 1);
    }

    #[test]
    fn first_access_is_a_row_miss_second_a_hit() {
        let mut ch = DramChannel::new(cfg(), 1);
        let a = addr_in(&ch, 0, 0, 0);
        let b = addr_in(&ch, 0, 0, 1);
        let s1 = ch.service(a, 0);
        assert!(!s1.row_hit);
        // tRCD + tCL + burst = 12 + 12 + 4 = 28 from ACTIVATE at 0.
        assert_eq!(s1.done_at, 28);
        let s2 = ch.service(b, s1.done_at);
        assert!(s2.row_hit);
        assert!(
            s2.done_at < s1.done_at + 28,
            "row hit must be faster than a miss"
        );
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut ch = DramChannel::new(cfg(), 1);
        let a = addr_in(&ch, 0, 0, 0);
        let conflict = addr_in(&ch, 0, 1, 0); // same bank, different row
        let s1 = ch.service(a, 0);
        let s2 = ch.service(conflict, s1.done_at);
        assert!(!s2.row_hit);
        // PRECHARGE waits for tRAS (28) after the ACTIVATE at 0, then
        // tRP + tRCD + tCL + burst.
        assert!(s2.done_at >= 28 + 12 + 12 + 12 + 4);
    }

    #[test]
    fn different_banks_overlap() {
        let mut ch = DramChannel::new(cfg(), 1);
        let a = addr_in(&ch, 0, 0, 0);
        let b = addr_in(&ch, 1, 0, 0);
        let s1 = ch.service(a, 0);
        let s2 = ch.service(b, 0);
        // Bank 1's activate only waits tRRD, so its data arrives well before
        // two serialized misses would (2 x 28).
        assert!(s2.done_at < s1.done_at + 28);
        assert!(
            s2.done_at > s1.done_at,
            "shared data bus still serializes bursts"
        );
    }

    #[test]
    fn data_bus_serializes_row_hits() {
        let mut ch = DramChannel::new(cfg(), 1);
        // Open two rows in two banks.
        let a = addr_in(&ch, 0, 0, 0);
        let b = addr_in(&ch, 2, 0, 0); // different bank group than bank 0
        ch.service(a, 0);
        ch.service(b, 0);
        let t = 100;
        let h1 = ch.service(addr_in(&ch, 0, 0, 1), t);
        let h2 = ch.service(addr_in(&ch, 2, 0, 1), t);
        assert!(h1.row_hit && h2.row_hit);
        // Bursts may not overlap on the shared bus.
        assert!(h2.done_at >= h1.done_at + cfg().burst_cycles as u64);
    }

    #[test]
    fn back_to_back_row_hits_reach_peak_bandwidth() {
        // Issue each access as soon as the bank can take another command
        // (as the FR-FCFS controller does); after the pipeline fills, each
        // row hit adds exactly one burst of bus time.
        let mut ch = DramChannel::new(cfg(), 1);
        let mut issue_at = 0;
        let mut prev_done = 0;
        for i in 0..8 {
            let a = addr_in(&ch, 0, 0, i);
            while !ch.bank_free(a, issue_at) {
                issue_at += 1;
            }
            let s = ch.service(a, issue_at);
            if i >= 2 {
                assert!(s.row_hit, "line {i} should hit");
                assert_eq!(
                    s.done_at,
                    prev_done + cfg().burst_cycles as u64,
                    "steady-state hits must stream at peak"
                );
            }
            prev_done = s.done_at;
        }
    }

    #[test]
    fn partition_interleaving_strips_correctly() {
        // With 4 partitions, global chunks 0,4,8,... belong to partition 0
        // and form its local chunks 0,1,2,...
        let ch = DramChannel::new(cfg(), 4);
        let a = Address::new(0);
        let b = Address::new(4 * INTERLEAVE_BYTES);
        assert_eq!(ch.local_chunk(a), 0);
        assert_eq!(ch.local_chunk(b), 1);
        assert_eq!(ch.bank_of(a), ch.bank_of(b), "first row stays in bank 0");
    }

    #[test]
    fn bank_free_tracks_busy_until() {
        let mut ch = DramChannel::new(cfg(), 1);
        let a = addr_in(&ch, 0, 0, 0);
        let s = ch.service(a, 0);
        assert!(!ch.bank_free(a, 0), "bank is busy right after issue");
        assert!(
            ch.bank_free(a, s.done_at),
            "bank can take a command once data completed"
        );
    }

    #[test]
    fn is_row_hit_reflects_open_row() {
        let mut ch = DramChannel::new(cfg(), 1);
        let a = addr_in(&ch, 0, 0, 0);
        assert!(!ch.is_row_hit(a));
        ch.service(a, 0);
        assert!(ch.is_row_hit(a));
        assert!(!ch.is_row_hit(addr_in(&ch, 0, 1, 0)));
    }
}
