//! FR-FCFS memory controller.
//!
//! First-Ready, First-Come-First-Served (Table I): each cycle the controller
//! issues at most one queued request to its DRAM channel, preferring the
//! oldest *row-hit* request whose bank can take a command, and falling back
//! to the oldest request with a free bank. Completed loads are returned to
//! the caller at their data-completion cycle; stores consume bandwidth but
//! produce no response.
//!
//! The controller also owns the per-application accounting the paper's
//! designated-partition sampling reads: useful bytes transferred (attained
//! bandwidth) and row-buffer hit/miss counts.

use crate::dram::DramChannel;
use crate::req::{AccessKind, MemRequest};
use gpu_types::{AppId, Histogram, LINE_SIZE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Per-application DRAM-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McCounters {
    /// Useful data bytes transferred over the DRAM interface.
    pub dram_bytes: u64,
    /// Column accesses that hit an open row.
    pub row_hits: u64,
    /// Column accesses that required activating a row.
    pub row_misses: u64,
}

#[derive(Debug)]
struct InFlight {
    done_at: u64,
    seq: u64,
    req: MemRequest,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.done_at, self.seq) == (other.done_at, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.done_at, self.seq).cmp(&(other.done_at, other.seq))
    }
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: MemRequest,
    bank: usize,
    row: u64,
    /// Arrival cycle, recorded so the metrics layer can attribute the full
    /// queue-to-data latency (`done_at - at`) when the request is issued.
    at: u64,
}

/// An FR-FCFS controller fronting one [`DramChannel`].
#[derive(Debug)]
pub struct MemoryController {
    queue: VecDeque<Queued>,
    capacity: usize,
    in_flight: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    counters: Vec<McCounters>,
    /// When true, per-app request-latency histograms are recorded at issue
    /// time; off by default so the hot path stays within noise.
    metrics: bool,
    latency: Vec<Histogram>,
}

impl MemoryController {
    /// Creates a controller with a request queue of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "controller queue capacity must be non-zero");
        MemoryController {
            queue: VecDeque::new(),
            capacity,
            in_flight: BinaryHeap::new(),
            seq: 0,
            counters: Vec::new(),
            metrics: false,
            latency: Vec::new(),
        }
    }

    /// Enables or disables request-latency recording.  Gated exactly like
    /// `TraceSink::enabled()`: when off (the default), the only cost on
    /// the hot path is one untaken branch per issue.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics = on;
    }

    /// True when another request can be enqueued.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Enqueues a request arriving at cycle `now`. The bank/row decode
    /// happens once here so the per-cycle FR-FCFS scan is division-free.
    ///
    /// # Errors
    ///
    /// Returns the request back when the queue is full.
    pub fn push_with(
        &mut self,
        req: MemRequest,
        dram: &DramChannel,
        now: u64,
    ) -> Result<(), MemRequest> {
        if !self.can_accept() {
            return Err(req);
        }
        self.queue.push_back(Queued {
            req,
            bank: dram.bank_of(req.addr),
            row: dram.row_of(req.addr),
            at: now,
        });
        Ok(())
    }

    fn counters_mut(&mut self, app: AppId) -> &mut McCounters {
        if self.counters.len() <= app.index() {
            self.counters.resize(app.index() + 1, McCounters::default());
        }
        &mut self.counters[app.index()]
    }

    /// FR-FCFS issue: forwards at most one queued request to `dram` —
    /// the oldest row-hit with a free bank, else the oldest with a free
    /// bank (single scan, both candidates tracked).
    fn issue_one(&mut self, now: u64, dram: &mut DramChannel) {
        let mut first_free = None;
        let mut pick = None;
        for (i, q) in self.queue.iter().enumerate() {
            if dram.bank_free_idx(q.bank, now) {
                if first_free.is_none() {
                    first_free = Some(i);
                }
                if dram.row_open(q.bank, q.row) {
                    pick = Some(i);
                    break;
                }
            }
        }
        let pick = pick.or(first_free);
        if let Some(i) = pick {
            let q = self.queue.remove(i).expect("index from position");
            let req = q.req;
            let svc = dram.service_at(q.bank, q.row, now);
            if self.metrics {
                let app = req.app.index();
                if self.latency.len() <= app {
                    self.latency.resize(app + 1, Histogram::new());
                }
                self.latency[app].record(svc.done_at.saturating_sub(q.at));
            }
            let c = self.counters_mut(req.app);
            c.dram_bytes += LINE_SIZE;
            if svc.row_hit {
                c.row_hits += 1;
            } else {
                c.row_misses += 1;
            }
            if req.kind == AccessKind::Load {
                self.seq += 1;
                self.in_flight.push(Reverse(InFlight {
                    done_at: svc.done_at,
                    seq: self.seq,
                    req,
                }));
            }
        }
    }

    /// Advances one cycle: possibly issues one request to `dram` (FR-FCFS)
    /// and appends the loads whose data completed at or before `now` to
    /// `done`. This is the allocation-free hot-path form; the caller owns
    /// and reuses the buffer.
    pub fn step_into(&mut self, now: u64, dram: &mut DramChannel, done: &mut Vec<MemRequest>) {
        self.issue_one(now, dram);
        while matches!(self.in_flight.peek(), Some(Reverse(f)) if f.done_at <= now) {
            done.push(self.in_flight.pop().expect("peeked").0.req);
        }
    }

    /// Advances one cycle and returns the completed loads. Allocating
    /// wrapper over [`MemoryController::step_into`], kept for tests and the
    /// reference engine.
    pub fn step(&mut self, now: u64, dram: &mut DramChannel) -> Vec<MemRequest> {
        let mut done = Vec::new();
        self.step_into(now, dram, &mut done);
        done
    }

    /// Earliest cycle at which an issued load's data completes, if any —
    /// the partition's quiescence check reads this to find the next event.
    pub fn next_completion(&self) -> Option<u64> {
        self.in_flight.peek().map(|Reverse(f)| f.done_at)
    }

    /// The earliest cycle `>= from` at which a queued request could issue:
    /// the minimum `busy_until` over the banks the queued requests target,
    /// clamped to `from` (`u64::MAX` when the queue is empty). Banks only
    /// change state when this controller issues to them, so the horizon is
    /// exact between steps — this is the controller's "next event at"
    /// contract for the event engine.
    pub fn next_issue_at(&self, dram: &DramChannel, from: u64) -> u64 {
        let mut next = u64::MAX;
        for q in &self.queue {
            let t = dram.bank_busy_until(q.bank);
            if t <= from {
                return from;
            }
            next = next.min(t);
        }
        next
    }

    /// Per-application counters (zero for apps never seen).
    pub fn counters(&self, app: AppId) -> McCounters {
        self.counters.get(app.index()).copied().unwrap_or_default()
    }

    /// Returns and resets the queue-to-data latency histogram accumulated
    /// for `app` since the last take (empty unless metrics recording is
    /// enabled via [`MemoryController::set_metrics_enabled`]).
    pub fn take_latency(&mut self, app: AppId) -> Histogram {
        self.latency
            .get_mut(app.index())
            .map(Histogram::take)
            .unwrap_or_default()
    }

    /// Requests waiting to be issued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Loads issued to DRAM whose data has not yet returned.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// True when no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::ReqId;
    use gpu_types::addr::INTERLEAVE_BYTES;
    use gpu_types::{Address, CoreId, DramConfig};

    fn dram() -> DramChannel {
        DramChannel::new(
            DramConfig {
                n_banks: 8,
                n_bank_groups: 4,
                row_bytes: 1024,
                t_cl: 12,
                t_rp: 12,
                t_rcd: 12,
                t_ras: 28,
                t_ccd_l: 4,
                t_ccd_s: 2,
                t_rrd: 6,
                burst_cycles: 4,
                page_policy: gpu_types::PagePolicy::Open,
            },
            1,
        )
    }

    fn load(id: u64, chunk: u64) -> MemRequest {
        MemRequest::new(
            ReqId(id),
            AppId::new(0),
            CoreId(0),
            0,
            Address::new(chunk * INTERLEAVE_BYTES),
            AccessKind::Load,
        )
    }

    fn run_until_idle(mc: &mut MemoryController, dram: &mut DramChannel) -> Vec<(u64, MemRequest)> {
        let mut out = Vec::new();
        let mut now = 0;
        while !mc.is_idle() {
            for r in mc.step(now, dram) {
                out.push((now, r));
            }
            now += 1;
            assert!(now < 100_000, "controller failed to drain");
        }
        out
    }

    #[test]
    fn single_load_round_trips() {
        let mut mc = MemoryController::new(8);
        let mut ch = dram();
        mc.push_with(load(1, 0), &ch, 0).unwrap();
        let done = run_until_idle(&mut mc, &mut ch);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.id, ReqId(1));
        let k = mc.counters(AppId::new(0));
        assert_eq!(k.dram_bytes, LINE_SIZE);
        assert_eq!((k.row_hits, k.row_misses), (0, 1));
    }

    #[test]
    fn stores_complete_without_response() {
        let mut mc = MemoryController::new(8);
        let mut ch = dram();
        let mut st = load(1, 0);
        st.kind = AccessKind::Store;
        mc.push_with(st, &ch, 0).unwrap();
        let done = run_until_idle(&mut mc, &mut ch);
        assert!(done.is_empty());
        assert_eq!(mc.counters(AppId::new(0)).dram_bytes, LINE_SIZE);
    }

    #[test]
    fn row_hits_are_prioritized_over_older_conflicts() {
        let mut mc = MemoryController::new(8);
        let mut ch = dram();
        // Open bank 0 row 0 (chunks 0..4 are row 0 of bank 0; with 8 banks
        // and 4 chunks per row, chunk 32 is bank 0 row 1).
        mc.push_with(load(1, 0), &ch, 0).unwrap();
        let mut now = 0;
        let mut done = Vec::new();
        while done.is_empty() {
            done.extend(mc.step(now, &mut ch));
            now += 1;
            assert!(now < 1000, "first load never completed");
        }
        // Enqueue an older row-conflict (bank 0 row 1) and a younger row-hit
        // (bank 0 row 0) on the same, now-free bank.
        mc.push_with(load(2, 32), &ch, now).unwrap();
        mc.push_with(load(3, 1), &ch, now).unwrap();
        let mut order = Vec::new();
        while !mc.is_idle() {
            order.extend(mc.step(now, &mut ch).into_iter().map(|r| r.id));
            now += 1;
            assert!(now < 10_000, "controller failed to drain");
        }
        assert_eq!(
            order,
            vec![ReqId(3), ReqId(2)],
            "row-hit request must be served first"
        );
        let k = mc.counters(AppId::new(0));
        assert_eq!(k.row_hits, 1);
        assert_eq!(k.row_misses, 2);
    }

    #[test]
    fn queue_capacity_backpressures() {
        let mut mc = MemoryController::new(2);
        let ch = dram();
        mc.push_with(load(1, 0), &ch, 0).unwrap();
        mc.push_with(load(2, 1), &ch, 0).unwrap();
        assert!(!mc.can_accept());
        assert!(mc.push_with(load(3, 2), &ch, 0).is_err());
    }

    #[test]
    fn per_app_bandwidth_attribution() {
        let mut mc = MemoryController::new(8);
        let mut ch = dram();
        mc.push_with(load(1, 0), &ch, 0).unwrap();
        let mut r2 = load(2, 100);
        r2.app = AppId::new(1);
        mc.push_with(r2, &ch, 0).unwrap();
        run_until_idle(&mut mc, &mut ch);
        assert_eq!(mc.counters(AppId::new(0)).dram_bytes, LINE_SIZE);
        assert_eq!(mc.counters(AppId::new(1)).dram_bytes, LINE_SIZE);
    }

    #[test]
    fn completions_preserve_data_order_per_bank_stream() {
        let mut mc = MemoryController::new(16);
        let mut ch = dram();
        for i in 0..8 {
            mc.push_with(load(i, i / 2), &ch, 0).unwrap(); // 2 lines per chunk; one row
        }
        let done = run_until_idle(&mut mc, &mut ch);
        assert_eq!(done.len(), 8);
        // Same row, same bank: FR-FCFS serves them oldest-first.
        let ids: Vec<u64> = done.iter().map(|(_, r)| r.id.0).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn latency_histogram_gated_and_taken() {
        let mut mc = MemoryController::new(8);
        let mut ch = dram();
        // Disabled (default): nothing recorded.
        mc.push_with(load(1, 0), &ch, 0).unwrap();
        run_until_idle(&mut mc, &mut ch);
        assert!(mc.take_latency(AppId::new(0)).is_empty());
        // Enabled: both loads and stores are attributed, and take() resets.
        mc.set_metrics_enabled(true);
        mc.push_with(load(2, 0), &ch, 0).unwrap();
        let mut st = load(3, 1);
        st.kind = AccessKind::Store;
        mc.push_with(st, &ch, 0).unwrap();
        run_until_idle(&mut mc, &mut ch);
        let h = mc.take_latency(AppId::new(0));
        assert_eq!(h.count(), 2);
        assert!(h.min() > 0, "queue-to-data latency must be positive");
        assert!(mc.take_latency(AppId::new(0)).is_empty());
    }
}
