//! Multi-application workloads: the 25 two-application mixes of §II-B.
//!
//! The ten the paper plots individually in Figs. 4, 9 and 10 are exposed by
//! [`representative_workloads`]; [`all_workloads`] adds fifteen more mixes
//! spanning all group pairings, for the Gmean columns.

use crate::apps::by_name;
use crate::profile::AppProfile;
use std::fmt;

/// A named multi-application workload (two applications in the paper's
/// main evaluation; three or more in the §VI-D extension).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Applications in `AppId` order.
    apps: Vec<&'static AppProfile>,
}

impl Workload {
    /// Builds a workload from statically known profiles (used e.g. for the
    /// phased applications that are not part of Table IV).
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn from_profiles(apps: Vec<&'static AppProfile>) -> Self {
        assert!(
            !apps.is_empty(),
            "a workload needs at least one application"
        );
        Workload { apps }
    }

    /// Builds a workload from two Table IV abbreviations.
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown — workload lists are static data.
    pub fn pair(a: &str, b: &str) -> Self {
        Workload::from_names(&[a, b])
    }

    /// Builds a three-application workload (§VI-D).
    ///
    /// # Panics
    ///
    /// Panics if any name is unknown.
    pub fn trio(a: &str, b: &str, c: &str) -> Self {
        Workload::from_names(&[a, b, c])
    }

    /// Builds a workload from any number of Table IV abbreviations.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or any name is unknown.
    pub fn from_names(names: &[&str]) -> Self {
        assert!(
            !names.is_empty(),
            "a workload needs at least one application"
        );
        Workload {
            apps: names
                .iter()
                .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown application {n}")))
                .collect(),
        }
    }

    /// The co-scheduled applications, in `AppId` order.
    pub fn apps(&self) -> &[&'static AppProfile] {
        &self.apps
    }

    /// Number of co-scheduled applications.
    pub fn n_apps(&self) -> usize {
        self.apps.len()
    }

    /// The paper's workload naming: `A_B` (underscore-joined).
    pub fn name(&self) -> String {
        self.apps
            .iter()
            .map(|a| a.name)
            .collect::<Vec<_>>()
            .join("_")
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The ten representative workloads plotted individually in Figs. 4, 9, 10.
pub fn representative_workloads() -> Vec<Workload> {
    [
        ("DS", "TRD"),
        ("BFS", "FFT"),
        ("BLK", "BFS"),
        ("BLK", "TRD"),
        ("FFT", "TRD"),
        ("FWT", "TRD"),
        ("JPEG", "CFD"),
        ("JPEG", "LIB"),
        ("JPEG", "LUH"),
        ("SCP", "TRD"),
    ]
    .into_iter()
    .map(|(a, b)| Workload::pair(a, b))
    .collect()
}

/// All 25 evaluated two-application workloads: the representative ten plus
/// fifteen further mixes. Following §II-B, workloads are chosen so that
/// they "exhibit the problem of multi-application cache/memory
/// interference": every mix pairs at least one cache-sensitive (G3/G4)
/// or bandwidth-hostile application with a heavy shared-resource consumer.
pub fn all_workloads() -> Vec<Workload> {
    let mut v = representative_workloads();
    v.extend(
        [
            ("GUPS", "BLK"),
            ("HISTO", "TRD"),
            ("BFS", "TRD"),
            ("LUD", "BFS"),
            ("HS", "TRD"),
            ("FFT", "BLK"),
            ("DS", "FFT"),
            ("HS", "BFS"),
            ("BP", "JPEG"),
            ("CONS", "BFS"),
            ("LUH", "BLK"),
            ("LIB", "HS"),
            ("RAY", "SCP"),
            ("DS", "BLK"),
            ("SRAD", "LUH"),
        ]
        .into_iter()
        .map(|(a, b)| Workload::pair(a, b)),
    );
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_five_distinct_workloads() {
        let all = all_workloads();
        assert_eq!(all.len(), 25);
        let names: HashSet<String> = all.iter().map(Workload::name).collect();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn representative_are_the_papers_ten() {
        let names: Vec<String> = representative_workloads()
            .iter()
            .map(Workload::name)
            .collect();
        assert_eq!(
            names,
            [
                "DS_TRD", "BFS_FFT", "BLK_BFS", "BLK_TRD", "FFT_TRD", "FWT_TRD", "JPEG_CFD",
                "JPEG_LIB", "JPEG_LUH", "SCP_TRD"
            ]
        );
    }

    #[test]
    fn workload_apps_are_ordered() {
        let w = Workload::pair("BFS", "FFT");
        assert_eq!(w.apps()[0].name, "BFS");
        assert_eq!(w.apps()[1].name, "FFT");
        assert_eq!(w.n_apps(), 2);
    }

    #[test]
    fn every_group_pairing_is_covered() {
        use crate::profile::EbGroup;
        let mut pairs: HashSet<(EbGroup, EbGroup)> = HashSet::new();
        for w in all_workloads() {
            let (a, b) = (w.apps()[0].group, w.apps()[1].group);
            pairs.insert((a.min(b), a.max(b)));
        }
        // Workload selection follows the paper's contention criterion
        // rather than exhaustive group coverage; still expect diversity.
        assert!(
            pairs.len() >= 6,
            "only {} group pairings covered",
            pairs.len()
        );
    }

    #[test]
    fn trio_builds_three_app_workloads() {
        let w = Workload::trio("BLK", "BFS", "FFT");
        assert_eq!(w.n_apps(), 3);
        assert_eq!(w.name(), "BLK_BFS_FFT");
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        let _ = Workload::pair("BFS", "NOPE");
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_workload_panics() {
        let _ = Workload::from_names(&[]);
    }
}
