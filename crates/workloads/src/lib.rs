//! Synthetic GPGPU application models for the `gpu-ebm` simulator.
//!
//! The paper evaluates 26 applications from Rodinia, Parboil, the CUDA SDK
//! and SHOC (Table IV), chosen for a good spread of effective-bandwidth (EB)
//! values, and 25 two-application workloads built from them. Real CUDA
//! traces are unavailable here, so each application is modeled as a
//! *statistical kernel* ([`profile::AppProfile`]): an instruction mix
//! (memory ratio, ALU latency), an address-generation pattern
//! ([`profile::AccessPattern`]), a coalescing degree and an
//! outstanding-load tolerance. Every performance-relevant behaviour — cache
//! miss rates, DRAM row locality, bandwidth saturation, the IPC-vs-TLP hill
//! of Fig. 2 — *emerges* from simulating these streams against the real
//! cache/DRAM substrate; nothing is scripted per-TLP (see DESIGN.md §3 on
//! why this substitution preserves the paper's phenomena).
//!
//! # Example
//!
//! ```
//! use gpu_workloads::apps;
//!
//! let bfs = apps::by_name("BFS").unwrap();
//! assert_eq!(bfs.name, "BFS");
//! let mut stream = bfs.stream(gpu_types::AppId::new(0), 0, 0, 48, 42);
//! assert!(stream.next_inst().is_some());
//! ```

#![deny(missing_docs)]

pub mod apps;
pub mod phased;
pub mod profile;
pub mod stream;
pub mod workload;

pub use apps::{all_apps, by_name};
pub use phased::{PH1, PH2};
pub use profile::{AccessPattern, AppProfile, EbGroup};
pub use stream::AppStream;
pub use workload::{all_workloads, representative_workloads, Workload};
