//! Phase-changing applications for the online-vs-offline PBS comparison.
//!
//! The paper's online PBS "can adapt to different runtime interference
//! patterns … within the same workload execution" (§VI-A) — its advantage
//! over the offline variant shows up on workloads whose kernels change
//! behaviour over time. These two synthetic applications alternate between
//! a cache-friendly and a streaming phase; they are *not* part of Table IV
//! (the paper's 26 applications are steady-state) and are exercised by the
//! `phased` experiment binary.

use crate::profile::{AccessPattern, AppProfile, EbGroup, Suite};

/// A cache-sensitive application whose alternate kernels stream: during the
/// hot phase it behaves like BFS, during the cold phase like a pure
/// bandwidth hog. Phases are long relative to the PBS search, so each hold
/// period sees a (mostly) stationary kernel.
pub static PH1: AppProfile = AppProfile {
    name: "PH1",
    full_name: "phase-alternating graph kernel",
    suite: Suite::Synthetic,
    group: EbGroup::G4,
    mem_ratio: 0.30,
    store_ratio: 0.05,
    alu_cycles: 1,
    pattern: AccessPattern::Phased {
        hot_lines: 48,
        hot_frac: 0.85,
        phase_insts: 40_000,
    },
    coalesce_degree: 2,
    max_outstanding: 2,
};

/// A milder phase-alternating kernel (smaller hot region, shorter phases).
pub static PH2: AppProfile = AppProfile {
    name: "PH2",
    full_name: "phase-alternating stencil kernel",
    suite: Suite::Synthetic,
    group: EbGroup::G3,
    mem_ratio: 0.28,
    store_ratio: 0.06,
    alu_cycles: 1,
    pattern: AccessPattern::Phased {
        hot_lines: 24,
        hot_frac: 0.75,
        phase_insts: 25_000,
    },
    coalesce_degree: 2,
    max_outstanding: 3,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::by_name;

    #[test]
    fn phased_profiles_are_valid() {
        PH1.assert_valid();
        PH2.assert_valid();
    }

    #[test]
    fn phased_apps_are_not_in_table_iv() {
        assert!(by_name("PH1").is_none());
        assert!(by_name("PH2").is_none());
    }

    #[test]
    fn phased_streams_run() {
        let mut s = PH1.stream(gpu_types::AppId::new(0), 0, 0, 48, 9);
        for _ in 0..100 {
            assert!(s.next_inst().is_some());
        }
    }
}
