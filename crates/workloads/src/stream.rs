//! The per-warp instruction stream generated from an [`AppProfile`].

use crate::profile::{AccessPattern, AppProfile};
use gpu_simt::inst::{AddrList, Inst, InstStream};
use gpu_types::{Address, AppId, SplitMix64, LINE_SIZE};

/// Bytes reserved per application (1 TiB regions keep apps disjoint).
const APP_REGION: u64 = 1 << 40;
/// Bytes reserved per core for the shared streaming window.
const CORE_SEGMENT: u64 = 1 << 28;
/// Bytes reserved per warp's private segment (hot regions, tiles, random
/// spans).
const WARP_SEGMENT: u64 = 1 << 26;
/// Lines a stream covers before wrapping (16 MiB: far beyond any cache, so
/// wrapping never manufactures reuse).
const STREAM_WRAP_LINES: u64 = (1 << 24) / LINE_SIZE;

/// Deterministic instruction stream for one warp of one application.
///
/// Address-space layout:
/// * applications occupy disjoint 1 TiB regions (no cross-app aliasing);
/// * **streaming is grid-stride**: all warps of a core walk a shared
///   per-core window, warp `slot` handling the `slot`-th chunk of every
///   sweep — exactly how coalesced CUDA kernels stride their grid. This
///   makes concurrently active warps touch *adjacent* lines, so DRAM row
///   locality survives (and bandwidth grows) as TLP rises, as in the
///   paper's Fig. 2(b);
/// * private hot regions, tiles and random spans live in a per-warp 64 MiB
///   segment, so their aggregate footprint scales with the number of active
///   warps — the TLP-driven cache-thrashing mechanism of Fig. 2(c);
/// * the [`AccessPattern::SharedHotStream`] hot region is per-core: shared
///   by its warps, disjoint across cores.
pub struct AppStream {
    profile: AppProfile,
    rng: SplitMix64,
    slot: u64,
    warps_per_core: u64,
    core_stream_base: u64,
    warp_base: u64,
    shared_hot_base: u64,
    /// Iteration counter of the grid-stride stream.
    stream_iter: u64,
    /// Lines each grid-stride access advances (>= coalesce degree so
    /// neighbouring warps do not overlap).
    stream_unit: u64,
    tile_index: u64,
    tile_sweep: u32,
    tile_pos: u64,
    /// Instructions emitted so far (drives phase switching).
    insts: u64,
}

impl std::fmt::Debug for AppStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppStream")
            .field("app", &self.profile.name)
            .field("slot", &self.slot)
            .field("warp_base", &format_args!("{:#x}", self.warp_base))
            .finish()
    }
}

impl AppStream {
    /// Creates the stream for warp `slot` (of `warps_per_core`) on the
    /// application's core with rank `core_rank` (rank among the cores
    /// assigned to this app).
    pub fn new(
        profile: AppProfile,
        app: AppId,
        core_rank: usize,
        slot: usize,
        warps_per_core: usize,
        seed: u64,
    ) -> Self {
        assert!(slot < warps_per_core, "slot {slot} out of {warps_per_core}");
        let app_base = (1 + app.index() as u64) * APP_REGION;
        let warp_global = core_rank as u64 * 512 + slot as u64;
        // Segment bases are power-of-two spaced; left unperturbed, every
        // warp's region would map onto the same cache sets (set index =
        // line index mod a power of two) and alias pathologically. Real
        // allocations land at arbitrary offsets, so jitter each base by a
        // hashed, line-aligned offset within the first quarter of its
        // segment.
        let jitter = |tag: u64, span: u64| -> u64 {
            let mut h = SplitMix64::new(seed ^ tag.wrapping_mul(0x9E37_79B9_97F4_A7C1));
            h.next_below(span / 4 / LINE_SIZE) * LINE_SIZE
        };
        let core_stream_base = app_base
            + (1 + core_rank as u64) * CORE_SEGMENT
            + jitter(
                0x1000 + core_rank as u64 + ((app.index() as u64) << 20),
                CORE_SEGMENT / 4,
            );
        let warp_base = app_base
            + (APP_REGION / 4)
            + (1 + warp_global) * WARP_SEGMENT
            + jitter(
                0x2000 + warp_global + ((app.index() as u64) << 20),
                WARP_SEGMENT,
            );
        let shared_hot_base = app_base
            + (APP_REGION / 2)
            + core_rank as u64 * WARP_SEGMENT
            + jitter(
                0x3000 + core_rank as u64 + ((app.index() as u64) << 20),
                WARP_SEGMENT,
            );
        let mut seeder = SplitMix64::new(seed ^ ((app.index() as u64) << 32));
        for _ in 0..=warp_global % 64 {
            seeder.next_u64();
        }
        let rng = SplitMix64::new(seeder.next_u64() ^ warp_global);
        let stride = match profile.pattern {
            AccessPattern::Stream { stride_lines } => stride_lines,
            _ => 1,
        };
        AppStream {
            profile,
            rng,
            slot: slot as u64,
            warps_per_core: warps_per_core as u64,
            core_stream_base,
            warp_base,
            shared_hot_base,
            stream_iter: 0,
            stream_unit: stride.max(profile.coalesce_degree as u64),
            tile_index: 0,
            tile_sweep: 0,
            tile_pos: 0,
            insts: 0,
        }
    }

    /// Next grid-stride line address within the shared core window
    /// (optionally offset to a disjoint half for cold traffic).
    fn stream_line(&mut self, offset: u64) -> u64 {
        let pos = (self.stream_iter * self.warps_per_core + self.slot) * self.stream_unit;
        self.stream_iter += 1;
        self.core_stream_base + offset + (pos % STREAM_WRAP_LINES) * LINE_SIZE
    }

    /// One base address per the profile's pattern.
    fn gen_base(&mut self) -> u64 {
        match self.profile.pattern {
            AccessPattern::Stream { .. } => self.stream_line(0),
            AccessPattern::HotStream {
                hot_lines,
                hot_frac,
            } => {
                if self.rng.chance(hot_frac) {
                    self.warp_base + self.rng.next_below(hot_lines) * LINE_SIZE
                } else {
                    // Cold accesses grid-stride through the upper half of
                    // the core window.
                    self.stream_line(CORE_SEGMENT / 2)
                }
            }
            AccessPattern::SharedHotStream {
                hot_lines,
                hot_frac,
            } => {
                if self.rng.chance(hot_frac) {
                    self.shared_hot_base + self.rng.next_below(hot_lines) * LINE_SIZE
                } else {
                    self.stream_line(0)
                }
            }
            AccessPattern::TwoTierHot {
                l1_lines,
                l1_frac,
                l2_lines,
                l2_frac,
            } => {
                let u = self.rng.next_f64();
                if u < l1_frac {
                    self.warp_base + self.rng.next_below(l1_lines) * LINE_SIZE
                } else if u < l1_frac + l2_frac {
                    self.shared_hot_base + self.rng.next_below(l2_lines) * LINE_SIZE
                } else {
                    self.stream_line(CORE_SEGMENT / 2)
                }
            }
            AccessPattern::RandomUniform { span_lines } => {
                self.warp_base + self.rng.next_below(span_lines) * LINE_SIZE
            }
            AccessPattern::Phased {
                hot_lines,
                hot_frac,
                phase_insts,
            } => {
                let cache_phase = (self.insts / phase_insts).is_multiple_of(2);
                if cache_phase && self.rng.chance(hot_frac) {
                    self.warp_base + self.rng.next_below(hot_lines) * LINE_SIZE
                } else {
                    self.stream_line(CORE_SEGMENT / 2)
                }
            }
            AccessPattern::Tiled { tile_lines, reuse } => {
                let addr =
                    self.warp_base + (self.tile_index * tile_lines + self.tile_pos) * LINE_SIZE;
                self.tile_pos += 1;
                if self.tile_pos == tile_lines {
                    self.tile_pos = 0;
                    self.tile_sweep += 1;
                    if self.tile_sweep == reuse {
                        self.tile_sweep = 0;
                        // Wrap tiles within the streaming window.
                        self.tile_index =
                            (self.tile_index + 1) % (STREAM_WRAP_LINES / tile_lines).max(1);
                    }
                }
                addr
            }
        }
    }

    /// Generates the (already line-granular) addresses of one memory
    /// instruction: `coalesce_degree` distinct lines. Returns the inline
    /// [`AddrList`] so the per-cycle hot path never allocates.
    fn gen_addrs(&mut self) -> AddrList {
        let d = self.profile.coalesce_degree as u64;
        match self.profile.pattern {
            // Contiguous patterns touch `d` consecutive lines.
            AccessPattern::Stream { .. } | AccessPattern::Tiled { .. } => {
                let base = self.gen_base();
                (0..d).map(|k| Address::new(base + k * LINE_SIZE)).collect()
            }
            // Irregular patterns draw `d` independent addresses.
            _ => (0..d).map(|_| Address::new(self.gen_base())).collect(),
        }
    }
}

impl InstStream for AppStream {
    fn next_inst(&mut self) -> Option<Inst> {
        self.insts += 1;
        let u = self.rng.next_f64();
        let p = &self.profile;
        if u < p.mem_ratio {
            Some(Inst::Load {
                addrs: self.gen_addrs(),
            })
        } else if u < p.mem_ratio + p.store_ratio {
            Some(Inst::Store {
                addrs: self.gen_addrs(),
            })
        } else {
            Some(Inst::Alu {
                cycles: p.alu_cycles,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{EbGroup, Suite};
    use std::collections::HashSet;

    fn profile(pattern: AccessPattern) -> AppProfile {
        AppProfile {
            name: "TST",
            full_name: "test",
            suite: Suite::Synthetic,
            group: EbGroup::G2,
            mem_ratio: 0.5,
            store_ratio: 0.0,
            alu_cycles: 1,
            pattern,
            coalesce_degree: 1,
            max_outstanding: 2,
        }
    }

    fn stream_of(p: AppProfile, app: u8, core: usize, slot: usize, seed: u64) -> AppStream {
        AppStream::new(p, AppId::new(app), core, slot, 16, seed)
    }

    fn collect_load_lines(stream: &mut AppStream, n: usize) -> Vec<u64> {
        let mut lines = Vec::new();
        while lines.len() < n {
            if let Some(Inst::Load { addrs }) = stream.next_inst() {
                lines.extend(addrs.iter().map(|a| a.line().raw()));
            }
        }
        lines
    }

    #[test]
    fn deterministic_given_seed() {
        let p = profile(AccessPattern::RandomUniform { span_lines: 1024 });
        let mut a = stream_of(p, 0, 0, 0, 7);
        let mut b = stream_of(p, 0, 0, 0, 7);
        for _ in 0..100 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn grid_stride_warps_interleave_adjacent_lines() {
        let p = profile(AccessPattern::Stream { stride_lines: 1 });
        let mut w0 = stream_of(p, 0, 0, 0, 7);
        let mut w1 = stream_of(p, 0, 0, 1, 7);
        let l0 = collect_load_lines(&mut w0, 1)[0];
        let l1 = collect_load_lines(&mut w1, 1)[0];
        assert_eq!(
            l1,
            l0 + LINE_SIZE,
            "warp 1's first access neighbours warp 0's"
        );
    }

    #[test]
    fn grid_stride_advances_by_full_core_width() {
        let p = profile(AccessPattern::Stream { stride_lines: 1 });
        let mut w0 = stream_of(p, 0, 0, 0, 7);
        let lines = collect_load_lines(&mut w0, 3);
        assert_eq!(
            lines[1] - lines[0],
            16 * LINE_SIZE,
            "second sweep skips the other warps"
        );
        assert_eq!(lines[2] - lines[1], 16 * LINE_SIZE);
    }

    #[test]
    fn streams_of_different_cores_are_disjoint() {
        let p = profile(AccessPattern::Stream { stride_lines: 1 });
        let mut a = stream_of(p, 0, 0, 0, 7);
        let mut b = stream_of(p, 0, 1, 0, 7);
        let la: HashSet<u64> = collect_load_lines(&mut a, 50).into_iter().collect();
        let lb: HashSet<u64> = collect_load_lines(&mut b, 50).into_iter().collect();
        assert!(la.is_disjoint(&lb));
    }

    #[test]
    fn different_apps_use_disjoint_regions() {
        let p = profile(AccessPattern::Stream { stride_lines: 1 });
        let a = stream_of(p, 0, 0, 0, 7);
        let b = stream_of(p, 1, 0, 0, 7);
        assert_ne!(a.warp_base / APP_REGION, b.warp_base / APP_REGION);
    }

    #[test]
    fn hot_stream_revisits_hot_region() {
        let p = profile(AccessPattern::HotStream {
            hot_lines: 8,
            hot_frac: 0.9,
        });
        let mut s = stream_of(p, 0, 0, 0, 7);
        let lines = collect_load_lines(&mut s, 400);
        let distinct: HashSet<u64> = lines.iter().copied().collect();
        // ~90% of 400 accesses fall in just 8 lines.
        assert!(
            distinct.len() < 80,
            "expected heavy reuse, got {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn hot_regions_of_warps_are_disjoint() {
        let p = profile(AccessPattern::HotStream {
            hot_lines: 8,
            hot_frac: 1.0,
        });
        let mut a = stream_of(p, 0, 0, 0, 7);
        let mut b = stream_of(p, 0, 0, 1, 7);
        let la: HashSet<u64> = collect_load_lines(&mut a, 100).into_iter().collect();
        let lb: HashSet<u64> = collect_load_lines(&mut b, 100).into_iter().collect();
        assert!(
            la.is_disjoint(&lb),
            "private hot regions must scale with TLP"
        );
    }

    #[test]
    fn shared_hot_region_is_common_across_warps() {
        let p = profile(AccessPattern::SharedHotStream {
            hot_lines: 8,
            hot_frac: 1.0,
        });
        let mut a = stream_of(p, 0, 0, 0, 7);
        let mut b = stream_of(p, 0, 0, 1, 7);
        let la: HashSet<u64> = collect_load_lines(&mut a, 100).into_iter().collect();
        let lb: HashSet<u64> = collect_load_lines(&mut b, 100).into_iter().collect();
        assert!(
            !la.is_disjoint(&lb),
            "warps of one core must share the hot region"
        );
    }

    #[test]
    fn shared_hot_region_differs_across_cores() {
        let p = profile(AccessPattern::SharedHotStream {
            hot_lines: 8,
            hot_frac: 1.0,
        });
        let mut a = stream_of(p, 0, 0, 0, 7);
        let mut b = stream_of(p, 0, 1, 0, 7);
        let la: HashSet<u64> = collect_load_lines(&mut a, 100).into_iter().collect();
        let lb: HashSet<u64> = collect_load_lines(&mut b, 100).into_iter().collect();
        assert!(la.is_disjoint(&lb));
    }

    #[test]
    fn tiled_pattern_reuses_each_tile() {
        let p = profile(AccessPattern::Tiled {
            tile_lines: 4,
            reuse: 3,
        });
        let mut s = stream_of(p, 0, 0, 0, 7);
        let lines = collect_load_lines(&mut s, 12);
        // First 12 loads: tile of 4 lines swept 3 times.
        assert_eq!(&lines[0..4], &lines[4..8]);
        assert_eq!(&lines[0..4], &lines[8..12]);
    }

    #[test]
    fn random_uniform_rarely_repeats() {
        let p = profile(AccessPattern::RandomUniform {
            span_lines: 1 << 20,
        });
        let mut s = stream_of(p, 0, 0, 0, 7);
        let lines = collect_load_lines(&mut s, 200);
        let distinct: HashSet<u64> = lines.iter().copied().collect();
        assert!(distinct.len() > 190);
    }

    #[test]
    fn coalesce_degree_controls_lines_per_load() {
        let mut p = profile(AccessPattern::Stream { stride_lines: 1 });
        p.coalesce_degree = 4;
        let mut s = stream_of(p, 0, 0, 0, 7);
        loop {
            if let Some(Inst::Load { addrs }) = s.next_inst() {
                let distinct: HashSet<u64> = addrs.iter().map(|a| a.line().raw()).collect();
                assert_eq!(distinct.len(), 4);
                break;
            }
        }
    }

    #[test]
    fn wide_loads_of_neighbour_warps_do_not_overlap() {
        let mut p = profile(AccessPattern::Stream { stride_lines: 1 });
        p.coalesce_degree = 4;
        let mut w0 = stream_of(p, 0, 0, 0, 7);
        let mut w1 = stream_of(p, 0, 0, 1, 7);
        let l0: HashSet<u64> = collect_load_lines(&mut w0, 16).into_iter().collect();
        let l1: HashSet<u64> = collect_load_lines(&mut w1, 16).into_iter().collect();
        assert!(
            l0.is_disjoint(&l1),
            "stream unit must cover the coalesce degree"
        );
    }

    #[test]
    fn phased_pattern_alternates_locality() {
        let p = profile(AccessPattern::Phased {
            hot_lines: 8,
            hot_frac: 0.95,
            phase_insts: 200,
        });
        let mut s = stream_of(p, 0, 0, 0, 7);
        // Phase A (first 200 insts): heavy reuse; phase B: streaming.
        let mut phase_a = Vec::new();
        let mut phase_b = Vec::new();
        for i in 0..400 {
            if let Some(Inst::Load { addrs }) = s.next_inst() {
                let lines: Vec<u64> = addrs.iter().map(|a| a.line().raw()).collect();
                if i < 200 {
                    phase_a.extend(lines);
                } else {
                    phase_b.extend(lines);
                }
            }
        }
        let da: HashSet<u64> = phase_a.iter().copied().collect();
        let db: HashSet<u64> = phase_b.iter().copied().collect();
        assert!(
            (da.len() as f64) / (phase_a.len() as f64) < 0.5,
            "phase A must reuse ({} distinct of {})",
            da.len(),
            phase_a.len()
        );
        assert!(
            (db.len() as f64) / (phase_b.len() as f64) > 0.9,
            "phase B must stream ({} distinct of {})",
            db.len(),
            phase_b.len()
        );
    }

    #[test]
    fn instruction_mix_respects_ratios() {
        let mut p = profile(AccessPattern::Stream { stride_lines: 1 });
        p.mem_ratio = 0.3;
        p.store_ratio = 0.1;
        let mut s = stream_of(p, 0, 0, 0, 9);
        let (mut loads, mut stores, mut alus) = (0, 0, 0);
        for _ in 0..10_000 {
            match s.next_inst().unwrap() {
                Inst::Load { .. } => loads += 1,
                Inst::Store { .. } => stores += 1,
                Inst::Alu { .. } => alus += 1,
            }
        }
        assert!((2800..3200).contains(&loads), "loads {loads}");
        assert!((800..1200).contains(&stores), "stores {stores}");
        assert!((5600..6400).contains(&alus), "alus {alus}");
    }
}
