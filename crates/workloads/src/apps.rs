//! The 26 applications of Table IV, as statistical kernel models.
//!
//! Parameters are tuned only against *alone-run* characteristics (the
//! IPC/EB spread and G1–G4 grouping of Table IV); co-run behaviour is an
//! emergent prediction. The paper's suites are Rodinia, Parboil, the CUDA
//! SDK and SHOC; DS and GUPS are synthetic kernels.
//!
//! Group intuition (§II-B, §III) — groups are assigned from each model's
//! *measured* alone `EB@bestTLP` (regenerate with the `tab04` harness):
//! * **G1** (EB < 1) — compute/latency-bound kernels or bandwidth-hostile
//!   access (GUPS' random scatter kills row locality).
//! * **G2** (EB ≈ 1) — streaming, cache-insensitive bandwidth hogs:
//!   CMR ≈ 1 so EB ≈ BW ≈ peak (BLK is the paper's canonical example of
//!   EB = BW).
//! * **G3** (1 < EB ≲ 2) — moderately cache-amplified kernels.
//! * **G4** (EB > 2) — strongly cache-sensitive kernels whose low CMR
//!   amplifies attained bandwidth well past what the DRAM alone delivers
//!   (BFS is the paper's canonical example).

use crate::profile::{AccessPattern, AppProfile, EbGroup, Suite};
use crate::stream::AppStream;
use gpu_simt::inst::InstStream;
use gpu_types::AppId;

use AccessPattern::{HotStream, RandomUniform, SharedHotStream, Stream, Tiled, TwoTierHot};
use EbGroup::{G1, G2, G3, G4};
use Suite::{CudaSdk, Parboil, Rodinia, Shoc, Synthetic};

macro_rules! app {
    ($name:literal, $full:literal, $suite:expr, $group:expr,
     rm: $rm:literal, st: $st:literal, alu: $alu:literal,
     pat: $pat:expr, d: $d:literal, mo: $mo:literal) => {
        AppProfile {
            name: $name,
            full_name: $full,
            suite: $suite,
            group: $group,
            mem_ratio: $rm,
            store_ratio: $st,
            alu_cycles: $alu,
            pattern: $pat,
            coalesce_degree: $d,
            max_outstanding: $mo,
        }
    };
}

/// All 26 application models, in Table IV order (G1 → G4 within columns).
pub const APPS: [AppProfile; 26] = [
    // ---- G1: compute/latency-bound, lowest EB -------------------------
    app!("LUD", "LU decomposition", Rodinia, G1,
        rm: 0.05, st: 0.01, alu: 2, pat: Tiled { tile_lines: 128, reuse: 2 }, d: 1, mo: 1),
    app!("NW", "Needleman-Wunsch", Rodinia, G3,
        rm: 0.05, st: 0.02, alu: 4, pat: Tiled { tile_lines: 8, reuse: 4 }, d: 1, mo: 1),
    app!("HISTO", "histogram", Parboil, G3,
        rm: 0.08, st: 0.04, alu: 1, pat: SharedHotStream { hot_lines: 512, hot_frac: 0.5 },
        d: 4, mo: 2),
    app!("SAD", "sum of absolute differences", Parboil, G1,
        rm: 0.06, st: 0.02, alu: 2, pat: Stream { stride_lines: 1 }, d: 1, mo: 2),
    app!("QTC", "quality threshold clustering", Shoc, G1,
        rm: 0.08, st: 0.00, alu: 2, pat: RandomUniform { span_lines: 4096 }, d: 2, mo: 1),
    app!("RED", "reduction", Shoc, G1,
        rm: 0.04, st: 0.01, alu: 1, pat: Stream { stride_lines: 1 }, d: 1, mo: 2),
    app!("SCAN", "parallel prefix sum", Shoc, G2,
        rm: 0.06, st: 0.03, alu: 2, pat: Stream { stride_lines: 1 }, d: 1, mo: 2),
    // ---- G2: moderate EB ----------------------------------------------
    app!("LIB", "LIBOR Monte Carlo", CudaSdk, G3,
        rm: 0.20, st: 0.02, alu: 1,
        pat: TwoTierHot { l1_lines: 6, l1_frac: 0.25, l2_lines: 192, l2_frac: 0.25 },
        d: 2, mo: 2),
    app!("LUH", "LULESH hydrodynamics", Synthetic, G3,
        rm: 0.15, st: 0.04, alu: 1, pat: Tiled { tile_lines: 64, reuse: 2 }, d: 2, mo: 2),
    app!("SRAD", "speckle-reducing anisotropic diffusion", Rodinia, G3,
        rm: 0.25, st: 0.08, alu: 1, pat: HotStream { hot_lines: 6, hot_frac: 0.4 },
        d: 1, mo: 3),
    app!("CONS", "separable convolution", CudaSdk, G3,
        rm: 0.22, st: 0.05, alu: 1, pat: SharedHotStream { hot_lines: 64, hot_frac: 0.25 },
        d: 1, mo: 2),
    app!("FWT", "fast Walsh transform", CudaSdk, G1,
        rm: 0.08, st: 0.03, alu: 1, pat: Stream { stride_lines: 2 }, d: 1, mo: 4),
    app!("BP", "back propagation", Rodinia, G3,
        rm: 0.25, st: 0.05, alu: 1, pat: HotStream { hot_lines: 4, hot_frac: 0.3 },
        d: 2, mo: 2),
    app!("GUPS", "giga-updates per second", Synthetic, G1,
        rm: 0.35, st: 0.15, alu: 1, pat: RandomUniform { span_lines: 1 << 20 }, d: 8, mo: 8),
    // ---- G3: streaming bandwidth hogs, EB ≈ BW ------------------------
    app!("BLK", "BlackScholes", CudaSdk, G2,
        rm: 0.35, st: 0.10, alu: 1, pat: Stream { stride_lines: 1 }, d: 1, mo: 6),
    app!("TRD", "matrix transpose (diagonal)", Shoc, G2,
        rm: 0.30, st: 0.15, alu: 1, pat: Stream { stride_lines: 1 }, d: 4, mo: 6),
    app!("SC", "streamcluster", Rodinia, G2,
        rm: 0.32, st: 0.05, alu: 1, pat: Stream { stride_lines: 1 }, d: 1, mo: 4),
    app!("SCP", "scalar product", CudaSdk, G2,
        rm: 0.35, st: 0.02, alu: 1, pat: Stream { stride_lines: 1 }, d: 1, mo: 6),
    app!("CFD", "CFD Euler solver", Rodinia, G2,
        rm: 0.30, st: 0.08, alu: 1, pat: Stream { stride_lines: 2 }, d: 2, mo: 4),
    app!("JPEG", "JPEG decode", CudaSdk, G2,
        rm: 0.28, st: 0.10, alu: 1, pat: Stream { stride_lines: 1 }, d: 1, mo: 4),
    app!("LPS", "3D Laplace solver", CudaSdk, G2,
        rm: 0.30, st: 0.10, alu: 1, pat: Stream { stride_lines: 1 }, d: 2, mo: 4),
    // ---- G4: cache-amplified, highest EB -------------------------------
    app!("FFT", "fast Fourier transform", Parboil, G4,
        rm: 0.30, st: 0.08, alu: 1, pat: HotStream { hot_lines: 40, hot_frac: 0.80 },
        d: 2, mo: 3),
    app!("BFS", "breadth-first search", CudaSdk, G4,
        rm: 0.30, st: 0.05, alu: 1, pat: HotStream { hot_lines: 48, hot_frac: 0.85 },
        d: 2, mo: 2),
    app!("DS", "device-side scatter/gather", Synthetic, G4,
        rm: 0.35, st: 0.05, alu: 1, pat: HotStream { hot_lines: 32, hot_frac: 0.85 },
        d: 2, mo: 3),
    app!("HS", "hotspot", Rodinia, G4,
        rm: 0.28, st: 0.08, alu: 1, pat: Tiled { tile_lines: 4, reuse: 8 }, d: 1, mo: 2),
    app!("RAY", "ray tracing", CudaSdk, G4,
        rm: 0.25, st: 0.03, alu: 1, pat: SharedHotStream { hot_lines: 48, hot_frac: 0.6 },
        d: 3, mo: 2),
];

/// All application models in Table IV order.
pub fn all_apps() -> &'static [AppProfile] {
    &APPS
}

/// Looks an application up by its Table IV abbreviation (case-sensitive).
pub fn by_name(name: &str) -> Option<&'static AppProfile> {
    APPS.iter().find(|a| a.name == name)
}

impl AppProfile {
    /// Builds the instruction stream for warp `slot` of this application's
    /// `core_rank`-th core.
    pub fn stream(
        &self,
        app: AppId,
        core_rank: usize,
        slot: usize,
        warps_per_core: usize,
        seed: u64,
    ) -> Box<dyn InstStream> {
        Box::new(AppStream::new(
            *self,
            app,
            core_rank,
            slot,
            warps_per_core,
            seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_six_apps_with_unique_names() {
        assert_eq!(APPS.len(), 26);
        let names: HashSet<&str> = APPS.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn all_profiles_are_valid() {
        for a in all_apps() {
            a.assert_valid();
        }
    }

    #[test]
    fn every_group_is_populated() {
        for g in [G1, G2, G3, G4] {
            assert!(
                APPS.iter().any(|a| a.group == g),
                "group {g} has no applications"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("BFS").unwrap().group, G4);
        assert_eq!(by_name("BLK").unwrap().group, G2);
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn paper_canonical_examples_have_expected_shapes() {
        // §III-B: "EB is equal to BW for cache insensitive applications
        // (e.g., BLK)" — BLK must be pure streaming.
        assert!(matches!(by_name("BLK").unwrap().pattern, Stream { .. }));
        // "...which is the case for cache-sensitive applications (e.g.,
        // BFS)" — BFS must have a per-warp hot region whose aggregate
        // footprint scales with TLP.
        assert!(matches!(by_name("BFS").unwrap().pattern, HotStream { .. }));
    }

    #[test]
    fn streams_are_constructible_for_all_apps() {
        for a in all_apps() {
            let mut s = a.stream(AppId::new(0), 0, 0, 48, 1);
            for _ in 0..10 {
                assert!(s.next_inst().is_some(), "{} stream ended", a.name);
            }
        }
    }

    #[test]
    fn table_iv_workload_apps_exist() {
        for n in [
            "DS", "TRD", "BFS", "FFT", "BLK", "FWT", "JPEG", "CFD", "LIB", "LUH", "SCP",
        ] {
            assert!(by_name(n).is_some(), "{n} missing");
        }
    }
}
