//! Application profiles: the statistical description of one GPGPU kernel.

use gpu_simt::CoreParams;
use gpu_types::canon::{Canon, CanonBuf};
use std::fmt;

/// The benchmark suite an application is drawn from (Table IV citations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia.
    Rodinia,
    /// Parboil.
    Parboil,
    /// CUDA SDK.
    CudaSdk,
    /// SHOC.
    Shoc,
    /// Synthetic kernels used in the paper (DS, GUPS).
    Synthetic,
}

/// The paper's effective-bandwidth groups G1–G4 (Table IV): each application
/// is categorized by its alone-run EB at bestTLP, lowest (G1) to highest
/// (G4). Group averages serve as user-supplied scaling factors for EB-FI and
/// EB-HS (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EbGroup {
    /// Lowest effective bandwidth (compute- or latency-bound).
    G1,
    /// Low-moderate effective bandwidth.
    G2,
    /// High attained bandwidth, cache-insensitive (EB ≈ BW).
    G3,
    /// Highest effective bandwidth (cache-amplified).
    G4,
}

impl fmt::Display for EbGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EbGroup::G1 => write!(f, "G1"),
            EbGroup::G2 => write!(f, "G2"),
            EbGroup::G3 => write!(f, "G3"),
            EbGroup::G4 => write!(f, "G4"),
        }
    }
}

/// How a warp generates global-memory addresses.
///
/// All sizes are in 128-byte cache lines. Regions are laid out by
/// [`crate::stream::AppStream`] so that distinct applications, warps and
/// cores never alias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Per-warp sequential streaming with the given line stride: no reuse,
    /// maximal row-buffer locality. Models dense streaming kernels
    /// (BlackScholes, transpose, reductions).
    Stream {
        /// Stride between consecutive accesses, in lines.
        stride_lines: u64,
    },
    /// With probability `hot_frac`, a uniform access into a *per-warp* hot
    /// region of `hot_lines` lines; otherwise streams. Cache-sensitive: the
    /// aggregate hot footprint grows with TLP and thrashes the L1 once
    /// `active_warps × hot_lines` exceeds it — the mechanism behind the
    /// paper's Fig. 2 CMR curve.
    HotStream {
        /// Hot-region size per warp, in lines.
        hot_lines: u64,
        /// Fraction of accesses hitting the hot region.
        hot_frac: f64,
    },
    /// Like [`AccessPattern::HotStream`] but the hot region is shared by all
    /// warps of a core, so its footprint does *not* grow with TLP
    /// (lookup-table kernels: histograms, texture-like tables).
    SharedHotStream {
        /// Hot-region size per core, in lines.
        hot_lines: u64,
        /// Fraction of accesses hitting the hot region.
        hot_frac: f64,
    },
    /// Two locality tiers plus a cold stream: with probability `l1_frac` a
    /// uniform access into a *per-warp* hot region of `l1_lines` (L1-scale
    /// reuse, footprint grows with TLP); with probability `l2_frac` a
    /// uniform access into a *per-core* region of `l2_lines` sized for the
    /// shared L2 — the tier a co-runner's cache pollution destroys, which
    /// is the cross-application coupling the paper's §IV analysis builds
    /// on; otherwise a grid-stride cold stream.
    TwoTierHot {
        /// Per-warp hot-region size in lines.
        l1_lines: u64,
        /// Fraction of accesses to the per-warp tier.
        l1_frac: f64,
        /// Per-core shared-region size in lines.
        l2_lines: u64,
        /// Fraction of accesses to the per-core tier.
        l2_frac: f64,
    },
    /// Uniform random accesses over a large per-warp span: no cache reuse
    /// *and* no row locality (GUPS-style scatter/gather).
    RandomUniform {
        /// Span of the random region per warp, in lines.
        span_lines: u64,
    },
    /// Alternates between a cache-friendly phase (per-warp hot region, as
    /// [`AccessPattern::HotStream`]) and a pure streaming phase every
    /// `phase_insts` instructions — modeling applications whose consecutive
    /// kernel launches have different memory behaviour. The paper's online
    /// PBS outperforms its offline variant exactly on such workloads
    /// (§VI-A: "the runtime tuning of TLP combination provides benefits").
    Phased {
        /// Hot-region size per warp during the cache-friendly phase.
        hot_lines: u64,
        /// Fraction of that phase's accesses hitting the hot region.
        hot_frac: f64,
        /// Instructions per phase before switching.
        phase_insts: u64,
    },
    /// The warp sweeps a tile of `tile_lines` lines `reuse` times, then
    /// advances to the next tile — stencil/factorization kernels with
    /// phase-local reuse.
    Tiled {
        /// Tile size per warp, in lines.
        tile_lines: u64,
        /// Sweeps over each tile before moving on.
        reuse: u32,
    },
}

/// Full statistical model of one application (one row of Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Table IV abbreviation (e.g. "BFS").
    pub name: &'static str,
    /// Human-readable kernel name.
    pub full_name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// EB group the paper assigns (used as the user-supplied scaling factor
    /// for EB-FI / EB-HS).
    pub group: EbGroup,
    /// Fraction of instructions that are global loads (the paper's `r_m`).
    pub mem_ratio: f64,
    /// Fraction of instructions that are global stores.
    pub store_ratio: f64,
    /// Latency of one ALU instruction in cycles (models arithmetic
    /// intensity per issue slot).
    pub alu_cycles: u32,
    /// Address-generation pattern.
    pub pattern: AccessPattern,
    /// Distinct lines one memory instruction touches after coalescing
    /// (1 = perfectly coalesced, 32 = fully divergent).
    pub coalesce_degree: usize,
    /// Outstanding-load tolerance per warp (dependency distance).
    pub max_outstanding: usize,
}

impl AppProfile {
    /// Core-level parameters derived from the profile.
    pub fn core_params(&self) -> CoreParams {
        CoreParams {
            max_outstanding_loads: self.max_outstanding,
            max_txn_per_inst: 32,
        }
    }

    /// Sanity-checks the profile's numeric ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters; profiles are static data, so this
    /// is exercised by tests rather than returning a `Result`.
    pub fn assert_valid(&self) {
        assert!(
            self.mem_ratio >= 0.0 && self.mem_ratio <= 1.0,
            "{}: mem_ratio",
            self.name
        );
        assert!(self.store_ratio >= 0.0, "{}: store_ratio", self.name);
        assert!(
            self.mem_ratio + self.store_ratio <= 1.0,
            "{}: memory ratios exceed 1",
            self.name
        );
        assert!(self.alu_cycles >= 1, "{}: alu_cycles", self.name);
        assert!(
            (1..=32).contains(&self.coalesce_degree),
            "{}: coalesce_degree",
            self.name
        );
        assert!(self.max_outstanding >= 1, "{}: max_outstanding", self.name);
        match self.pattern {
            AccessPattern::Stream { stride_lines } => assert!(stride_lines >= 1),
            AccessPattern::HotStream {
                hot_lines,
                hot_frac,
            }
            | AccessPattern::SharedHotStream {
                hot_lines,
                hot_frac,
            } => {
                assert!(hot_lines >= 1, "{}: hot_lines", self.name);
                assert!((0.0..=1.0).contains(&hot_frac), "{}: hot_frac", self.name);
            }
            AccessPattern::TwoTierHot {
                l1_lines,
                l1_frac,
                l2_lines,
                l2_frac,
            } => {
                assert!(l1_lines >= 1 && l2_lines >= 1, "{}: tier sizes", self.name);
                assert!(
                    l1_frac >= 0.0 && l2_frac >= 0.0 && l1_frac + l2_frac <= 1.0,
                    "{}: tier fractions",
                    self.name
                );
            }
            AccessPattern::RandomUniform { span_lines } => {
                assert!(span_lines >= 1, "{}: span_lines", self.name)
            }
            AccessPattern::Tiled { tile_lines, reuse } => {
                assert!(tile_lines >= 1 && reuse >= 1, "{}: tiled", self.name)
            }
            AccessPattern::Phased {
                hot_lines,
                hot_frac,
                phase_insts,
            } => {
                assert!(hot_lines >= 1, "{}: hot_lines", self.name);
                assert!((0.0..=1.0).contains(&hot_frac), "{}: hot_frac", self.name);
                assert!(phase_insts >= 1, "{}: phase_insts", self.name);
            }
        }
    }
}

impl Canon for Suite {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u8(match self {
            Suite::Rodinia => 0,
            Suite::Parboil => 1,
            Suite::CudaSdk => 2,
            Suite::Shoc => 3,
            Suite::Synthetic => 4,
        });
    }
}

impl Canon for EbGroup {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u8(match self {
            EbGroup::G1 => 0,
            EbGroup::G2 => 1,
            EbGroup::G3 => 2,
            EbGroup::G4 => 3,
        });
    }
}

impl Canon for AccessPattern {
    fn canon(&self, buf: &mut CanonBuf) {
        match *self {
            AccessPattern::Stream { stride_lines } => {
                buf.push_u8(0);
                buf.push_u64(stride_lines);
            }
            AccessPattern::HotStream {
                hot_lines,
                hot_frac,
            } => {
                buf.push_u8(1);
                buf.push_u64(hot_lines);
                buf.push_f64(hot_frac);
            }
            AccessPattern::SharedHotStream {
                hot_lines,
                hot_frac,
            } => {
                buf.push_u8(2);
                buf.push_u64(hot_lines);
                buf.push_f64(hot_frac);
            }
            AccessPattern::TwoTierHot {
                l1_lines,
                l1_frac,
                l2_lines,
                l2_frac,
            } => {
                buf.push_u8(3);
                buf.push_u64(l1_lines);
                buf.push_f64(l1_frac);
                buf.push_u64(l2_lines);
                buf.push_f64(l2_frac);
            }
            AccessPattern::RandomUniform { span_lines } => {
                buf.push_u8(4);
                buf.push_u64(span_lines);
            }
            AccessPattern::Phased {
                hot_lines,
                hot_frac,
                phase_insts,
            } => {
                buf.push_u8(5);
                buf.push_u64(hot_lines);
                buf.push_f64(hot_frac);
                buf.push_u64(phase_insts);
            }
            AccessPattern::Tiled { tile_lines, reuse } => {
                buf.push_u8(6);
                buf.push_u64(tile_lines);
                buf.push_u32(reuse);
            }
        }
    }
}

// The full profile content — not just the name — feeds the fingerprint, so
// synthetic/phased profiles built at runtime and any future retuning of a
// Table IV row key distinct cache entries.
impl Canon for AppProfile {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_str(self.name);
        buf.push(&self.suite);
        buf.push(&self.group);
        buf.push_f64(self.mem_ratio);
        buf.push_f64(self.store_ratio);
        buf.push_u32(self.alu_cycles);
        buf.push(&self.pattern);
        buf.push_usize(self.coalesce_degree);
        buf.push_usize(self.max_outstanding);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AppProfile {
        AppProfile {
            name: "TST",
            full_name: "test kernel",
            suite: Suite::Synthetic,
            group: EbGroup::G2,
            mem_ratio: 0.2,
            store_ratio: 0.05,
            alu_cycles: 2,
            pattern: AccessPattern::Stream { stride_lines: 1 },
            coalesce_degree: 1,
            max_outstanding: 2,
        }
    }

    #[test]
    fn valid_profile_passes() {
        profile().assert_valid();
    }

    #[test]
    #[should_panic(expected = "mem_ratio")]
    fn bad_mem_ratio_panics() {
        let mut p = profile();
        p.mem_ratio = 1.5;
        p.assert_valid();
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn ratios_must_sum_below_one() {
        let mut p = profile();
        p.mem_ratio = 0.8;
        p.store_ratio = 0.4;
        p.assert_valid();
    }

    #[test]
    fn core_params_copy_tolerance() {
        assert_eq!(profile().core_params().max_outstanding_loads, 2);
    }

    #[test]
    fn groups_are_ordered() {
        assert!(EbGroup::G1 < EbGroup::G4);
        assert_eq!(EbGroup::G3.to_string(), "G3");
    }
}
