//! Property-based tests of the application models: determinism, address
//! hygiene and mix fidelity over arbitrary apps, warps and seeds.
//!
//! Cases are generated with the in-repo [`SplitMix64`] generator (fixed
//! seeds, so failures reproduce exactly) — the build must work fully
//! offline.

use gpu_simt::inst::Inst;
use gpu_types::{AppId, SplitMix64};
use gpu_workloads::all_apps;
use std::collections::HashSet;

fn collect(app_idx: usize, app_id: u8, core: usize, slot: usize, seed: u64, n: usize) -> Vec<Inst> {
    let mut s = all_apps()[app_idx].stream(AppId::new(app_id), core, slot, 48, seed);
    (0..n)
        .map(|_| s.next_inst().expect("app streams are endless"))
        .collect()
}

/// Identical construction parameters replay identical streams.
#[test]
fn streams_are_deterministic() {
    let mut rng = SplitMix64::new(0x10AD_5701);
    for _ in 0..32 {
        let app = rng.next_below(26) as usize;
        let core = rng.next_below(8) as usize;
        let slot = rng.next_below(48) as usize;
        let seed = rng.next_below(1_000);
        assert_eq!(
            collect(app, 0, core, slot, seed, 64),
            collect(app, 0, core, slot, seed, 64)
        );
    }
}

/// Different applications never touch each other's address space.
#[test]
fn app_regions_are_disjoint() {
    let mut rng = SplitMix64::new(0x10AD_5702);
    for _ in 0..32 {
        let a = rng.next_below(26) as usize;
        let b = rng.next_below(26) as usize;
        let seed = rng.next_below(200);
        let lines = |app: usize, id: u8| -> HashSet<u64> {
            collect(app, id, 0, 0, seed, 200)
                .into_iter()
                .flat_map(|i| match i {
                    Inst::Load { addrs } | Inst::Store { addrs } => addrs,
                    Inst::Alu { .. } => gpu_simt::inst::AddrList::default(),
                })
                .map(|x| x.line().raw())
                .collect()
        };
        let la = lines(a, 0);
        let lb = lines(b, 1);
        assert!(la.is_disjoint(&lb), "apps {a} and {b} alias");
    }
}

/// The instruction mix respects the profile's memory ratios within
/// statistical tolerance.
#[test]
fn mix_matches_profile() {
    let mut rng = SplitMix64::new(0x10AD_5703);
    for _ in 0..32 {
        let app = rng.next_below(26) as usize;
        let seed = rng.next_below(100);
        let profile = &all_apps()[app];
        let insts = collect(app, 0, 0, 0, seed, 4_000);
        let loads = insts
            .iter()
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        let stores = insts
            .iter()
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        let lf = loads as f64 / insts.len() as f64;
        let sf = stores as f64 / insts.len() as f64;
        assert!(
            (lf - profile.mem_ratio).abs() < 0.05,
            "{}: load fraction {lf:.3} vs r_m {:.3}",
            profile.name,
            profile.mem_ratio
        );
        assert!(
            (sf - profile.store_ratio).abs() < 0.05,
            "{}: store fraction {sf:.3} vs {:.3}",
            profile.name,
            profile.store_ratio
        );
    }
}

/// Memory instructions emit exactly the coalescing degree in distinct
/// lines (never zero, never more).
#[test]
fn coalesce_degree_is_respected() {
    let mut rng = SplitMix64::new(0x10AD_5704);
    for _ in 0..32 {
        let app = rng.next_below(26) as usize;
        let seed = rng.next_below(100);
        let profile = &all_apps()[app];
        for i in collect(app, 0, 0, 0, seed, 500) {
            if let Inst::Load { addrs } | Inst::Store { addrs } = i {
                let distinct: HashSet<u64> = addrs.iter().map(|a| a.line().raw()).collect();
                assert!(!distinct.is_empty());
                assert!(
                    distinct.len() <= profile.coalesce_degree,
                    "{}: {} lines > degree {}",
                    profile.name,
                    distinct.len(),
                    profile.coalesce_degree
                );
            }
        }
    }
}

/// ALU instructions always carry the profile's latency.
#[test]
fn alu_latency_matches_profile() {
    for app in 0..26 {
        let profile = &all_apps()[app];
        for i in collect(app, 0, 0, 0, 7, 500) {
            if let Inst::Alu { cycles } = i {
                assert_eq!(cycles, profile.alu_cycles);
            }
        }
    }
}
