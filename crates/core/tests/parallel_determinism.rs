//! Regression tests pinning the parallel execution layer to sequential
//! results.
//!
//! Every fan-out in the codebase (sweep tables, alone profiles, scheme
//! batches) runs independent same-seed simulations and collects results in
//! input order, so parallel execution must be *bit-for-bit* identical to
//! sequential — not merely statistically close. These tests compare exact
//! float equality on purpose.

use ebm_core::eval::{Evaluator, EvaluatorConfig, Scheme};
use ebm_core::metrics::EbObjective;
use ebm_core::sweep::ComboSweep;
use gpu_sim::harness::RunSpec;
use gpu_sim::profile_alone_with_threads;
use gpu_types::GpuConfig;
use gpu_workloads::{by_name, Workload};

/// Disables the process-global result cache: a memoized second run would be
/// a lookup, not a parallel simulation, and these tests exist to exercise
/// the parallel path. Every test in this binary calls this, so the shared
/// global setting never flips back mid-run.
fn no_cache() {
    gpu_sim::cache::set_enabled(false);
}

#[test]
fn parallel_sweep_equals_sequential_exactly() {
    no_cache();
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let spec = RunSpec::new(300, 1_000);
    let serial = ComboSweep::measure_with_threads(&cfg, &w, 42, spec, 1);
    let parallel = ComboSweep::measure_with_threads(&cfg, &w, 42, spec, 4);
    assert_eq!(serial.len(), 25);
    assert_eq!(parallel.len(), serial.len());
    for (combo, samples) in serial.iter() {
        let p = parallel.get(combo).expect("parallel sweep misses a combo");
        assert_eq!(samples.len(), p.len());
        for (s, q) in samples.iter().zip(p) {
            // Exact equality: same machine, same seed, same arithmetic.
            assert_eq!(s.ipc, q.ipc, "IPC diverged at {combo}");
            assert_eq!(s.bw, q.bw, "BW diverged at {combo}");
            assert_eq!(s.cmr, q.cmr, "CMR diverged at {combo}");
            assert_eq!(s.eb, q.eb, "EB diverged at {combo}");
        }
    }
}

#[test]
fn parallel_alone_profile_equals_sequential_exactly() {
    no_cache();
    let cfg = GpuConfig::small();
    let app = by_name("BFS").unwrap();
    let spec = RunSpec::new(500, 2_000);
    let serial = profile_alone_with_threads(&cfg, app, 2, 5, spec, 1);
    let parallel = profile_alone_with_threads(&cfg, app, 2, 5, spec, 4);
    assert_eq!(serial, parallel);
}

#[test]
fn batch_evaluation_equals_serial_exactly() {
    no_cache();
    let schemes = [
        Scheme::BestTlp,
        Scheme::MaxTlp,
        Scheme::DynCta,
        Scheme::Ccws,
        Scheme::Pbs(EbObjective::Ws),
        Scheme::PbsOffline(EbObjective::Fi),
        Scheme::BruteForce(EbObjective::Fi),
        Scheme::Opt(EbObjective::Ws),
        Scheme::OptIt,
    ];
    let w = Workload::pair("BLK", "BFS");

    let mut serial_ev = Evaluator::new(EvaluatorConfig::quick());
    let serial: Vec<_> = schemes.iter().map(|s| serial_ev.evaluate(&w, *s)).collect();

    let mut batch_ev = Evaluator::new(EvaluatorConfig::quick());
    let batch = batch_ev.evaluate_batch_with_threads(&w, &schemes, 4);

    assert_eq!(batch.len(), serial.len());
    for (a, b) in serial.iter().zip(&batch) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(
            a.metrics.sds, b.metrics.sds,
            "{}: slowdowns diverged",
            a.scheme
        );
        assert_eq!(a.metrics.ws, b.metrics.ws, "{}: WS diverged", a.scheme);
        assert_eq!(a.metrics.fi, b.metrics.fi, "{}: FI diverged", a.scheme);
        assert_eq!(a.metrics.hs, b.metrics.hs, "{}: HS diverged", a.scheme);
        assert_eq!(a.combo, b.combo, "{}: chosen combo diverged", a.scheme);
        assert_eq!(a.tlp_trace, b.tlp_trace, "{}: TLP trace diverged", a.scheme);
    }
}

#[test]
fn batch_results_enter_the_memo_cache() {
    no_cache();
    let w = Workload::pair("BLK", "BFS");
    let mut ev = Evaluator::new(EvaluatorConfig::quick());
    let batch =
        ev.evaluate_batch_with_threads(&w, &[Scheme::BestTlp, Scheme::MaxTlp, Scheme::OptIt], 2);
    // A follow-up serial evaluate must be a cache hit with identical data.
    let again = ev.evaluate(&w, Scheme::MaxTlp);
    assert_eq!(again.metrics.ws, batch[1].metrics.ws);
    assert_eq!(again.metrics.sds, batch[1].metrics.sds);
}

#[test]
fn batch_handles_duplicates_and_cached_entries() {
    no_cache();
    let w = Workload::pair("BLK", "BFS");
    let mut ev = Evaluator::new(EvaluatorConfig::quick());
    let first = ev.evaluate(&w, Scheme::BestTlp); // pre-populate the cache
    let batch =
        ev.evaluate_batch_with_threads(&w, &[Scheme::BestTlp, Scheme::BestTlp, Scheme::MaxTlp], 2);
    assert_eq!(batch.len(), 3);
    assert_eq!(batch[0].metrics.ws, first.metrics.ws);
    assert_eq!(batch[1].metrics.ws, first.metrics.ws);
}

#[test]
fn sweep_levels_cover_all_apps_axes() {
    no_cache();
    // levels() must report the union over every application's axis, not
    // just app 0's.
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let sweep = ComboSweep::measure_with_threads(&cfg, &w, 3, RunSpec::new(300, 1_000), 2);
    let levels: Vec<u32> = sweep.levels().iter().map(|l| l.get()).collect();
    assert_eq!(levels, vec![1, 2, 4, 6, 8]);
    let mut sorted = levels.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        levels, sorted,
        "levels must be ascending and duplicate-free"
    );
}
