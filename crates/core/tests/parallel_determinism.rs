//! Regression tests pinning the parallel execution layer to sequential
//! results.
//!
//! Every fan-out in the codebase (sweep tables, alone profiles, scheme
//! batches) runs independent same-seed simulations and collects results in
//! input order, so parallel execution must be *bit-for-bit* identical to
//! sequential — not merely statistically close. These tests compare exact
//! float equality on purpose.

use ebm_core::eval::{Evaluator, EvaluatorConfig, Scheme};
use ebm_core::metrics::EbObjective;
use ebm_core::sweep::ComboSweep;
use gpu_sim::harness::{measure_fixed, RunSpec};
use gpu_sim::{profile_alone_with_threads, Gpu};
use gpu_types::{GpuConfig, SplitMix64, TlpCombo, TlpLevel};
use gpu_workloads::{by_name, Workload};

/// Disables the process-global result cache: a memoized second run would be
/// a lookup, not a parallel simulation, and these tests exist to exercise
/// the parallel path. Every test in this binary calls this, so the shared
/// global setting never flips back mid-run.
fn no_cache() {
    gpu_sim::cache::set_enabled(false);
}

#[test]
fn parallel_sweep_equals_sequential_exactly() {
    no_cache();
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let spec = RunSpec::new(300, 1_000);
    let serial = ComboSweep::measure_with_threads(&cfg, &w, 42, spec, 1);
    let parallel = ComboSweep::measure_with_threads(&cfg, &w, 42, spec, 4);
    assert_eq!(serial.len(), 25);
    assert_eq!(parallel.len(), serial.len());
    for (combo, samples) in serial.iter() {
        let p = parallel.get(combo).expect("parallel sweep misses a combo");
        assert_eq!(samples.len(), p.len());
        for (s, q) in samples.iter().zip(p) {
            // Exact equality: same machine, same seed, same arithmetic.
            assert_eq!(s.ipc, q.ipc, "IPC diverged at {combo}");
            assert_eq!(s.bw, q.bw, "BW diverged at {combo}");
            assert_eq!(s.cmr, q.cmr, "CMR diverged at {combo}");
            assert_eq!(s.eb, q.eb, "EB diverged at {combo}");
        }
    }
}

#[test]
fn parallel_alone_profile_equals_sequential_exactly() {
    no_cache();
    let cfg = GpuConfig::small();
    let app = by_name("BFS").unwrap();
    let spec = RunSpec::new(500, 2_000);
    let serial = profile_alone_with_threads(&cfg, app, 2, 5, spec, 1);
    let parallel = profile_alone_with_threads(&cfg, app, 2, 5, spec, 4);
    assert_eq!(serial, parallel);
}

#[test]
fn batch_evaluation_equals_serial_exactly() {
    no_cache();
    let schemes = [
        Scheme::BestTlp,
        Scheme::MaxTlp,
        Scheme::DynCta,
        Scheme::Ccws,
        Scheme::Pbs(EbObjective::Ws),
        Scheme::PbsOffline(EbObjective::Fi),
        Scheme::BruteForce(EbObjective::Fi),
        Scheme::Opt(EbObjective::Ws),
        Scheme::OptIt,
    ];
    let w = Workload::pair("BLK", "BFS");

    let serial_ev = Evaluator::new(EvaluatorConfig::quick());
    let serial: Vec<_> = schemes.iter().map(|s| serial_ev.evaluate(&w, *s)).collect();

    let batch_ev = Evaluator::new(EvaluatorConfig::quick());
    let batch = batch_ev.evaluate_batch_with_threads(&w, &schemes, 4);

    assert_eq!(batch.len(), serial.len());
    for (a, b) in serial.iter().zip(&batch) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(
            a.metrics.sds, b.metrics.sds,
            "{}: slowdowns diverged",
            a.scheme
        );
        assert_eq!(a.metrics.ws, b.metrics.ws, "{}: WS diverged", a.scheme);
        assert_eq!(a.metrics.fi, b.metrics.fi, "{}: FI diverged", a.scheme);
        assert_eq!(a.metrics.hs, b.metrics.hs, "{}: HS diverged", a.scheme);
        assert_eq!(a.combo, b.combo, "{}: chosen combo diverged", a.scheme);
        assert_eq!(a.tlp_trace, b.tlp_trace, "{}: TLP trace diverged", a.scheme);
    }
}

#[test]
fn batch_results_enter_the_memo_cache() {
    no_cache();
    let w = Workload::pair("BLK", "BFS");
    let ev = Evaluator::new(EvaluatorConfig::quick());
    let batch =
        ev.evaluate_batch_with_threads(&w, &[Scheme::BestTlp, Scheme::MaxTlp, Scheme::OptIt], 2);
    // A follow-up serial evaluate must be a cache hit with identical data.
    let again = ev.evaluate(&w, Scheme::MaxTlp);
    assert_eq!(again.metrics.ws, batch[1].metrics.ws);
    assert_eq!(again.metrics.sds, batch[1].metrics.sds);
}

#[test]
fn batch_handles_duplicates_and_cached_entries() {
    no_cache();
    let w = Workload::pair("BLK", "BFS");
    let ev = Evaluator::new(EvaluatorConfig::quick());
    let first = ev.evaluate(&w, Scheme::BestTlp); // pre-populate the cache
    let batch =
        ev.evaluate_batch_with_threads(&w, &[Scheme::BestTlp, Scheme::BestTlp, Scheme::MaxTlp], 2);
    assert_eq!(batch.len(), 3);
    assert_eq!(batch[0].metrics.ws, first.metrics.ws);
    assert_eq!(batch[1].metrics.ws, first.metrics.ws);
}

#[test]
fn intra_sim_workers_keep_harness_measurements_bit_identical() {
    no_cache();
    // The *intra*-simulation axis (`Gpu::set_sim_threads`, the programmatic
    // twin of `EBM_SIM_THREADS`): a memory-bound co-run measured through the
    // windowed harness must produce byte-identical windows at every worker
    // count, with TLP knob changes landing at window boundaries exactly as
    // the controller path would apply them.
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "TRD");
    let spec = RunSpec::new(400, 1_600);
    let mut rng = SplitMix64::new(0x1D7A_5117);
    let run = |threads: usize| {
        let mut g = Gpu::new(&cfg, w.apps(), 42);
        g.set_sim_threads(threads);
        let mut windows = Vec::new();
        for leg in 0..3u32 {
            let combo = TlpCombo::pair(
                TlpLevel::new(8).unwrap(),
                TlpLevel::new(1 + leg * 3).unwrap(),
            );
            windows.extend(measure_fixed(&mut g, &combo, spec));
        }
        windows
    };
    let serial = run(1);
    for _ in 0..3 {
        let threads = [2, 4, 7][rng.next_below(3) as usize];
        let parallel = run(threads);
        assert_eq!(
            serial, parallel,
            "harness windows diverged at {threads} sim threads"
        );
    }
}

#[test]
fn intra_sim_workers_compose_with_sweep_fanout() {
    no_cache();
    // `EBM_SIM_THREADS` and the across-sweep `EBM_THREADS` fan-out must not
    // multiply: inside `par_map_with` workers the intra-sim worker count is
    // forced to 1 (docs/PARALLELISM.md), and outside it the domain-parallel
    // engine is bit-identical to serial. Either way the sweep table cannot
    // change. Setting the env var here is benign even though other tests in
    // this binary may run concurrently: the only thing it can change for
    // them is the worker count, which this invariant makes unobservable.
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "TRD");
    let spec = RunSpec::new(300, 1_000);
    let baseline = ComboSweep::measure_with_threads(&cfg, &w, 7, spec, 1);
    std::env::set_var("EBM_SIM_THREADS", "4");
    // Serial sweep: each simulation runs inline and fans out to 4 domains.
    let intra = ComboSweep::measure_with_threads(&cfg, &w, 7, spec, 1);
    // Parallel sweep: fan-out workers suppress the intra-sim axis.
    let nested = ComboSweep::measure_with_threads(&cfg, &w, 7, spec, 4);
    std::env::remove_var("EBM_SIM_THREADS");
    for (combo, samples) in baseline.iter() {
        let a = intra.get(combo).expect("intra-sim sweep misses a combo");
        let b = nested.get(combo).expect("nested sweep misses a combo");
        for (s, (x, y)) in samples.iter().zip(a.iter().zip(b)) {
            assert_eq!((s.ipc, s.bw, s.eb), (x.ipc, x.bw, x.eb), "at {combo}");
            assert_eq!((s.ipc, s.bw, s.eb), (y.ipc, y.bw, y.eb), "at {combo}");
        }
    }
}

#[test]
fn windowed_sim_threads_compose_with_sweep_fanout() {
    no_cache();
    // The lookahead-windowed intra-sim engine under an across-sim fan-out:
    // each fan-out worker runs a full harness measurement — three
    // controller-style legs whose knob changes force window flushes — with
    // an *explicit* `set_sim_threads` override (which bypasses the fan-out
    // suppression by design, so the windowed engine really runs inside
    // `par_map_with` workers). Every (worker count × fan-out lane) result
    // must be byte-identical to the inline serial run.
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "TRD");
    let spec = RunSpec::new(400, 1_400);
    let measure = |threads: usize| {
        let mut g = Gpu::new(&cfg, w.apps(), 42);
        g.set_sim_threads(threads);
        let mut windows = Vec::new();
        for leg in 0..3u32 {
            let combo = TlpCombo::pair(
                TlpLevel::new(8).unwrap(),
                TlpLevel::new(1 + leg * 2).unwrap(),
            );
            windows.extend(measure_fixed(&mut g, &combo, spec));
        }
        windows
    };
    let serial = measure(1);
    let fanned = gpu_sim::exec::par_map_with(3, vec![2usize, 4, 7, 2, 4, 7], measure);
    for (i, windows) in fanned.iter().enumerate() {
        assert_eq!(
            &serial, windows,
            "lane {i}: windowed engine diverged inside the sweep fan-out"
        );
    }
}

#[test]
fn sweep_levels_cover_all_apps_axes() {
    no_cache();
    // levels() must report the union over every application's axis, not
    // just app 0's.
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let sweep = ComboSweep::measure_with_threads(&cfg, &w, 3, RunSpec::new(300, 1_000), 2);
    let levels: Vec<u32> = sweep.levels().iter().map(|l| l.get()).collect();
    assert_eq!(levels, vec![1, 2, 4, 6, 8]);
    let mut sorted = levels.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        levels, sorted,
        "levels must be ascending and duplicate-free"
    );
}
