//! Integration tests for the trace layer against real controller runs:
//! a [`RingSink`] capture must be rich enough to reconstruct the Fig. 11
//! artifacts, and tracing must stay strictly off the decision path.

use ebm_core::eval::{Evaluator, EvaluatorConfig, Scheme};
use ebm_core::metrics::EbObjective;
use ebm_core::policy::pbs::PbsScaling;
use ebm_core::Pbs;
use gpu_sim::control::Controller;
use gpu_sim::harness::{run_controlled_traced, ControlledRun};
use gpu_sim::machine::Gpu;
use gpu_sim::trace::{eb_series, series_csv, RingSink, TraceEvent};
use gpu_sim::{NullSink, TraceSink};
use gpu_types::{GpuConfig, TlpCombo};
use gpu_workloads::Workload;

fn traced_pbs_run(sink: &mut dyn TraceSink) -> ControlledRun {
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let mut pbs = Pbs::new(EbObjective::Ws, cfg.max_tlp(), PbsScaling::None).with_hold_windows(8);
    let mut gpu = Gpu::new(&cfg, w.apps(), 42);
    gpu.set_combo(&TlpCombo::uniform(cfg.max_tlp(), 2));
    run_controlled_traced(&mut gpu, &mut pbs as &mut dyn Controller, 60_000, 500, sink)
}

#[test]
fn ring_capture_reconstructs_fig11_eb_series() {
    let mut ring = RingSink::new(1 << 16);
    let run = traced_pbs_run(&mut ring);
    assert_eq!(ring.dropped(), 0, "capture must be lossless for this test");

    // The per-app EB time series reconstructed from generic window_sample
    // events must match the harness's bespoke window series exactly.
    for app in 0..2u8 {
        let series = eb_series(ring.events(), app);
        assert_eq!(series.len() as u64, run.n_windows);
        for ((cycle, eb), (ref_cycle, windows)) in series.iter().zip(&run.window_series) {
            assert_eq!(cycle, ref_cycle);
            assert_eq!(*eb, windows[app as usize].effective_bandwidth());
        }
    }

    // And the CSV replayed from the capture is byte-identical to the
    // harness's own export — fig11 regenerates its artifact from the
    // generic trace without changing a single byte.
    assert_eq!(series_csv(ring.events()), run.series_csv());
}

#[test]
fn capture_contains_all_event_kinds() {
    let mut ring = RingSink::new(1 << 16);
    let _ = traced_pbs_run(&mut ring);
    let mut kinds: Vec<&'static str> = ring.events().iter().map(TraceEvent::kind).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(
        kinds,
        vec![
            "core_window",
            "metrics_window",
            "partition_window",
            "search_phase",
            "tlp_decision",
            "window_sample"
        ],
        "a PBS run must exercise every simulation-emitted event kind"
    );
}

#[test]
fn metrics_windows_attribute_per_app_and_aggregate() {
    let mut ring = RingSink::new(1 << 16);
    let run = traced_pbs_run(&mut ring);
    let windows: Vec<_> = ring
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::MetricsWindow {
                app,
                stalls,
                dram_lat,
                mshr_occ,
                queue_depth,
                ..
            } => Some((app, stalls, dram_lat, mshr_occ, queue_depth)),
            _ => None,
        })
        .collect();
    // One record per app plus one machine-wide aggregate, every window.
    assert_eq!(windows.len() as u64, run.n_windows * 3);
    let mut stall_sum = 0u64;
    let mut agg_sum = 0u64;
    let mut lat_count = 0u64;
    let mut agg_lat_count = 0u64;
    for (app, stalls, dram_lat, mshr_occ, queue_depth) in windows {
        match app {
            Some(_) => {
                stall_sum += stalls.total();
                lat_count += dram_lat.count();
                assert!(
                    mshr_occ.is_empty() && queue_depth.is_empty(),
                    "occupancy gauges are machine-wide only"
                );
            }
            None => {
                agg_sum += stalls.total();
                agg_lat_count += dram_lat.count();
                assert!(!mshr_occ.is_empty(), "aggregate must carry MSHR samples");
                assert!(
                    !queue_depth.is_empty(),
                    "aggregate must carry queue samples"
                );
            }
        }
        assert_eq!(stalls.barrier, 0, "no barrier instruction in the ISA");
    }
    assert!(stall_sum > 0, "a memory-bound run must record stalls");
    assert_eq!(stall_sum, agg_sum, "aggregate = sum of per-app stalls");
    assert!(lat_count > 0, "DRAM latency must be recorded");
    assert_eq!(lat_count, agg_lat_count);
}

#[test]
fn tracing_is_off_the_decision_path() {
    // A traced run must be bit-for-bit identical to the same run with the
    // no-op sink: sinks only read simulator state.
    let untraced = traced_pbs_run(&mut NullSink);
    let mut ring = RingSink::new(1 << 16);
    let traced = traced_pbs_run(&mut ring);
    assert!(!ring.events().is_empty());
    assert_eq!(untraced.n_windows, traced.n_windows);
    assert_eq!(untraced.tlp_trace, traced.tlp_trace);
    assert_eq!(untraced.overall, traced.overall);
    assert_eq!(untraced.window_series, traced.window_series);
}

#[test]
fn evaluate_traced_matches_cached_metrics() {
    let w = Workload::pair("BLK", "BFS");
    let ev = Evaluator::new(EvaluatorConfig::quick());
    let plain = ev.evaluate(&w, Scheme::Pbs(EbObjective::Ws));
    let mut ring = RingSink::new(1 << 16);
    let traced = ev.evaluate_traced(&w, Scheme::Pbs(EbObjective::Ws), &mut ring);
    assert!(!ring.events().is_empty(), "traced re-run must emit events");
    assert_eq!(plain.metrics.sds, traced.metrics.sds);
    assert_eq!(plain.tlp_trace, traced.tlp_trace);
}

#[test]
fn static_schemes_emit_overall_windows() {
    let w = Workload::pair("BLK", "BFS");
    let ev = Evaluator::new(EvaluatorConfig::quick());
    let mut ring = RingSink::new(1 << 16);
    let r = ev.evaluate_traced(&w, Scheme::BestTlp, &mut ring);
    let samples: Vec<_> = ring
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::WindowSample { .. }))
        .collect();
    assert_eq!(samples.len(), 2, "one overall sample per application");
    if let TraceEvent::WindowSample { eb, .. } = samples[0] {
        assert_eq!(*eb, r.windows[0].effective_bandwidth());
    }
}
