//! Property-based tests of the TLP-management machinery: the PBS state
//! machine must stay well-formed for *any* EB landscape the machine could
//! present, and the offline searches must return valid, competitive
//! combinations for any synthetic table.
//!
//! Cases are generated with the in-repo [`SplitMix64`] generator (fixed
//! seeds, so failures reproduce exactly) — the build must work fully
//! offline.

use ebm_core::metrics::EbObjective;
use ebm_core::policy::pbs::PbsScaling;
use ebm_core::scaling::ScalingFactors;
use ebm_core::Pbs;
use gpu_sim::control::{AppObservation, Controller, Observation};
use gpu_simt::CoreStats;
use gpu_types::{AppWindow, MemCounters, SplitMix64, TlpLevel};

/// Drives a controller against a synthetic EB table defined by a seed:
/// every combination maps deterministically to per-app EBs.
fn drive_with_table(pbs: &mut Pbs, table_seed: u64, windows: usize) -> Vec<Vec<TlpLevel>> {
    let eb_of = |app: usize, levels: &[TlpLevel]| -> f64 {
        let mut h = gpu_types::SplitMix64::new(
            table_seed
                ^ ((app as u64) << 32)
                ^ levels
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, l)| acc ^ ((l.get() as u64) << (8 * i))),
        );
        0.05 + h.next_f64() * 2.0
    };
    let mut levels = vec![TlpLevel::MAX; 2];
    let mut history = Vec::new();
    for t in 0..windows {
        let apps: Vec<AppObservation> = (0..2)
            .map(|a| {
                let eb = eb_of(a, &levels);
                let c = MemCounters {
                    l1_accesses: 100,
                    l1_misses: 100,
                    l2_accesses: 100,
                    l2_misses: 100,
                    dram_bytes: (eb * 192.0 * 1_000.0) as u64,
                    warp_insts: 1_000,
                    ..MemCounters::new()
                };
                AppObservation {
                    window: AppWindow::new(c, 1_000, 192.0),
                    core: CoreStats {
                        cycles: 1_000,
                        ..CoreStats::default()
                    },
                    tlp: levels[a],
                    bypassed: false,
                }
            })
            .collect();
        let obs = Observation {
            now: t as u64 * 1_000,
            window_cycles: 1_000,
            apps,
        };
        let d = pbs.on_window(&obs);
        for (a, l) in d.tlp.iter().enumerate() {
            if let Some(l) = l {
                levels[a] = *l;
            }
        }
        history.push(levels.clone());
    }
    history
}

/// On any EB landscape, PBS (a) only ever requests ladder levels,
/// (b) completes its search into a hold, and (c) the search samples at
/// most the Fig. 8 table capacity.
#[test]
fn pbs_is_well_formed_on_any_landscape() {
    let mut rng = SplitMix64::new(0x9B5_0001);
    let objectives = [EbObjective::Ws, EbObjective::Fi, EbObjective::Hs];
    for _ in 0..24 {
        let table_seed = rng.next_below(10_000);
        let objective = objectives[rng.next_below(3) as usize];
        let mut pbs = Pbs::new(objective, TlpLevel::MAX, PbsScaling::None).with_hold_windows(100);
        let hist = drive_with_table(&mut pbs, table_seed, 80);
        for levels in &hist {
            for l in levels {
                assert!(l.ladder_index().is_some(), "off-ladder level {l}");
            }
        }
        assert!(pbs.samples_last_search() > 0, "search never completed");
        assert!(
            pbs.samples_last_search() <= 16,
            "search used {} samples (> Fig. 8 table)",
            pbs.samples_last_search()
        );
        // The tail of the run is a hold: settings stable.
        let tail = &hist[hist.len() - 10..];
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "no stable hold at the end"
        );
    }
}

/// The held combination is the best one the search sampled (the §V-E
/// "simple search over the samples collected").
#[test]
fn pbs_holds_its_best_sample() {
    let mut rng = SplitMix64::new(0x9B5_0002);
    for _ in 0..24 {
        let table_seed = rng.next_below(10_000);
        let eb_of = |app: usize, levels: &[TlpLevel]| -> f64 {
            let mut h = gpu_types::SplitMix64::new(
                table_seed
                    ^ ((app as u64) << 32)
                    ^ levels
                        .iter()
                        .enumerate()
                        .fold(0u64, |acc, (i, l)| acc ^ ((l.get() as u64) << (8 * i))),
            );
            0.05 + h.next_f64() * 2.0
        };
        let mut pbs =
            Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None).with_hold_windows(100);
        let hist = drive_with_table(&mut pbs, table_seed, 80);
        let held = hist.last().expect("non-empty");
        let held_ws = eb_of(0, held) + eb_of(1, held);
        // Every *measured* (post-settle) combination in the history must
        // score no better than the held one.
        for pair in hist.windows(2) {
            if pair[0] == pair[1] {
                let ws = eb_of(0, &pair[0]) + eb_of(1, &pair[0]);
                assert!(
                    ws <= held_ws + 1e-9,
                    "sampled {:?} scores {ws:.3} > held {held_ws:.3}",
                    pair[0]
                );
            }
        }
    }
}

/// Scaling factors never flip the sign of the FI comparison between two
/// proportionally scaled EB vectors.
#[test]
fn scaling_preserves_proportional_fairness() {
    let mut rng = SplitMix64::new(0x9B5_0003);
    for _ in 0..256 {
        let f1 = 0.1 + rng.next_f64() * 9.9;
        let f2 = 0.1 + rng.next_f64() * 9.9;
        let share = 0.05 + rng.next_f64() * 0.95;
        let s = ScalingFactors::from_alone_ebs(vec![f1, f2]);
        // Both apps attain the same fraction of their alone EB: perfectly
        // fair after scaling.
        let scaled = s.apply(&[f1 * share, f2 * share]);
        assert!((scaled[0] - scaled[1]).abs() < 1e-9);
        let fi = gpu_sim::metrics::fi_of(&scaled);
        assert!((fi - 1.0).abs() < 1e-9);
    }
}
