//! Pins the core cache contract: a memoized result — from the in-memory
//! tier or decoded back from disk — is bit-identical to a fresh,
//! cache-disabled simulation.
//!
//! This binary mutates the process-global cache configuration, so every
//! test funnels through one mutex-guarded helper and restores the default
//! (enabled, no directory) on the way out. It deliberately lives apart
//! from `parallel_determinism.rs`, which pins the opposite regime
//! (cache off, parallel path exercised).

use ebm_core::eval::{Evaluator, EvaluatorConfig, Scheme};
use ebm_core::metrics::EbObjective;
use ebm_core::sweep::ComboSweep;
use gpu_sim::harness::RunSpec;
use gpu_types::GpuConfig;
use gpu_workloads::Workload;
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes tests that flip the global cache switches. Each test body
/// takes this for its full duration (including its cache-disabled
/// ground-truth run), so one test's "fresh" simulation can never be served
/// by a cache another test just enabled.
static CACHE_CONFIG: Mutex<()> = Mutex::new(());

fn with_cache_dir<R>(tag: &str, f: impl FnOnce(&PathBuf) -> R) -> R {
    let dir = std::env::temp_dir().join(format!("ebm_cache_equiv_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    gpu_sim::cache::set_enabled(true);
    gpu_sim::cache::set_dir(Some(dir.clone()));
    gpu_sim::cache::clear_memory();
    let out = f(&dir);
    gpu_sim::cache::set_dir(None);
    gpu_sim::cache::clear_memory();
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn assert_sweeps_identical(a: &ComboSweep, b: &ComboSweep, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: combo count diverged");
    for (combo, samples) in a.iter() {
        let other = b
            .get(combo)
            .unwrap_or_else(|| panic!("{what}: missing {combo}"));
        assert_eq!(
            samples.len(),
            other.len(),
            "{what}: window count at {combo}"
        );
        for (s, o) in samples.iter().zip(other) {
            // Bit-level equality: decoded f64s must round-trip exactly.
            assert_eq!(s.ipc.to_bits(), o.ipc.to_bits(), "{what}: ipc at {combo}");
            assert_eq!(s.bw.to_bits(), o.bw.to_bits(), "{what}: bw at {combo}");
            assert_eq!(s.cmr.to_bits(), o.cmr.to_bits(), "{what}: cmr at {combo}");
            assert_eq!(s.eb.to_bits(), o.eb.to_bits(), "{what}: eb at {combo}");
        }
    }
}

#[test]
fn cached_sweep_is_bit_identical_to_fresh() {
    let _guard = CACHE_CONFIG.lock().unwrap();
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let spec = RunSpec::new(300, 1_000);

    // Ground truth with the cache fully disabled.
    gpu_sim::cache::set_enabled(false);
    let fresh = ComboSweep::measure(&cfg, &w, 42, spec);

    with_cache_dir("sweep", |dir| {
        // Cold: simulates and stores.
        let cold = ComboSweep::measure(&cfg, &w, 42, spec);
        assert_sweeps_identical(&fresh, &cold, "cold vs fresh");

        // Memory-tier hit.
        let warm = ComboSweep::measure(&cfg, &w, 42, spec);
        assert_sweeps_identical(&fresh, &warm, "memory hit vs fresh");

        // Disk-tier hit: drop the memory tier, decode from the record file.
        gpu_sim::cache::clear_memory();
        assert!(
            dir.read_dir().unwrap().next().is_some(),
            "no records on disk"
        );
        let before = gpu_sim::cache::stats();
        let disk = ComboSweep::measure(&cfg, &w, 42, spec);
        let after = gpu_sim::cache::stats();
        assert!(
            after.disk_hits > before.disk_hits,
            "expected the sweep to be served from disk"
        );
        assert_sweeps_identical(&fresh, &disk, "disk hit vs fresh");
    });
}

#[test]
fn cached_scheme_results_are_bit_identical_to_fresh() {
    let _guard = CACHE_CONFIG.lock().unwrap();
    let w = Workload::pair("BLK", "BFS");
    let schemes = [Scheme::BestTlp, Scheme::Pbs(EbObjective::Ws), Scheme::OptIt];

    gpu_sim::cache::set_enabled(false);
    let fresh_ev = Evaluator::new(EvaluatorConfig::quick());
    let fresh: Vec<_> = schemes.iter().map(|s| fresh_ev.evaluate(&w, *s)).collect();

    with_cache_dir("scheme", |_dir| {
        let cold_ev = Evaluator::new(EvaluatorConfig::quick());
        let cold: Vec<_> = schemes.iter().map(|s| cold_ev.evaluate(&w, *s)).collect();

        // Disk-tier round trip in a brand-new evaluator: both the
        // evaluator-local memo and the global memory tier are empty, so
        // each result is decoded from its on-disk record.
        gpu_sim::cache::clear_memory();
        let disk_ev = Evaluator::new(EvaluatorConfig::quick());
        let disk: Vec<_> = schemes.iter().map(|s| disk_ev.evaluate(&w, *s)).collect();

        for ((f, c), d) in fresh.iter().zip(&cold).zip(&disk) {
            for r in [c, d] {
                assert_eq!(f.scheme, r.scheme);
                assert_eq!(f.metrics.sds, r.metrics.sds, "{}: sds", f.scheme);
                assert_eq!(
                    f.metrics.ws.to_bits(),
                    r.metrics.ws.to_bits(),
                    "{}: ws",
                    f.scheme
                );
                assert_eq!(
                    f.metrics.fi.to_bits(),
                    r.metrics.fi.to_bits(),
                    "{}: fi",
                    f.scheme
                );
                assert_eq!(
                    f.metrics.hs.to_bits(),
                    r.metrics.hs.to_bits(),
                    "{}: hs",
                    f.scheme
                );
                assert_eq!(f.combo, r.combo, "{}: combo", f.scheme);
                assert_eq!(f.tlp_trace, r.tlp_trace, "{}: tlp trace", f.scheme);
                assert_eq!(f.windows, r.windows, "{}: windows", f.scheme);
            }
        }
    });
}

#[test]
fn verify_mode_checks_hits_and_changes_nothing() {
    let _guard = CACHE_CONFIG.lock().unwrap();
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let spec = RunSpec::new(300, 1_000);

    gpu_sim::cache::set_enabled(false);
    let fresh = ComboSweep::measure(&cfg, &w, 42, spec);

    with_cache_dir("verify", |_dir| {
        // Verify every hit: each one re-simulates and asserts bit equality
        // internally; a divergence would panic the test.
        gpu_sim::cache::set_verify_fraction(1.0);
        let _cold = ComboSweep::measure(&cfg, &w, 42, spec);
        let before = gpu_sim::cache::stats();
        let warm = ComboSweep::measure(&cfg, &w, 42, spec);
        let after = gpu_sim::cache::stats();
        gpu_sim::cache::set_verify_fraction(0.0);
        assert!(after.verified > before.verified, "verify mode never fired");
        assert_sweeps_identical(&fresh, &warm, "verified hit vs fresh");
    });
}
