//! Developer utility: compare sweep-window metrics against long-run metrics
//! for selected combos (sweep fidelity check).

use gpu_sim::harness::{measure_fixed, RunSpec};
use gpu_sim::machine::Gpu;
use gpu_types::{GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::Workload;

fn main() {
    let cfg = GpuConfig::paper();
    let w = Workload::pair("DS", "TRD");
    let combos = [(24u32, 24u32), (8, 24), (2, 24), (1, 8), (2, 8), (4, 12)];
    println!(
        "{:>8} {:>22} {:>22}",
        "combo", "sweep(3k+15k)", "long(3k+300k)"
    );
    for (a, b) in combos {
        let combo = TlpCombo::pair(TlpLevel::new(a).unwrap(), TlpLevel::new(b).unwrap());
        let mut g1 = Gpu::new(&cfg, w.apps(), 42);
        let s = measure_fixed(&mut g1, &combo, RunSpec::new(3_000, 15_000));
        let mut g2 = Gpu::new(&cfg, w.apps(), 42);
        let l = measure_fixed(&mut g2, &combo, RunSpec::new(3_000, 300_000));
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            combo.to_string(),
            s[0].ipc(),
            s[1].ipc(),
            l[0].ipc(),
            l[1].ipc()
        );
    }
}
