//! Developer utility: per-window IPC evolution at a fixed combo, to see how
//! long cache/queue equilibria take to settle.

use gpu_sim::machine::Gpu;
use gpu_types::{AppId, GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::Workload;

fn main() {
    let cfg = GpuConfig::paper();
    let w = Workload::pair("DS", "TRD");
    let combo = TlpCombo::pair(TlpLevel::new(2).unwrap(), TlpLevel::new(24).unwrap());
    let mut gpu = Gpu::new(&cfg, w.apps(), 42);
    gpu.set_combo(&combo);
    let mut prev = [0u64; 2];
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}",
        "cycle", "ipc-DS", "ipc-TRD", "l2mr-DS", "bw-DS"
    );
    let mut prev_l2 = (0u64, 0u64, 0u64);
    for k in 1..=20 {
        gpu.run(20_000);
        let c0 = gpu.counters(AppId::new(0));
        let c1 = gpu.counters(AppId::new(1));
        let l2a = c0.l2_accesses - prev_l2.0;
        let l2m = c0.l2_misses - prev_l2.1;
        let bytes = c0.dram_bytes - prev_l2.2;
        println!(
            "{:>8} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            k * 20_000,
            (c0.warp_insts - prev[0]) as f64 / 20_000.0,
            (c1.warp_insts - prev[1]) as f64 / 20_000.0,
            l2m as f64 / l2a.max(1) as f64,
            bytes as f64 / (20_000.0 * 192.0),
        );
        prev = [c0.warp_insts, c1.warp_insts];
        prev_l2 = (c0.l2_accesses, c0.l2_misses, c0.dram_bytes);
    }
}
