//! Developer utility: prints the full WS surface of a workload over the
//! 64-combination grid, plus where ++bestTLP and the oracles land
//! (`cargo run -p ebm-core --example surface --release -- BLK BFS`).

use ebm_core::sweep::ComboSweep;
use ebm_core::{Evaluator, EvaluatorConfig};
use gpu_sim::harness::RunSpec;
use gpu_sim::metrics::{fi_of, ws_of};
use gpu_types::{GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (a, b) = if args.len() > 2 {
        (args[1].as_str(), args[2].as_str())
    } else {
        ("BLK", "BFS")
    };
    let w = Workload::pair(a, b);
    let cfg = GpuConfig::paper();
    let ev = Evaluator::new(EvaluatorConfig::paper());
    let alone = ev.alone_ipcs(&w);
    let best = ev.best_tlp_combo(&w);
    println!("workload {w}: alone ipcs {alone:?}, ++bestTLP = {best}");
    let sweep = ComboSweep::measure(&cfg, &w, 42, RunSpec::new(2_000, 8_000));
    println!("{:>4} | WS rows=TLP-{a} cols=TLP-{b}", "");
    let levels = sweep.levels();
    print!("{:>5}", "");
    for l in &levels {
        print!(" {:>6}", l.get());
    }
    println!();
    let mut best_ws = (TlpCombo::uniform(TlpLevel::MIN, 2), 0.0f64);
    let mut best_fi = best_ws.clone();
    for l0 in &levels {
        print!("{:>5}", l0.get());
        for l1 in &levels {
            let c = TlpCombo::pair(*l0, *l1);
            let ipcs = sweep.ipcs(&c);
            let sds: Vec<f64> = ipcs.iter().zip(&alone).map(|(i, a)| i / a).collect();
            let ws = ws_of(&sds);
            let fi = fi_of(&sds);
            if ws > best_ws.1 {
                best_ws = (c.clone(), ws);
            }
            if fi > best_fi.1 {
                best_fi = (c.clone(), fi);
            }
            print!(" {:>6.3}", ws);
        }
        println!();
    }
    let base_sds: Vec<f64> = sweep
        .ipcs(&best)
        .iter()
        .zip(&alone)
        .map(|(i, a)| i / a)
        .collect();
    println!(
        "++bestTLP WS={:.3} FI={:.3}",
        ws_of(&base_sds),
        fi_of(&base_sds)
    );
    println!(
        "optWS {} = {:.3}  (+{:.1}%)",
        best_ws.0,
        best_ws.1,
        100.0 * (best_ws.1 / ws_of(&base_sds) - 1.0)
    );
    println!("optFI {} = {:.3}", best_fi.0, best_fi.1);
}
