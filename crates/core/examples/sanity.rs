//! Developer utility: quick scheme comparison on three canonical workloads
//! (`cargo run -p ebm-core --example sanity --release`). The polished
//! user-facing version is the workspace-root `scheme_shootout` example.

use ebm_core::{EbObjective, Evaluator, EvaluatorConfig, Scheme};
use gpu_workloads::Workload;

fn main() {
    let e = Evaluator::new(EvaluatorConfig::paper());
    for wname in [("BFS", "FFT"), ("BLK", "TRD"), ("BLK", "BFS")] {
        let w = Workload::pair(wname.0, wname.1);
        println!("== {}", w.name());
        let base = e.evaluate(&w, Scheme::BestTlp);
        for s in [
            Scheme::BestTlp,
            Scheme::MaxTlp,
            Scheme::DynCta,
            Scheme::ModBypass,
            Scheme::Pbs(EbObjective::Ws),
            Scheme::PbsOffline(EbObjective::Ws),
            Scheme::BruteForce(EbObjective::Ws),
            Scheme::Opt(EbObjective::Ws),
            Scheme::Pbs(EbObjective::Fi),
            Scheme::Opt(EbObjective::Fi),
        ] {
            let t0 = std::time::Instant::now();
            let r = e.evaluate(&w, s);
            println!(
                "  {:<18} WS={:.3} ({:+5.1}%)  FI={:.3}  HS={:.3}  combo={}  [{:?}]",
                s.to_string(),
                r.metrics.ws,
                100.0 * (r.metrics.ws / base.metrics.ws - 1.0),
                r.metrics.fi,
                r.metrics.hs,
                r.combo
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| format!("dyn({} changes)", r.tlp_trace.len())),
                t0.elapsed()
            );
        }
    }
}
