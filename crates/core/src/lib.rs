//! Effective-bandwidth-based TLP management for multi-programmed GPUs —
//! the primary contribution of *"Efficient and Fair Multi-programming in
//! GPUs via Effective Bandwidth Management"* (HPCA 2018).
//!
//! The crate provides, on top of the `gpu-sim` machine:
//!
//! * [`metrics`] — the EB-based runtime metrics of Table III (EB-WS, EB-FI,
//!   EB-HS) and the alone-ratio analysis of §IV (Fig. 5);
//! * [`scaling`] — the EB scaling factors that align EB-FI with SD-FI
//!   (§IV): user-supplied group averages, runtime sampling, or exact alone
//!   values;
//! * [`sweep`] — exhaustive 64-combination profiling (the substrate of the
//!   `opt*` oracles, the `BF-*` brute-force schemes and the offline PBS
//!   variants, and of Figs. 6 and 7);
//! * [`pattern`] — inflection-point ("pattern") analysis and the
//!   pattern-based search rules of §V applied to an offline table;
//! * [`policy`] — runtime controllers: **PBS-WS / PBS-FI / PBS-HS** (§V),
//!   plus the DynCTA and Mod+Bypass prior-art baselines;
//! * [`pbsrun`] — memoized end-to-end PBS runs (the ablation, phased,
//!   sampling-mode and three-application experiments), fingerprinted for
//!   the campaign scheduler;
//! * [`search`] — the opt/BF offline searches;
//! * [`eval`] — a memoizing evaluation driver that runs any [`eval::Scheme`]
//!   on any workload and reports SD-based system metrics (the engine behind
//!   Figs. 9 and 10);
//! * [`hw`] — the Fig. 8 hardware-overhead accounting.

#![deny(missing_docs)]

pub mod eval;
pub mod hw;
pub mod metrics;
pub mod pattern;
pub mod pbsrun;
pub mod policy;
pub mod scaling;
pub mod search;
pub mod store;
pub mod sweep;

pub use eval::{Evaluator, EvaluatorConfig, Scheme, SchemeResult};
pub use metrics::{alone_ratio, EbObjective};
pub use pattern::{critical_app, knee_of, pbs_offline_search, probe_level, SweepCurve};
pub use pbsrun::{run_pbs_cached, PbsRun, PbsRunSpec};
pub use policy::{DynCta, ModBypass, Pbs};
pub use scaling::ScalingFactors;
pub use store::ResultStore;
pub use sweep::{ComboSample, ComboSweep};
