//! EB-based runtime metrics and the alone-ratio analysis of §IV.

use gpu_sim::metrics::{fi_of, hs_of, ws_of};
use std::fmt;

/// Which EB-based system metric a search or controller optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EbObjective {
    /// Maximize `EB-WS = Σ EB_i` — proxy for system throughput (PBS-WS).
    Ws,
    /// Maximize `EB-FI = min EB_i / max EB_i` — proxy for fairness (PBS-FI).
    Fi,
    /// Maximize `EB-HS = n / Σ 1/EB_i` — proxy for the balanced
    /// throughput+fairness metric (PBS-HS).
    Hs,
}

impl EbObjective {
    /// Evaluates the objective on (possibly scaled) per-application EBs.
    ///
    /// # Panics
    ///
    /// Panics if `ebs` is empty.
    pub fn value(self, ebs: &[f64]) -> f64 {
        match self {
            EbObjective::Ws => ws_of(ebs),
            EbObjective::Fi => fi_of(ebs),
            EbObjective::Hs => hs_of(ebs),
        }
    }

    /// Whether this objective needs EB scaling factors to correlate with its
    /// SD-based counterpart (§IV: WS tolerates unscaled EB; FI and HS use
    /// scaling to suppress the `EB_AR` bias).
    pub fn wants_scaling(self) -> bool {
        !matches!(self, EbObjective::Ws)
    }

    /// All three objectives.
    pub fn all() -> [EbObjective; 3] {
        [EbObjective::Ws, EbObjective::Fi, EbObjective::Hs]
    }
}

impl fmt::Display for EbObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EbObjective::Ws => write!(f, "WS"),
            EbObjective::Fi => write!(f, "FI"),
            EbObjective::Hs => write!(f, "HS"),
        }
    }
}

/// The alone-ratio `max(m1/m2, m2/m1)` of two applications' alone-run
/// metrics (Fig. 5 compares `IPC_AR` against `EB_AR`): the bias a sum-based
/// system metric inherits toward one application. Lower is better; §IV
/// chooses EB over IPC because `EB_AR ≪ IPC_AR` on average.
///
/// # Panics
///
/// Panics unless both values are positive.
pub fn alone_ratio(m1: f64, m2: f64) -> f64 {
    assert!(m1 > 0.0 && m2 > 0.0, "alone metrics must be positive");
    (m1 / m2).max(m2 / m1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_is_sum_of_ebs() {
        assert!((EbObjective::Ws.value(&[0.8, 1.2]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fi_is_balance() {
        assert!((EbObjective::Fi.value(&[0.5, 1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(EbObjective::Fi.value(&[0.7, 0.7]), 1.0);
    }

    #[test]
    fn hs_penalizes_imbalance_more_than_ws() {
        let balanced = EbObjective::Hs.value(&[1.0, 1.0]);
        let skewed = EbObjective::Hs.value(&[1.9, 0.1]);
        assert!(balanced > skewed, "HS must prefer balance at equal sum");
        // WS is indifferent.
        assert!(
            (EbObjective::Ws.value(&[1.0, 1.0]) - EbObjective::Ws.value(&[1.9, 0.1])).abs() < 1e-12
        );
    }

    #[test]
    fn scaling_requirements_follow_the_paper() {
        assert!(!EbObjective::Ws.wants_scaling());
        assert!(EbObjective::Fi.wants_scaling());
        assert!(EbObjective::Hs.wants_scaling());
    }

    #[test]
    fn alone_ratio_is_symmetric_and_ge_one() {
        assert!((alone_ratio(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((alone_ratio(1.0, 2.0) - 2.0).abs() < 1e-12);
        assert_eq!(alone_ratio(3.0, 3.0), 1.0);
    }

    #[test]
    fn objective_display() {
        assert_eq!(EbObjective::Ws.to_string(), "WS");
        assert_eq!(EbObjective::all().len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn alone_ratio_rejects_zero() {
        let _ = alone_ratio(0.0, 1.0);
    }
}
