//! Memoized PBS controller runs.
//!
//! Several figures end in the same shape of experiment: build a machine,
//! install a [`Pbs`] controller with some knob settings, run it for a fixed
//! span, and read the overall windows. [`run_pbs_cached`] memoizes that
//! whole experiment through [`gpu_sim::cache`] under a `"pbsrun"`
//! fingerprint of the machine inputs, the starting combination, the run
//! span, and a declarative [`PbsRunSpec`] of the controller knobs — so the
//! ablation grid, the phased online runs, the sampling-mode comparison and
//! the three-application workloads each re-simulate once per cache
//! lifetime, and the campaign planner can name every one of these units up
//! front.
//!
//! Fig. 11 keeps its inline [`run_controlled_traced`] call: a traced run
//! streams events to a sink and is not a pure function of the inputs above.
//!
//! [`run_controlled_traced`]: gpu_sim::harness::run_controlled_traced

use crate::metrics::EbObjective;
use crate::policy::pbs::{Pbs, PbsScaling};
use gpu_sim::cache;
use gpu_sim::control::Controller;
use gpu_sim::harness::{run_controlled, FixedRunInputs};
use gpu_types::canon::{Canon, CanonBuf, CanonReader};
use gpu_types::{AppWindow, Fingerprint, TlpCombo, TlpLevel};

/// Declarative description of a [`Pbs`] controller build: everything the
/// builder chain can set, as data, so it can feed a cache fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbsRunSpec {
    /// Objective the search optimizes.
    pub objective: EbObjective,
    /// `true` selects [`PbsScaling::Sampled`], `false` raw EBs
    /// ([`PbsScaling::None`]). Fixed factors are not cacheable here — they
    /// depend on a campaign-global table, not on the run inputs.
    pub scaling_sampled: bool,
    /// Windows to hold a committed combination before re-searching.
    pub hold_windows: u64,
    /// Ablation override of the probe level (`None` = the paper's 4).
    pub probe: Option<TlpLevel>,
    /// Keep the settle window after each TLP change (paper: `true`).
    pub settle: bool,
    /// Pick the final combination from the sampling table (paper: `true`).
    pub table_pick: bool,
}

impl PbsRunSpec {
    /// The paper configuration: raw EBs, all design choices on.
    pub fn paper(objective: EbObjective, hold_windows: u64) -> Self {
        PbsRunSpec {
            objective,
            scaling_sampled: false,
            hold_windows,
            probe: None,
            settle: true,
            table_pick: true,
        }
    }

    /// Builds the controller this spec describes for a machine whose
    /// realizable maximum TLP is `max_level`.
    pub fn build(&self, max_level: TlpLevel) -> Pbs {
        let scaling = if self.scaling_sampled {
            PbsScaling::Sampled
        } else {
            PbsScaling::None
        };
        let mut pbs =
            Pbs::new(self.objective, max_level, scaling).with_hold_windows(self.hold_windows);
        if let Some(level) = self.probe {
            pbs = pbs.with_probe(level);
        }
        if !self.settle {
            pbs = pbs.without_settle();
        }
        if !self.table_pick {
            pbs = pbs.without_table_pick();
        }
        pbs
    }
}

impl Canon for PbsRunSpec {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push(&self.objective);
        buf.push_bool(self.scaling_sampled);
        buf.push_u64(self.hold_windows);
        match self.probe {
            None => buf.push_bool(false),
            Some(level) => {
                buf.push_bool(true);
                buf.push(&level);
            }
        }
        buf.push_bool(self.settle);
        buf.push_bool(self.table_pick);
    }
}

/// The cacheable slice of a [`gpu_sim::harness::ControlledRun`]: the
/// per-window series is dropped (it is large and only traced figures read
/// it; those stay uncached).
#[derive(Debug, Clone, PartialEq)]
pub struct PbsRun {
    /// One overall window per application over the measured region.
    pub overall: Vec<AppWindow>,
    /// Every TLP change the controller made, including the initial setting.
    pub tlp_trace: Vec<(u64, Vec<TlpLevel>)>,
    /// Number of sampling windows the controller observed.
    pub n_windows: u64,
}

/// Cache key of [`run_pbs_cached`] — public so a campaign planner can name
/// the unit without running it.
pub fn pbsrun_fingerprint(
    inputs: &FixedRunInputs<'_>,
    start: &TlpCombo,
    run_cycles: u64,
    measure_from: u64,
    spec: &PbsRunSpec,
) -> Fingerprint {
    let mut key = cache::KeyBuilder::new("pbsrun");
    inputs.push_key(&mut key);
    key.push(start);
    key.push_u64(run_cycles);
    key.push_u64(measure_from);
    key.push(spec);
    key.finish()
}

fn encode_run(run: &PbsRun) -> Vec<u8> {
    let mut buf = CanonBuf::new();
    buf.push_usize(run.overall.len());
    for w in &run.overall {
        cache::push_window(&mut buf, w);
    }
    buf.push_usize(run.tlp_trace.len());
    for (cycle, levels) in &run.tlp_trace {
        buf.push_u64(*cycle);
        buf.push_usize(levels.len());
        for l in levels {
            buf.push_u32(l.get());
        }
    }
    buf.push_u64(run.n_windows);
    buf.into_bytes()
}

fn decode_run(bytes: &[u8]) -> Option<PbsRun> {
    let mut r = CanonReader::new(bytes);
    let n = r.read_usize()?;
    let mut overall = Vec::with_capacity(n);
    for _ in 0..n {
        overall.push(cache::read_window(&mut r)?);
    }
    let n = r.read_usize()?;
    let mut tlp_trace = Vec::with_capacity(n);
    for _ in 0..n {
        let cycle = r.read_u64()?;
        let k = r.read_usize()?;
        let mut levels = Vec::with_capacity(k);
        for _ in 0..k {
            levels.push(TlpLevel::new(r.read_u32()?)?);
        }
        tlp_trace.push((cycle, levels));
    }
    let n_windows = r.read_u64()?;
    r.is_empty().then_some(PbsRun {
        overall,
        tlp_trace,
        n_windows,
    })
}

/// Builds the machine described by `inputs`, applies `start`, and runs the
/// [`Pbs`] controller described by `spec` for `run_cycles` (measuring from
/// `measure_from`). Memoized under [`pbsrun_fingerprint`]; bit-identical to
/// the equivalent inline [`run_controlled`] call.
pub fn run_pbs_cached(
    inputs: &FixedRunInputs<'_>,
    start: &TlpCombo,
    run_cycles: u64,
    measure_from: u64,
    spec: &PbsRunSpec,
) -> PbsRun {
    let fp = pbsrun_fingerprint(inputs, start, run_cycles, measure_from, spec);
    cache::memoize(fp, encode_run, decode_run, || {
        let mut pbs = spec.build(inputs.cfg.max_tlp());
        let mut gpu = inputs.build();
        gpu.set_combo(start);
        let run = run_controlled(
            &mut gpu,
            &mut pbs as &mut dyn Controller,
            run_cycles,
            measure_from,
        );
        PbsRun {
            overall: run.overall,
            tlp_trace: run.tlp_trace,
            n_windows: run.n_windows,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::GpuConfig;
    use gpu_workloads::by_name;

    #[test]
    fn spec_round_trips_through_canon_distinctly() {
        let paper = PbsRunSpec::paper(EbObjective::Ws, 8);
        let variants = [
            paper,
            PbsRunSpec {
                probe: Some(TlpLevel::MAX),
                ..paper
            },
            PbsRunSpec {
                settle: false,
                ..paper
            },
            PbsRunSpec {
                table_pick: false,
                ..paper
            },
            PbsRunSpec {
                scaling_sampled: true,
                ..paper
            },
            PbsRunSpec {
                hold_windows: 9,
                ..paper
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for v in &variants {
            let mut buf = CanonBuf::new();
            buf.push(v);
            assert!(seen.insert(buf.into_bytes()), "canon collision for {v:?}");
        }
    }

    #[test]
    fn cached_run_matches_inline_run() {
        let cfg = GpuConfig::small();
        let apps = [by_name("BLK").unwrap(), by_name("BFS").unwrap()];
        let inputs = FixedRunInputs {
            cfg: &cfg,
            apps: &apps,
            core_split: None,
            seed: 7,
            ccws: false,
        };
        let start = TlpCombo::uniform(cfg.max_tlp(), 2);
        let spec = PbsRunSpec::paper(EbObjective::Ws, 4);
        let cached = run_pbs_cached(&inputs, &start, 20_000, 1_000, &spec);

        let mut pbs = spec.build(cfg.max_tlp());
        let mut gpu = inputs.build();
        gpu.set_combo(&start);
        let inline = run_controlled(&mut gpu, &mut pbs as &mut dyn Controller, 20_000, 1_000);
        assert_eq!(cached.overall.len(), inline.overall.len());
        for (c, i) in cached.overall.iter().zip(&inline.overall) {
            assert_eq!(c.counters, i.counters);
            assert_eq!(c.cycles, i.cycles);
        }
        assert_eq!(cached.tlp_trace, inline.tlp_trace);
        assert_eq!(cached.n_windows, inline.n_windows);

        // And the encode/decode pair is lossless.
        let decoded = decode_run(&encode_run(&cached)).expect("round trip");
        assert_eq!(decoded, cached);
    }
}
