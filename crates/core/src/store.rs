//! Concurrency-safe shared result store behind the [`Evaluator`] views.
//!
//! A campaign used to thread one `&mut Evaluator` through every figure,
//! which serialized the whole evaluation. The caches an evaluation reads —
//! alone profiles, combination sweeps, scheme results, Table IV group
//! averages — are all append-only memo tables of deterministic values, so
//! they are held here behind **sharded interior mutability**: any number of
//! threads (campaign-scheduler workers, figure renderers) share one
//! [`ResultStore`] through cheap [`Evaluator`] views and fill it
//! concurrently.
//!
//! Locks are held only for lookups and inserts, never across a simulation:
//! the store's crate-private `ShardedMap::get_or_insert_with` computes
//! outside the lock and lets
//! the first finished value win. Duplicate concurrent computes of one key
//! are prevented one layer down, by the single-flight memory tier of
//! [`gpu_sim::cache`] — the store's job is sharing, not deduplication.
//!
//! [`Evaluator`]: crate::eval::Evaluator

use crate::eval::{EvaluatorConfig, Scheme, SchemeResult};
use crate::sweep::ComboSweep;
use gpu_sim::alone::AloneProfile;
use gpu_types::{FxHashMap, FxHasher};
use gpu_workloads::EbGroup;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of independently locked shards per map. Sixteen keeps lock
/// contention negligible at campaign-scheduler worker counts (≤ host
/// cores) while staying cache-friendly.
const N_SHARDS: usize = 16;

/// A hash map split over [`N_SHARDS`] independently locked shards.
///
/// Values are returned **by clone**: everything stored here is either
/// cheap to clone or cloned far less often than it is simulated.
#[derive(Debug)]
pub(crate) struct ShardedMap<K, V> {
    shards: Vec<Mutex<FxHashMap<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    fn new() -> Self {
        ShardedMap {
            shards: (0..N_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<FxHashMap<K, V>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % N_SHARDS]
    }

    pub(crate) fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    pub(crate) fn contains(&self, key: &K) -> bool {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(key)
    }

    pub(crate) fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, value);
    }

    /// Returns the cached value for `key`, computing and inserting it on a
    /// miss. `compute` runs with **no lock held** (it may simulate for
    /// seconds and recurse into the store); if another thread races the
    /// same key, the first insert wins and both callers observe it —
    /// harmless, because every value is a deterministic function of its
    /// key.
    pub(crate) fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(hit) = self.get(&key) {
            return hit;
        }
        let fresh = compute();
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        shard.entry(key).or_insert(fresh).clone()
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

/// The shared memo tables of one evaluation campaign.
///
/// Create one per campaign (usually implicitly, through
/// [`Evaluator::new`](crate::eval::Evaluator::new)), wrap it in an `Arc`,
/// and hand every thread its own [`Evaluator`](crate::eval::Evaluator)
/// view. All methods take `&self`; see the module docs for the locking
/// discipline.
pub struct ResultStore {
    pub(crate) cfg: EvaluatorConfig,
    /// Alone profiles, keyed by application name (every evaluator-driven
    /// lookup uses the campaign's even core partition, so the name alone
    /// identifies the profile).
    pub(crate) alone: ShardedMap<&'static str, AloneProfile>,
    /// Combination sweeps, keyed by workload name.
    pub(crate) sweeps: ShardedMap<String, ComboSweep>,
    /// Scheme results, keyed by `(workload name, scheme)`.
    pub(crate) results: ShardedMap<(String, Scheme), SchemeResult>,
    /// Table IV group-average alone EBs (one global table per campaign).
    pub(crate) group_avg: Mutex<Option<FxHashMap<EbGroup, f64>>>,
}

impl ResultStore {
    /// An empty store for the given campaign configuration.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid.
    pub fn new(cfg: EvaluatorConfig) -> Self {
        cfg.gpu.validate().expect("invalid machine configuration");
        ResultStore {
            cfg,
            alone: ShardedMap::new(),
            sweeps: ShardedMap::new(),
            results: ShardedMap::new(),
            group_avg: Mutex::new(None),
        }
    }

    /// The campaign configuration the store's contents are keyed under.
    pub fn config(&self) -> &EvaluatorConfig {
        &self.cfg
    }

    /// Number of cached alone profiles.
    pub fn cached_alone(&self) -> usize {
        self.alone.len()
    }

    /// Number of cached combination sweeps.
    pub fn cached_sweeps(&self) -> usize {
        self.sweeps.len()
    }

    /// Number of cached scheme results.
    pub fn cached_results(&self) -> usize {
        self.results.len()
    }
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("cached_alone", &self.cached_alone())
            .field("cached_sweeps", &self.cached_sweeps())
            .field("cached_results", &self.cached_results())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_map_round_trips_and_counts() {
        let m: ShardedMap<u64, String> = ShardedMap::new();
        assert_eq!(m.get(&1), None);
        assert!(!m.contains(&1));
        let v = m.get_or_insert_with(1, || "one".to_string());
        assert_eq!(v, "one");
        assert!(m.contains(&1));
        // A second compute for the same key is ignored: first insert wins.
        let v = m.get_or_insert_with(1, || "other".to_string());
        assert_eq!(v, "one");
        for k in 2..100 {
            m.insert(k, format!("v{k}"));
        }
        assert_eq!(m.len(), 99);
        assert_eq!(m.get(&57).as_deref(), Some("v57"));
    }

    #[test]
    fn sharded_map_is_safe_under_concurrent_fills() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let m = &m;
                scope.spawn(move || {
                    for k in 0..200u64 {
                        let got = m.get_or_insert_with(k, || k * 10);
                        assert_eq!(got, k * 10, "thread {t} saw a foreign value");
                    }
                });
            }
        });
        assert_eq!(m.len(), 200);
    }
}
