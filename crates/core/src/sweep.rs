//! Exhaustive TLP-combination profiling.
//!
//! A [`ComboSweep`] holds one measurement per TLP combination of a
//! workload — 64 entries for two applications. It feeds the `opt*` oracles
//! (best SD metric), the `BF-*` schemes (best EB metric), the offline PBS
//! variants, and the pattern surfaces of Figs. 6 and 7.

use gpu_sim::exec;
use gpu_sim::harness::{measure_fixed, RunSpec};
use gpu_sim::machine::Gpu;
use gpu_types::canon::{CanonBuf, CanonReader};
use gpu_types::{Canon, FxHashMap, FxHashSet, GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::Workload;
use std::collections::BTreeSet;

/// Cache key of [`ComboSweep::measure`] — public so a campaign planner can
/// name the unit without running it.
pub fn sweep_fingerprint(
    cfg: &GpuConfig,
    workload: &Workload,
    seed: u64,
    spec: RunSpec,
) -> gpu_types::Fingerprint {
    let mut key = gpu_sim::cache::KeyBuilder::new("sweep");
    key.push(cfg).push_usize(workload.n_apps());
    for app in workload.apps() {
        key.push(*app);
    }
    key.push_u64(seed).push(&spec);
    key.finish()
}

/// One application's measurements at one TLP combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComboSample {
    /// Warp-instruction IPC under sharing.
    pub ipc: f64,
    /// Attained DRAM bandwidth (normalized to peak).
    pub bw: f64,
    /// Combined miss rate.
    pub cmr: f64,
    /// Effective bandwidth.
    pub eb: f64,
}

/// Exhaustive measurements over the clamped TLP ladder of a workload.
///
/// # Examples
///
/// ```
/// use ebm_core::sweep::ComboSweep;
/// use gpu_sim::harness::RunSpec;
/// use gpu_types::GpuConfig;
/// use gpu_workloads::Workload;
///
/// let cfg = GpuConfig::small(); // 25 combinations on the test machine
/// let sweep = ComboSweep::measure(
///     &cfg,
///     &Workload::pair("BLK", "BFS"),
///     42,
///     RunSpec::new(300, 1_000),
/// );
/// assert_eq!(sweep.len(), 25);
/// ```
#[derive(Debug, Clone)]
pub struct ComboSweep {
    /// Workload name (diagnostics).
    pub workload: String,
    entries: FxHashMap<TlpCombo, Vec<ComboSample>>,
    n_apps: usize,
}

impl ComboSweep {
    /// Runs every ladder combination of `workload` on a fresh machine (same
    /// seed, so combinations differ only in their TLP settings) and records
    /// per-application samples.
    ///
    /// Ladder levels above the machine's realizable maximum collapse into
    /// it, so small test machines sweep fewer combinations.
    ///
    /// Every combination is an independent simulation on a fresh same-seed
    /// machine, so they fan out across [`exec::worker_count`] threads; the
    /// resulting table is identical to a sequential sweep.
    pub fn measure(cfg: &GpuConfig, workload: &Workload, seed: u64, spec: RunSpec) -> Self {
        Self::measure_with_threads(cfg, workload, seed, spec, exec::worker_count())
    }

    /// [`ComboSweep::measure`] with an explicit thread count (1 = fully
    /// sequential).
    ///
    /// The whole sweep is memoized through [`gpu_sim::cache`] under a
    /// fingerprint of `(cfg, apps, seed, spec)`; a hit skips every
    /// combination run and rebuilds the table from the stored samples.
    pub fn measure_with_threads(
        cfg: &GpuConfig,
        workload: &Workload,
        seed: u64,
        spec: RunSpec,
        threads: usize,
    ) -> Self {
        let fp = sweep_fingerprint(cfg, workload, seed, spec);
        let combos = Self::combos(cfg, workload.n_apps());
        gpu_sim::cache::memoize(
            fp,
            |sweep: &ComboSweep| encode_sweep(sweep, &combos),
            |bytes| decode_sweep(bytes, &combos, workload),
            || {
                let measured = exec::par_map_with(threads, combos.clone(), |combo| {
                    let mut gpu = Gpu::new(cfg, workload.apps(), seed);
                    let windows = measure_fixed(&mut gpu, &combo, spec);
                    let samples: Vec<ComboSample> = windows
                        .iter()
                        .map(|w| ComboSample {
                            ipc: w.ipc(),
                            bw: w.attained_bw(),
                            cmr: w.combined_miss_rate(),
                            eb: w.effective_bandwidth(),
                        })
                        .collect();
                    (combo, samples)
                });
                let entries = measured.into_iter().collect();
                ComboSweep {
                    workload: workload.name(),
                    entries,
                    n_apps: workload.n_apps(),
                }
            },
        )
    }

    /// The distinct clamped ladder combinations for `n_apps` applications on
    /// this machine, in first-seen ladder order.
    pub fn combos(cfg: &GpuConfig, n_apps: usize) -> Vec<TlpCombo> {
        let mut seen = FxHashSet::default();
        TlpCombo::all(n_apps)
            .into_iter()
            .map(|combo| TlpCombo::new(combo.levels().iter().map(|&l| cfg.clamp_tlp(l)).collect()))
            .filter(|clamped| seen.insert(clamped.clone()))
            .collect()
    }

    /// Number of co-scheduled applications.
    pub fn n_apps(&self) -> usize {
        self.n_apps
    }

    /// The samples at `combo` (one per application), if measured.
    pub fn get(&self, combo: &TlpCombo) -> Option<&[ComboSample]> {
        self.entries.get(combo).map(Vec::as_slice)
    }

    /// Per-application EBs at `combo`.
    ///
    /// # Panics
    ///
    /// Panics if the combination was not measured (off-ladder).
    pub fn ebs(&self, combo: &TlpCombo) -> Vec<f64> {
        self.entries
            .get(combo)
            .unwrap_or_else(|| panic!("combination {combo} not in sweep"))
            .iter()
            .map(|s| s.eb)
            .collect()
    }

    /// Per-application IPCs at `combo`.
    ///
    /// # Panics
    ///
    /// Panics if the combination was not measured.
    pub fn ipcs(&self, combo: &TlpCombo) -> Vec<f64> {
        self.entries
            .get(combo)
            .unwrap_or_else(|| panic!("combination {combo} not in sweep"))
            .iter()
            .map(|s| s.ipc)
            .collect()
    }

    /// Iterates over all measured combinations.
    pub fn iter(&self) -> impl Iterator<Item = (&TlpCombo, &[ComboSample])> {
        self.entries.iter().map(|(c, s)| (c, s.as_slice()))
    }

    /// Number of measured combinations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no combinations were measured (never happens for a valid
    /// sweep).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ladder levels actually present in the sweep (ascending), across
    /// *all* applications' axes — not just app 0's.
    pub fn levels(&self) -> Vec<TlpLevel> {
        // A BTreeSet already iterates in ascending order; derive the ladder
        // in one pass with no re-sort.
        self.entries
            .keys()
            .flat_map(|c| c.levels().iter().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }
}

/// Serializes a sweep's samples in canonical [`ComboSweep::combos`] order,
/// so the payload is independent of hash-map iteration order.
fn encode_sweep(sweep: &ComboSweep, combos: &[TlpCombo]) -> Vec<u8> {
    let mut buf = CanonBuf::new();
    buf.push_usize(sweep.n_apps);
    buf.push_usize(combos.len());
    for combo in combos {
        combo.canon(&mut buf);
        let samples = sweep.get(combo).expect("sweep covers every combination");
        for s in samples {
            for v in [s.ipc, s.bw, s.cmr, s.eb] {
                buf.push_f64(v);
            }
        }
    }
    buf.into_bytes()
}

fn decode_sweep(bytes: &[u8], combos: &[TlpCombo], workload: &Workload) -> Option<ComboSweep> {
    let mut r = CanonReader::new(bytes);
    let n_apps = r.read_usize()?;
    let n_combos = r.read_usize()?;
    if n_apps != workload.n_apps() || n_combos != combos.len() {
        return None;
    }
    let mut entries = FxHashMap::default();
    for expected in combos {
        let n_levels = r.read_usize()?;
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            levels.push(TlpLevel::new(r.read_u32()?)?);
        }
        if TlpCombo::new(levels) != *expected {
            return None;
        }
        let mut samples = Vec::with_capacity(n_apps);
        for _ in 0..n_apps {
            samples.push(ComboSample {
                ipc: r.read_f64()?,
                bw: r.read_f64()?,
                cmr: r.read_f64()?,
                eb: r.read_f64()?,
            });
        }
        entries.insert(expected.clone(), samples);
    }
    r.is_empty().then(|| ComboSweep {
        workload: workload.name(),
        entries,
        n_apps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> ComboSweep {
        let cfg = GpuConfig::small();
        let w = Workload::pair("BLK", "BFS");
        ComboSweep::measure(&cfg, &w, 3, RunSpec::new(300, 1_500))
    }

    #[test]
    fn paper_machine_has_64_two_app_combos() {
        assert_eq!(ComboSweep::combos(&GpuConfig::paper(), 2).len(), 64);
    }

    #[test]
    fn small_machine_clamps_to_25_combos() {
        // Ladder collapses to {1,2,4,6,8}: 5 x 5.
        assert_eq!(ComboSweep::combos(&GpuConfig::small(), 2).len(), 25);
    }

    #[test]
    fn sweep_measures_every_combo() {
        let s = small_sweep();
        assert_eq!(s.len(), 25);
        assert_eq!(s.n_apps(), 2);
        for (_, samples) in s.iter() {
            assert_eq!(samples.len(), 2);
            assert!(samples.iter().all(|x| x.ipc > 0.0 && x.eb > 0.0));
        }
    }

    #[test]
    fn accessors_agree_with_entries() {
        let s = small_sweep();
        let combo = TlpCombo::pair(TlpLevel::new(2).unwrap(), TlpLevel::new(4).unwrap());
        let ebs = s.ebs(&combo);
        let samples = s.get(&combo).unwrap();
        assert_eq!(ebs, vec![samples[0].eb, samples[1].eb]);
        assert_eq!(s.ipcs(&combo).len(), 2);
    }

    #[test]
    fn levels_are_the_clamped_ladder() {
        let s = small_sweep();
        let ls: Vec<u32> = s.levels().iter().map(|l| l.get()).collect();
        assert_eq!(ls, vec![1, 2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "not in sweep")]
    fn off_ladder_combo_panics() {
        let s = small_sweep();
        let _ = s.ebs(&TlpCombo::pair(
            TlpLevel::new(3).unwrap(),
            TlpLevel::new(3).unwrap(),
        ));
    }
}
