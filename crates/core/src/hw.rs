//! Hardware-overhead accounting for the Fig. 8 sampling organization.
//!
//! §V-E breaks the proposal's cost into storage, computation and
//! communication. The OCR of the paper drops most bit-widths; we
//! reconstruct them conservatively (24-bit event counters saturate far
//! beyond any 10 000-cycle window; the bandwidth-utilization register is
//! 16-bit fixed point) and expose the arithmetic so the `fig08` harness can
//! print the budget.

use gpu_types::{GpuConfig, SamplingConfig};
use std::fmt;

/// Bits per event counter (L1/L2 accesses and misses within one window).
pub const COUNTER_BITS: u64 = 24;
/// Bits of the per-partition attained-bandwidth register.
pub const BW_REG_BITS: u64 = 16;
/// Bits per EB entry in the sampling table (fixed-point EB value).
pub const EB_ENTRY_BITS: u64 = 16;

/// The Fig. 8 overhead budget for a machine/sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Storage bits added per core (designated L1 access + miss counters).
    pub per_core_bits: u64,
    /// Storage bits added per memory partition (per-app L2 access + miss
    /// counters, relayed L1 miss-rate buffer, BW register).
    pub per_partition_bits: u64,
    /// Bytes of the EB sampling table (per core's warp-issue arbiter).
    pub table_bytes: u64,
    /// Bits relayed from the designated partition to the cores per
    /// application per sampling window.
    pub relay_bits_per_app: u64,
    /// Total extra storage over the whole GPU, in bytes.
    pub total_bytes: u64,
    /// Sampling window the costs are paid per (cycles).
    pub window_cycles: u64,
}

impl OverheadReport {
    /// Computes the budget for `n_apps` co-scheduled applications.
    ///
    /// # Panics
    ///
    /// Panics if `n_apps` is zero.
    pub fn for_machine(cfg: &GpuConfig, n_apps: usize) -> Self {
        assert!(n_apps > 0, "need at least one application");
        let s: &SamplingConfig = &cfg.sampling;
        // Two counters per core: its application's L1 accesses and misses.
        let per_core_bits = 2 * COUNTER_BITS;
        // Per partition, per application: L2 access + miss counters, the
        // relayed L1 miss rate, and one shared BW register.
        let per_partition_bits = n_apps as u64 * (2 * COUNTER_BITS + COUNTER_BITS) + BW_REG_BITS;
        // Sampling table: one EB per application per remembered combination.
        let table_bytes = (s.table_entries as u64 * n_apps as u64 * EB_ENTRY_BITS) / 8;
        // Relay: L2 access/miss + BW per application each window.
        let relay_bits_per_app = 2 * COUNTER_BITS + BW_REG_BITS;
        let total_bytes =
            (cfg.n_cores as u64 * per_core_bits + cfg.n_partitions as u64 * per_partition_bits) / 8
                + cfg.n_cores as u64 * table_bytes;
        OverheadReport {
            per_core_bits,
            per_partition_bits,
            table_bytes,
            relay_bits_per_app,
            total_bytes,
            window_cycles: s.window_cycles,
        }
    }

    /// Relay bandwidth in bits per cycle (amortized over the window) —
    /// negligible next to the crossbar's flit bandwidth, which is the §V-E
    /// argument.
    pub fn relay_bits_per_cycle(&self, n_apps: usize) -> f64 {
        (self.relay_bits_per_app * n_apps as u64) as f64 / self.window_cycles as f64
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "per-core storage      : {} bits", self.per_core_bits)?;
        writeln!(
            f,
            "per-partition storage : {} bits",
            self.per_partition_bits
        )?;
        writeln!(f, "sampling table        : {} bytes/core", self.table_bytes)?;
        writeln!(
            f,
            "relay traffic         : {} bits/app/window",
            self.relay_bits_per_app
        )?;
        write!(f, "total extra storage   : {} bytes", self.total_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_tiny() {
        let r = OverheadReport::for_machine(&GpuConfig::paper(), 2);
        // The whole proposal must cost well under a kilobyte of storage per
        // core and a few hundred bytes per partition.
        assert!(r.per_core_bits <= 64);
        assert!(r.per_partition_bits <= 512);
        assert!(r.table_bytes <= 128);
        assert!(r.total_bytes < 4_096, "total {} bytes", r.total_bytes);
    }

    #[test]
    fn relay_bandwidth_is_negligible() {
        let r = OverheadReport::for_machine(&GpuConfig::paper(), 2);
        assert!(
            r.relay_bits_per_cycle(2) < 1.0,
            "must be well under a bit per cycle"
        );
    }

    #[test]
    fn table_scales_with_entries_and_apps() {
        let mut cfg = GpuConfig::paper();
        cfg.sampling.table_entries = 16;
        let two = OverheadReport::for_machine(&cfg, 2);
        let three = OverheadReport::for_machine(&cfg, 3);
        assert!(three.table_bytes > two.table_bytes);
        assert_eq!(two.table_bytes, 16 * 2 * 2); // 16 entries x 2 apps x 2 bytes
    }

    #[test]
    fn display_mentions_every_component() {
        let r = OverheadReport::for_machine(&GpuConfig::paper(), 2);
        let text = r.to_string();
        for needle in ["per-core", "per-partition", "table", "relay", "total"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_apps_panics() {
        let _ = OverheadReport::for_machine(&GpuConfig::paper(), 0);
    }
}
