//! EB scaling factors (§IV).
//!
//! `EB-FI` correlates with SD-based fairness only when each application's
//! EB is normalized by an estimate of its *alone* EB — otherwise the alone
//! ratio `EB_AR` biases the balance toward one application (the BLK_TRD
//! outlier discussed in §IV). Three sources are supported, mirroring the
//! paper:
//!
//! * **group averages** — supplied by the user from Table IV's G1–G4
//!   grouping (each application uses the average alone-EB of its group);
//! * **runtime sampling** — the co-runners are throttled to TLP = 1 so they
//!   induce minimal interference while the application's EB is sampled;
//! * **exact** — the application's measured alone `EB@bestTLP` (used for
//!   the dashed exact-scaling curve of Fig. 7(b)).

use gpu_types::FxHashMap;
use gpu_workloads::EbGroup;

/// Per-application EB divisors. Scaled EB = `EB_i / factor_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingFactors(Vec<f64>);

impl ScalingFactors {
    /// Unit factors (no scaling) for `n_apps` applications.
    pub fn none(n_apps: usize) -> Self {
        ScalingFactors(vec![1.0; n_apps])
    }

    /// Factors from explicit per-application alone-EB estimates.
    ///
    /// # Panics
    ///
    /// Panics if any factor is not positive.
    pub fn from_alone_ebs(ebs: Vec<f64>) -> Self {
        assert!(
            ebs.iter().all(|&e| e > 0.0),
            "scaling factors must be positive"
        );
        ScalingFactors(ebs)
    }

    /// Group-average factors: each application uses the average alone-EB of
    /// its Table IV group.
    ///
    /// # Panics
    ///
    /// Panics if a group is missing from `group_avg` or its average is not
    /// positive.
    pub fn from_groups(groups: &[EbGroup], group_avg: &FxHashMap<EbGroup, f64>) -> Self {
        let ebs = groups
            .iter()
            .map(|g| {
                *group_avg
                    .get(g)
                    .unwrap_or_else(|| panic!("no group average supplied for {g}"))
            })
            .collect();
        Self::from_alone_ebs(ebs)
    }

    /// Number of applications covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no applications are covered (never constructible).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw factors.
    pub fn factors(&self) -> &[f64] {
        &self.0
    }

    /// Scales per-application EBs.
    ///
    /// # Panics
    ///
    /// Panics if `ebs` has a different length than the factors.
    pub fn apply(&self, ebs: &[f64]) -> Vec<f64> {
        assert_eq!(ebs.len(), self.0.len(), "application count mismatch");
        ebs.iter().zip(&self.0).map(|(e, f)| e / f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let s = ScalingFactors::none(2);
        assert_eq!(s.apply(&[0.5, 1.5]), vec![0.5, 1.5]);
    }

    #[test]
    fn factors_divide() {
        let s = ScalingFactors::from_alone_ebs(vec![2.0, 0.5]);
        assert_eq!(s.apply(&[1.0, 1.0]), vec![0.5, 2.0]);
    }

    #[test]
    fn scaling_equalizes_proportional_ebs() {
        // If each app attains half its alone EB, scaled EBs are equal —
        // exactly the fairness signal §IV wants.
        let s = ScalingFactors::from_alone_ebs(vec![1.6, 0.4]);
        let scaled = s.apply(&[0.8, 0.2]);
        assert!((scaled[0] - scaled[1]).abs() < 1e-12);
    }

    #[test]
    fn group_lookup() {
        let mut avg = FxHashMap::default();
        avg.insert(EbGroup::G3, 1.0);
        avg.insert(EbGroup::G4, 1.5);
        let s = ScalingFactors::from_groups(&[EbGroup::G4, EbGroup::G3], &avg);
        assert_eq!(s.factors(), &[1.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "no group average")]
    fn missing_group_panics() {
        let avg = FxHashMap::default();
        let _ = ScalingFactors::from_groups(&[EbGroup::G1], &avg);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_factor_panics() {
        let _ = ScalingFactors::from_alone_ebs(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        ScalingFactors::none(2).apply(&[1.0]);
    }
}
