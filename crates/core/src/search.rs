//! Offline exhaustive searches over a [`ComboSweep`].
//!
//! * `opt*` — the oracle: the combination maximizing the *SD-based* metric
//!   (requires alone IPCs). The paper finds these "by profiling 64 different
//!   combinations of TLP and picking the one that provides the best WS (or
//!   FI)".
//! * `BF-*` — brute force over the *EB-based* metric: an upper bound on
//!   what any EB-driven runtime scheme (PBS included) can reach.

use crate::metrics::EbObjective;
use crate::scaling::ScalingFactors;
use crate::sweep::ComboSweep;
use gpu_types::TlpCombo;

/// The combination maximizing the EB-based `objective` (BF-WS / BF-FI /
/// BF-HS), with the winning objective value.
///
/// # Panics
///
/// Panics if the sweep is empty.
pub fn best_combo_by_eb(
    sweep: &ComboSweep,
    objective: EbObjective,
    scaling: &ScalingFactors,
) -> (TlpCombo, f64) {
    sweep
        .iter()
        .map(|(combo, samples)| {
            let ebs: Vec<f64> = samples.iter().map(|s| s.eb).collect();
            (combo.clone(), objective.value(&scaling.apply(&ebs)))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("sweep must be non-empty")
}

/// The combination maximizing raw instruction throughput (the sum of the
/// applications' IPCs) — §IV Observation 2's foil: "a mechanism that
/// attempts to maximize IT may not be optimal to improve system
/// throughput", because IT inherits the alone-ratio bias of Fig. 5.
///
/// # Panics
///
/// Panics if the sweep is empty.
pub fn best_combo_by_it(sweep: &ComboSweep) -> (TlpCombo, f64) {
    sweep
        .iter()
        .map(|(combo, samples)| (combo.clone(), samples.iter().map(|s| s.ipc).sum::<f64>()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("sweep must be non-empty")
}

/// The combination maximizing the SD-based `objective` (optWS / optFI /
/// optHS), given each application's alone `IPC@bestTLP`, with the winning
/// metric value.
///
/// # Panics
///
/// Panics if the sweep is empty, `alone_ipcs` mismatches the application
/// count, or any alone IPC is not positive.
pub fn best_combo_by_sd(
    sweep: &ComboSweep,
    objective: EbObjective,
    alone_ipcs: &[f64],
) -> (TlpCombo, f64) {
    assert_eq!(
        alone_ipcs.len(),
        sweep.n_apps(),
        "one alone IPC per application"
    );
    assert!(
        alone_ipcs.iter().all(|&i| i > 0.0),
        "alone IPCs must be positive"
    );
    sweep
        .iter()
        .map(|(combo, samples)| {
            let sds: Vec<f64> = samples
                .iter()
                .zip(alone_ipcs)
                .map(|(s, &a)| s.ipc / a)
                .collect();
            (combo.clone(), objective.value(&sds))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("sweep must be non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::pbs_offline_search;
    use gpu_sim::harness::RunSpec;
    use gpu_types::GpuConfig;
    use gpu_workloads::Workload;

    fn sweep() -> ComboSweep {
        ComboSweep::measure(
            &GpuConfig::small(),
            &Workload::pair("BLK", "BFS"),
            3,
            RunSpec::new(300, 1_500),
        )
    }

    #[test]
    fn bf_ws_beats_or_matches_every_combo() {
        let s = sweep();
        let scaling = ScalingFactors::none(2);
        let (_, best) = best_combo_by_eb(&s, EbObjective::Ws, &scaling);
        for (combo, _) in s.iter() {
            let v = EbObjective::Ws.value(&s.ebs(combo));
            assert!(
                v <= best + 1e-12,
                "{combo} has EB-WS {v} > brute-force best {best}"
            );
        }
    }

    #[test]
    fn opt_ws_beats_or_matches_every_combo() {
        let s = sweep();
        let alone = [1.0, 1.0];
        let (_, best) = best_combo_by_sd(&s, EbObjective::Ws, &alone);
        for (combo, _) in s.iter() {
            let v = EbObjective::Ws.value(&s.ipcs(combo));
            assert!(v <= best + 1e-12);
        }
    }

    #[test]
    fn fi_optimum_is_balanced() {
        let s = sweep();
        let scaling = ScalingFactors::none(2);
        let (combo, v) = best_combo_by_eb(&s, EbObjective::Fi, &scaling);
        assert!(
            v > 0.0 && v <= 1.0,
            "FI must be a ratio, got {v} at {combo}"
        );
    }

    #[test]
    fn pbs_offline_needs_fewer_samples_than_brute_force() {
        let s = sweep();
        let scaling = ScalingFactors::none(2);
        let (combo, samples) = pbs_offline_search(&s, EbObjective::Ws, &scaling);
        assert!(
            samples < s.len(),
            "PBS used {samples} samples, exhaustive needs {}",
            s.len()
        );
        // And the found combination must be competitive: within 25% of the
        // brute-force EB-WS on this workload.
        let (_, bf) = best_combo_by_eb(&s, EbObjective::Ws, &scaling);
        let got = EbObjective::Ws.value(&s.ebs(&combo));
        assert!(got >= 0.75 * bf, "PBS found {got:.3}, brute force {bf:.3}");
    }

    #[test]
    fn it_optimum_maximizes_ipc_sum() {
        let s = sweep();
        let (_, best) = best_combo_by_it(&s);
        for (combo, _) in s.iter() {
            let it: f64 = s.ipcs(combo).iter().sum();
            assert!(it <= best + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "one alone IPC")]
    fn mismatched_alone_ipcs_panic() {
        let s = sweep();
        let _ = best_combo_by_sd(&s, EbObjective::Ws, &[1.0]);
    }
}
