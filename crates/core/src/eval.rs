//! Memoizing evaluation driver: run any scheme on any workload, report
//! SD-based system metrics.
//!
//! This is the engine behind Figs. 9 and 10 and the `hs`/`threeapp`
//! harnesses: it caches alone-run profiles (the SD denominators and
//! bestTLP values) and 64-combination sweeps (shared by opt, BF and the
//! offline PBS variants), then executes each scheme end-to-end on a fresh
//! machine.

use crate::metrics::EbObjective;
use crate::pattern::pbs_offline_search;
use crate::policy::pbs::PbsScaling;
use crate::policy::{DynCta, ModBypass, Pbs};
use crate::scaling::ScalingFactors;
use crate::search::{best_combo_by_eb, best_combo_by_sd};
use crate::store::ResultStore;
use crate::sweep::ComboSweep;
use gpu_sim::alone::{profile_alone, AloneProfile};
use gpu_sim::control::Controller;
use gpu_sim::exec;
use gpu_sim::harness::{measure_fixed, run_controlled_traced, RunSpec};
use gpu_sim::machine::Gpu;
use gpu_sim::metrics::SystemMetrics;
use gpu_sim::trace::{NullSink, TraceEvent, TraceSink};
use gpu_types::canon::{Canon, CanonBuf, CanonReader, Fingerprint};
use gpu_types::{AppWindow, FxHashMap, GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::{all_apps, AppProfile, EbGroup, Workload};
use std::fmt;
use std::sync::Arc;

/// All evaluated TLP-management schemes (the bar groups of Figs. 9/10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// `++bestTLP`: each application at its alone best-performing TLP — the
    /// normalization baseline.
    BestTlp,
    /// `++maxTLP`: each application at the maximum TLP.
    MaxTlp,
    /// `++DynCTA`: per-application DynCTA modulation.
    DynCta,
    /// `++CCWS`: per-application cache-conscious warp throttling (the other
    /// prior-art single-application TLP finder the paper names).
    Ccws,
    /// Mod+Bypass: modulation plus L1 bypassing.
    ModBypass,
    /// Online pattern-based searching for the given EB objective.
    Pbs(EbObjective),
    /// PBS's search rules on an offline table, run without overheads.
    PbsOffline(EbObjective),
    /// Brute force over the EB objective (offline, 64 combinations).
    BruteForce(EbObjective),
    /// The SD-based oracle (offline, 64 combinations + alone profiles).
    Opt(EbObjective),
    /// The instruction-throughput oracle: the combination maximizing the
    /// raw sum of IPCs (§IV Observation 2's foil — high IT is not high WS).
    OptIt,
}

impl Canon for EbObjective {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u8(match self {
            EbObjective::Ws => 0,
            EbObjective::Fi => 1,
            EbObjective::Hs => 2,
        });
    }
}

impl Canon for Scheme {
    fn canon(&self, buf: &mut CanonBuf) {
        match self {
            Scheme::BestTlp => buf.push_u8(0),
            Scheme::MaxTlp => buf.push_u8(1),
            Scheme::DynCta => buf.push_u8(2),
            Scheme::Ccws => buf.push_u8(3),
            Scheme::ModBypass => buf.push_u8(4),
            Scheme::Pbs(o) => {
                buf.push_u8(5);
                o.canon(buf);
            }
            Scheme::PbsOffline(o) => {
                buf.push_u8(6);
                o.canon(buf);
            }
            Scheme::BruteForce(o) => {
                buf.push_u8(7);
                o.canon(buf);
            }
            Scheme::Opt(o) => {
                buf.push_u8(8);
                o.canon(buf);
            }
            Scheme::OptIt => buf.push_u8(9),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::BestTlp => write!(f, "++bestTLP"),
            Scheme::MaxTlp => write!(f, "++maxTLP"),
            Scheme::DynCta => write!(f, "++DynCTA"),
            Scheme::Ccws => write!(f, "++CCWS"),
            Scheme::ModBypass => write!(f, "Mod+Bypass"),
            Scheme::Pbs(o) => write!(f, "PBS-{o}"),
            Scheme::PbsOffline(o) => write!(f, "PBS-{o} (Offline)"),
            Scheme::BruteForce(o) => write!(f, "BF-{o}"),
            Scheme::Opt(o) => write!(f, "opt{o}"),
            Scheme::OptIt => write!(f, "optIT"),
        }
    }
}

/// Run-length and measurement parameters of an evaluation campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaluatorConfig {
    /// Machine description.
    pub gpu: GpuConfig,
    /// Seed shared by every run (combinations differ only in settings).
    pub seed: u64,
    /// Warmup/window for alone-run profiling.
    pub alone_spec: RunSpec,
    /// Warmup/window for each entry of a 64-combination sweep.
    pub sweep_spec: RunSpec,
    /// Total cycles of each scheme run.
    pub run_cycles: u64,
    /// Cycle at which scheme-run measurement starts (cache warmup).
    pub measure_from: u64,
    /// Hold length of the online PBS controller, in windows.
    pub pbs_hold_windows: u64,
}

impl EvaluatorConfig {
    /// Paper-machine campaign parameters.
    pub fn paper() -> Self {
        EvaluatorConfig {
            gpu: GpuConfig::paper(),
            seed: 42,
            alone_spec: RunSpec::new(3_000, 10_000),
            sweep_spec: RunSpec::new(3_000, 15_000),
            run_cycles: 600_000,
            measure_from: 3_000,
            pbs_hold_windows: 220,
        }
    }

    /// Scaled-down campaign for tests.
    pub fn quick() -> Self {
        EvaluatorConfig {
            gpu: GpuConfig::small(),
            seed: 42,
            alone_spec: RunSpec::new(500, 2_000),
            sweep_spec: RunSpec::new(300, 1_500),
            run_cycles: 60_000,
            measure_from: 500,
            pbs_hold_windows: 8,
        }
    }
}

/// Result of evaluating one scheme on one workload.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// The evaluated scheme.
    pub scheme: Scheme,
    /// SD-based system metrics (the ones the paper finally reports).
    pub metrics: SystemMetrics,
    /// The fixed combination used, for static/offline schemes.
    pub combo: Option<TlpCombo>,
    /// TLP changes over time (Fig. 11), for dynamic schemes.
    pub tlp_trace: Vec<(u64, Vec<TlpLevel>)>,
    /// Per-application overall windows (IPC, BW, CMR, EB of the whole run).
    pub windows: Vec<AppWindow>,
}

/// The memoizing evaluation driver: a thin, cheaply clonable **view** over
/// a shared [`ResultStore`].
///
/// Every method takes `&self`; all memo state lives in the store behind
/// sharded interior mutability, so any number of views — one per figure
/// generator, one per campaign-scheduler worker — fill and read the same
/// tables concurrently. Cloning an evaluator clones an `Arc`, nothing
/// else.
///
/// # Examples
///
/// ```
/// use ebm_core::eval::{Evaluator, EvaluatorConfig, Scheme};
/// use gpu_workloads::Workload;
///
/// let ev = Evaluator::new(EvaluatorConfig::quick());
/// let result = ev.evaluate(&Workload::pair("BLK", "BFS"), Scheme::BestTlp);
/// assert!(result.metrics.ws > 0.0);
/// ```
#[derive(Clone)]
pub struct Evaluator {
    store: Arc<ResultStore>,
}

/// Everything a scheme run reads, warmed up front so the run itself is a
/// pure function of `(ctx, workload, scheme)` — the property that lets
/// [`Evaluator::evaluate_batch`] fan schemes out across threads while
/// staying bit-for-bit identical to the serial path (which calls the very
/// same [`run_scheme`]).
struct SchemeCtx<'a> {
    cfg: &'a EvaluatorConfig,
    /// Sweep table, present iff some requested scheme is offline.
    sweep: Option<ComboSweep>,
    /// Per-application alone `IPC@bestTLP` (the SD denominators).
    alone_ipcs: Vec<f64>,
    /// The ++bestTLP combination.
    best_combo: TlpCombo,
    /// Sampled scaling factors, present iff some requested offline scheme
    /// wants them.
    sampled: Option<ScalingFactors>,
    /// The ++bestTLP result, present iff an `opt*` scheme needs its
    /// never-worse-than-baseline guard.
    baseline: Option<SchemeResult>,
}

impl SchemeCtx<'_> {
    fn scaling_for(&self, objective: EbObjective, n_apps: usize) -> ScalingFactors {
        if objective.wants_scaling() {
            self.sampled
                .clone()
                .expect("sampled factors warmed for scaling objectives")
        } else {
            ScalingFactors::none(n_apps)
        }
    }
}

fn metrics_for(alone_ipcs: &[f64], windows: &[AppWindow]) -> SystemMetrics {
    let sds = windows
        .iter()
        .zip(alone_ipcs)
        .map(|(w, &a)| w.ipc() / a)
        .collect();
    SystemMetrics::from_slowdowns(sds)
}

/// Emits one final [`TraceEvent::WindowSample`] per application covering a
/// fixed-combination run's whole measured region (static schemes have no
/// window-by-window dynamics worth streaming).
fn emit_overall(sink: &mut dyn TraceSink, cycle: u64, windows: &[gpu_types::AppWindow]) {
    if !sink.enabled() {
        return;
    }
    for (a, w) in windows.iter().enumerate() {
        sink.emit(TraceEvent::WindowSample {
            cycle,
            app: a as u8,
            eb: w.effective_bandwidth(),
            bw: w.attained_bw(),
            cmr: w.combined_miss_rate(),
            l1mr: w.counters.l1_miss_rate(),
            l2mr: w.counters.l2_miss_rate(),
            ipc: w.ipc(),
        });
    }
    sink.flush();
}

fn static_run(
    ctx: &SchemeCtx<'_>,
    workload: &Workload,
    combo: TlpCombo,
    scheme: Scheme,
    sink: &mut dyn TraceSink,
) -> SchemeResult {
    let cfg = ctx.cfg;
    let mut gpu = Gpu::new(&cfg.gpu, workload.apps(), cfg.seed);
    let windows = measure_fixed(
        &mut gpu,
        &combo,
        RunSpec::new(cfg.measure_from, cfg.run_cycles - cfg.measure_from),
    );
    emit_overall(sink, gpu.now(), &windows);
    let metrics = metrics_for(&ctx.alone_ipcs, &windows);
    SchemeResult {
        scheme,
        metrics,
        combo: Some(combo.clone()),
        tlp_trace: vec![(0, combo.levels().to_vec())],
        windows,
    }
}

fn dynamic_run(
    ctx: &SchemeCtx<'_>,
    workload: &Workload,
    controller: &mut dyn Controller,
    start: TlpCombo,
    scheme: Scheme,
    sink: &mut dyn TraceSink,
) -> SchemeResult {
    let cfg = ctx.cfg;
    let mut gpu = Gpu::new(&cfg.gpu, workload.apps(), cfg.seed);
    gpu.set_combo(&start);
    let run = run_controlled_traced(&mut gpu, controller, cfg.run_cycles, cfg.measure_from, sink);
    let metrics = metrics_for(&ctx.alone_ipcs, &run.overall);
    SchemeResult {
        scheme,
        metrics,
        combo: None,
        tlp_trace: run.tlp_trace,
        windows: run.overall,
    }
}

/// Runs one scheme end-to-end from a warmed context, streaming its events
/// into `sink`. Shared verbatim by the serial and the parallel evaluation
/// paths (the latter always passes a [`NullSink`]).
fn run_scheme(
    ctx: &SchemeCtx<'_>,
    workload: &Workload,
    scheme: Scheme,
    sink: &mut dyn TraceSink,
) -> SchemeResult {
    let cfg = ctx.cfg;
    let max = cfg.gpu.max_tlp();
    let n = workload.n_apps();
    match scheme {
        Scheme::BestTlp => static_run(ctx, workload, ctx.best_combo.clone(), scheme, sink),
        Scheme::MaxTlp => static_run(ctx, workload, TlpCombo::uniform(max, n), scheme, sink),
        Scheme::DynCta => {
            let mut c = DynCta::new(max);
            dynamic_run(
                ctx,
                workload,
                &mut c,
                TlpCombo::uniform(max, n),
                scheme,
                sink,
            )
        }
        Scheme::Ccws => {
            // CCWS throttles inside the cores; no window controller.
            let mut gpu = Gpu::new(&cfg.gpu, workload.apps(), cfg.seed);
            for a in 0..n {
                gpu.set_ccws(gpu_types::AppId::new(a as u8), true);
            }
            let windows = measure_fixed(
                &mut gpu,
                &TlpCombo::uniform(max, n),
                RunSpec::new(cfg.measure_from, cfg.run_cycles - cfg.measure_from),
            );
            emit_overall(sink, gpu.now(), &windows);
            let metrics = metrics_for(&ctx.alone_ipcs, &windows);
            SchemeResult {
                scheme,
                metrics,
                combo: None,
                tlp_trace: Vec::new(),
                windows,
            }
        }
        Scheme::ModBypass => {
            let mut c = ModBypass::new(max);
            dynamic_run(
                ctx,
                workload,
                &mut c,
                TlpCombo::uniform(max, n),
                scheme,
                sink,
            )
        }
        Scheme::Pbs(objective) => {
            let scaling = if objective.wants_scaling() {
                PbsScaling::Sampled
            } else {
                PbsScaling::None
            };
            let mut c = Pbs::new(objective, max, scaling).with_hold_windows(cfg.pbs_hold_windows);
            dynamic_run(
                ctx,
                workload,
                &mut c,
                TlpCombo::uniform(max, n),
                scheme,
                sink,
            )
        }
        Scheme::PbsOffline(objective) => {
            let sweep = ctx
                .sweep
                .as_ref()
                .expect("sweep warmed for offline schemes");
            let scaling = ctx.scaling_for(objective, n);
            let (combo, _) = pbs_offline_search(sweep, objective, &scaling);
            static_run(ctx, workload, combo, scheme, sink)
        }
        Scheme::BruteForce(objective) => {
            let sweep = ctx
                .sweep
                .as_ref()
                .expect("sweep warmed for offline schemes");
            let scaling = ctx.scaling_for(objective, n);
            let (combo, _) = best_combo_by_eb(sweep, objective, &scaling);
            static_run(ctx, workload, combo, scheme, sink)
        }
        Scheme::Opt(objective) => {
            let sweep = ctx
                .sweep
                .as_ref()
                .expect("sweep warmed for offline schemes");
            let (combo, _) = best_combo_by_sd(sweep, objective, &ctx.alone_ipcs);
            let candidate = static_run(ctx, workload, combo, scheme, sink);
            // The exhaustive search space contains the ++bestTLP
            // combination, so the oracle can never do worse than the
            // baseline; if the (shorter-window) sweep mis-ranked the
            // two, take the baseline combination instead.
            let baseline = ctx
                .baseline
                .as_ref()
                .expect("baseline warmed for opt schemes");
            let metric = |m: &SystemMetrics| match objective {
                EbObjective::Ws => m.ws,
                EbObjective::Fi => m.fi,
                EbObjective::Hs => m.hs,
            };
            if metric(&candidate.metrics) >= metric(&baseline.metrics) {
                candidate
            } else {
                SchemeResult {
                    scheme,
                    ..baseline.clone()
                }
            }
        }
        Scheme::OptIt => {
            let sweep = ctx
                .sweep
                .as_ref()
                .expect("sweep warmed for offline schemes");
            let (combo, _) = crate::search::best_combo_by_it(sweep);
            static_run(ctx, workload, combo, scheme, sink)
        }
    }
}

/// Persistent cache key of one scheme run: every [`EvaluatorConfig`] field,
/// the full content of every co-scheduled application profile and the
/// scheme's canonical tag. All of a run's other inputs (alone IPCs, the
/// sweep table, scaling factors, the ++bestTLP baseline) are deterministic
/// functions of these, so they stay out of the key.
///
/// Public so the campaign scheduler (`ebm_bench::campaign`) can identify a
/// planned scheme evaluation by the same content address the cache uses.
pub fn scheme_fingerprint(
    cfg: &EvaluatorConfig,
    workload: &Workload,
    scheme: Scheme,
) -> Fingerprint {
    let mut key = gpu_sim::cache::KeyBuilder::new("scheme");
    key.push(&cfg.gpu)
        .push_u64(cfg.seed)
        .push(&cfg.alone_spec)
        .push(&cfg.sweep_spec)
        .push_u64(cfg.run_cycles)
        .push_u64(cfg.measure_from)
        .push_u64(cfg.pbs_hold_windows)
        .push_usize(workload.n_apps());
    for app in workload.apps() {
        key.push(*app);
    }
    key.push(&scheme);
    key.finish()
}

/// Serializes a [`SchemeResult`] payload. The derived metrics (WS, FI, HS)
/// are not stored: they are recomputed from the slowdowns on decode through
/// the same [`SystemMetrics::from_slowdowns`] path, which is exact on the
/// stored bit patterns.
fn encode_result(r: &SchemeResult) -> Vec<u8> {
    let mut buf = CanonBuf::new();
    buf.push_usize(r.metrics.sds.len());
    for &sd in &r.metrics.sds {
        buf.push_f64(sd);
    }
    match &r.combo {
        Some(c) => {
            buf.push_bool(true);
            c.canon(&mut buf);
        }
        None => buf.push_bool(false),
    }
    buf.push_usize(r.tlp_trace.len());
    for (cycle, levels) in &r.tlp_trace {
        buf.push_u64(*cycle);
        buf.push_usize(levels.len());
        for l in levels {
            buf.push_u32(l.get());
        }
    }
    buf.push_usize(r.windows.len());
    for w in &r.windows {
        gpu_sim::cache::push_window(&mut buf, w);
    }
    buf.into_bytes()
}

fn read_levels(r: &mut CanonReader<'_>) -> Option<Vec<TlpLevel>> {
    let n = r.read_usize()?;
    let mut levels = Vec::with_capacity(n);
    for _ in 0..n {
        levels.push(TlpLevel::new(r.read_u32()?)?);
    }
    Some(levels)
}

fn decode_result(bytes: &[u8], scheme: Scheme) -> Option<SchemeResult> {
    let mut r = CanonReader::new(bytes);
    let n_sds = r.read_usize()?;
    let mut sds = Vec::with_capacity(n_sds);
    for _ in 0..n_sds {
        sds.push(r.read_f64()?);
    }
    let combo = if r.read_bool()? {
        Some(TlpCombo::new(read_levels(&mut r)?))
    } else {
        None
    };
    let n_trace = r.read_usize()?;
    let mut tlp_trace = Vec::with_capacity(n_trace);
    for _ in 0..n_trace {
        let cycle = r.read_u64()?;
        tlp_trace.push((cycle, read_levels(&mut r)?));
    }
    let n_windows = r.read_usize()?;
    let mut windows = Vec::with_capacity(n_windows);
    for _ in 0..n_windows {
        windows.push(gpu_sim::cache::read_window(&mut r)?);
    }
    (r.is_empty() && !sds.is_empty()).then(|| SchemeResult {
        scheme,
        metrics: SystemMetrics::from_slowdowns(sds),
        combo,
        tlp_trace,
        windows,
    })
}

impl fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Evaluator")
            .field("cached_alone", &self.store.cached_alone())
            .field("cached_sweeps", &self.store.cached_sweeps())
            .finish()
    }
}

impl Evaluator {
    /// Creates a driver (and a fresh shared [`ResultStore`]) for the given
    /// campaign.
    pub fn new(cfg: EvaluatorConfig) -> Self {
        Evaluator {
            store: Arc::new(ResultStore::new(cfg)),
        }
    }

    /// A view over an existing shared store: evaluations through this view
    /// read and fill the same memo tables as every other view of `store`.
    pub fn from_store(store: Arc<ResultStore>) -> Self {
        Evaluator { store }
    }

    /// The shared store behind this view.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.store
    }

    /// The campaign configuration.
    pub fn config(&self) -> &EvaluatorConfig {
        &self.store.cfg
    }

    fn cores_per_app(&self, workload: &Workload) -> usize {
        self.config().gpu.n_cores / workload.n_apps()
    }

    /// The (cached) alone profile of `app` on `n_cores` cores.
    pub fn alone(&self, app: &'static AppProfile, n_cores: usize) -> AloneProfile {
        let cfg = self.config();
        self.store.alone.get_or_insert_with(app.name, || {
            profile_alone(&cfg.gpu, app, n_cores, cfg.seed, cfg.alone_spec)
        })
    }

    /// The (cached) 64-combination sweep of `workload`.
    pub fn sweep(&self, workload: &Workload) -> ComboSweep {
        let cfg = self.config();
        self.store.sweeps.get_or_insert_with(workload.name(), || {
            ComboSweep::measure(&cfg.gpu, workload, cfg.seed, cfg.sweep_spec)
        })
    }

    /// Per-application alone `IPC@bestTLP` (the SD denominators).
    pub fn alone_ipcs(&self, workload: &Workload) -> Vec<f64> {
        let n = self.cores_per_app(workload);
        workload
            .apps()
            .iter()
            .map(|a| self.alone(a, n).ipc_at_best())
            .collect()
    }

    /// Per-application alone `bestTLP` (the ++bestTLP combination).
    pub fn best_tlp_combo(&self, workload: &Workload) -> TlpCombo {
        let n = self.cores_per_app(workload);
        TlpCombo::new(
            workload
                .apps()
                .iter()
                .map(|a| self.alone(a, n).best_tlp())
                .collect(),
        )
    }

    /// Table IV's group-average alone EBs, over all 26 applications
    /// (the user-supplied scaling-factor source). Expensive on first call;
    /// cached.
    pub fn group_averages(&self) -> FxHashMap<EbGroup, f64> {
        if let Some(cached) = self
            .store
            .group_avg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
        {
            return cached;
        }
        // Computed outside the lock: the profiles may simulate (or fan
        // out), and concurrent computes agree bit for bit.
        let n = self.config().gpu.n_cores / 2; // groups are defined on the 2-app partition size
        let mut sums: FxHashMap<EbGroup, (f64, usize)> = FxHashMap::default();
        for app in all_apps() {
            let eb = self.alone(app, n).eb_at_best();
            let e = sums.entry(app.group).or_insert((0.0, 0));
            e.0 += eb;
            e.1 += 1;
        }
        let table: FxHashMap<EbGroup, f64> = sums
            .into_iter()
            .map(|(g, (s, c))| (g, s / c as f64))
            .collect();
        self.store
            .group_avg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_or_insert_with(|| table.clone())
            .clone()
    }

    /// Scaling factors approximating each application's alone EB from the
    /// sweep table: its EB with every co-runner throttled to TLP = 1
    /// (the "sampled" source of §IV, used by BF-FI/HS and offline PBS).
    pub fn sampled_factors(&self, workload: &Workload) -> ScalingFactors {
        let sweep = self.sweep(workload);
        let levels = sweep.levels();
        let top = *levels.last().expect("non-empty ladder");
        let n = sweep.n_apps();
        let ebs = (0..n)
            .map(|i| {
                let combo = TlpCombo::uniform(TlpLevel::MIN, n).with_level(i, top);
                sweep.ebs(&combo)[i].max(1e-6)
            })
            .collect();
        ScalingFactors::from_alone_ebs(ebs)
    }

    /// Exact scaling factors: measured alone `EB@bestTLP` (Fig. 7's dashed
    /// curve).
    pub fn exact_factors(&self, workload: &Workload) -> ScalingFactors {
        let n = self.cores_per_app(workload);
        ScalingFactors::from_alone_ebs(
            workload
                .apps()
                .iter()
                .map(|a| self.alone(a, n).eb_at_best().max(1e-6))
                .collect(),
        )
    }

    /// Warms every cache the given schemes read and assembles the immutable
    /// run context. All fills go through the shared store, so concurrent
    /// warm-ups of one workload share (rather than repeat) the work.
    fn warm_ctx(&self, workload: &Workload, schemes: &[Scheme]) -> SchemeCtx<'_> {
        let needs_sweep = schemes.iter().any(|s| {
            matches!(
                s,
                Scheme::PbsOffline(_) | Scheme::BruteForce(_) | Scheme::Opt(_) | Scheme::OptIt
            )
        });
        let needs_sampled = schemes.iter().any(
            |s| matches!(s, Scheme::PbsOffline(o) | Scheme::BruteForce(o) if o.wants_scaling()),
        );
        let needs_baseline = schemes.iter().any(|s| matches!(s, Scheme::Opt(_)));
        let alone_ipcs = self.alone_ipcs(workload);
        let best_combo = self.best_tlp_combo(workload);
        let sweep = if needs_sweep {
            Some(self.sweep(workload))
        } else {
            None
        };
        let sampled = if needs_sampled {
            Some(self.sampled_factors(workload))
        } else {
            None
        };
        let baseline = if needs_baseline {
            Some(self.evaluate(workload, Scheme::BestTlp))
        } else {
            None
        };
        SchemeCtx {
            cfg: self.config(),
            sweep,
            alone_ipcs,
            best_combo,
            sampled,
            baseline,
        }
    }

    /// Runs `scheme` on `workload` and reports its SD-based metrics.
    /// Results are memoized (runs are deterministic).
    pub fn evaluate(&self, workload: &Workload, scheme: Scheme) -> SchemeResult {
        let key = (workload.name(), scheme);
        if let Some(hit) = self.store.results.get(&key) {
            return hit;
        }
        let result = self.evaluate_uncached(workload, scheme);
        self.store.results.insert(key, result.clone());
        result
    }

    /// The in-process memo missed: consult the persistent
    /// [`gpu_sim::cache`] tier, simulating (and warming the run context)
    /// only on a full miss. A persistent hit skips the warm-up phase too —
    /// the alone profiles and sweep the run would have warmed are
    /// themselves cached and will be decoded if some later call needs them.
    fn evaluate_uncached(&self, workload: &Workload, scheme: Scheme) -> SchemeResult {
        let fp = scheme_fingerprint(self.config(), workload, scheme);
        gpu_sim::cache::memoize(
            fp,
            encode_result,
            |bytes| decode_result(bytes, scheme),
            || {
                let ctx = self.warm_ctx(workload, &[scheme]);
                run_scheme(&ctx, workload, scheme, &mut NullSink)
            },
        )
    }

    /// Runs `scheme` on `workload` like [`Evaluator::evaluate`], streaming
    /// every [`TraceEvent`] the run produces into `sink`.
    ///
    /// Traced runs bypass the result memo-cache on *read* (a cache hit
    /// would produce no events), but runs are deterministic, so the
    /// returned metrics are identical to the cached ones; the fresh result
    /// is (re-)inserted so later untraced calls still hit.
    pub fn evaluate_traced(
        &self,
        workload: &Workload,
        scheme: Scheme,
        sink: &mut dyn TraceSink,
    ) -> SchemeResult {
        let ctx = self.warm_ctx(workload, &[scheme]);
        let result = run_scheme(&ctx, workload, scheme, sink);
        self.store
            .results
            .insert((workload.name(), scheme), result.clone());
        result
    }

    /// Evaluates every scheme in `schemes` on `workload`, fanning the
    /// uncached ones out across [`exec::worker_count`] threads.
    ///
    /// Shared artifacts (alone profiles, the sweep table, sampled scaling
    /// factors, the ++bestTLP baseline) are warmed *before* the fan-out, so
    /// every scheme run is a pure function of an immutable context and the
    /// results — served in input order — are bit-for-bit identical to
    /// calling [`Evaluator::evaluate`] in a loop. All results enter the
    /// memo cache as usual.
    ///
    /// # Examples
    ///
    /// ```
    /// use ebm_core::eval::{Evaluator, EvaluatorConfig, Scheme};
    /// use gpu_workloads::Workload;
    ///
    /// let ev = Evaluator::new(EvaluatorConfig::quick());
    /// let wl = Workload::pair("BLK", "BFS");
    /// let results = ev.evaluate_batch(&wl, &[Scheme::BestTlp, Scheme::MaxTlp]);
    /// assert_eq!(results.len(), 2);
    /// // Results come back in input order, identical to serial evaluation.
    /// assert_eq!(results[0].scheme, Scheme::BestTlp);
    /// ```
    pub fn evaluate_batch(&self, workload: &Workload, schemes: &[Scheme]) -> Vec<SchemeResult> {
        self.evaluate_batch_with_threads(workload, schemes, exec::worker_count())
    }

    /// [`Evaluator::evaluate_batch`] with an explicit thread count
    /// (1 = fully sequential).
    pub fn evaluate_batch_with_threads(
        &self,
        workload: &Workload,
        schemes: &[Scheme],
        threads: usize,
    ) -> Vec<SchemeResult> {
        let mut missing: Vec<Scheme> = Vec::new();
        for &s in schemes {
            if !self.store.results.contains(&(workload.name(), s)) && !missing.contains(&s) {
                missing.push(s);
            }
        }
        if !missing.is_empty() {
            let ctx = self.warm_ctx(workload, &missing);
            // Warming the ++bestTLP baseline may have filled some of the
            // requested entries via the memo cache; drop those before the
            // fan-out.
            missing.retain(|s| !self.store.results.contains(&(workload.name(), *s)));
            let cfg = self.config();
            // Each fanned-out scheme still consults the persistent
            // cache tier, exactly like the serial path.
            let results = exec::par_map_with(threads, missing.clone(), |s| {
                gpu_sim::cache::memoize(
                    scheme_fingerprint(cfg, workload, s),
                    encode_result,
                    |bytes| decode_result(bytes, s),
                    || run_scheme(&ctx, workload, s, &mut NullSink),
                )
            });
            for (s, r) in missing.iter().zip(results) {
                self.store.results.insert((workload.name(), *s), r);
            }
        }
        schemes
            .iter()
            .map(|s| {
                self.store
                    .results
                    .get(&(workload.name(), *s))
                    .expect("every requested scheme was just evaluated")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluator() -> Evaluator {
        Evaluator::new(EvaluatorConfig::quick())
    }

    fn workload() -> Workload {
        Workload::pair("BLK", "BFS")
    }

    #[test]
    fn best_tlp_baseline_produces_metrics() {
        let e = evaluator();
        let r = e.evaluate(&workload(), Scheme::BestTlp);
        assert_eq!(r.metrics.sds.len(), 2);
        assert!(r.metrics.ws > 0.0);
        assert!(r.metrics.fi > 0.0 && r.metrics.fi <= 1.0);
        assert!(r.combo.is_some());
    }

    #[test]
    fn opt_ws_at_least_matches_best_tlp() {
        let e = evaluator();
        let base = e.evaluate(&workload(), Scheme::BestTlp);
        let opt = e.evaluate(&workload(), Scheme::Opt(EbObjective::Ws));
        // The oracle picked the best combo on the sweep; the full-length
        // re-run can deviate slightly, so allow a small tolerance.
        assert!(
            opt.metrics.ws >= 0.95 * base.metrics.ws,
            "optWS {} should not lose to ++bestTLP {}",
            opt.metrics.ws,
            base.metrics.ws
        );
    }

    #[test]
    fn dynamic_schemes_produce_traces() {
        let e = evaluator();
        let r = e.evaluate(&workload(), Scheme::Pbs(EbObjective::Ws));
        assert!(r.tlp_trace.len() > 1, "PBS must explore combinations");
        assert!(r.metrics.ws > 0.0);
    }

    #[test]
    fn caches_are_reused() {
        let e = evaluator();
        // Warm the evaluator-local memo caches explicitly: scheme runs may
        // be served whole from the process-global result cache, in which
        // case they (correctly) never touch these.
        e.alone_ipcs(&workload());
        e.sweep(&workload());
        let n_alone = e.store().cached_alone();
        e.evaluate(&workload(), Scheme::BestTlp);
        e.evaluate(&workload(), Scheme::Opt(EbObjective::Fi));
        assert_eq!(
            e.store().cached_alone(),
            n_alone,
            "alone profiles must be cached"
        );
        assert_eq!(e.store().cached_sweeps(), 1);
        assert_eq!(e.store().cached_results(), 2);
        // A repeat evaluation is served from cache (identical result).
        let a = e.evaluate(&workload(), Scheme::BestTlp);
        let b = e.evaluate(&workload(), Scheme::BestTlp);
        assert_eq!(a.metrics.ws, b.metrics.ws);
        assert_eq!(e.store().cached_results(), 2);

        // Views share the store: a clone sees the same caches, and a view
        // created from the store explicitly does too.
        let view = e.clone();
        assert_eq!(view.store().cached_results(), 2);
        let other = Evaluator::from_store(e.store().clone());
        assert_eq!(other.store().cached_sweeps(), 1);
    }

    #[test]
    fn scheme_names_match_figures() {
        assert_eq!(Scheme::BestTlp.to_string(), "++bestTLP");
        assert_eq!(Scheme::Pbs(EbObjective::Ws).to_string(), "PBS-WS");
        assert_eq!(
            Scheme::PbsOffline(EbObjective::Fi).to_string(),
            "PBS-FI (Offline)"
        );
        assert_eq!(Scheme::BruteForce(EbObjective::Hs).to_string(), "BF-HS");
        assert_eq!(Scheme::Opt(EbObjective::Ws).to_string(), "optWS");
        assert_eq!(Scheme::OptIt.to_string(), "optIT");
    }

    #[test]
    fn ccws_scheme_runs() {
        let e = evaluator();
        let r = e.evaluate(&workload(), Scheme::Ccws);
        assert!(r.metrics.ws > 0.0);
        assert_eq!(Scheme::Ccws.to_string(), "++CCWS");
    }

    #[test]
    fn opt_it_runs_and_reports() {
        let e = evaluator();
        let r = e.evaluate(&workload(), Scheme::OptIt);
        assert!(r.metrics.ws > 0.0);
        assert!(r.combo.is_some());
    }

    #[test]
    fn hs_and_offline_variants_run() {
        let e = evaluator();
        let w = workload();
        for s in [
            Scheme::PbsOffline(EbObjective::Hs),
            Scheme::BruteForce(EbObjective::Fi),
            Scheme::Opt(EbObjective::Hs),
            Scheme::Pbs(EbObjective::Hs),
        ] {
            let r = e.evaluate(&w, s);
            assert!(r.metrics.hs > 0.0, "{s}: HS {}", r.metrics.hs);
        }
    }

    #[test]
    fn exact_factors_use_alone_ebs() {
        let e = evaluator();
        let f = e.exact_factors(&workload());
        assert_eq!(f.len(), 2);
        assert!(f.factors().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn best_tlp_combo_is_on_the_clamped_ladder() {
        let e = evaluator();
        let combo = e.best_tlp_combo(&workload());
        let max = e.config().gpu.max_tlp();
        assert!(combo.levels().iter().all(|&l| l <= max));
    }

    #[test]
    fn sampled_factors_are_positive() {
        let e = evaluator();
        let f = e.sampled_factors(&workload());
        assert_eq!(f.len(), 2);
        assert!(f.factors().iter().all(|&x| x > 0.0));
    }
}
