//! Pattern analysis and the pattern-based search rules of §V.
//!
//! The paper's key empirical observation: when the machine is sufficiently
//! utilized, an application's EB-based objective exhibits an inflection
//! point at a TLP level that is *independent of the co-runner's TLP* (the
//! "pattern"). This lets PBS find a near-optimal combination by
//!
//! 1. probing at a moderate TLP (4 — "the TLP value of 4 ensures that the
//!    GPU system is not under-utilized", §V-B) so nothing is
//!    under-utilized (Guideline-1) while the probe itself does not
//!    overwhelm the shared resources (Guideline-2),
//! 2. sweeping each application's TLP with the co-runners pinned at the
//!    probe level, identifying the **critical application** — the one whose
//!    sweep shows the largest objective drop past its knee (Guideline-2),
//! 3. fixing the critical application at its knee and greedily tuning the
//!    non-critical applications until the objective stops improving.
//!
//! This module implements those rules over an offline [`ComboSweep`] table
//! (the PBS-Offline schemes, and the machinery behind Figs. 6 and 7); the
//! online controller in [`crate::policy::pbs`] applies the same rules to
//! live samples.

use crate::metrics::EbObjective;
use crate::scaling::ScalingFactors;
use crate::sweep::ComboSweep;
use gpu_types::{TlpCombo, TlpLevel};

/// An objective curve along one application's TLP axis, with the other
/// applications' levels held fixed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCurve {
    /// The application whose TLP varies.
    pub app: usize,
    /// `(level, objective)` points in ascending level order.
    pub points: Vec<(TlpLevel, f64)>,
}

impl SweepCurve {
    /// Extracts the curve for `app` from an offline sweep, with the other
    /// applications at their levels in `fixed`.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty or `app` is out of range.
    pub fn from_sweep(
        sweep: &ComboSweep,
        app: usize,
        fixed: &TlpCombo,
        objective: EbObjective,
        scaling: &ScalingFactors,
    ) -> Self {
        assert!(app < sweep.n_apps(), "application index out of range");
        let points = sweep
            .levels()
            .into_iter()
            .map(|l| {
                let combo = fixed.with_level(app, l);
                let ebs = sweep.ebs(&combo);
                (l, objective.value(&scaling.apply(&ebs)))
            })
            .collect();
        SweepCurve { app, points }
    }

    /// The knee: the level with the maximum objective value (ties go to the
    /// lower level, which frees more resources).
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn knee(&self) -> TlpLevel {
        assert!(!self.points.is_empty(), "empty curve");
        self.points
            .iter()
            .rev() // reverse so that on ties `max_by` keeps the lower level
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0
    }

    /// The drop past the knee: `objective(knee) − min objective at any
    /// level above the knee` (zero when the knee is the top level). The
    /// application with the larger drop is *critical* — its TLP is the
    /// lever that overwhelms the shared resources.
    pub fn drop_past_knee(&self) -> f64 {
        let knee = self.knee();
        let knee_val = self
            .points
            .iter()
            .find(|(l, _)| *l == knee)
            .expect("knee on curve")
            .1;
        self.points
            .iter()
            .filter(|(l, _)| *l > knee)
            .map(|&(_, v)| knee_val - v)
            .fold(0.0, f64::max)
    }
}

/// Convenience: the knee of `app`'s curve (others at `fixed`).
pub fn knee_of(
    sweep: &ComboSweep,
    app: usize,
    fixed: &TlpCombo,
    objective: EbObjective,
    scaling: &ScalingFactors,
) -> TlpLevel {
    SweepCurve::from_sweep(sweep, app, fixed, objective, scaling).knee()
}

/// The paper's probe level: co-runners are pinned at TLP 4 during sweeps —
/// high enough to utilize the machine, low enough not to overwhelm it
/// (§V-B). Clamped to the highest realizable level.
pub fn probe_level(levels: &[TlpLevel]) -> TlpLevel {
    let four = TlpLevel::new(4).expect("4 is a valid level");
    levels
        .iter()
        .copied()
        .filter(|&l| l <= four)
        .max()
        .unwrap_or_else(|| *levels.first().expect("non-empty ladder"))
}

/// Identifies the critical application and its knee level, probing with all
/// other applications at `probe` (§V-B step 2).
pub fn critical_app(
    sweep: &ComboSweep,
    objective: EbObjective,
    scaling: &ScalingFactors,
    probe: TlpLevel,
) -> (usize, TlpLevel) {
    let n = sweep.n_apps();
    let base = TlpCombo::uniform(probe, n);
    let mut best: Option<(usize, TlpLevel, f64)> = None;
    for app in 0..n {
        let curve = SweepCurve::from_sweep(sweep, app, &base, objective, scaling);
        let drop = curve.drop_past_knee();
        if best.as_ref().is_none_or(|&(_, _, d)| drop > d) {
            best = Some((app, curve.knee(), drop));
        }
    }
    let (app, knee, _) = best.expect("at least one application");
    (app, knee)
}

/// The full PBS search over an offline table: find the critical
/// application, fix it at its knee, then greedily tune each non-critical
/// application down the ladder while the objective improves (§V-B step 3).
///
/// Returns the chosen combination and the number of table lookups
/// ("samples") the search consumed — the quantity PBS minimizes versus the
/// exhaustive 64.
pub fn pbs_offline_search(
    sweep: &ComboSweep,
    objective: EbObjective,
    scaling: &ScalingFactors,
) -> (TlpCombo, usize) {
    let n = sweep.n_apps();
    let levels = sweep.levels();
    let probe = probe_level(&levels);
    let mut samples = 0usize;

    // Step 2: critical application (each curve costs one sample per level).
    let base = TlpCombo::uniform(probe, n);
    let mut curves = Vec::new();
    for app in 0..n {
        curves.push(SweepCurve::from_sweep(
            sweep, app, &base, objective, scaling,
        ));
        samples += levels.len();
    }
    let critical = (0..n)
        .max_by(|&a, &b| {
            curves[a]
                .drop_past_knee()
                .total_cmp(&curves[b].drop_past_knee())
        })
        .expect("non-empty");
    let mut combo = base.with_level(critical, curves[critical].knee());

    // Step 3: tune the non-critical applications greedily, climbing away
    // from the probe level in whichever direction improves the objective
    // (the paper's BLK_TRD example tunes TRD *up* from the probe to 8).
    let value_at = |combo: &TlpCombo| objective.value(&scaling.apply(&sweep.ebs(combo)));
    let mut best_val = value_at(&combo);
    samples += 1;
    for app in (0..n).filter(|&a| a != critical) {
        for dir in [
            TlpLevel::step_up as fn(TlpLevel) -> Option<TlpLevel>,
            TlpLevel::step_down,
        ] {
            let mut improved_this_dir = false;
            loop {
                let cur = combo.level(app);
                // Stay on the machine's clamped ladder: on small machines
                // the global ladder continues past the last measured level,
                // and stepping onto it would probe an unmeasured combo.
                let Some(next) = dir(cur).filter(|l| levels.contains(l)) else {
                    break;
                };
                let cand = combo.with_level(app, next);
                let v = value_at(&cand);
                samples += 1;
                if v > best_val {
                    best_val = v;
                    combo = cand;
                    improved_this_dir = true;
                } else {
                    break;
                }
            }
            // Only try the opposite direction if this one never improved.
            if improved_this_dir {
                break;
            }
        }
    }
    (combo, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(l: u32) -> TlpLevel {
        TlpLevel::new(l).unwrap()
    }

    fn curve(points: &[(u32, f64)]) -> SweepCurve {
        SweepCurve {
            app: 0,
            points: points.iter().map(|&(l, v)| (level(l), v)).collect(),
        }
    }

    #[test]
    fn knee_is_argmax() {
        let c = curve(&[(1, 0.5), (2, 0.9), (4, 0.8), (8, 0.3)]);
        assert_eq!(c.knee(), level(2));
    }

    #[test]
    fn knee_tie_prefers_lower_level() {
        let c = curve(&[(1, 0.9), (2, 0.9), (4, 0.5)]);
        assert_eq!(c.knee(), level(1));
    }

    #[test]
    fn drop_measures_post_knee_decline() {
        let c = curve(&[(1, 0.5), (2, 0.9), (4, 0.8), (8, 0.3)]);
        assert!((c.drop_past_knee() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn monotone_rising_curve_has_zero_drop() {
        let c = curve(&[(1, 0.1), (2, 0.5), (4, 0.9)]);
        assert_eq!(c.drop_past_knee(), 0.0);
        assert_eq!(c.knee(), level(4));
    }

    #[test]
    #[should_panic(expected = "empty curve")]
    fn empty_curve_panics() {
        let _ = curve(&[]).knee();
    }

    #[test]
    fn probe_level_is_four_on_full_ladder() {
        let ladder: Vec<TlpLevel> = TlpLevel::ladder().collect();
        assert_eq!(probe_level(&ladder), level(4));
    }

    #[test]
    fn probe_level_clamps_on_tiny_machines() {
        // A machine whose ladder tops out below 4 probes at its max.
        let ladder = vec![level(1), level(2)];
        assert_eq!(probe_level(&ladder), level(2));
        // A ladder starting above 4 probes at its smallest level.
        let ladder = vec![level(6), level(8)];
        assert_eq!(probe_level(&ladder), level(6));
    }
    /// Regression: on machines whose clamped ladder tops out below the
    /// global ladder's maximum, the greedy tuning step must not climb onto
    /// unmeasured (off-ladder) combinations. This used to panic with
    /// "combination (12,1) not in sweep" on the small test machine.
    #[test]
    fn offline_search_stays_on_clamped_ladder() {
        use gpu_sim::harness::RunSpec;
        use gpu_types::GpuConfig;
        use gpu_workloads::Workload;
        let cfg = GpuConfig::small();
        let w = Workload::pair("BLK", "BFS");
        let sweep = ComboSweep::measure(&cfg, &w, 3, RunSpec::new(300, 1_000));
        let ladder = sweep.levels();
        for objective in [EbObjective::Ws, EbObjective::Fi, EbObjective::Hs] {
            let (combo, samples) = pbs_offline_search(&sweep, objective, &ScalingFactors::none(2));
            assert!(samples > 0);
            for l in combo.levels() {
                assert!(ladder.contains(l), "{objective}: {combo} is off-ladder");
            }
        }
    }
}
