//! The DynCTA baseline (Kayıran et al., "Neither more nor less: optimizing
//! thread-level parallelism for GPGPUs", re-implemented from its published
//! heuristic).
//!
//! Each application independently modulates its own TLP from per-core
//! latency-tolerance signals: if its cores spend too many cycles stalled on
//! memory, TLP steps down; if they are memory-happy and under-occupied, TLP
//! steps up. Crucially — and this is the paper's criticism (§IV) — the
//! heuristic never looks at the *co-runners'* resource consumption, so
//! "++DynCTA" still lets each application take a disproportionate share.

use gpu_sim::control::{Controller, Decision, Observation};
use gpu_types::TlpLevel;

/// Thresholds of the DynCTA up/down heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynCtaParams {
    /// Memory-wait warp occupancy above which TLP steps down (warps are
    /// mostly blocked on memory — latency tolerance saturated, §IV).
    pub high_stall: f64,
    /// Occupancy below which TLP steps up (spare latency tolerance).
    pub low_stall: f64,
}

impl Default for DynCtaParams {
    fn default() -> Self {
        DynCtaParams {
            high_stall: 0.70,
            low_stall: 0.35,
        }
    }
}

/// Per-application DynCTA modulation.
#[derive(Debug, Clone)]
pub struct DynCta {
    params: DynCtaParams,
    max_level: TlpLevel,
}

impl DynCta {
    /// Creates the controller; `max_level` is the machine's realizable
    /// maximum (levels walk the standard ladder below it).
    pub fn new(max_level: TlpLevel) -> Self {
        DynCta {
            params: DynCtaParams::default(),
            max_level,
        }
    }

    /// Overrides the default thresholds.
    pub fn with_params(mut self, params: DynCtaParams) -> Self {
        self.params = params;
        self
    }

    fn modulate(&self, tlp: TlpLevel, occupancy: f64) -> Option<TlpLevel> {
        if occupancy > self.params.high_stall {
            tlp.step_down()
        } else if occupancy < self.params.low_stall {
            tlp.step_up().map(|l| l.min(self.max_level))
        } else {
            None
        }
    }
}

impl Controller for DynCta {
    fn on_window(&mut self, obs: &Observation) -> Decision {
        let mut d = Decision::unchanged(obs.apps.len()).with_reason("latency-tolerance");
        for (i, app) in obs.apps.iter().enumerate() {
            if let Some(next) = self.modulate(app.tlp, app.core.mem_wait_occupancy()) {
                d.tlp[i] = Some(next);
            }
        }
        d
    }

    fn name(&self) -> &str {
        "++DynCTA"
    }

    fn phase(&self) -> Option<&'static str> {
        // DynCTA has no search organization; every window modulates.
        Some("modulate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::control::AppObservation;
    use gpu_simt::CoreStats;
    use gpu_types::{AppWindow, MemCounters};

    fn obs_with(stats: Vec<CoreStats>, tlps: Vec<u32>) -> Observation {
        let w = AppWindow::new(
            MemCounters {
                l1_accesses: 10,
                warp_insts: 10,
                ..MemCounters::new()
            },
            1_000,
            192.0,
        );
        Observation {
            now: 1_000,
            window_cycles: 1_000,
            apps: stats
                .into_iter()
                .zip(tlps)
                .map(|(core, t)| AppObservation {
                    window: w,
                    core,
                    tlp: TlpLevel::new(t).unwrap(),
                    bypassed: false,
                })
                .collect(),
        }
    }

    fn stats(active: u64, waiting: u64) -> CoreStats {
        CoreStats {
            cycles: 1_000,
            insts: 500,
            warp_mem_wait_cycles: waiting,
            active_warp_cycles: active,
            ..CoreStats::default()
        }
    }

    #[test]
    fn heavy_memory_occupancy_steps_down() {
        let mut c = DynCta::new(TlpLevel::MAX);
        let d = c.on_window(&obs_with(vec![stats(10_000, 9_000)], vec![8]));
        assert_eq!(d.tlp[0], TlpLevel::new(6));
    }

    #[test]
    fn low_occupancy_steps_up() {
        let mut c = DynCta::new(TlpLevel::MAX);
        let d = c.on_window(&obs_with(vec![stats(10_000, 1_000)], vec![8]));
        assert_eq!(d.tlp[0], TlpLevel::new(12));
    }

    #[test]
    fn moderate_occupancy_holds() {
        let mut c = DynCta::new(TlpLevel::MAX);
        let d = c.on_window(&obs_with(vec![stats(10_000, 5_000)], vec![8]));
        assert_eq!(d.tlp[0], None);
    }

    #[test]
    fn step_up_respects_machine_max() {
        let mut c = DynCta::new(TlpLevel::new(8).unwrap());
        let d = c.on_window(&obs_with(vec![stats(10_000, 0)], vec![8]));
        // step_up from 8 is 12, clamped back to 8 => effectively unchanged.
        assert_eq!(d.tlp[0], TlpLevel::new(8));
    }

    #[test]
    fn apps_are_modulated_independently() {
        let mut c = DynCta::new(TlpLevel::MAX);
        let d = c.on_window(&obs_with(
            vec![stats(10_000, 9_000), stats(10_000, 1_000)],
            vec![8, 4],
        ));
        assert_eq!(d.tlp[0], TlpLevel::new(6), "stalled app steps down");
        assert_eq!(d.tlp[1], TlpLevel::new(6), "happy app steps up");
    }

    #[test]
    fn cannot_step_below_one() {
        let mut c = DynCta::new(TlpLevel::MAX);
        let d = c.on_window(&obs_with(vec![stats(10_000, 9_900)], vec![1]));
        assert_eq!(d.tlp[0], None);
    }
}
