//! Pattern-based searching (PBS) — the paper's runtime mechanism (§V).
//!
//! The controller walks the same three steps as the offline search in
//! [`crate::pattern`], but against *live* sampling windows:
//!
//! 1. optional scaling-factor sampling (PBS-FI / PBS-HS): each
//!    application's EB is measured while the co-runners run at TLP = 1, the
//!    least-interference approximation of its alone EB (§IV);
//! 2. **sweep**: with co-runners pinned at the probe level (TLP 4 — high
//!    enough for utilization per Guideline-1, low enough not to overwhelm),
//!    each application's TLP walks the ladder ("TLP of 1, 2, 4, 8 etc.",
//!    §V-B); the application whose objective curve shows the largest drop
//!    past its knee is *critical* and is fixed at the knee (Guideline-2);
//! 3. **tune**: the remaining applications greedily climb the ladder —
//!    upward from the probe first, as in the paper's BLK_TRD example
//!    (TRD tunes from 4 up to 8), falling back to downward — while the
//!    objective improves.
//!
//! Every probed combination costs **two** sampling windows: one settle
//! window for in-flight state to adapt to the new warp limits, one
//! measurement window (both plus the Fig. 8 relay latency). Each
//! measurement lands in the EB sampling table of Fig. 8; when the search
//! ends, the mechanism "performs a simple search over the … samples
//! collected" (§V-E) — the best-scoring sampled combination is installed
//! and held. The search restarts periodically, standing in for the paper's
//! restart-on-kernel-relaunch and producing the repeated sampling phases of
//! Fig. 11.

use crate::metrics::EbObjective;
use crate::pattern::{probe_level, SweepCurve};
use crate::scaling::ScalingFactors;
use gpu_sim::control::{Controller, Decision, Observation};
use gpu_types::TlpLevel;

/// Where PBS gets its EB scaling factors.
///
/// # Examples
///
/// ```
/// use ebm_core::metrics::EbObjective;
/// use ebm_core::policy::pbs::{Pbs, PbsScaling};
/// use gpu_types::TlpLevel;
///
/// // PBS-WS compares raw EBs; PBS-FI/HS scale them by sampled alone EBs.
/// let ws = Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None);
/// let fi = Pbs::new(EbObjective::Fi, TlpLevel::MAX, PbsScaling::Sampled);
/// # let _ = (ws, fi);
/// ```
#[derive(Debug, Clone)]
pub enum PbsScaling {
    /// Raw EBs (the paper's PBS-WS: WS has few outliers, §VI-A).
    None,
    /// User-supplied factors (the Table IV group averages).
    Fixed(ScalingFactors),
    /// Runtime sampling with co-runners at TLP = 1.
    Sampled,
}

#[derive(Debug, Clone)]
enum Phase {
    /// First window; its measurement predates our control, so it is
    /// discarded.
    Boot,
    /// Waiting for the scaling sample of `app` (co-runners at TLP 1).
    ScaleSample { app: usize },
    /// Waiting for the sweep point `idx` of `app` (co-runners at probe).
    Sweep { app: usize, idx: usize },
    /// Waiting for the measurement of the current tune candidate.
    Tune { order_pos: usize },
    /// Holding the chosen combination.
    Hold { left: u64 },
}

/// The PBS runtime controller.
///
/// # Examples
///
/// ```no_run
/// use ebm_core::policy::pbs::PbsScaling;
/// use ebm_core::{EbObjective, Pbs};
/// use gpu_sim::control::Controller;
/// use gpu_sim::harness::run_controlled;
/// use gpu_sim::machine::Gpu;
/// use gpu_types::GpuConfig;
/// use gpu_workloads::Workload;
///
/// let cfg = GpuConfig::paper();
/// let workload = Workload::pair("BLK", "BFS");
/// let mut gpu = Gpu::new(&cfg, workload.apps(), 42);
/// let mut pbs = Pbs::new(EbObjective::Ws, cfg.max_tlp(), PbsScaling::None);
/// let run = run_controlled(&mut gpu, &mut pbs as &mut dyn Controller, 600_000, 3_000);
/// println!("found {:?} in {} samples", run.tlp_trace.last(), pbs.samples_last_search());
/// ```
#[derive(Debug, Clone)]
pub struct Pbs {
    objective: EbObjective,
    scaling_mode: PbsScaling,
    factors: Option<ScalingFactors>,
    /// Ascending realizable ladder (for tuning).
    ladder: Vec<TlpLevel>,
    /// Descending sweep levels ("1, 2, 4, 8 etc." of §V-B).
    sweep_levels: Vec<TlpLevel>,
    phase: Phase,
    /// The window right after a TLP change settles in-flight state; its
    /// measurement is discarded.
    settling: bool,
    /// Per-application sweep curves (level, objective).
    curves: Vec<Vec<(TlpLevel, f64)>>,
    /// The Fig. 8 sampling table: measured (combination, objective) pairs
    /// of the current search.
    table: Vec<(Vec<TlpLevel>, f64)>,
    /// Intended TLP per application (mirrors what we asked the machine).
    levels: Vec<TlpLevel>,
    critical: Option<usize>,
    /// Non-critical applications in tuning order.
    tune_order: Vec<usize>,
    /// Current tuning direction (the paper's example climbs *up* from the
    /// probe first; we fall back to down if up never improves).
    tune_up: bool,
    /// Whether the current app improved in the current direction.
    tune_improved: bool,
    best_val: f64,
    hold_windows: u64,
    name: String,
    samples_last_search: usize,
    /// Ablation knobs (defaults reproduce the paper's mechanism).
    probe_override: Option<TlpLevel>,
    use_settle: bool,
    use_table_pick: bool,
}

impl Pbs {
    /// Creates a PBS controller optimizing `objective` on a machine whose
    /// realizable maximum TLP is `max_level`.
    pub fn new(objective: EbObjective, max_level: TlpLevel, scaling: PbsScaling) -> Self {
        let ladder: Vec<TlpLevel> = TlpLevel::ladder().filter(|&l| l <= max_level).collect();
        assert!(!ladder.is_empty(), "no realizable ladder levels");
        // Geometric subset, descending: 24, 12, 8, 4, 2, 1 on the paper
        // machine.
        let mut sweep_levels: Vec<TlpLevel> = ladder
            .iter()
            .copied()
            .filter(|l| matches!(l.get(), 1 | 2 | 4 | 8 | 12 | 24))
            .collect();
        if sweep_levels.last() != ladder.last() {
            sweep_levels.push(*ladder.last().expect("non-empty"));
        }
        sweep_levels.reverse();
        let factors = match &scaling {
            PbsScaling::Fixed(f) => Some(f.clone()),
            _ => None,
        };
        Pbs {
            name: format!("PBS-{objective}"),
            objective,
            scaling_mode: scaling,
            factors,
            ladder,
            sweep_levels,
            phase: Phase::Boot,
            settling: false,
            curves: Vec::new(),
            table: Vec::new(),
            levels: Vec::new(),
            critical: None,
            tune_order: Vec::new(),
            tune_up: true,
            tune_improved: false,
            best_val: f64::NEG_INFINITY,
            hold_windows: 30,
            samples_last_search: 0,
            probe_override: None,
            use_settle: true,
            use_table_pick: true,
        }
    }

    /// Overrides how many windows the found combination is held before the
    /// search restarts.
    pub fn with_hold_windows(mut self, hold: u64) -> Self {
        self.hold_windows = hold.max(1);
        self
    }

    /// Ablation: overrides the probe level (the paper uses 4).
    pub fn with_probe(mut self, probe: TlpLevel) -> Self {
        self.probe_override = Some(probe);
        self
    }

    /// Ablation: disables the settle window after each TLP change
    /// (measurements then straddle the transient).
    pub fn without_settle(mut self) -> Self {
        self.use_settle = false;
        self
    }

    /// Ablation: installs the knee+tune result directly instead of the best
    /// entry of the sampling table.
    pub fn without_table_pick(mut self) -> Self {
        self.use_table_pick = false;
        self
    }

    /// The trace label of the current search phase (Fig. 11's shaded
    /// regions), also used as the reason of emitted TLP decisions.
    fn phase_label(&self) -> &'static str {
        match self.phase {
            Phase::Boot => "boot",
            Phase::ScaleSample { .. } => "scale-sample",
            Phase::Sweep { .. } => "sweep",
            Phase::Tune { .. } => "tune",
            Phase::Hold { .. } => "hold",
        }
    }

    /// The probe level for co-runners during sweeps (TLP 4, §V-B).
    fn probe(&self) -> TlpLevel {
        self.probe_override
            .unwrap_or_else(|| probe_level(&self.ladder))
    }

    /// Combinations probed by the last completed search (the quantity PBS
    /// minimizes versus the exhaustive 64).
    pub fn samples_last_search(&self) -> usize {
        self.samples_last_search
    }

    fn objective_of(&self, obs: &Observation) -> f64 {
        let ebs: Vec<f64> = obs
            .apps
            .iter()
            .map(|a| a.window.effective_bandwidth())
            .collect();
        let factors = self
            .factors
            .clone()
            .unwrap_or_else(|| ScalingFactors::none(ebs.len()));
        self.objective.value(&factors.apply(&ebs))
    }

    /// Emits the decision for the currently intended levels and requests a
    /// settle window before the next measurement.
    fn apply_levels(&mut self) -> Decision {
        self.settling = self.use_settle;
        Decision::set_all(&self.levels).with_reason(self.phase_label())
    }

    fn record_sample(&mut self, value: f64) {
        self.table.push((self.levels.clone(), value));
    }

    fn begin_search(&mut self, n: usize) -> Decision {
        self.curves = vec![Vec::new(); n];
        self.table.clear();
        self.critical = None;
        self.tune_order.clear();
        self.best_val = f64::NEG_INFINITY;
        if matches!(self.scaling_mode, PbsScaling::Sampled) {
            self.factors = None;
            // Sample app 0's EB with everyone else at TLP 1.
            self.levels = vec![TlpLevel::MIN; n];
            self.levels[0] = self.probe();
            self.phase = Phase::ScaleSample { app: 0 };
        } else {
            // Straight to the sweep: everything at the probe level.
            self.levels = vec![self.probe(); n];
            self.phase = Phase::Sweep { app: 0, idx: 0 };
        }
        self.apply_levels()
    }

    fn start_tuning(&mut self, n: usize) -> Decision {
        // Pick the critical application: largest objective drop past its
        // knee.
        let curves: Vec<SweepCurve> = self
            .curves
            .iter()
            .enumerate()
            .map(|(app, pts)| {
                let mut points = pts.clone();
                points.sort_by_key(|&(l, _)| l);
                SweepCurve { app, points }
            })
            .collect();
        let critical = (0..n)
            .max_by(|&a, &b| {
                curves[a]
                    .drop_past_knee()
                    .total_cmp(&curves[b].drop_past_knee())
            })
            .expect("at least one app");
        let knee = curves[critical].knee();
        self.critical = Some(critical);
        self.levels = vec![self.probe(); n];
        self.levels[critical] = knee;
        // Baseline value: measured during the critical app's sweep.
        self.best_val = curves[critical]
            .points
            .iter()
            .find(|(l, _)| *l == knee)
            .expect("knee on curve")
            .1;
        self.tune_order = (0..n).filter(|&a| a != critical).collect();
        self.tune_up = true;
        self.tune_improved = false;
        // Propose the first tune step, if any.
        self.propose_tune_step(0)
    }

    fn tune_step(&self, level: TlpLevel) -> Option<TlpLevel> {
        if self.tune_up {
            level.step_up()
        } else {
            level.step_down()
        }
    }

    /// Steps the current tune application one ladder level in the current
    /// direction, switches direction when up never improved, or advances to
    /// the next application / holds when done.
    fn propose_tune_step(&mut self, order_pos: usize) -> Decision {
        let mut pos = order_pos;
        while pos < self.tune_order.len() {
            let app = self.tune_order[pos];
            if let Some(next) = self.tune_step(self.levels[app]) {
                self.levels[app] = next;
                self.phase = Phase::Tune { order_pos: pos };
                return self.apply_levels();
            }
            if self.tune_up && !self.tune_improved {
                // Nothing above the probe improved (or existed): try down.
                self.tune_up = false;
                continue;
            }
            pos += 1;
            self.tune_up = true;
            self.tune_improved = false;
        }
        self.finish_search()
    }

    /// Installs the best combination in the sampling table (§V-E: "a simple
    /// search over the … samples collected") and holds it.
    fn finish_search(&mut self) -> Decision {
        self.samples_last_search = self.table.len();
        if self.use_table_pick {
            if let Some((combo, _)) = self.table.iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
                self.levels = combo.clone();
            }
        }
        self.phase = Phase::Hold {
            left: self.hold_windows,
        };
        self.settling = false;
        Decision::set_all(&self.levels).with_reason("hold-install")
    }
}

impl Controller for Pbs {
    fn on_window(&mut self, obs: &Observation) -> Decision {
        let n = obs.apps.len();
        if self.settling {
            // The observed window straddled a TLP change: discard it and
            // measure the next one.
            self.settling = false;
            return Decision::set_all(&self.levels).with_reason("settle");
        }
        match self.phase.clone() {
            Phase::Boot => self.begin_search(n),
            Phase::ScaleSample { app } => {
                let eb = obs.apps[app].window.effective_bandwidth().max(1e-6);
                let mut have = match self.factors.take() {
                    Some(f) => f.factors().to_vec(),
                    None => Vec::new(),
                };
                have.push(eb);
                self.factors = Some(ScalingFactors::from_alone_ebs(have.clone()));
                if have.len() < n {
                    let next = app + 1;
                    self.levels = vec![TlpLevel::MIN; n];
                    self.levels[next] = self.probe();
                    self.phase = Phase::ScaleSample { app: next };
                } else {
                    self.levels = vec![self.probe(); n];
                    self.phase = Phase::Sweep { app: 0, idx: 0 };
                }
                self.apply_levels()
            }
            Phase::Sweep { app, idx } => {
                let level = self.sweep_levels[idx];
                let v = self.objective_of(obs);
                self.record_sample(v);
                self.curves[app].push((level, v));
                // The all-probe point doubles as every app's first sweep
                // point.
                if app == 0 && idx == 0 {
                    for other in 1..n {
                        self.curves[other].push((level, v));
                    }
                }
                if idx + 1 < self.sweep_levels.len() {
                    self.levels[app] = self.sweep_levels[idx + 1];
                    self.phase = Phase::Sweep { app, idx: idx + 1 };
                    self.apply_levels()
                } else if app + 1 < n {
                    self.levels[app] = self.probe();
                    self.levels[app + 1] = self.sweep_levels[1];
                    self.phase = Phase::Sweep {
                        app: app + 1,
                        idx: 1,
                    };
                    self.apply_levels()
                } else {
                    self.levels[app] = self.probe();
                    self.start_tuning(n)
                }
            }
            Phase::Tune { order_pos } => {
                let v = self.objective_of(obs);
                self.record_sample(v);
                let app = self.tune_order[order_pos];
                if v > self.best_val {
                    self.best_val = v;
                    self.tune_improved = true;
                    self.propose_tune_step(order_pos)
                } else {
                    // Revert the failed step.
                    self.levels[app] = if self.tune_up {
                        self.levels[app].step_down().expect("stepped up before")
                    } else {
                        self.levels[app].step_up().expect("stepped down before")
                    };
                    if self.tune_up && !self.tune_improved {
                        // Up never helped: try the other direction.
                        self.tune_up = false;
                        self.propose_tune_step(order_pos)
                    } else {
                        self.tune_up = true;
                        self.tune_improved = false;
                        self.propose_tune_step(order_pos + 1)
                    }
                }
            }
            Phase::Hold { left } => {
                if left > 1 {
                    self.phase = Phase::Hold { left: left - 1 };
                    Decision::unchanged(n)
                } else {
                    // Periodic restart (kernel-relaunch surrogate).
                    self.begin_search(n)
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn phase(&self) -> Option<&'static str> {
        Some(self.phase_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::control::AppObservation;
    use gpu_simt::CoreStats;
    use gpu_types::{AppWindow, MemCounters, TlpCombo};
    use std::collections::HashMap;

    /// Drive the controller against a synthetic EB table:
    /// `eb(app, combo)` is supplied by a closure; the machine is mocked.
    fn drive(
        pbs: &mut Pbs,
        mut levels: Vec<TlpLevel>,
        eb_of: impl Fn(usize, &[TlpLevel]) -> f64,
        windows: usize,
    ) -> Vec<Vec<TlpLevel>> {
        let mut history = Vec::new();
        for t in 0..windows {
            let apps: Vec<AppObservation> = (0..levels.len())
                .map(|a| {
                    let eb = eb_of(a, &levels);
                    // Encode the target EB as bandwidth with CMR 1.
                    let c = MemCounters {
                        l1_accesses: 100,
                        l1_misses: 100,
                        l2_accesses: 100,
                        l2_misses: 100,
                        dram_bytes: (eb * 192.0 * 1_000.0) as u64,
                        warp_insts: 1_000,
                        ..MemCounters::new()
                    };
                    AppObservation {
                        window: AppWindow::new(c, 1_000, 192.0),
                        core: CoreStats {
                            cycles: 1_000,
                            ..CoreStats::default()
                        },
                        tlp: levels[a],
                        bypassed: false,
                    }
                })
                .collect();
            let obs = Observation {
                now: t as u64 * 1_000,
                window_cycles: 1_000,
                apps,
            };
            let d = pbs.on_window(&obs);
            for (a, l) in d.tlp.iter().enumerate() {
                if let Some(l) = l {
                    levels[a] = *l;
                }
            }
            history.push(levels.clone());
        }
        history
    }

    fn lvl(l: u32) -> TlpLevel {
        TlpLevel::new(l).unwrap()
    }

    /// A synthetic workload where app 0 is critical with a knee at TLP 2:
    /// its EB collapses beyond 2 and also crushes app 1.
    fn knee_table(app: usize, levels: &[TlpLevel]) -> f64 {
        let l0 = levels[0].get() as f64;
        let l1 = levels[1].get() as f64;
        let crush = if l0 > 2.0 { 0.2 } else { 1.0 };
        match app {
            0 => crush * (0.5 + 0.1 * l0.min(2.0)),
            _ => crush * (0.3 + 0.4 * (l1.ln_1p() / 3.2)),
        }
    }

    #[test]
    fn pbs_ws_fixes_critical_app_at_its_knee() {
        let mut pbs =
            Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None).with_hold_windows(100);
        let hist = drive(&mut pbs, vec![TlpLevel::MAX; 2], knee_table, 60);
        let held = hist.last().unwrap();
        assert_eq!(
            held[0],
            lvl(2),
            "critical app must be pinned at its knee, got {held:?}"
        );
        assert!(
            held[1] >= lvl(8),
            "non-critical app should tune up, got {held:?}"
        );
    }

    #[test]
    fn search_costs_far_fewer_samples_than_exhaustive() {
        let mut pbs = Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None);
        drive(&mut pbs, vec![TlpLevel::MAX; 2], knee_table, 80);
        let n = pbs.samples_last_search();
        assert!(n > 0, "search must have completed");
        assert!(
            n <= 16,
            "PBS used {n} samples; the Fig. 8 table holds 16; exhaustive is 64"
        );
    }

    #[test]
    fn hold_phase_keeps_combination_stable() {
        let mut pbs =
            Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None).with_hold_windows(10);
        let hist = drive(&mut pbs, vec![TlpLevel::MAX; 2], knee_table, 80);
        // Find the longest run of identical settings; must cover the hold.
        let mut longest = 1;
        let mut cur = 1;
        for w in hist.windows(2) {
            if w[0] == w[1] {
                cur += 1;
                longest = longest.max(cur);
            } else {
                cur = 1;
            }
        }
        assert!(longest >= 10, "expected a >=10-window hold, got {longest}");
    }

    #[test]
    fn search_restarts_after_hold() {
        let mut pbs =
            Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None).with_hold_windows(5);
        let hist = drive(&mut pbs, vec![TlpLevel::MAX; 2], knee_table, 140);
        // After the first hold, a fresh sweep sets everything back to the
        // probe level (4,4).
        let probe = vec![lvl(4), lvl(4)];
        let first_probe_again = hist.iter().skip(45).position(|l| *l == probe);
        assert!(first_probe_again.is_some(), "search never restarted");
    }

    #[test]
    fn sampled_scaling_probes_each_app_against_min_corunners() {
        let mut pbs = Pbs::new(EbObjective::Fi, TlpLevel::MAX, PbsScaling::Sampled);
        let hist = drive(&mut pbs, vec![TlpLevel::MAX; 2], knee_table, 8);
        // Windows 1-2 run (probe, MIN) (settle + measure); windows 3-4 run
        // (MIN, probe); the probe is TLP 4.
        assert_eq!(hist[0], vec![lvl(4), TlpLevel::MIN]);
        assert_eq!(hist[1], vec![lvl(4), TlpLevel::MIN]);
        assert_eq!(hist[2], vec![TlpLevel::MIN, lvl(4)]);
        assert_eq!(hist[3], vec![TlpLevel::MIN, lvl(4)]);
    }

    #[test]
    fn fi_objective_balances_a_lopsided_table() {
        // App 0's EB dwarfs app 1's unless app 0 is throttled hard.
        let table = |app: usize, levels: &[TlpLevel]| -> f64 {
            let l0 = levels[0].get() as f64;
            match app {
                0 => 0.2 * l0,
                _ => 1.0 / (1.0 + 0.2 * l0),
            }
        };
        let mut pbs = Pbs::new(EbObjective::Fi, TlpLevel::MAX, PbsScaling::None);
        let hist = drive(&mut pbs, vec![TlpLevel::MAX; 2], table, 80);
        let last = hist.last().unwrap();
        assert!(
            last[0] <= lvl(6),
            "FI objective should throttle the EB hog, got {last:?}"
        );
    }

    #[test]
    fn settle_windows_discard_transients() {
        // An adversarial table that reports garbage on every window where
        // the levels just changed would corrupt a settle-free controller;
        // with settle windows the measurement always sees the post-change
        // steady state, so the knee is still found. We emulate by keying EB
        // off the *current* levels only (drive() already applies decisions
        // between windows, so measurements at unsettled combos simply never
        // reach the controller).
        let mut pbs = Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None);
        let hist = drive(&mut pbs, vec![TlpLevel::MAX; 2], knee_table, 80);
        // Each probed combination appears at least twice in a row
        // (settle + measure) during the search.
        let mut runs = Vec::new();
        let mut cur = 1;
        for w in hist.windows(2) {
            if w[0] == w[1] {
                cur += 1;
            } else {
                runs.push(cur);
                cur = 1;
            }
        }
        runs.push(cur);
        assert!(
            runs.iter().take(10).all(|&r| r >= 2),
            "every search combination must persist >=2 windows, got {runs:?}"
        );
    }

    #[test]
    fn probe_override_changes_sweep_base() {
        let mut pbs =
            Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None).with_probe(TlpLevel::MAX);
        let hist = drive(&mut pbs, vec![TlpLevel::MAX; 2], knee_table, 4);
        assert_eq!(
            hist[0],
            vec![TlpLevel::MAX, TlpLevel::MAX],
            "probe at maxTLP"
        );
    }

    #[test]
    fn disabling_settle_halves_the_search_length() {
        let run = |settle: bool| {
            let mut pbs =
                Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None).with_hold_windows(500);
            if !settle {
                pbs = pbs.without_settle();
            }
            let hist = drive(&mut pbs, vec![TlpLevel::MAX; 2], knee_table, 120);
            // Count windows until the long hold begins (settings stop
            // changing).
            let mut search = hist.len();
            let mut run_len = 0;
            for (i, w) in hist.windows(2).enumerate() {
                run_len = if w[0] == w[1] { run_len + 1 } else { 0 };
                if run_len > 20 {
                    search = i - 20;
                    break;
                }
            }
            search
        };
        let with_settle = run(true);
        let without = run(false);
        assert!(
            without < with_settle,
            "settle-free search ({without}) should be shorter than with settle ({with_settle})"
        );
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(
            Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None).name(),
            "PBS-WS"
        );
        assert_eq!(
            Pbs::new(EbObjective::Hs, TlpLevel::MAX, PbsScaling::None).name(),
            "PBS-HS"
        );
    }

    #[test]
    fn mock_table_is_self_consistent() {
        // Guard against the mock: combos map deterministically.
        let a = knee_table(0, &[lvl(2), lvl(8)]);
        let b = knee_table(0, &[lvl(2), lvl(8)]);
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(TlpCombo::pair(lvl(2), lvl(8)), a);
        assert_eq!(m.len(), 1);
    }
}
