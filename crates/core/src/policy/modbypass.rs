//! The Mod+Bypass baseline: TLP modulation plus L1 bypassing for
//! cache-insensitive applications (the multi-application scheme of
//! "Anatomy of GPU memory system for multi-application execution").
//!
//! On top of DynCTA-style modulation, an application whose sampled L1 hit
//! rate shows it "does not take advantage of caches" (§VI-A) is switched to
//! bypass its L1s, eliminating its cache pollution. The paper's criticism
//! stands: the scheme still ignores memory-bandwidth consumption and the
//! combined effect of the co-runners' TLP, which is why PBS outperforms it.

use crate::policy::dyncta::DynCta;
use gpu_sim::control::{Controller, Decision, Observation};
use gpu_types::TlpLevel;

/// Mod+Bypass controller.
#[derive(Debug, Clone)]
pub struct ModBypass {
    modulation: DynCta,
    /// L1 miss rate above which an application is declared cache-insensitive
    /// and bypassed.
    bypass_above: f64,
    /// Miss rate below which bypassing is reverted (hysteresis).
    restore_below: f64,
    /// Windows between forced re-probes: a bypassed application generates no
    /// L1 statistics, so it is periodically un-bypassed for one window to
    /// re-measure its cache sensitivity (otherwise a transiently thrashing
    /// application would stay bypassed forever).
    reprobe_period: u64,
    window: u64,
}

impl ModBypass {
    /// Creates the controller with default thresholds (bypass above 98 %
    /// L1 miss rate — effectively only applications that never reuse a
    /// line — restore below 90 %).
    pub fn new(max_level: TlpLevel) -> Self {
        ModBypass {
            modulation: DynCta::new(max_level),
            bypass_above: 0.98,
            restore_below: 0.90,
            reprobe_period: 16,
            window: 0,
        }
    }

    /// Overrides the bypass thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `restore_below <= bypass_above` and both lie in
    /// `[0, 1]`.
    pub fn with_thresholds(mut self, bypass_above: f64, restore_below: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&bypass_above)
                && (0.0..=1.0).contains(&restore_below)
                && restore_below <= bypass_above,
            "invalid bypass thresholds"
        );
        self.bypass_above = bypass_above;
        self.restore_below = restore_below;
        self
    }
}

impl Controller for ModBypass {
    fn on_window(&mut self, obs: &Observation) -> Decision {
        self.window += 1;
        let mut d = self.modulation.on_window(obs);
        let reprobe = self.window.is_multiple_of(self.reprobe_period);
        for (i, app) in obs.apps.iter().enumerate() {
            if app.window.counters.l1_accesses == 0 {
                // No L1 statistics (fully bypassed window): periodically
                // un-bypass for one window to re-measure.
                if app.bypassed && reprobe {
                    d.bypass[i] = Some(false);
                }
                continue;
            }
            let l1mr = app.window.counters.l1_miss_rate();
            if !app.bypassed && l1mr > self.bypass_above {
                d.bypass[i] = Some(true);
            } else if app.bypassed && l1mr < self.restore_below {
                d.bypass[i] = Some(false);
            }
        }
        d
    }

    fn name(&self) -> &str {
        "Mod+Bypass"
    }

    fn phase(&self) -> Option<&'static str> {
        if self.window.is_multiple_of(self.reprobe_period) && self.window > 0 {
            Some("reprobe")
        } else {
            Some("modulate")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::control::AppObservation;
    use gpu_simt::CoreStats;
    use gpu_types::{AppWindow, MemCounters};

    fn obs(l1_accesses: u64, l1_misses: u64, bypassed: bool) -> Observation {
        let w = AppWindow::new(
            MemCounters {
                l1_accesses,
                l1_misses,
                warp_insts: 100,
                ..MemCounters::new()
            },
            1_000,
            192.0,
        );
        Observation {
            now: 1_000,
            window_cycles: 1_000,
            apps: vec![AppObservation {
                window: w,
                core: CoreStats {
                    cycles: 1_000,
                    insts: 500,
                    ..CoreStats::default()
                },
                tlp: TlpLevel::new(8).unwrap(),
                bypassed,
            }],
        }
    }

    #[test]
    fn streaming_app_gets_bypassed() {
        let mut c = ModBypass::new(TlpLevel::MAX);
        let d = c.on_window(&obs(1_000, 995, false));
        assert_eq!(d.bypass[0], Some(true));
    }

    #[test]
    fn cache_friendly_app_keeps_its_l1() {
        let mut c = ModBypass::new(TlpLevel::MAX);
        let d = c.on_window(&obs(1_000, 300, false));
        assert_eq!(d.bypass[0], None);
    }

    #[test]
    fn bypassed_app_with_no_accesses_stays_put_until_reprobe() {
        let mut c = ModBypass::new(TlpLevel::MAX);
        for _ in 0..15 {
            let d = c.on_window(&obs(0, 0, true));
            assert_eq!(d.bypass[0], None);
        }
        // 16th window: forced re-probe.
        let d = c.on_window(&obs(0, 0, true));
        assert_eq!(d.bypass[0], Some(false));
    }

    #[test]
    fn residual_cached_traffic_can_restore() {
        // A bypassed app still finishing cached in-flight loads shows a low
        // miss rate: restore.
        let mut c = ModBypass::new(TlpLevel::MAX);
        let d = c.on_window(&obs(100, 10, true));
        assert_eq!(d.bypass[0], Some(false));
    }

    #[test]
    #[should_panic(expected = "invalid bypass thresholds")]
    fn bad_thresholds_panic() {
        let _ = ModBypass::new(TlpLevel::MAX).with_thresholds(0.5, 0.9);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(ModBypass::new(TlpLevel::MAX).name(), "Mod+Bypass");
    }
}
