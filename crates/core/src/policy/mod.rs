//! Runtime TLP-management controllers.
//!
//! * [`pbs`] — the paper's contribution: pattern-based searching over live
//!   EB samples (PBS-WS, PBS-FI, PBS-HS).
//! * [`dyncta`] — the DynCTA prior-art baseline: per-application
//!   latency-tolerance-driven TLP modulation, oblivious to co-runners.
//! * [`modbypass`] — the Mod+Bypass baseline: DynCTA-style modulation plus
//!   L1 bypassing for cache-insensitive applications.

pub mod dyncta;
pub mod modbypass;
pub mod pbs;

pub use dyncta::DynCta;
pub use modbypass::ModBypass;
pub use pbs::Pbs;
