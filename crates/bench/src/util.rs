//! Report formatting and saving helpers.

use std::fmt::Write as _;
use std::path::Path;

/// A plain-text report being assembled (one per figure/table).
#[derive(Debug, Clone)]
pub struct Report {
    id: String,
    title: String,
    body: String,
}

impl Report {
    /// Starts a report for artifact `id` (e.g. "fig09") titled `title`.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            body: String::new(),
        }
    }

    /// Appends one line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        self.body.push_str(text.as_ref());
        self.body.push('\n');
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.body.push('\n');
    }

    /// Appends a formatted numeric row: a left-aligned label plus one
    /// fixed-width column per value.
    pub fn row(&mut self, label: &str, values: &[f64]) {
        let mut s = format!("{label:<22}");
        for v in values {
            let _ = write!(s, " {v:>8.3}");
        }
        self.line(s);
    }

    /// Appends a header row matching [`Report::row`]'s layout.
    pub fn header(&mut self, label: &str, columns: &[&str]) {
        let mut s = format!("{label:<22}");
        for c in columns {
            let _ = write!(s, " {c:>8}");
        }
        self.line(s);
    }

    /// The artifact id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        format!("== {} — {} ==\n{}", self.id, self.title, self.body)
    }
}

/// Prints a report and saves it under `results/<id>.txt` (best-effort: a
/// read-only filesystem only loses the file copy).
pub fn run_and_save(report: &Report) {
    let text = report.render();
    println!("{text}");
    let dir = Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join(format!("{}.txt", report.id())), &text);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_header_and_rows() {
        let mut r = Report::new("figX", "demo");
        r.header("workload", &["WS", "FI"]);
        r.row("BFS_FFT", &[1.25, 0.9]);
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("BFS_FFT"));
        assert!(text.contains("1.250"));
    }

    #[test]
    fn rows_align_with_headers() {
        let mut r = Report::new("f", "t");
        r.header("x", &["col"]);
        r.row("y", &[2.0]);
        let text = r.render();
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }
}
