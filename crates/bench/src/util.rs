//! Report formatting and saving helpers, plus the shared command-line
//! options of the campaign binaries.

use ebm_core::eval::EvaluatorConfig;
use gpu_sim::trace::{JsonlSink, NullSink, TraceSink};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A plain-text report being assembled (one per figure/table).
#[derive(Debug, Clone)]
pub struct Report {
    id: String,
    title: String,
    body: String,
}

impl Report {
    /// Starts a report for artifact `id` (e.g. "fig09") titled `title`.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            body: String::new(),
        }
    }

    /// Appends one line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        self.body.push_str(text.as_ref());
        self.body.push('\n');
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.body.push('\n');
    }

    /// Appends a formatted numeric row: a left-aligned label plus one
    /// fixed-width column per value.
    pub fn row(&mut self, label: &str, values: &[f64]) {
        let mut s = format!("{label:<22}");
        for v in values {
            let _ = write!(s, " {v:>8.3}");
        }
        self.line(s);
    }

    /// Appends a header row matching [`Report::row`]'s layout.
    pub fn header(&mut self, label: &str, columns: &[&str]) {
        let mut s = format!("{label:<22}");
        for c in columns {
            let _ = write!(s, " {c:>8}");
        }
        self.line(s);
    }

    /// The artifact id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        format!("== {} — {} ==\n{}", self.id, self.title, self.body)
    }
}

/// Prints a report and saves it under `results/<id>.txt` (best-effort: a
/// read-only filesystem only loses the file copy).
pub fn run_and_save(report: &Report) {
    let text = report.render();
    println!("{text}");
    let dir = Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join(format!("{}.txt", report.id())), &text);
}

/// Command-line options shared by the `experiments` and per-figure
/// binaries (hand-rolled: the workspace is dependency-free).
///
/// * `--quick` — run the scaled-down test campaign instead of the
///   paper-machine one (seconds instead of ~half an hour);
/// * `--only <ids>` — comma-separated artifact ids (e.g.
///   `--only fig09,fig11`); everything else is skipped;
/// * `--trace <path>` — stream the trace-enabled artifacts' events to
///   `<path>` as newline-delimited JSON (see `docs/TRACE_SCHEMA.md`).
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// Use [`EvaluatorConfig::quick`] instead of the paper campaign.
    pub quick: bool,
    /// If set, only artifacts whose id is listed are generated.
    pub only: Option<Vec<String>>,
    /// If set, trace events are written here as JSONL.
    pub trace: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("usage: [--quick] [--only <ids>] [--trace <path>]");
                std::process::exit(2);
            }
        }
    }

    fn try_parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--only" => {
                    let ids = args.next().ok_or("--only needs a comma-separated list")?;
                    out.only = Some(ids.split(',').map(|s| s.trim().to_owned()).collect());
                }
                "--trace" => {
                    let path = args.next().ok_or("--trace needs a file path")?;
                    out.trace = Some(PathBuf::from(path));
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// Whether artifact `id` should be generated under `--only`.
    pub fn wants(&self, id: &str) -> bool {
        match &self.only {
            Some(ids) => ids.iter().any(|x| x == id),
            None => true,
        }
    }

    /// The campaign configuration selected by `--quick`.
    pub fn evaluator_config(&self) -> EvaluatorConfig {
        if self.quick {
            EvaluatorConfig::quick()
        } else {
            EvaluatorConfig::paper()
        }
    }

    /// Opens the `--trace` sink: a [`JsonlSink`] when a path was given
    /// (exiting on I/O errors), a [`NullSink`] otherwise.
    pub fn open_trace(&self) -> Box<dyn TraceSink> {
        match &self.trace {
            Some(path) => match JsonlSink::create(path) {
                Ok(sink) => Box::new(sink),
                Err(e) => {
                    eprintln!("error: cannot open trace file {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
            None => Box::new(NullSink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_args_parse_all_flags() {
        let a = BenchArgs::try_parse(
            ["--quick", "--only", "fig09,fig11", "--trace", "out.jsonl"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(a.quick);
        assert!(a.wants("fig11") && !a.wants("fig10"));
        assert_eq!(a.trace.as_deref(), Some(Path::new("out.jsonl")));
    }

    #[test]
    fn bench_args_default_wants_everything() {
        let a = BenchArgs::try_parse(std::iter::empty()).unwrap();
        assert!(!a.quick && a.trace.is_none());
        assert!(a.wants("anything"));
    }

    #[test]
    fn bench_args_reject_unknown_flags() {
        assert!(BenchArgs::try_parse(["--frobnicate".to_string()].into_iter()).is_err());
    }

    #[test]
    fn report_renders_header_and_rows() {
        let mut r = Report::new("figX", "demo");
        r.header("workload", &["WS", "FI"]);
        r.row("BFS_FFT", &[1.25, 0.9]);
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("BFS_FFT"));
        assert!(text.contains("1.250"));
    }

    #[test]
    fn rows_align_with_headers() {
        let mut r = Report::new("f", "t");
        r.header("x", &["col"]);
        r.row("y", &[2.0]);
        let text = r.render();
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }
}
