//! Report formatting and saving helpers, plus the shared command-line
//! options of the campaign binaries.

use ebm_core::eval::EvaluatorConfig;
use gpu_sim::trace::{JsonlSink, NullSink, TraceSink};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// The process-wide output directory override (`--out`); `None` means the
/// default `results/` relative to the working directory.
static OUT_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Redirects every artifact write (`results/<id>.txt`, figure CSVs) to
/// `dir`; `None` restores the default `results/`.
pub fn set_out_dir(dir: Option<PathBuf>) {
    *OUT_DIR.lock().unwrap() = dir;
}

/// The path an artifact named `file_name` is saved at, honoring `--out`.
pub fn out_path(file_name: &str) -> PathBuf {
    let dir = OUT_DIR
        .lock()
        .unwrap()
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"));
    dir.join(file_name)
}

/// A plain-text report being assembled (one per figure/table).
#[derive(Debug, Clone)]
pub struct Report {
    id: String,
    title: String,
    body: String,
}

impl Report {
    /// Starts a report for artifact `id` (e.g. "fig09") titled `title`.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            body: String::new(),
        }
    }

    /// Appends one line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        self.body.push_str(text.as_ref());
        self.body.push('\n');
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.body.push('\n');
    }

    /// Appends a formatted numeric row: a left-aligned label plus one
    /// fixed-width column per value.
    pub fn row(&mut self, label: &str, values: &[f64]) {
        let mut s = format!("{label:<22}");
        for v in values {
            let _ = write!(s, " {v:>8.3}");
        }
        self.line(s);
    }

    /// Appends a header row matching [`Report::row`]'s layout.
    pub fn header(&mut self, label: &str, columns: &[&str]) {
        let mut s = format!("{label:<22}");
        for c in columns {
            let _ = write!(s, " {c:>8}");
        }
        self.line(s);
    }

    /// The artifact id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        format!("== {} — {} ==\n{}", self.id, self.title, self.body)
    }
}

/// Prints a report and saves it under `<out>/<id>.txt` — `results/` by
/// default, the `--out` directory when given (best-effort: a read-only
/// filesystem only loses the file copy).
pub fn run_and_save(report: &Report) {
    let text = report.render();
    println!("{text}");
    let path = out_path(&format!("{}.txt", report.id()));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, &text);
}

/// Command-line options shared by the `experiments` and per-figure
/// binaries (hand-rolled: the workspace is dependency-free).
///
/// * `--quick` — run the scaled-down test campaign instead of the
///   paper-machine one (seconds instead of ~half an hour);
/// * `--only <ids>` — comma-separated artifact ids (e.g.
///   `--only fig09,fig11`); everything else is skipped;
/// * `--trace <path>` — stream the trace-enabled artifacts' events to
///   `<path>` as newline-delimited JSON (see `docs/TRACE_SCHEMA.md`);
/// * `--cache-dir <path>` — persist simulation results under `<path>`
///   (equivalent to `EBM_CACHE_DIR`); reruns with a warm directory skip
///   simulation;
/// * `--cache-verify <fraction>` — re-simulate that fraction of cache hits
///   and assert bit-identical results (`EBM_CACHE_VERIFY`);
/// * `--no-cache` — disable result memoization entirely (`EBM_CACHE=0`);
///   this also forces `--serial` in `experiments`, since the campaign
///   scheduler hands results to the renders through the cache tiers;
/// * `--serial` — run the `experiments` campaign artifact-by-artifact
///   instead of through the [`crate::campaign`] work-graph scheduler;
/// * `--out <dir>` — save artifacts under `<dir>` instead of `results/`.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// Use [`EvaluatorConfig::quick`] instead of the paper campaign.
    pub quick: bool,
    /// If set, only artifacts whose id is listed are generated.
    pub only: Option<Vec<String>>,
    /// If set, trace events are written here as JSONL.
    pub trace: Option<PathBuf>,
    /// If set, artifacts are saved under this directory instead of
    /// `results/`.
    pub out: Option<PathBuf>,
    /// If set, the persistent result-cache directory.
    pub cache_dir: Option<PathBuf>,
    /// If set, the fraction of cache hits to re-simulate and verify.
    pub cache_verify: Option<f64>,
    /// Disable the result cache (both tiers) for this run.
    pub no_cache: bool,
    /// Run the campaign serially instead of through the work-graph
    /// scheduler (`experiments` only; per-figure binaries ignore it).
    pub serial: bool,
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--quick] [--only <ids>] [--trace <path>] [--out <dir>] \
                     [--cache-dir <path>] [--cache-verify <fraction>] [--no-cache] [--serial]"
                );
                std::process::exit(2);
            }
        }
    }

    fn try_parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--only" => {
                    let ids = args.next().ok_or("--only needs a comma-separated list")?;
                    out.only = Some(ids.split(',').map(|s| s.trim().to_owned()).collect());
                }
                "--trace" => {
                    let path = args.next().ok_or("--trace needs a file path")?;
                    out.trace = Some(PathBuf::from(path));
                }
                "--out" => {
                    let path = args.next().ok_or("--out needs a directory path")?;
                    out.out = Some(PathBuf::from(path));
                }
                "--cache-dir" => {
                    let path = args.next().ok_or("--cache-dir needs a directory path")?;
                    out.cache_dir = Some(PathBuf::from(path));
                }
                "--cache-verify" => {
                    let f = args.next().ok_or("--cache-verify needs a fraction")?;
                    let f: f64 = f
                        .parse()
                        .map_err(|_| format!("--cache-verify: `{f}` is not a number"))?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(format!("--cache-verify: {f} is outside [0, 1]"));
                    }
                    out.cache_verify = Some(f);
                }
                "--no-cache" => out.no_cache = true,
                "--serial" => out.serial = true,
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// Applies the process-wide flags: the cache switches (which override
    /// the `EBM_CACHE*` environment) and the `--out` artifact directory.
    /// Call once at startup.
    pub fn apply_settings(&self) {
        if self.no_cache {
            gpu_sim::cache::set_enabled(false);
        }
        if let Some(dir) = &self.cache_dir {
            gpu_sim::cache::set_dir(Some(dir.clone()));
        }
        if let Some(f) = self.cache_verify {
            gpu_sim::cache::set_verify_fraction(f);
        }
        set_out_dir(self.out.clone());
    }

    /// Whether artifact `id` should be generated under `--only`.
    pub fn wants(&self, id: &str) -> bool {
        match &self.only {
            Some(ids) => ids.iter().any(|x| x == id),
            None => true,
        }
    }

    /// The campaign configuration selected by `--quick`.
    pub fn evaluator_config(&self) -> EvaluatorConfig {
        if self.quick {
            EvaluatorConfig::quick()
        } else {
            EvaluatorConfig::paper()
        }
    }

    /// Opens the `--trace` sink: a [`JsonlSink`] when a path was given
    /// (exiting on I/O errors), a [`NullSink`] otherwise.
    pub fn open_trace(&self) -> Box<dyn TraceSink> {
        match &self.trace {
            Some(path) => match JsonlSink::create(path) {
                Ok(sink) => Box::new(sink),
                Err(e) => {
                    eprintln!("error: cannot open trace file {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
            None => Box::new(NullSink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn bench_args_parse_all_flags() {
        let a = BenchArgs::try_parse(
            ["--quick", "--only", "fig09,fig11", "--trace", "out.jsonl"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(a.quick);
        assert!(a.wants("fig11") && !a.wants("fig10"));
        assert_eq!(a.trace.as_deref(), Some(Path::new("out.jsonl")));
    }

    #[test]
    fn bench_args_default_wants_everything() {
        let a = BenchArgs::try_parse(std::iter::empty()).unwrap();
        assert!(!a.quick && a.trace.is_none());
        assert!(a.wants("anything"));
    }

    #[test]
    fn bench_args_reject_unknown_flags() {
        assert!(BenchArgs::try_parse(["--frobnicate".to_string()].into_iter()).is_err());
    }

    #[test]
    fn bench_args_parse_cache_flags() {
        let a = BenchArgs::try_parse(
            [
                "--cache-dir",
                "/tmp/c",
                "--cache-verify",
                "0.25",
                "--no-cache",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.cache_dir.as_deref(), Some(Path::new("/tmp/c")));
        assert_eq!(a.cache_verify, Some(0.25));
        assert!(a.no_cache);
    }

    #[test]
    fn bench_args_parse_out_dir() {
        let a = BenchArgs::try_parse(["--out", "/tmp/r"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(a.out.as_deref(), Some(Path::new("/tmp/r")));
        assert!(BenchArgs::try_parse(["--out".to_string()].into_iter()).is_err());
    }

    #[test]
    fn bench_args_reject_bad_verify_fraction() {
        for bad in ["--cache-verify 2.0", "--cache-verify nope"] {
            let words: Vec<String> = bad.split(' ').map(|s| s.to_string()).collect();
            assert!(BenchArgs::try_parse(words.into_iter()).is_err(), "{bad}");
        }
    }

    #[test]
    fn report_renders_header_and_rows() {
        let mut r = Report::new("figX", "demo");
        r.header("workload", &["WS", "FI"]);
        r.row("BFS_FFT", &[1.25, 0.9]);
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("BFS_FFT"));
        assert!(text.contains("1.250"));
    }

    #[test]
    fn rows_align_with_headers() {
        let mut r = Report::new("f", "t");
        r.header("x", &["col"]);
        r.row("y", &[2.0]);
        let text = r.render();
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }
}
