//! Generators for every table and figure of the paper's evaluation.
//!
//! Each function renders one artifact as a [`Report`]; the per-experiment
//! index in `DESIGN.md` maps them back to the paper. All generators share
//! one memoizing [`Evaluator`], so alone profiles and 64-combination sweeps
//! are measured once per campaign.

use crate::util::Report;
use ebm_core::eval::{Evaluator, Scheme};
use ebm_core::hw::OverheadReport;
use ebm_core::metrics::{alone_ratio, EbObjective};
use ebm_core::pattern::{pbs_offline_search, SweepCurve};
use ebm_core::pbsrun::{run_pbs_cached, PbsRunSpec};
use ebm_core::scaling::ScalingFactors;
use ebm_core::search::{best_combo_by_eb, best_combo_by_sd};
use ebm_core::sweep::ComboSweep;
use gpu_sim::alone::profile_alone;
use gpu_sim::control::Controller;
use gpu_sim::harness::{measure_fixed_cached, run_controlled_traced, FixedRunInputs, RunSpec};
use gpu_sim::machine::Gpu;
use gpu_sim::metrics::{fi_of, gmean, hs_of, ws_of};
use gpu_sim::trace::{NullSink, RingSink, TraceSink};
use gpu_types::{GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::{all_apps, representative_workloads, Workload};

fn pair(a: &str, b: &str) -> Workload {
    Workload::pair(a, b)
}

/// Fig. 1: WS and FI of BFS_FFT under ++bestTLP, ++maxTLP and the oracle
/// combinations, normalized to ++bestTLP.
pub fn fig01(ev: &Evaluator) -> Report {
    let mut r = Report::new("fig01", "WS and FI for BFS_FFT (normalized to ++bestTLP)");
    let w = pair("BFS", "FFT");
    let base = ev.evaluate(&w, Scheme::BestTlp);
    r.header("scheme", &["WS", "FI", "combo0", "combo1"]);
    for s in [
        Scheme::BestTlp,
        Scheme::MaxTlp,
        Scheme::Opt(EbObjective::Ws),
        Scheme::Opt(EbObjective::Fi),
    ] {
        let res = ev.evaluate(&w, s);
        let combo = res.combo.clone().expect("static scheme");
        r.row(
            &s.to_string(),
            &[
                res.metrics.ws / base.metrics.ws,
                res.metrics.fi / base.metrics.fi,
                combo.level(0).get() as f64,
                combo.level(1).get() as f64,
            ],
        );
    }
    r.line("shape goal: opt columns well above 1.0; ++maxTLP at or below ++bestTLP.");
    r
}

/// Fig. 2: effect of TLP on IPC, BW, CMR and EB for BFS running alone
/// (all normalized to the bestTLP values, as in the paper).
pub fn fig02(ev: &Evaluator) -> Report {
    let mut r = Report::new("fig02", "TLP sweep for BFS alone (normalized to bestTLP)");
    let n = ev.config().gpu.n_cores / 2;
    let p = ev
        .alone(gpu_workloads::by_name("BFS").expect("BFS exists"), n)
        .clone();
    let best = *p.best();
    r.line(format!("bestTLP = {}", p.best_tlp()));
    r.header("TLP", &["IPC", "BW", "CMR", "EB"]);
    for s in &p.samples {
        r.row(
            &s.tlp.to_string(),
            &[
                s.ipc / best.ipc,
                s.bw / best.bw,
                s.cmr / best.cmr,
                s.eb / best.eb,
            ],
        );
    }
    r.line("shape goals: IPC hill peaking at bestTLP; BW rises then saturates;");
    r.line("CMR grows with TLP; EB tracks IPC (the paper's central observation).");
    r
}

/// Fig. 3: effective bandwidth observed at the DRAM (A), at the L2 (B) and
/// at the core (C) for a cache-sensitive (BFS) and a cache-insensitive
/// (BLK) application.
pub fn fig03(ev: &Evaluator) -> Report {
    let mut r = Report::new("fig03", "EB at hierarchy levels A (DRAM), B (L2), C (core)");
    let n = ev.config().gpu.n_cores / 2;
    r.header("app", &["A=BW", "B", "C=EB", "L1MR", "L2MR"]);
    for name in ["BFS", "BLK"] {
        let p = ev
            .alone(gpu_workloads::by_name(name).expect("known app"), n)
            .clone();
        let b = p.best();
        let at_l2 = b.bw / b.l2_miss_rate.max(1e-9);
        r.row(name, &[b.bw, at_l2, b.eb, b.l1_miss_rate, b.l2_miss_rate]);
    }
    r.line("shape goal: A <= B <= C for BFS (caches amplify); A = B = C for BLK (CMR = 1).");
    r
}

/// Fig. 4: per-application slowdown and EB stacks under ++bestTLP versus
/// the optimal combinations, for the ten representative workloads.
pub fn fig04(ev: &Evaluator) -> Report {
    let mut r = Report::new(
        "fig04",
        "per-app SD (++bestTLP vs optWS) and EB (++bestTLP vs BF-WS) stacks",
    );
    r.header(
        "workload",
        &[
            "SD1b", "SD2b", "SD1o", "SD2o", "EB1b", "EB2b", "EB1o", "EB2o",
        ],
    );
    for w in representative_workloads() {
        let alone = ev.alone_ipcs(&w);
        let best = ev.best_tlp_combo(&w);
        let scaling = ScalingFactors::none(2);
        let sweep = ev.sweep(&w).clone();
        let (opt, _) = best_combo_by_sd(&sweep, EbObjective::Ws, &alone);
        let (bf, _) = best_combo_by_eb(&sweep, EbObjective::Ws, &scaling);
        let sd = |c: &TlpCombo| -> Vec<f64> {
            sweep
                .ipcs(c)
                .iter()
                .zip(&alone)
                .map(|(i, a)| i / a)
                .collect()
        };
        let (sb, so) = (sd(&best), sd(&opt));
        let (eb, eo) = (sweep.ebs(&best), sweep.ebs(&bf));
        r.row(
            &w.name(),
            &[sb[0], sb[1], so[0], so[1], eb[0], eb[1], eo[0], eo[1]],
        );
    }
    r.line("shape goals: SD1o+SD2o >= SD1b+SD2b on every row (Observation 1:");
    r.line("the combo with the highest EB sum also gives the highest WS), and the");
    r.line("opt stacks are more balanced than the bestTLP stacks.");
    r
}

/// Fig. 5: `IPC_AR` versus `EB_AR` over all two-application pairings of the
/// 26 applications.
pub fn fig05(ev: &Evaluator) -> Report {
    let mut r = Report::new(
        "fig05",
        "alone-ratio bias: IPC_AR vs EB_AR over all pairings",
    );
    let n = ev.config().gpu.n_cores / 2;
    let profiles: Vec<(f64, f64)> = all_apps()
        .iter()
        .map(|a| {
            let p = ev.alone(a, n);
            (p.ipc_at_best(), p.eb_at_best())
        })
        .collect();
    let mut ipc_ars = Vec::new();
    let mut eb_ars = Vec::new();
    for i in 0..profiles.len() {
        for j in i + 1..profiles.len() {
            ipc_ars.push(alone_ratio(profiles[i].0, profiles[j].0));
            eb_ars.push(alone_ratio(profiles[i].1, profiles[j].1));
        }
    }
    let wins = ipc_ars.iter().zip(&eb_ars).filter(|(i, e)| e < i).count();
    r.header("statistic", &["IPC_AR", "EB_AR"]);
    r.row("geometric mean", &[gmean(&ipc_ars), gmean(&eb_ars)]);
    r.row(
        "arithmetic mean",
        &[
            ipc_ars.iter().sum::<f64>() / ipc_ars.len() as f64,
            eb_ars.iter().sum::<f64>() / eb_ars.len() as f64,
        ],
    );
    r.row(
        "max",
        &[
            ipc_ars.iter().copied().fold(0.0, f64::max),
            eb_ars.iter().copied().fold(0.0, f64::max),
        ],
    );
    r.line(format!(
        "EB_AR < IPC_AR in {wins} of {} pairings ({:.0}%)",
        ipc_ars.len(),
        100.0 * wins as f64 / ipc_ars.len() as f64
    ));
    r.line("shape goal: EB_AR is much lower than IPC_AR on average — the §IV");
    r.line("argument for optimizing EB-based rather than IPC-based system metrics.");
    r
}

fn grid_section(r: &mut Report, sweep: &ComboSweep, title: &str, value: impl Fn(&TlpCombo) -> f64) {
    let levels = sweep.levels();
    r.line(title);
    let cols: Vec<String> = levels.iter().map(|l| l.to_string()).collect();
    r.header(
        "TLP0 \\ TLP1",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for l0 in &levels {
        let vals: Vec<f64> = levels
            .iter()
            .map(|l1| value(&TlpCombo::pair(*l0, *l1)))
            .collect();
        r.row(&l0.to_string(), &vals);
    }
    r.blank();
}

/// Fig. 6: the EB-WS pattern surfaces of BLK_TRD — the inflection point of
/// the critical application stays at the same TLP level regardless of the
/// co-runner's TLP.
pub fn fig06(ev: &Evaluator) -> Report {
    let mut r = Report::new("fig06", "EB-WS patterns for BLK_TRD");
    let w = pair("BLK", "TRD");
    let sweep = ev.sweep(&w).clone();
    let scaling = ScalingFactors::none(2);
    grid_section(
        &mut r,
        &sweep,
        "EB-WS (rows: TLP-BLK, cols: TLP-TRD)",
        |c| EbObjective::Ws.value(&sweep.ebs(c)),
    );
    grid_section(&mut r, &sweep, "EB-BLK", |c| sweep.ebs(c)[0]);
    grid_section(&mut r, &sweep, "EB-TRD", |c| sweep.ebs(c)[1]);
    // Pattern consistency: the knee of app 0's EB-WS curve for each fixed
    // co-runner level.
    let levels = sweep.levels();
    let knees: Vec<f64> = levels
        .iter()
        .map(|l1| {
            let fixed = TlpCombo::pair(levels[0], *l1);
            SweepCurve::from_sweep(&sweep, 0, &fixed, EbObjective::Ws, &scaling)
                .knee()
                .get() as f64
        })
        .collect();
    let cols: Vec<String> = levels.iter().map(|l| l.to_string()).collect();
    r.header(
        "knee of TLP-BLK at TLP-TRD =",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    r.row("knee(EB-WS)", &knees);
    r.line("shape goal: the knee row is (nearly) constant — the \"pattern\" PBS exploits.");
    r
}

/// Fig. 7: the PBS-FI view (scaled EB-difference) and PBS-HS view (EB-HS)
/// of BLK_TRD, with sampled and exact scaling factors.
pub fn fig07(ev: &Evaluator) -> Report {
    let mut r = Report::new("fig07", "PBS-FI and PBS-HS views of BLK_TRD");
    let w = pair("BLK", "TRD");
    let sampled = ev.sampled_factors(&w);
    let exact = ev.exact_factors(&w);
    let sweep = ev.sweep(&w).clone();
    for (name, f) in [("sampled", &sampled), ("exact", &exact)] {
        grid_section(
            &mut r,
            &sweep,
            &format!("scaled EB-difference, {name} factors (0 = perfectly fair)"),
            |c| {
                let e = f.apply(&sweep.ebs(c));
                e[0] - e[1]
            },
        );
    }
    grid_section(&mut r, &sweep, "EB-HS (sampled factors)", |c| {
        EbObjective::Hs.value(&sampled.apply(&sweep.ebs(c)))
    });
    let (fi_combo, _) = pbs_offline_search(&sweep, EbObjective::Fi, &sampled);
    let (hs_combo, _) = pbs_offline_search(&sweep, EbObjective::Hs, &sampled);
    let alone = ev.alone_ipcs(&w);
    let (opt_fi, _) = best_combo_by_sd(&sweep, EbObjective::Fi, &alone);
    let (opt_hs, _) = best_combo_by_sd(&sweep, EbObjective::Hs, &alone);
    r.line(format!(
        "PBS-FI (offline) picks {fi_combo}; optFI is {opt_fi}"
    ));
    r.line(format!(
        "PBS-HS (offline) picks {hs_combo}; optHS is {opt_hs}"
    ));
    r.line("shape goal: near-zero EB-difference cells coincide with high-FI combos,");
    r.line("and the PBS picks land near the oracle picks.");
    r
}

/// Fig. 8: the hardware organization's overhead budget (§V-E).
pub fn fig08() -> Report {
    let mut r = Report::new("fig08", "sampling-hardware overhead budget (§V-E)");
    let cfg = GpuConfig::paper();
    for apps in [2usize, 3] {
        let o = OverheadReport::for_machine(&cfg, apps);
        r.line(format!("--- {apps} applications ---"));
        r.line(o.to_string());
        r.line(format!(
            "relay bandwidth       : {:.4} bits/cycle (crossbar flit = {} bits)",
            o.relay_bits_per_cycle(apps),
            8 * 32
        ));
        r.blank();
    }
    r.line("shape goal: total storage well under a few KB; relay traffic negligible");
    r.line("against the crossbar's flit bandwidth.");
    r
}

fn scheme_figure(
    ev: &Evaluator,
    id: &str,
    objective: EbObjective,
    metric: impl Fn(&gpu_sim::metrics::SystemMetrics) -> f64,
    workloads: &[Workload],
) -> Report {
    let metric_name = objective.to_string();
    let mut r = Report::new(
        id,
        &format!("{metric_name} of all schemes, normalized to ++bestTLP"),
    );
    let schemes = [
        Scheme::DynCta,
        Scheme::ModBypass,
        Scheme::Pbs(objective),
        Scheme::PbsOffline(objective),
        Scheme::BruteForce(objective),
        Scheme::Opt(objective),
    ];
    let cols: Vec<String> = schemes.iter().map(|s| s.to_string()).collect();
    r.header(
        "workload",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let representative: Vec<String> = representative_workloads()
        .iter()
        .map(Workload::name)
        .collect();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for w in workloads {
        let _span = crate::profiler::span("sweep", &w.name());
        // One batch per workload: the baseline plus all six schemes fan out
        // across worker threads (results identical to serial evaluation).
        let mut batch = vec![Scheme::BestTlp];
        batch.extend_from_slice(&schemes);
        let results = ev.evaluate_batch(w, &batch);
        let base = metric(&results[0].metrics).max(1e-9);
        let mut vals = Vec::new();
        for (i, res) in results[1..].iter().enumerate() {
            let v = metric(&res.metrics) / base;
            per_scheme[i].push(v.max(1e-9));
            vals.push(v);
        }
        if representative.contains(&w.name()) {
            r.row(&w.name(), &vals);
        }
        crate::logging::progress_dot();
    }
    crate::logging::progress_end();
    let gmeans: Vec<f64> = per_scheme.iter().map(|v| gmean(v)).collect();
    r.row("Gmean (all)", &gmeans);
    r
}

/// Fig. 9: weighted speedup of every scheme across the evaluated workloads,
/// normalized to ++bestTLP (representative rows plus the Gmean over all).
pub fn fig09(ev: &Evaluator, workloads: &[Workload]) -> Report {
    let mut r = scheme_figure(ev, "fig09", EbObjective::Ws, |m| m.ws, workloads);
    r.line("shape goals: PBS-WS and its offline variant above ++DynCTA and");
    r.line("Mod+Bypass; BF-WS within a few % of optWS; all above the 1.0 baseline.");
    r
}

/// Fig. 10: fairness index, same schemes (FI variants).
pub fn fig10(ev: &Evaluator, workloads: &[Workload]) -> Report {
    let mut r = scheme_figure(ev, "fig10", EbObjective::Fi, |m| m.fi, workloads);
    r.line("shape goals: PBS-FI improves fairness severalfold over ++bestTLP on");
    r.line("unfair workloads; BF-FI/optFI bound it from above.");
    r
}

/// §VI-C: harmonic weighted speedup, same schemes (HS variants).
pub fn hs_results(ev: &Evaluator, workloads: &[Workload]) -> Report {
    let mut r = scheme_figure(ev, "hs", EbObjective::Hs, |m| m.hs, workloads);
    r.line("shape goal: PBS-HS lands between PBS-WS (throughput-leaning) and");
    r.line("PBS-FI (fairness-leaning) on both WS and FI — HS balances the two.");
    r
}

/// Fig. 11: TLP decisions over time for BLK_BFS under PBS-WS and PBS-FI.
/// Also exports the per-window metric series to `results/fig11_<obj>.csv`.
///
/// Equivalent to [`fig11_traced`] with a [`NullSink`] (no trace persisted).
pub fn fig11(ev: &Evaluator) -> Report {
    fig11_traced(ev, &mut NullSink)
}

/// [`fig11`] driven through the generic trace layer: each PBS run is
/// captured into an in-memory [`RingSink`], the per-window CSV series is
/// reconstructed from the captured `window_sample` events (byte-identical
/// to the harness's bespoke `ControlledRun::series_csv`), and every
/// captured event is then replayed into `sink` — pass a
/// [`gpu_sim::JsonlSink`] to persist the raw trace (the `--trace <path>`
/// flag of the `experiments`/`fig11` binaries).
pub fn fig11_traced(ev: &Evaluator, sink: &mut dyn TraceSink) -> Report {
    let mut r = Report::new("fig11", "TLP over time for BLK_BFS under PBS");
    let cfg = ev.config().gpu.clone();
    let seed = ev.config().seed;
    let w = pair("BLK", "BFS");
    for objective in [EbObjective::Ws, EbObjective::Fi] {
        let _span = crate::profiler::span("run", &format!("fig11_PBS-{objective}"));
        let scaling = if objective.wants_scaling() {
            ebm_core::policy::pbs::PbsScaling::Sampled
        } else {
            ebm_core::policy::pbs::PbsScaling::None
        };
        let mut pbs = ebm_core::Pbs::new(objective, cfg.max_tlp(), scaling)
            .with_hold_windows(ev.config().pbs_hold_windows);
        let mut gpu = Gpu::new(&cfg, w.apps(), seed);
        gpu.set_combo(&TlpCombo::uniform(cfg.max_tlp(), 2));
        // Generous bound: a paper-length run emits a few thousand events
        // per kind, far below this, so nothing is ever dropped.
        let mut ring = RingSink::new(1 << 20);
        let run = run_controlled_traced(
            &mut gpu,
            &mut pbs as &mut dyn Controller,
            ev.config().run_cycles,
            ev.config().measure_from,
            &mut ring,
        );
        let events = ring.drain();
        let csv_path = crate::util::out_path(&format!("fig11_{objective}.csv"));
        if let Some(dir) = csv_path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(&csv_path, gpu_sim::trace::series_csv(&events));
        if sink.enabled() {
            for e in events {
                sink.emit(e);
            }
            sink.flush();
        }
        r.line(format!(
            "--- PBS-{objective}: {} TLP changes over {} windows (search probed {} combos) ---",
            run.tlp_trace.len(),
            run.n_windows,
            pbs.samples_last_search()
        ));
        r.header("cycle", &["TLP-BLK", "TLP-BFS"]);
        for (cycle, levels) in &run.tlp_trace {
            r.row(
                &format!("{cycle}"),
                &[levels[0].get() as f64, levels[1].get() as f64],
            );
        }
        // Report text stays `--out`-independent so cached and redirected
        // runs stay byte-identical; only the actual write moves.
        r.line(format!(
            "(per-window IPC/BW/CMR/EB series written to fig11_{objective}.csv)"
        ));
        r.blank();
    }
    r.line("shape goal: dense sampling phases (the shaded regions of Fig. 11)");
    r.line("followed by long stable holds at the chosen combination.");
    r
}

/// Table IV: alone-run characteristics of all 26 applications.
pub fn tab04(ev: &Evaluator) -> Report {
    let mut r = Report::new("tab04", "Table IV: IPC@bestTLP, EB@bestTLP, groups");
    let n = ev.config().gpu.n_cores / 2;
    r.header("app", &["IPC", "EB", "BW", "CMR", "bestTLP"]);
    let mut rows: Vec<(&str, f64, f64, f64, f64, f64, &str)> = Vec::new();
    for a in all_apps() {
        let p = ev.alone(a, n);
        let b = p.best();
        rows.push((
            a.name,
            b.ipc,
            b.eb,
            b.bw,
            b.cmr,
            b.tlp.get() as f64,
            match a.group {
                gpu_workloads::EbGroup::G1 => "G1",
                gpu_workloads::EbGroup::G2 => "G2",
                gpu_workloads::EbGroup::G3 => "G3",
                gpu_workloads::EbGroup::G4 => "G4",
            },
        ));
    }
    rows.sort_by(|a, b| a.2.total_cmp(&b.2));
    for (name, ipc, eb, bw, cmr, best, group) in rows {
        r.row(&format!("{name} [{group}]"), &[ipc, eb, bw, cmr, best]);
    }
    let avgs = ev.group_averages();
    r.blank();
    r.line("group-average alone EB (the user-supplied scaling factors):");
    let mut groups: Vec<_> = avgs.into_iter().collect();
    groups.sort_by_key(|(g, _)| *g);
    for (g, avg) in groups {
        r.line(format!("  {g}: {avg:.3}"));
    }
    r.line("shape goal: EB spread from well below 1 (G1) to several (G4), with");
    r.line("groups ordered by EB.");
    r
}

/// §VI-D sensitivity: core-partition splits and L2 capacity.
pub fn sens_part(ev: &Evaluator) -> Report {
    let mut r = Report::new("sens_part", "sensitivity: core split and L2 capacity");
    let seed = ev.config().seed;
    let sweep_spec = RunSpec::new(10_000, 25_000);

    r.line("--- core-partition split (BLK_BFS): WS of ++bestTLP vs optWS ---");
    r.header("split", &["bestWS", "optWS", "gain%"]);
    let w = pair("BLK", "BFS");
    // Quarter/half/three-quarter splits of whatever machine is configured:
    // (4,12), (8,8), (12,4) on the paper machine, scaled down under
    // `--quick` instead of exceeding the small machine's cores.
    let total = ev.config().gpu.n_cores;
    let quarter = (total / 4).max(1);
    for (c0, c1) in [
        (quarter, total - quarter),
        (total / 2, total - total / 2),
        (total - quarter, quarter),
    ] {
        let cfg = ev.config().gpu.clone();
        let alone: Vec<f64> = w
            .apps()
            .iter()
            .zip([c0, c1])
            .map(|(a, n)| {
                profile_alone(&cfg, a, n, seed, RunSpec::new(10_000, 25_000)).ipc_at_best()
            })
            .collect();
        let best_combo = TlpCombo::new(
            w.apps()
                .iter()
                .zip([c0, c1])
                .map(|(a, n)| {
                    profile_alone(&cfg, a, n, seed, RunSpec::new(10_000, 25_000)).best_tlp()
                })
                .collect(),
        );
        // Exhaustive sweep on this split.
        let mut best_ws = (best_combo.clone(), 0.0f64);
        let mut base_ws = 0.0;
        let split = [c0, c1];
        for combo in ComboSweep::combos(&cfg, 2) {
            let inputs = FixedRunInputs {
                cfg: &cfg,
                apps: w.apps(),
                core_split: Some(&split),
                seed,
                ccws: false,
            };
            let windows = measure_fixed_cached(&inputs, &combo, sweep_spec);
            let sds: Vec<f64> = windows
                .iter()
                .zip(&alone)
                .map(|(x, a)| x.ipc() / a)
                .collect();
            let ws = ws_of(&sds);
            if ws > best_ws.1 {
                best_ws = (combo.clone(), ws);
            }
            if combo == best_combo {
                base_ws = ws;
            }
        }
        r.row(
            &format!("({c0},{c1})"),
            &[
                base_ws,
                best_ws.1,
                100.0 * (best_ws.1 / base_ws.max(1e-9) - 1.0),
            ],
        );
        crate::logging::progress_dot();
    }
    r.blank();

    r.line("--- L2 capacity (BFS_FFT): WS of ++bestTLP vs optWS ---");
    r.header("L2/partition", &["bestWS", "optWS", "gain%"]);
    let w = pair("BFS", "FFT");
    for l2_kb in [64u64, 128, 256] {
        let mut cfg = ev.config().gpu.clone();
        cfg.l2.capacity_bytes = l2_kb * 1024;
        let n = cfg.n_cores / 2;
        let profiles: Vec<_> = w
            .apps()
            .iter()
            .map(|a| profile_alone(&cfg, a, n, seed, RunSpec::new(10_000, 25_000)))
            .collect();
        let alone: Vec<f64> = profiles.iter().map(|p| p.ipc_at_best()).collect();
        let best_combo = TlpCombo::new(profiles.iter().map(|p| p.best_tlp()).collect());
        let sweep = ComboSweep::measure(&cfg, &w, seed, sweep_spec);
        let (_, opt_ws) = best_combo_by_sd(&sweep, EbObjective::Ws, &alone);
        let base_sds: Vec<f64> = sweep
            .ipcs(&best_combo)
            .iter()
            .zip(&alone)
            .map(|(i, a)| i / a)
            .collect();
        let base_ws = ws_of(&base_sds);
        r.row(
            &format!("{l2_kb} KB"),
            &[base_ws, opt_ws, 100.0 * (opt_ws / base_ws.max(1e-9) - 1.0)],
        );
        crate::logging::progress_dot();
    }
    crate::logging::progress_end();
    r.line("shape goals: the opt gain persists across splits; smaller L2 slices");
    r.line("increase contention and the achievable gain.");
    r
}

/// §VI-D: PBS extends to three co-scheduled applications.
pub fn threeapp(ev: &Evaluator) -> Report {
    let mut r = Report::new("threeapp", "three-application workloads under PBS");
    let cfg = ev.config().gpu.clone();
    let seed = ev.config().seed;
    // An even three-way split of the configured machine: 3 x 5 cores with
    // one idle on the 16-core paper machine, scaled down under `--quick`.
    let per_app = (ev.config().gpu.n_cores / 3).max(1);
    let mixes: [[&str; 3]; 4] = [
        ["BLK", "BFS", "FFT"],
        ["TRD", "DS", "JPEG"],
        ["SCP", "HS", "GUPS"],
        ["LIB", "BLK", "BFS"],
    ];
    r.header(
        "workload",
        &["bestWS", "maxWS", "pbsWS", "bestFI", "maxFI", "pbsFI"],
    );
    for mix in mixes {
        let apps: Vec<&gpu_workloads::AppProfile> = mix
            .iter()
            .map(|n| gpu_workloads::by_name(n).expect("known app"))
            .collect();
        let profiles: Vec<_> = apps
            .iter()
            .map(|a| profile_alone(&cfg, a, per_app, seed, RunSpec::new(10_000, 25_000)))
            .collect();
        let alone: Vec<f64> = profiles.iter().map(|p| p.ipc_at_best()).collect();
        let best = TlpCombo::new(profiles.iter().map(|p| p.best_tlp()).collect());
        let max = TlpCombo::uniform(cfg.max_tlp(), 3);

        let split = [per_app; 3];
        let run_static = |combo: &TlpCombo| -> Vec<f64> {
            let inputs = FixedRunInputs {
                cfg: &cfg,
                apps: &apps,
                core_split: Some(&split),
                seed,
                ccws: false,
            };
            let windows = measure_fixed_cached(&inputs, combo, RunSpec::new(3_000, 300_000));
            windows
                .iter()
                .zip(&alone)
                .map(|(w, a)| w.ipc() / a)
                .collect()
        };
        let sd_best = run_static(&best);
        let sd_max = run_static(&max);

        let run = run_pbs_cached(
            &FixedRunInputs {
                cfg: &cfg,
                apps: &apps,
                core_split: Some(&split),
                seed,
                ccws: false,
            },
            &max,
            300_000,
            3_000,
            &PbsRunSpec::paper(EbObjective::Ws, 150),
        );
        let sd_pbs: Vec<f64> = run
            .overall
            .iter()
            .zip(&alone)
            .map(|(w, a)| w.ipc() / a)
            .collect();

        r.row(
            &mix.join("_"),
            &[
                ws_of(&sd_best),
                ws_of(&sd_max),
                ws_of(&sd_pbs),
                fi_of(&sd_best),
                fi_of(&sd_max),
                fi_of(&sd_pbs),
            ],
        );
        crate::logging::progress_dot();
    }
    crate::logging::progress_end();
    r.line("shape goal: PBS-WS matches or beats ++bestTLP WS while improving FI,");
    r.line("with a search that still costs far fewer samples than the 512-combination");
    r.line("exhaustive space (§VI-D: PBS extends trivially to n applications).");
    r
}

/// DRAM page-policy ablation: the evaluation's row-locality behaviour
/// under open-page (the paper's FR-FCFS baseline) versus closed-page
/// (auto-precharge) row management.
pub fn dram_policy(ev: &Evaluator) -> Report {
    let mut r = Report::new("dram_policy", "DRAM page-policy ablation: open vs closed");
    let seed = ev.config().seed;

    r.line("--- alone attained BW at maxTLP ---");
    r.header("app", &["open BW", "closed BW", "open RH%", "closed RH%"]);
    for name in ["BLK", "GUPS"] {
        let app = gpu_workloads::by_name(name).expect("known app");
        let mut vals = Vec::new();
        let mut hits = Vec::new();
        for policy in [gpu_types::PagePolicy::Open, gpu_types::PagePolicy::Closed] {
            let mut cfg = ev.config().gpu.clone();
            cfg.dram.page_policy = policy;
            let n = cfg.n_cores / 2;
            let split = [n];
            let inputs = FixedRunInputs {
                cfg: &cfg,
                apps: &[app],
                core_split: Some(&split),
                seed,
                ccws: false,
            };
            let w = measure_fixed_cached(
                &inputs,
                &TlpCombo::uniform(cfg.max_tlp(), 1),
                RunSpec::new(10_000, 25_000),
            );
            vals.push(w[0].attained_bw());
            hits.push(100.0 * w[0].counters.row_hit_rate());
        }
        r.row(name, &[vals[0], vals[1], hits[0], hits[1]]);
    }
    r.blank();

    r.line("--- BFS_FFT: ++bestTLP WS vs optWS under each policy ---");
    r.header("policy", &["bestWS", "optWS", "gain%"]);
    let w = pair("BFS", "FFT");
    for policy in [gpu_types::PagePolicy::Open, gpu_types::PagePolicy::Closed] {
        let mut cfg = ev.config().gpu.clone();
        cfg.dram.page_policy = policy;
        let n = cfg.n_cores / 2;
        let profiles: Vec<_> = w
            .apps()
            .iter()
            .map(|app| profile_alone(&cfg, app, n, seed, RunSpec::new(10_000, 25_000)))
            .collect();
        let alone: Vec<f64> = profiles.iter().map(|p| p.ipc_at_best()).collect();
        let best = TlpCombo::new(profiles.iter().map(|p| p.best_tlp()).collect());
        let sweep = ComboSweep::measure(&cfg, &w, seed, RunSpec::new(10_000, 25_000));
        let (_, opt_ws) = best_combo_by_sd(&sweep, EbObjective::Ws, &alone);
        let base = ws_of(
            &sweep
                .ipcs(&best)
                .iter()
                .zip(&alone)
                .map(|(i, x)| i / x)
                .collect::<Vec<_>>(),
        );
        r.row(
            &format!("{policy:?}"),
            &[base, opt_ws, 100.0 * (opt_ws / base.max(1e-9) - 1.0)],
        );
        crate::logging::progress_dot();
    }
    crate::logging::progress_end();
    r.line("shape goals: closed page forfeits the streaming apps' row hits and");
    r.line("loses bandwidth (GUPS, already row-hostile, barely cares); the");
    r.line("bestTLP-vs-opt gap survives either policy.");
    r
}

/// The prior-art single-application TLP finders as multi-application
/// baselines: ++CCWS alongside ++DynCTA and ++bestTLP (plus PBS-WS for
/// reference). Also verifies CCWS's premise: running alone, it converges
/// near the bestTLP performance of a cache-sensitive application.
pub fn ccws(ev: &Evaluator) -> Report {
    let mut r = Report::new("ccws", "++CCWS baseline (and its alone-run premise)");
    let cfg = ev.config().gpu.clone();
    let seed = ev.config().seed;

    r.line("--- alone: CCWS IPC vs bestTLP IPC (cache-sensitive apps) ---");
    r.header("app", &["bestTLP", "IPC@best", "IPC@CCWS", "ratio"]);
    for name in ["BFS", "FFT", "HS", "BLK"] {
        let app = gpu_workloads::by_name(name).expect("known app");
        let n = cfg.n_cores / 2;
        let best = {
            let p = ev.alone(app, n);
            (p.best_tlp(), p.ipc_at_best())
        };
        let split = [n];
        let inputs = FixedRunInputs {
            cfg: &cfg,
            apps: &[app],
            core_split: Some(&split),
            seed,
            ccws: true,
        };
        // CCWS walks the limit one step per decision interval, so give it
        // time to converge before measuring.
        let w = measure_fixed_cached(
            &inputs,
            &TlpCombo::uniform(cfg.max_tlp(), 1),
            RunSpec::new(80_000, 40_000),
        );
        r.row(
            name,
            &[best.0.get() as f64, best.1, w[0].ipc(), w[0].ipc() / best.1],
        );
    }
    r.blank();

    r.line("--- co-run WS (normalized to ++bestTLP) ---");
    r.header("workload", &["++CCWS", "++DynCTA", "PBS-WS"]);
    for (a, b) in [("BLK", "BFS"), ("BFS", "FFT"), ("DS", "TRD")] {
        let w = pair(a, b);
        let base = ev.evaluate(&w, Scheme::BestTlp).metrics.ws.max(1e-9);
        let vals: Vec<f64> = [Scheme::Ccws, Scheme::DynCta, Scheme::Pbs(EbObjective::Ws)]
            .iter()
            .map(|s| ev.evaluate(&w, *s).metrics.ws / base)
            .collect();
        r.row(&w.name(), &vals);
        crate::logging::progress_dot();
    }
    crate::logging::progress_end();
    r.line("shape goals: alone, CCWS recovers most of the bestTLP IPC for");
    r.line("cache-sensitive apps (its published premise); co-run, ++CCWS behaves");
    r.line("like the other co-run-oblivious baselines and trails PBS.");
    r
}

/// Warp-scheduler sensitivity: GTO (the paper's baseline) versus loose
/// round-robin, for the alone TLP hill and for the bestTLP-vs-opt gap.
pub fn sched(ev: &Evaluator) -> Report {
    let mut r = Report::new("sched", "warp-scheduler sensitivity: GTO vs LRR");
    let seed = ev.config().seed;
    let mixes = [("BLK", "BFS"), ("BFS", "FFT")];
    r.line("--- BFS alone: bestTLP and IPC@bestTLP per scheduler ---");
    r.header("scheduler", &["bestTLP", "IPC", "EB"]);
    for policy in [
        gpu_types::WarpSchedPolicy::Gto,
        gpu_types::WarpSchedPolicy::Lrr,
    ] {
        let mut cfg = ev.config().gpu.clone();
        cfg.scheduler = policy;
        let p = profile_alone(
            &cfg,
            gpu_workloads::by_name("BFS").expect("BFS exists"),
            cfg.n_cores / 2,
            seed,
            RunSpec::new(10_000, 25_000),
        );
        let b = p.best();
        r.row(&format!("{policy:?}"), &[b.tlp.get() as f64, b.ipc, b.eb]);
    }
    r.blank();
    r.line("--- co-run: ++bestTLP WS vs optWS (from sweep) per scheduler ---");
    r.header("workload/sched", &["bestWS", "optWS", "gain%"]);
    for (a, b) in mixes {
        let w = pair(a, b);
        for policy in [
            gpu_types::WarpSchedPolicy::Gto,
            gpu_types::WarpSchedPolicy::Lrr,
        ] {
            let mut cfg = ev.config().gpu.clone();
            cfg.scheduler = policy;
            let n = cfg.n_cores / 2;
            let profiles: Vec<_> = w
                .apps()
                .iter()
                .map(|app| profile_alone(&cfg, app, n, seed, RunSpec::new(10_000, 25_000)))
                .collect();
            let alone: Vec<f64> = profiles.iter().map(|p| p.ipc_at_best()).collect();
            let best = TlpCombo::new(profiles.iter().map(|p| p.best_tlp()).collect());
            let sweep = ComboSweep::measure(&cfg, &w, seed, RunSpec::new(10_000, 25_000));
            let (_, opt_ws) = best_combo_by_sd(&sweep, EbObjective::Ws, &alone);
            let base = ws_of(
                &sweep
                    .ipcs(&best)
                    .iter()
                    .zip(&alone)
                    .map(|(i, x)| i / x)
                    .collect::<Vec<_>>(),
            );
            r.row(
                &format!("{} / {policy:?}", w.name()),
                &[base, opt_ws, 100.0 * (opt_ws / base.max(1e-9) - 1.0)],
            );
            crate::logging::progress_dot();
        }
    }
    crate::logging::progress_end();
    r.line("shape goal: the bestTLP-vs-opt gap and the EB mechanism are not");
    r.line("artifacts of GTO — LRR shows the same qualitative picture.");
    r
}

/// Validates the Fig. 8 designated-sampling hardware: per-window EB
/// estimates from one core + one partition versus exact aggregation, and
/// the effect on PBS-WS end results (§V-E's uniformity claim).
pub fn sampling(ev: &Evaluator) -> Report {
    let mut r = Report::new("sampling", "designated (Fig. 8) vs exact sampling");
    let base_cfg = ev.config().gpu.clone();
    let seed = ev.config().seed;
    let run_cycles = ev.config().run_cycles;
    let measure_from = ev.config().measure_from;
    let mixes = [
        ("BLK", "BFS"),
        ("BFS", "FFT"),
        ("JPEG", "LIB"),
        ("DS", "TRD"),
    ];

    // Part 1: per-window EB estimation error at the ++bestTLP combination.
    r.line("--- per-window EB estimate: designated vs exact (mean |error|) ---");
    r.header("workload", &["err app1 %", "err app2 %"]);
    for (a, b) in mixes {
        let w = pair(a, b);
        let combo = ev.best_tlp_combo(&w);
        let mut gpu = Gpu::new(&base_cfg, w.apps(), seed);
        gpu.set_combo(&combo);
        gpu.run(3_000);
        let peak = base_cfg.peak_bw_bytes_per_cycle();
        let mut errs = [Vec::new(), Vec::new()];
        let mut prev_exact: Vec<_> = (0..2)
            .map(|i| gpu.counters(gpu_types::AppId::new(i as u8)))
            .collect();
        let mut prev_des: Vec<_> = (0..2)
            .map(|i| gpu.designated_counters(gpu_types::AppId::new(i as u8)))
            .collect();
        for _ in 0..20 {
            gpu.run(2_000);
            for i in 0..2 {
                let app = gpu_types::AppId::new(i as u8);
                let exact = gpu.counters(app);
                let des = gpu.designated_counters(app);
                let we = gpu_types::AppWindow::new(exact - prev_exact[i], 2_000, peak);
                let wd = gpu_types::AppWindow::new(des - prev_des[i], 2_000, peak);
                let (e, d) = (we.effective_bandwidth(), wd.effective_bandwidth());
                if e > 1e-6 {
                    errs[i].push(((d - e) / e).abs());
                }
                prev_exact[i] = exact;
                prev_des[i] = des;
            }
        }
        let mean = |v: &Vec<f64>| 100.0 * v.iter().sum::<f64>() / v.len().max(1) as f64;
        r.row(&w.name(), &[mean(&errs[0]), mean(&errs[1])]);
    }
    r.blank();

    // Part 2: PBS-WS end results under each sampling mode.
    r.line("--- PBS-WS WS (normalized to ++bestTLP) under each sampling mode ---");
    r.header("workload", &["exact", "designated"]);
    for (a, b) in mixes {
        let w = pair(a, b);
        let alone = ev.alone_ipcs(&w);
        let best = ev.best_tlp_combo(&w);
        let inputs = FixedRunInputs {
            cfg: &base_cfg,
            apps: w.apps(),
            core_split: None,
            seed,
            ccws: false,
        };
        let base = ws_of(
            &measure_fixed_cached(
                &inputs,
                &best,
                RunSpec::new(measure_from, run_cycles - measure_from),
            )
            .iter()
            .zip(&alone)
            .map(|(x, al)| x.ipc() / al)
            .collect::<Vec<_>>(),
        );
        let mut row = Vec::new();
        for designated in [false, true] {
            let mut cfg = base_cfg.clone();
            cfg.sampling.designated = designated;
            let run = run_pbs_cached(
                &FixedRunInputs {
                    cfg: &cfg,
                    apps: w.apps(),
                    core_split: None,
                    seed,
                    ccws: false,
                },
                &TlpCombo::uniform(cfg.max_tlp(), 2),
                run_cycles,
                measure_from,
                &PbsRunSpec::paper(EbObjective::Ws, ev.config().pbs_hold_windows),
            );
            let ws = ws_of(
                &run.overall
                    .iter()
                    .zip(&alone)
                    .map(|(x, al)| x.ipc() / al)
                    .collect::<Vec<_>>(),
            );
            row.push(ws / base);
        }
        r.row(&w.name(), &row);
        crate::logging::progress_dot();
    }
    crate::logging::progress_end();
    r.line("shape goals: single-digit mean EB estimation error, and designated");
    r.line("sampling reproduces the exact-sampling PBS results — the §V-E");
    r.line("argument for the cheap hardware.");
    r
}

/// Online-vs-offline PBS on phase-changing workloads (§VI-A point 3: the
/// online search "can adapt to different runtime interference patterns …
/// within the same workload execution", which a one-shot offline table
/// cannot).
pub fn phased(ev: &Evaluator) -> Report {
    let mut r = Report::new(
        "phased",
        "online vs offline PBS on phase-changing workloads",
    );
    let cfg = ev.config().gpu.clone();
    let seed = ev.config().seed;
    let run_cycles = ev.config().run_cycles;
    let measure_from = ev.config().measure_from;
    let mixes: [Workload; 3] = [
        Workload::from_profiles(vec![
            &gpu_workloads::PH1,
            gpu_workloads::by_name("TRD").unwrap(),
        ]),
        Workload::from_profiles(vec![
            &gpu_workloads::PH1,
            gpu_workloads::by_name("BLK").unwrap(),
        ]),
        Workload::from_profiles(vec![
            &gpu_workloads::PH2,
            gpu_workloads::by_name("SCP").unwrap(),
        ]),
    ];
    r.header("workload", &["bestWS", "offline", "online", "on-off%"]);
    for w in mixes {
        let alone = ev.alone_ipcs(&w);
        let ws_of_windows = |windows: &[gpu_types::AppWindow]| {
            ws_of(
                &windows
                    .iter()
                    .zip(&alone)
                    .map(|(x, a)| x.ipc() / a)
                    .collect::<Vec<_>>(),
            )
        };
        // ++bestTLP baseline.
        let best = ev.best_tlp_combo(&w);
        let inputs = FixedRunInputs {
            cfg: &cfg,
            apps: w.apps(),
            core_split: None,
            seed,
            ccws: false,
        };
        let base = ws_of_windows(&measure_fixed_cached(
            &inputs,
            &best,
            RunSpec::new(measure_from, run_cycles - measure_from),
        ));
        // Offline PBS: one combination from the (phase-averaged) sweep.
        let scaling = ScalingFactors::none(2);
        let sweep = ev.sweep(&w).clone();
        let (off_combo, _) = pbs_offline_search(&sweep, EbObjective::Ws, &scaling);
        let offline = ws_of_windows(&measure_fixed_cached(
            &inputs,
            &off_combo,
            RunSpec::new(measure_from, run_cycles - measure_from),
        ));
        // Online PBS with a short hold, so it re-searches within each phase.
        let run = run_pbs_cached(
            &inputs,
            &TlpCombo::uniform(cfg.max_tlp(), 2),
            run_cycles,
            measure_from,
            &PbsRunSpec::paper(EbObjective::Ws, 60),
        );
        let online = ws_of_windows(&run.overall);
        r.row(
            &w.name(),
            &[
                base,
                offline / base,
                online / base,
                100.0 * (online / offline.max(1e-9) - 1.0),
            ],
        );
        crate::logging::progress_dot();
    }
    crate::logging::progress_end();
    r.line("columns: raw ++bestTLP WS, then offline/online normalized to it.");
    r.line("shape goal: online PBS holds its own against (or beats) the offline");
    r.line("pick on phase-changing kernels, despite paying its search overhead —");
    r.line("the offline table only sees the phase-average behaviour.");
    r
}

/// Ablation study of the PBS design choices DESIGN.md calls out: the probe
/// level (4 vs maxTLP), the settle window after each TLP change, and the
/// final pick from the Fig. 8 sampling table versus trusting knee+tune.
pub fn ablation(ev: &Evaluator) -> Report {
    let mut r = Report::new("ablation", "PBS design-choice ablations (WS vs ++bestTLP)");
    let cfg = ev.config().gpu.clone();
    let seed = ev.config().seed;
    let run_cycles = ev.config().run_cycles;
    let measure_from = ev.config().measure_from;
    let hold = ev.config().pbs_hold_windows;
    let mixes = [
        ("BLK", "BFS"),
        ("BFS", "FFT"),
        ("DS", "TRD"),
        ("JPEG", "LIB"),
    ];

    let paper = PbsRunSpec::paper(EbObjective::Ws, hold);
    let variants: [(&'static str, PbsRunSpec); 4] = [
        ("PBS (paper)", paper),
        (
            "probe=maxTLP",
            PbsRunSpec {
                probe: Some(TlpLevel::MAX),
                ..paper
            },
        ),
        (
            "no settle win",
            PbsRunSpec {
                settle: false,
                ..paper
            },
        ),
        (
            "no table pick",
            PbsRunSpec {
                table_pick: false,
                ..paper
            },
        ),
    ];
    let cols: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
    r.header("workload", &cols);
    for (a, b) in mixes {
        let w = pair(a, b);
        let alone = ev.alone_ipcs(&w);
        let inputs = FixedRunInputs {
            cfg: &cfg,
            apps: w.apps(),
            core_split: None,
            seed,
            ccws: false,
        };
        let base = {
            let combo = ev.best_tlp_combo(&w);
            let wins = measure_fixed_cached(
                &inputs,
                &combo,
                RunSpec::new(measure_from, run_cycles - measure_from),
            );
            ws_of(
                &wins
                    .iter()
                    .zip(&alone)
                    .map(|(x, al)| x.ipc() / al)
                    .collect::<Vec<_>>(),
            )
        };
        let mut row = Vec::new();
        for (_, spec) in &variants {
            let run = run_pbs_cached(
                &inputs,
                &TlpCombo::uniform(cfg.max_tlp(), 2),
                run_cycles,
                measure_from,
                spec,
            );
            let ws = ws_of(
                &run.overall
                    .iter()
                    .zip(&alone)
                    .map(|(x, al)| x.ipc() / al)
                    .collect::<Vec<_>>(),
            );
            row.push(ws / base);
        }
        r.row(&w.name(), &row);
        crate::logging::progress_dot();
    }
    crate::logging::progress_end();
    r.line("shape goals: the paper configuration dominates; probing at maxTLP");
    r.line("overwhelms the machine during the sweep, skipping settle windows");
    r.line("corrupts samples with transients, and dropping the table pick leaves");
    r.line("PBS at the mercy of a noisy knee.");
    r
}

/// Convenience used by the `hs` binary and tests: HS metric sanity.
pub fn hs_identity_check() -> bool {
    (hs_of(&[0.5, 0.5]) - 0.5).abs() < 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebm_core::eval::EvaluatorConfig;

    fn quick_eval() -> Evaluator {
        Evaluator::new(EvaluatorConfig::quick())
    }

    #[test]
    fn fig01_renders_on_small_machine() {
        let ev = quick_eval();
        let text = fig01(&ev).render();
        assert!(text.contains("++bestTLP"));
        assert!(text.contains("optWS"));
    }

    #[test]
    fn fig02_rows_cover_clamped_ladder() {
        let ev = quick_eval();
        let text = fig02(&ev).render();
        // small machine ladder: 1,2,4,6,8
        for l in ["1", "2", "4", "6", "8"] {
            assert!(text.lines().any(|ln| ln.starts_with(l)), "missing TLP {l}");
        }
    }

    #[test]
    fn fig03_orders_hierarchy_levels_for_bfs() {
        let ev = quick_eval();
        let r = fig03(&ev).render();
        assert!(r.contains("BFS"));
        assert!(r.contains("BLK"));
    }

    #[test]
    fn fig08_reports_budget() {
        let r = fig08().render();
        assert!(r.contains("total extra storage"));
    }

    #[test]
    fn hs_identity() {
        assert!(hs_identity_check());
    }

    #[test]
    fn extension_figures_render_on_small_machine() {
        let ev = quick_eval();
        for text in [sampling(&ev).render(), dram_policy(&ev).render()] {
            assert!(
                text.contains("shape goal"),
                "report lacks shape goals:\n{text}"
            );
        }
    }

    #[test]
    fn scheme_figure_computes_gmean_row() {
        let ev = quick_eval();
        let w = vec![Workload::pair("BLK", "BFS")];
        let text = fig09(&ev, &w).render();
        assert!(text.contains("Gmean"));
    }
}
