//! Std-only performance smoke benchmark.
//!
//! Reports (a) serial simulated cycles/second of the optimized engine
//! against the naive cycle-by-cycle reference engine, with a
//! global-allocator sanity check that the optimized steady state performs
//! no per-cycle heap allocation, and (b) the wall-clock of the
//! `GpuConfig::small()` 25-combination sweep at 1 thread versus N threads,
//! verifying along the way that the parallel sweep is bit-for-bit
//! identical to the sequential one, plus the *intra*-simulation scaling
//! curve: one `GpuConfig::volta()` big-machine co-run timed at 1/2/4/8
//! domain workers (`Gpu::set_sim_threads`), with every run's end state
//! fingerprinted and compared against the serial run, and (c) the result
//! cache: the same sweep cold (empty cache directory) versus warm (disk
//! hits only), asserting the warm rerun is bit-for-bit identical, and (d)
//! the observability layer: the optimized engine with the metrics registry
//! disabled (must sit within noise of the plain engine — the gated
//! recording sites cost one untaken branch) and enabled (recorded
//! alongside), and (e) the campaign scheduler: a five-artifact quick
//! sub-campaign timed serial versus scheduled (cold, in-memory cache
//! only) and scheduled again warm, asserting the scheduled renders
//! byte-identical to the serial ones. Results are written as hand-rolled
//! JSON to `BENCH_engine.json`, `BENCH_parallel.json`,
//! `BENCH_cache.json`, `BENCH_obs.json` and `BENCH_campaign.json` — each
//! stamped with `schema_version` ([`ebm_bench::BENCH_SCHEMA_VERSION`],
//! documented field by field in `docs/BENCH_SCHEMA.md`) — and a one-line
//! merged summary closes the run.
//!
//! Usage:
//!
//! ```text
//! perf_smoke [--smoke] [--out PATH] [--engine-out PATH] [--cache-out PATH]
//!            [--obs-out PATH] [--campaign-out PATH] [--history PATH]
//! ```
//!
//! `--smoke` shrinks the workload for CI (seconds, not minutes) and skips
//! the JSON writes unless `--out` / `--engine-out` / `--cache-out` /
//! `--obs-out` / `--campaign-out` are given explicitly. Every section's
//! snapshot is additionally appended, flattened, to the bench-history file
//! (`--history PATH`; default `results/BENCH_HISTORY.jsonl`, none in
//! `--smoke` mode, `--history ""` disables) for `trace-tools bench-trend`
//! regression tracking.

use ebm_bench::campaign::{self, CostModel};
use ebm_bench::util::BenchArgs;
use ebm_bench::{figures, log, BENCH_SCHEMA_VERSION};
use ebm_core::eval::{Evaluator, EvaluatorConfig};
use ebm_core::sweep::ComboSweep;
use gpu_sim::exec;
use gpu_sim::harness::RunSpec;
use gpu_sim::machine::{EngineStats, Gpu};
use gpu_types::{AppId, GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::Workload;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with a heap-operation counter, so the timed
/// region can assert the optimized engine's steady state allocates nothing.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn heap_ops() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct SweepTiming {
    threads: usize,
    seconds: f64,
}

/// One timed engine run: `GpuConfig::small()` + the named pairing at
/// uniform TLP 8, 1 000 warm-up cycles outside the timed region (primes
/// caches, row buffers and every reused scratch buffer's high-water mark).
/// `stats` holds the [`EngineStats`] delta over the timed region only.
struct EngineRun {
    cycles_per_sec: f64,
    allocs_per_cycle: f64,
    stats: EngineStats,
}

impl EngineRun {
    /// Fraction of timed cycles the whole machine fast-forwarded over
    /// (no component had any event scheduled).
    fn machine_fast_forward_fraction(&self) -> f64 {
        let total = self.stats.stepped + self.stats.fast_forwarded;
        self.stats.fast_forwarded as f64 / total.max(1) as f64
    }

    /// Fraction of component-step slots (component × cycle) the engine
    /// skipped, counting fast-forwarded cycles' slots as skipped too.
    fn component_idle_skip_fraction(&self) -> f64 {
        let s = &self.stats;
        let stepped = s.core_steps + s.partition_steps + s.xbar_steps;
        let skipped = s.core_steps_skipped + s.partition_steps_skipped + s.xbar_steps_skipped;
        skipped as f64 / (stepped + skipped).max(1) as f64
    }
}

fn stats_delta(after: EngineStats, before: EngineStats) -> EngineStats {
    EngineStats {
        stepped: after.stepped - before.stepped,
        fast_forwarded: after.fast_forwarded - before.fast_forwarded,
        core_steps: after.core_steps - before.core_steps,
        core_steps_skipped: after.core_steps_skipped - before.core_steps_skipped,
        partition_steps: after.partition_steps - before.partition_steps,
        partition_steps_skipped: after.partition_steps_skipped - before.partition_steps_skipped,
        xbar_steps: after.xbar_steps - before.xbar_steps,
        xbar_steps_skipped: after.xbar_steps_skipped - before.xbar_steps_skipped,
        sync_points: after.sync_points - before.sync_points,
        barrier_waits: after.barrier_waits - before.barrier_waits,
        windows: after.windows - before.windows,
        window_cycles: after.window_cycles - before.window_cycles,
    }
}

fn engine_run(pair: (&str, &str), cycles: u64, reference: bool) -> EngineRun {
    let cfg = GpuConfig::small();
    let w = Workload::pair(pair.0, pair.1);
    let mut gpu = Gpu::new(&cfg, w.apps(), 42);
    gpu.set_reference_engine(reference);
    gpu.set_combo(&TlpCombo::uniform(TlpLevel::new(8).unwrap(), 2));
    gpu.run(1_000);
    let stats_before = gpu.engine_stats();
    let allocs_before = heap_ops();
    let t = Instant::now();
    gpu.run(cycles);
    let secs = t.elapsed().as_secs_f64();
    let allocs = heap_ops() - allocs_before;
    let stats = stats_delta(gpu.engine_stats(), stats_before);
    EngineRun {
        cycles_per_sec: cycles as f64 / secs,
        allocs_per_cycle: allocs as f64 / cycles as f64,
        stats,
    }
}

/// Reference-vs-event measurement of one co-run pairing.
struct WorkloadBench {
    name: &'static str,
    before: EngineRun,
    after: EngineRun,
}

impl WorkloadBench {
    fn speedup(&self) -> f64 {
        self.after.cycles_per_sec / self.before.cycles_per_sec
    }
}

/// One timed engine run with the metrics registry on or off, plus the
/// instrumentation evidence gathered when it was on (total stall
/// warp-cycles and DRAM latency samples — zero when `metrics` is false).
fn obs_run(cycles: u64, metrics: bool) -> (EngineRun, u64, u64) {
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let mut gpu = Gpu::new(&cfg, w.apps(), 42);
    gpu.set_metrics_enabled(metrics);
    gpu.set_combo(&TlpCombo::uniform(TlpLevel::new(8).unwrap(), 2));
    gpu.run(1_000);
    let allocs_before = heap_ops();
    let t = Instant::now();
    gpu.run(cycles);
    let secs = t.elapsed().as_secs_f64();
    let allocs = heap_ops() - allocs_before;
    let (mut stall_cycles, mut lat_samples) = (0u64, 0u64);
    for a in 0..gpu.n_apps() {
        let app = AppId::new(a as u8);
        stall_cycles += gpu.take_warp_stalls(app).total();
        lat_samples += gpu.take_dram_latency(app).count();
    }
    let run = EngineRun {
        cycles_per_sec: cycles as f64 / secs,
        allocs_per_cycle: allocs as f64 / cycles as f64,
        stats: EngineStats::default(),
    };
    (run, stall_cycles, lat_samples)
}

fn time_sweep(threads: usize, spec: RunSpec) -> (ComboSweep, f64) {
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let t = Instant::now();
    let sweep = ComboSweep::measure_with_threads(&cfg, &w, 42, spec, threads);
    (sweep, t.elapsed().as_secs_f64())
}

/// One point on the intra-simulation scaling curve: the same machine run
/// with `threads` domain workers.
struct IntraSimPoint {
    threads: usize,
    cycles_per_sec: f64,
}

/// Intra-simulation scaling of the domain-parallel engine on the
/// Volta-scale big machine (see `GpuConfig::volta`).
struct IntraSimBench {
    timed_cycles: u64,
    points: Vec<IntraSimPoint>,
    identical: bool,
    /// Gate/Latch broadcasts per thousand simulated cycles on the
    /// multi-worker runs (the per-cycle 3-phase design paid ~3000).
    sync_points_per_kcycle: f64,
    /// Simulated cycles covered by an average lookahead window.
    mean_window_cycles: f64,
    /// True when `host_parallelism == 1`: every scaling point then runs
    /// its workers time-sliced on one core, so `speedup_vs_1_thread`
    /// measures synchronization *overhead*, not parallel speedup.
    contended: bool,
}

impl IntraSimBench {
    /// Best multi-worker throughput relative to the 1-worker run.
    fn speedup_vs_1_thread(&self) -> f64 {
        let base = self
            .points
            .first()
            .map(|p| p.cycles_per_sec)
            .unwrap_or(f64::NAN);
        self.points
            .iter()
            .skip(1)
            .map(|p| p.cycles_per_sec)
            .fold(f64::MIN, f64::max)
            / base
    }
}

/// Times the memory-bound BLK+TRD co-run on `GpuConfig::volta()` at 1, 2, 4
/// and 8 intra-simulation domain workers. Every run's end state — per-app
/// memory counters, core stats and the engine's own step/skip accounting —
/// is fingerprinted and compared to the 1-worker run: the scaling numbers
/// are only meaningful if the parallel engine is bit-identical to serial.
fn intra_sim_bench(cycles: u64, warmup: u64) -> IntraSimBench {
    let cfg = GpuConfig::volta();
    let w = Workload::pair("BLK", "TRD");
    let mut points = Vec::new();
    let mut baseline: Option<String> = None;
    let mut identical = true;
    let mut sync_points_per_kcycle = 0.0;
    let mut mean_window_cycles = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let mut gpu = Gpu::new(&cfg, w.apps(), 42);
        gpu.set_sim_threads(threads);
        gpu.set_combo(&TlpCombo::uniform(TlpLevel::new(8).unwrap(), 2));
        gpu.run(warmup);
        let stats_before = gpu.engine_stats();
        let t = Instant::now();
        gpu.run(cycles);
        let secs = t.elapsed().as_secs_f64();
        // Sync counters are zero on the serial run by design, so the
        // byte-identity fingerprint compares everything but them.
        let fingerprint = format!(
            "{:?} {:?} {:?} {:?} {:?}",
            gpu.counters(AppId::new(0)),
            gpu.counters(AppId::new(1)),
            gpu.core_stats(AppId::new(0)),
            gpu.core_stats(AppId::new(1)),
            gpu.engine_stats().sans_sync()
        );
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(b) if *b != fingerprint => {
                identical = false;
                log!(
                    info,
                    "  !! end state at {threads} sim threads diverges from serial"
                );
            }
            _ => {}
        }
        if threads > 1 && sync_points_per_kcycle == 0.0 {
            // The window schedule is worker-count-independent, so the
            // first multi-worker run characterizes them all.
            let d = stats_delta(gpu.engine_stats(), stats_before);
            sync_points_per_kcycle = d.sync_points as f64 / (cycles as f64 / 1_000.0);
            mean_window_cycles = d.mean_window_cycles();
        }
        let cps = cycles as f64 / secs;
        log!(info, "  {threads} sim thread(s): {cps:.0} cycles/sec");
        points.push(IntraSimPoint {
            threads,
            cycles_per_sec: cps,
        });
    }
    IntraSimBench {
        timed_cycles: cycles,
        points,
        identical,
        sync_points_per_kcycle,
        mean_window_cycles,
        contended: std::thread::available_parallelism().map_or(1, |n| n.get()) == 1,
    }
}

struct CacheBench {
    cold_seconds: f64,
    warm_seconds: f64,
    warm_hit_rate: f64,
    identical: bool,
}

impl CacheBench {
    fn speedup(&self) -> f64 {
        self.cold_seconds / self.warm_seconds.max(1e-9)
    }
}

/// Times the `GpuConfig::small()` sweep cold (freshly created cache
/// directory) and warm (same directory, in-memory registry dropped so every
/// hit comes off disk), asserting the warm results bit-identical. Uses a
/// different seed from the thread-scaling section so its (cache-disabled)
/// runs cannot alias these.
fn cache_bench(spec: RunSpec) -> CacheBench {
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let seed = 7;
    let dir = std::env::temp_dir().join(format!("ebm_perf_smoke_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    gpu_sim::cache::set_enabled(true);
    gpu_sim::cache::set_dir(Some(dir.clone()));
    gpu_sim::cache::clear_memory();

    let t = Instant::now();
    let cold_sweep = ComboSweep::measure(&cfg, &w, seed, spec);
    let cold_seconds = t.elapsed().as_secs_f64();

    gpu_sim::cache::clear_memory();
    gpu_sim::cache::reset_stats();
    let t = Instant::now();
    let warm_sweep = ComboSweep::measure(&cfg, &w, seed, spec);
    let warm_seconds = t.elapsed().as_secs_f64();
    let stats = gpu_sim::cache::stats();

    gpu_sim::cache::set_dir(None);
    gpu_sim::cache::clear_memory();
    let _ = std::fs::remove_dir_all(&dir);

    CacheBench {
        cold_seconds,
        warm_seconds,
        warm_hit_rate: stats.hit_rate(),
        identical: sweeps_identical(&cold_sweep, &warm_sweep),
    }
}

fn sweeps_identical(a: &ComboSweep, b: &ComboSweep) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|(combo, samples)| {
        b.get(combo).is_some_and(|other| {
            samples.len() == other.len()
                && samples.iter().zip(other).all(|(s, o)| {
                    // Bit-for-bit: identical machines must produce identical
                    // floats, so exact comparison is the point.
                    s.ipc.to_bits() == o.ipc.to_bits()
                        && s.bw.to_bits() == o.bw.to_bits()
                        && s.cmr.to_bits() == o.cmr.to_bits()
                        && s.eb.to_bits() == o.eb.to_bits()
                })
        })
    })
}

/// Campaign-scheduler measurement: a small `--quick` sub-campaign run
/// three ways over the in-memory cache tier only.
struct CampaignBench {
    artifacts: &'static [&'static str],
    requested: usize,
    planned: usize,
    workers: usize,
    peak_ready: usize,
    utilization: f64,
    cold_serial_s: f64,
    cold_sched_s: f64,
    warm_sched_s: f64,
    /// True when `host_parallelism == 1`: the scheduled run then
    /// time-slices its workers on one core, so `speedup_cold` measures
    /// scheduling overhead, not parallel speedup.
    contended: bool,
    identical: bool,
}

impl CampaignBench {
    fn dedup_ratio(&self) -> f64 {
        1.0 - self.planned as f64 / self.requested.max(1) as f64
    }

    /// Cold serial wall-clock over cold scheduled wall-clock.
    fn speedup_cold(&self) -> f64 {
        self.cold_serial_s / self.cold_sched_s.max(1e-9)
    }
}

/// Times a five-artifact quick sub-campaign (deep scheme chains via
/// fig01, shared alone profiles across fig02/fig03, a shared sweep across
/// fig06/fig07) serial, scheduled cold, and scheduled warm — each phase
/// from an empty evaluator store, the warm phase keeping the in-memory
/// result cache. Renders are compared byte-for-byte against serial.
fn campaign_bench() -> CampaignBench {
    const IDS: &[&str] = &["fig01", "fig02", "fig03", "fig06", "fig07"];
    let args = BenchArgs {
        quick: true,
        only: Some(IDS.iter().map(|s| s.to_string()).collect()),
        ..BenchArgs::default()
    };
    gpu_sim::cache::set_enabled(true);
    gpu_sim::cache::set_dir(None);

    gpu_sim::cache::clear_memory();
    let ev = Evaluator::new(EvaluatorConfig::quick());
    let t = Instant::now();
    let serial: Vec<String> = [
        figures::fig01(&ev),
        figures::fig02(&ev),
        figures::fig03(&ev),
        figures::fig06(&ev),
        figures::fig07(&ev),
    ]
    .iter()
    .map(ebm_bench::Report::render)
    .collect();
    let cold_serial_s = t.elapsed().as_secs_f64();

    gpu_sim::cache::clear_memory();
    let ev = Evaluator::new(EvaluatorConfig::quick());
    let plan = campaign::plan_with_costs(&args, &ev, CostModel::empty());
    let (requested, planned) = (plan.requested(), plan.planned());
    let mut scheduled = Vec::new();
    let t = Instant::now();
    let stats = campaign::run(plan, &ev, &mut gpu_sim::trace::NullSink, &mut |r| {
        scheduled.push(r.render())
    });
    let cold_sched_s = t.elapsed().as_secs_f64();

    // Warm rerun: same memory cache, fresh evaluator store — every unit
    // resolves to a cache hit, timing pure scheduling overhead.
    let ev = Evaluator::new(EvaluatorConfig::quick());
    let plan = campaign::plan_with_costs(&args, &ev, CostModel::empty());
    let t = Instant::now();
    campaign::run(plan, &ev, &mut gpu_sim::trace::NullSink, &mut |_| {});
    let warm_sched_s = t.elapsed().as_secs_f64();

    gpu_sim::cache::clear_memory();
    CampaignBench {
        artifacts: IDS,
        requested,
        planned,
        workers: stats.workers,
        peak_ready: stats.peak_ready,
        utilization: stats.utilization(),
        cold_serial_s,
        cold_sched_s,
        warm_sched_s,
        contended: std::thread::available_parallelism().map_or(1, |n| n.get()) == 1,
        identical: serial == scheduled,
    }
}

fn render_campaign_json(smoke: bool, bench: &CampaignBench) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"campaign\",\n");
    out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"smoke_mode\": {smoke},\n"));
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"contended\": {},\n", bench.contended));
    out.push_str("  \"machine\": \"EvaluatorConfig::quick\",\n");
    out.push_str(&format!(
        "  \"artifacts\": [{}],\n",
        bench
            .artifacts
            .iter()
            .map(|id| format!("\"{}\"", json_escape(id)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"units_requested\": {},\n", bench.requested));
    out.push_str(&format!("  \"units_planned\": {},\n", bench.planned));
    out.push_str(&format!("  \"dedup_ratio\": {:.4},\n", bench.dedup_ratio()));
    out.push_str(&format!("  \"workers\": {},\n", bench.workers));
    out.push_str(&format!("  \"peak_ready\": {},\n", bench.peak_ready));
    out.push_str(&format!("  \"utilization\": {:.4},\n", bench.utilization));
    out.push_str(&format!(
        "  \"cold_serial_seconds\": {:.4},\n",
        bench.cold_serial_s
    ));
    out.push_str(&format!(
        "  \"cold_scheduled_seconds\": {:.4},\n",
        bench.cold_sched_s
    ));
    out.push_str(&format!(
        "  \"warm_scheduled_seconds\": {:.4},\n",
        bench.warm_sched_s
    ));
    out.push_str(&format!(
        "  \"speedup_cold\": {:.2},\n",
        bench.speedup_cold()
    ));
    out.push_str(&format!(
        "  \"scheduled_identical_to_serial\": {}\n",
        bench.identical
    ));
    out.push_str("}\n");
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_engine_json(smoke: bool, cycles: u64, benches: &[WorkloadBench]) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"engine\",\n");
    out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"smoke_mode\": {smoke},\n"));
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str("  \"machine\": \"GpuConfig::small\",\n");
    out.push_str(&format!("  \"timed_cycles\": {cycles},\n"));
    out.push_str("  \"warmup_cycles\": 1000,\n");
    out.push_str("  \"workloads\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let s = &b.after.stats;
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"workload\": \"{}\",\n",
            json_escape(b.name)
        ));
        out.push_str(&format!(
            "      \"engine_cycles_per_sec_before\": {:.1},\n",
            b.before.cycles_per_sec
        ));
        out.push_str(&format!(
            "      \"engine_cycles_per_sec\": {:.1},\n",
            b.after.cycles_per_sec
        ));
        out.push_str(&format!("      \"speedup\": {:.2},\n", b.speedup()));
        out.push_str(&format!(
            "      \"machine_fast_forward_fraction\": {:.6},\n",
            b.after.machine_fast_forward_fraction()
        ));
        out.push_str(&format!(
            "      \"component_idle_skip_fraction\": {:.6},\n",
            b.after.component_idle_skip_fraction()
        ));
        out.push_str(&format!("      \"core_steps\": {},\n", s.core_steps));
        out.push_str(&format!(
            "      \"core_steps_skipped\": {},\n",
            s.core_steps_skipped
        ));
        out.push_str(&format!(
            "      \"partition_steps\": {},\n",
            s.partition_steps
        ));
        out.push_str(&format!(
            "      \"partition_steps_skipped\": {},\n",
            s.partition_steps_skipped
        ));
        out.push_str(&format!("      \"xbar_steps\": {},\n", s.xbar_steps));
        out.push_str(&format!(
            "      \"xbar_steps_skipped\": {},\n",
            s.xbar_steps_skipped
        ));
        out.push_str(&format!(
            "      \"allocations_per_cycle\": {:.6},\n",
            b.after.allocs_per_cycle
        ));
        out.push_str(&format!(
            "      \"allocations_per_cycle_before\": {:.3}\n",
            b.before.allocs_per_cycle
        ));
        let comma = if i + 1 < benches.len() { "," } else { "" };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  ],\n");
    let mem_bound = benches
        .iter()
        .find(|b| b.name == "BLK_TRD")
        .map(|b| b.speedup())
        .unwrap_or(f64::NAN);
    out.push_str(&format!("  \"memory_bound_speedup\": {mem_bound:.2}\n"));
    out.push_str("}\n");
    out
}

fn render_json(
    smoke: bool,
    engine_cps: f64,
    timings: &[SweepTiming],
    identical: bool,
    speedup: f64,
    intra: &IntraSimBench,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"benchmark\": \"{}\",\n",
        json_escape("perf_smoke")
    ));
    out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"smoke_mode\": {smoke},\n"));
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str("  \"machine\": \"GpuConfig::small\",\n");
    out.push_str("  \"workload\": \"BLK_BFS\",\n");
    out.push_str(&format!("  \"engine_cycles_per_sec\": {engine_cps:.1},\n"));
    out.push_str("  \"sweep_combos\": 25,\n");
    out.push_str("  \"sweep_wall_clock\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"threads\": {}, \"seconds\": {:.4} }}{comma}\n",
            t.threads, t.seconds
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"parallel_identical_to_serial\": {identical},\n"
    ));
    out.push_str(&format!("  \"speedup_vs_1_thread\": {speedup:.2},\n"));
    out.push_str("  \"intra_sim\": {\n");
    out.push_str("    \"machine\": \"GpuConfig::volta\",\n");
    out.push_str("    \"workload\": \"BLK_TRD\",\n");
    out.push_str(&format!("    \"timed_cycles\": {},\n", intra.timed_cycles));
    out.push_str("    \"scaling\": [\n");
    for (i, p) in intra.points.iter().enumerate() {
        let comma = if i + 1 < intra.points.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{ \"sim_threads\": {}, \"cycles_per_sec\": {:.1} }}{comma}\n",
            p.threads, p.cycles_per_sec
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"identical_across_sim_threads\": {},\n",
        intra.identical
    ));
    out.push_str(&format!(
        "    \"sync_points_per_kcycle\": {:.1},\n",
        intra.sync_points_per_kcycle
    ));
    out.push_str(&format!(
        "    \"mean_window_cycles\": {:.2},\n",
        intra.mean_window_cycles
    ));
    out.push_str(&format!("    \"contended\": {},\n", intra.contended));
    out.push_str(&format!(
        "    \"speedup_vs_1_thread\": {:.2}\n",
        intra.speedup_vs_1_thread()
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn render_cache_json(smoke: bool, bench: &CacheBench) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"cache\",\n");
    out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"smoke_mode\": {smoke},\n"));
    out.push_str("  \"machine\": \"GpuConfig::small\",\n");
    out.push_str("  \"workload\": \"BLK_BFS\",\n");
    out.push_str("  \"sweep_combos\": 25,\n");
    out.push_str(&format!("  \"cold_seconds\": {:.4},\n", bench.cold_seconds));
    out.push_str(&format!("  \"warm_seconds\": {:.4},\n", bench.warm_seconds));
    out.push_str(&format!("  \"speedup\": {:.2},\n", bench.speedup()));
    out.push_str(&format!(
        "  \"warm_hit_rate\": {:.3},\n",
        bench.warm_hit_rate
    ));
    out.push_str(&format!(
        "  \"warm_identical_to_cold\": {}\n",
        bench.identical
    ));
    out.push_str("}\n");
    out
}

struct ObsBench {
    baseline_cps: f64,
    off: EngineRun,
    on: EngineRun,
    counters_off: EngineRun,
    counters_on: EngineRun,
    /// Best-vs-worst spread of the baseline repetitions, percent — the
    /// measured noise floor every overhead claim is judged against.
    noise_floor_pct: f64,
    stall_cycles: u64,
    lat_samples: u64,
}

impl ObsBench {
    /// Percent slowdown of a run versus the plain-engine baseline
    /// (negative = faster, i.e. within noise).
    fn overhead_pct(&self, cps: f64) -> f64 {
        100.0 * (self.baseline_cps - cps) / self.baseline_cps
    }
}

fn render_obs_json(smoke: bool, cycles: u64, bench: &ObsBench) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"obs\",\n");
    out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"smoke_mode\": {smoke},\n"));
    out.push_str("  \"machine\": \"GpuConfig::small\",\n");
    out.push_str("  \"workload\": \"BLK_BFS\",\n");
    out.push_str(&format!("  \"timed_cycles\": {cycles},\n"));
    out.push_str(&format!(
        "  \"baseline_cycles_per_sec\": {:.1},\n",
        bench.baseline_cps
    ));
    out.push_str(&format!(
        "  \"metrics_off_cycles_per_sec\": {:.1},\n",
        bench.off.cycles_per_sec
    ));
    out.push_str(&format!(
        "  \"metrics_off_overhead_pct\": {:.2},\n",
        bench.overhead_pct(bench.off.cycles_per_sec)
    ));
    out.push_str(&format!(
        "  \"metrics_off_allocations_per_cycle\": {:.6},\n",
        bench.off.allocs_per_cycle
    ));
    out.push_str(&format!(
        "  \"metrics_on_cycles_per_sec\": {:.1},\n",
        bench.on.cycles_per_sec
    ));
    out.push_str(&format!(
        "  \"metrics_on_overhead_pct\": {:.2},\n",
        bench.overhead_pct(bench.on.cycles_per_sec)
    ));
    out.push_str(&format!(
        "  \"metrics_on_allocations_per_cycle\": {:.6},\n",
        bench.on.allocs_per_cycle
    ));
    out.push_str(&format!(
        "  \"metrics_on_stall_warp_cycles\": {},\n",
        bench.stall_cycles
    ));
    out.push_str(&format!(
        "  \"metrics_on_dram_lat_samples\": {},\n",
        bench.lat_samples
    ));
    out.push_str(&format!(
        "  \"counters_off_cycles_per_sec\": {:.1},\n",
        bench.counters_off.cycles_per_sec
    ));
    out.push_str(&format!(
        "  \"counters_off_overhead_pct\": {:.2},\n",
        bench.overhead_pct(bench.counters_off.cycles_per_sec)
    ));
    out.push_str(&format!(
        "  \"counters_on_cycles_per_sec\": {:.1},\n",
        bench.counters_on.cycles_per_sec
    ));
    out.push_str(&format!(
        "  \"counters_on_overhead_pct\": {:.2},\n",
        bench.overhead_pct(bench.counters_on.cycles_per_sec)
    ));
    out.push_str(&format!(
        "  \"noise_floor_pct\": {:.2}\n",
        bench.noise_floor_pct
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or(if smoke {
            None
        } else {
            Some("BENCH_parallel.json".to_string())
        });
    let engine_out_path = args
        .iter()
        .position(|a| a == "--engine-out")
        .and_then(|i| args.get(i + 1).cloned())
        .or(if smoke {
            None
        } else {
            Some("BENCH_engine.json".to_string())
        });
    let cache_out_path = args
        .iter()
        .position(|a| a == "--cache-out")
        .and_then(|i| args.get(i + 1).cloned())
        .or(if smoke {
            None
        } else {
            Some("BENCH_cache.json".to_string())
        });
    let obs_out_path = args
        .iter()
        .position(|a| a == "--obs-out")
        .and_then(|i| args.get(i + 1).cloned())
        .or(if smoke {
            None
        } else {
            Some("BENCH_obs.json".to_string())
        });
    let campaign_out_path = args
        .iter()
        .position(|a| a == "--campaign-out")
        .and_then(|i| args.get(i + 1).cloned())
        .or(if smoke {
            None
        } else {
            Some("BENCH_campaign.json".to_string())
        });
    let history_path = args
        .iter()
        .position(|a| a == "--history")
        .and_then(|i| args.get(i + 1).cloned())
        .or(if smoke {
            None
        } else {
            Some("results/BENCH_HISTORY.jsonl".to_string())
        })
        .filter(|p| !p.is_empty()); // `--history ""` disables the append
                                    // Every benchmark section is also appended, flattened, to the history
                                    // file (`trace-tools bench-trend` compares consecutive snapshots).
    let append_history = |json_text: &str| {
        if let Some(path) = &history_path {
            match ebm_bench::history::append_snapshot(std::path::Path::new(path), json_text) {
                Ok(()) => log!(debug, "perf_smoke: appended history to {path}"),
                Err(e) => eprintln!("error: cannot append bench history to {path}: {e}"),
            }
        }
    };

    // The engine and thread-scaling sections time *simulation*; a cache hit
    // would replace the second and later sweeps with a lookup and falsify
    // the scaling numbers. The cache section manages its own settings.
    gpu_sim::cache::set_enabled(false);

    let (engine_cycles, spec) = if smoke {
        (20_000, RunSpec::new(300, 700))
    } else {
        (200_000, RunSpec::new(3_000, 12_000))
    };

    log!(
        info,
        "perf_smoke: engine throughput, reference vs event-driven ({engine_cycles} cycles)..."
    );
    // BLK_BFS is the historical compute-leaning pairing; BLK_TRD is the
    // flagship memory-bound co-run the ≥5x event-engine target is scored on.
    let pairs: [(&'static str, (&str, &str)); 2] =
        [("BLK_BFS", ("BLK", "BFS")), ("BLK_TRD", ("BLK", "TRD"))];
    let mut benches = Vec::new();
    for (name, pair) in pairs {
        let before = engine_run(pair, engine_cycles, true);
        let after = engine_run(pair, engine_cycles, false);
        log!(
            info,
            "  {name}: reference {:.0} cycles/sec, event {:.0} cycles/sec \
             ({:.2}x, ff {:.4}, idle-skip {:.4}, {:.4} allocs/cycle)",
            before.cycles_per_sec,
            after.cycles_per_sec,
            after.cycles_per_sec / before.cycles_per_sec,
            after.machine_fast_forward_fraction(),
            after.component_idle_skip_fraction(),
            after.allocs_per_cycle
        );
        benches.push(WorkloadBench {
            name,
            before,
            after,
        });
    }
    let engine_cps = benches[0].after.cycles_per_sec;
    let engine_json = render_engine_json(smoke, engine_cycles, &benches);
    if let Some(path) = &engine_out_path {
        std::fs::write(path, &engine_json).expect("write engine benchmark JSON");
        log!(info, "perf_smoke: wrote {path}");
    } else {
        print!("{engine_json}");
    }
    append_history(&engine_json);

    let max_threads = exec::worker_count().max(4);
    let thread_points: Vec<usize> = {
        let mut pts = vec![1, 2, 4];
        if max_threads > 4 {
            pts.push(max_threads);
        }
        pts
    };

    log!(
        info,
        "perf_smoke: 25-combo sweep wall-clock (threads: {thread_points:?})..."
    );
    let mut timings = Vec::new();
    let mut reference: Option<ComboSweep> = None;
    let mut identical = true;
    for &threads in &thread_points {
        let (sweep, secs) = time_sweep(threads, spec);
        log!(info, "  {threads:>2} thread(s): {secs:.3}s");
        if let Some(r) = &reference {
            if !sweeps_identical(r, &sweep) {
                identical = false;
                log!(
                    info,
                    "  !! results at {threads} threads diverge from serial"
                );
            }
        } else {
            reference = Some(sweep);
        }
        timings.push(SweepTiming {
            threads,
            seconds: secs,
        });
    }

    let t1 = timings.first().map(|t| t.seconds).unwrap_or(f64::NAN);
    let best = timings
        .iter()
        .skip(1)
        .map(|t| t.seconds)
        .fold(f64::INFINITY, f64::min);
    let speedup = t1 / best;
    log!(
        info,
        "perf_smoke: speedup vs 1 thread: {speedup:.2}x (identical: {identical})"
    );

    let (intra_cycles, intra_warmup) = if smoke { (2_000, 500) } else { (20_000, 2_000) };
    log!(
        info,
        "perf_smoke: intra-sim scaling on GpuConfig::volta, BLK_TRD \
         ({intra_cycles} cycles at 1/2/4/8 sim threads)..."
    );
    let intra = intra_sim_bench(intra_cycles, intra_warmup);
    log!(
        info,
        "perf_smoke: intra-sim speedup vs 1 sim thread: {:.2}x (identical: {}, \
         {:.1} sync points/kcycle, mean window {:.2} cycles, contended: {})",
        intra.speedup_vs_1_thread(),
        intra.identical,
        intra.sync_points_per_kcycle,
        intra.mean_window_cycles,
        intra.contended
    );

    let json = render_json(smoke, engine_cps, &timings, identical, speedup, &intra);
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        log!(info, "perf_smoke: wrote {path}");
    } else {
        print!("{json}");
    }
    append_history(&json);

    log!(info, "perf_smoke: result cache, cold vs disk-warm sweep...");
    let cache = cache_bench(spec);
    log!(
        info,
        "  cold: {:.3}s, warm: {:.3}s ({:.2}x, hit rate {:.3}, identical: {})",
        cache.cold_seconds,
        cache.warm_seconds,
        cache.speedup(),
        cache.warm_hit_rate,
        cache.identical
    );
    let cache_json = render_cache_json(smoke, &cache);
    if let Some(path) = cache_out_path {
        std::fs::write(&path, &cache_json).expect("write cache benchmark JSON");
        log!(info, "perf_smoke: wrote {path}");
    } else {
        print!("{cache_json}");
    }
    append_history(&cache_json);

    // Overhead comparison needs a longer timed region than the throughput
    // section even in smoke mode: at 20 000 cycles the ~2% effect under
    // test drowns in scheduler jitter.
    let obs_cycles = engine_cycles.max(100_000);
    log!(
        info,
        "perf_smoke: metrics-registry overhead, disabled vs enabled ({obs_cycles} cycles)..."
    );
    gpu_sim::cache::set_enabled(false);
    // Interleave repetitions of the five configurations, rotating which
    // one goes first each rep, and keep each one's best throughput: short
    // timed regions are noisy, a fixed order lets frequency ramp and cache
    // warmup bias one slot systematically, and the claims under test (the
    // disabled metrics registry and the disabled counter bus each cost one
    // untaken branch) are about the code path, not scheduler jitter. Every
    // baseline repetition is kept: the best-vs-worst spread is the run's
    // measured noise floor, reported alongside the overheads so the CI
    // gate can compare against it instead of a zero nobody can hit.
    const OBS_REPS: usize = 5;
    let mut baseline_runs: Vec<f64> = Vec::new();
    let best = |slot: &mut Option<EngineRun>, run: EngineRun| {
        if slot
            .as_ref()
            .is_none_or(|b| run.cycles_per_sec > b.cycles_per_sec)
        {
            *slot = Some(run);
        }
    };
    let (mut obs_off, mut obs_on) = (None, None);
    let (mut ctr_off, mut ctr_on) = (None, None);
    let (mut on_stalls, mut on_lat) = (0u64, 0u64);
    for rep in 0..OBS_REPS {
        for slot in 0..5 {
            match (rep + slot) % 5 {
                0 => {
                    gpu_sim::counters::set_enabled(false);
                    let run = engine_run(("BLK", "BFS"), obs_cycles, false);
                    gpu_sim::counters::set_enabled(true);
                    baseline_runs.push(run.cycles_per_sec);
                }
                1 => {
                    let (off_run, off_stalls, off_lat) = obs_run(obs_cycles, false);
                    assert_eq!(
                        (off_stalls, off_lat),
                        (0, 0),
                        "disabled metrics must record nothing"
                    );
                    best(&mut obs_off, off_run);
                }
                2 => {
                    let (on_run, stalls, lat) = obs_run(obs_cycles, true);
                    (on_stalls, on_lat) = (stalls, lat);
                    best(&mut obs_on, on_run);
                }
                3 => {
                    gpu_sim::counters::set_enabled(false);
                    let run = engine_run(("BLK", "BFS"), obs_cycles, false);
                    gpu_sim::counters::set_enabled(true);
                    best(&mut ctr_off, run);
                }
                _ => {
                    best(&mut ctr_on, engine_run(("BLK", "BFS"), obs_cycles, false));
                }
            }
        }
    }
    // The campaign section (and the cache stats it logs) rides on the
    // counter bus — make sure the obs experiment leaves it enabled.
    gpu_sim::counters::set_enabled(true);
    let baseline_cps = baseline_runs.iter().copied().fold(f64::MIN, f64::max);
    let worst_baseline = baseline_runs.iter().copied().fold(f64::MAX, f64::min);
    let obs = ObsBench {
        baseline_cps,
        off: obs_off.unwrap(),
        on: obs_on.unwrap(),
        counters_off: ctr_off.unwrap(),
        counters_on: ctr_on.unwrap(),
        noise_floor_pct: 100.0 * (baseline_cps - worst_baseline) / baseline_cps,
        stall_cycles: on_stalls,
        lat_samples: on_lat,
    };
    log!(
        info,
        "  metrics off:  {:.0} cycles/sec ({:+.2}% vs baseline)",
        obs.off.cycles_per_sec,
        obs.overhead_pct(obs.off.cycles_per_sec)
    );
    log!(
        info,
        "  metrics on:   {:.0} cycles/sec ({:+.2}% vs baseline, {} stall warp-cycles, {} latency samples)",
        obs.on.cycles_per_sec,
        obs.overhead_pct(obs.on.cycles_per_sec),
        obs.stall_cycles,
        obs.lat_samples
    );
    log!(
        info,
        "  counters off: {:.0} cycles/sec ({:+.2}% vs baseline)",
        obs.counters_off.cycles_per_sec,
        obs.overhead_pct(obs.counters_off.cycles_per_sec)
    );
    log!(
        info,
        "  counters on:  {:.0} cycles/sec ({:+.2}% vs baseline); noise floor {:.2}%",
        obs.counters_on.cycles_per_sec,
        obs.overhead_pct(obs.counters_on.cycles_per_sec),
        obs.noise_floor_pct
    );
    let obs_json = render_obs_json(smoke, obs_cycles, &obs);
    if let Some(path) = obs_out_path {
        std::fs::write(&path, &obs_json).expect("write obs benchmark JSON");
        log!(info, "perf_smoke: wrote {path}");
    } else {
        print!("{obs_json}");
    }
    append_history(&obs_json);

    log!(
        info,
        "perf_smoke: campaign scheduler, serial vs scheduled quick sub-campaign..."
    );
    let camp = campaign_bench();
    log!(
        info,
        "  serial: {:.3}s, scheduled cold: {:.3}s ({:.2}x), warm: {:.3}s \
         ({} units from {} demands, {:.0}% deduped, {} workers, \
         utilization {:.2}, contended: {}, identical: {})",
        camp.cold_serial_s,
        camp.cold_sched_s,
        camp.speedup_cold(),
        camp.warm_sched_s,
        camp.planned,
        camp.requested,
        100.0 * camp.dedup_ratio(),
        camp.workers,
        camp.utilization,
        camp.contended,
        camp.identical
    );
    let campaign_json = render_campaign_json(smoke, &camp);
    if let Some(path) = campaign_out_path {
        std::fs::write(&path, &campaign_json).expect("write campaign benchmark JSON");
        log!(info, "perf_smoke: wrote {path}");
    } else {
        print!("{campaign_json}");
    }
    append_history(&campaign_json);

    // Merged one-line summary of all benchmark sections.
    log!(
        info,
        "perf_smoke summary: engine {:.2}x (BLK_BFS) / {:.2}x (BLK_TRD) vs \
         reference ({:.0} cycles/s, {:.4} allocs/cycle) | parallel sweep \
         {speedup:.2}x vs 1 thread (identical: {identical}) | intra-sim \
         {:.2}x vs 1 sim thread (identical: {}) | cache warm \
         {:.2}x vs cold (hit rate {:.3}, identical: {}) | campaign sched \
         {:.2}x vs serial cold ({:.0}% deduped, identical: {})",
        benches[0].speedup(),
        benches[1].speedup(),
        benches[0].after.cycles_per_sec,
        benches[0].after.allocs_per_cycle,
        intra.speedup_vs_1_thread(),
        intra.identical,
        cache.speedup(),
        cache.warm_hit_rate,
        cache.identical,
        camp.speedup_cold(),
        100.0 * camp.dedup_ratio(),
        camp.identical
    );

    if !identical || !cache.identical || !intra.identical || !camp.identical {
        eprintln!("perf_smoke: FAILED determinism check");
        std::process::exit(1);
    }
}
