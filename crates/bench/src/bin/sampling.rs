//! Designated-vs-exact sampling validation (Fig. 8 / §V-E).

use ebm_bench::{figures, run_and_save};
use ebm_core::eval::{Evaluator, EvaluatorConfig};

fn main() {
    let ev = Evaluator::new(EvaluatorConfig::paper());
    run_and_save(&figures::sampling(&ev));
}
