//! Online-vs-offline PBS on phase-changing workloads (§VI-A).

use ebm_bench::{figures, run_and_save};
use ebm_core::eval::{Evaluator, EvaluatorConfig};

fn main() {
    let ev = Evaluator::new(EvaluatorConfig::paper());
    run_and_save(&figures::phased(&ev));
}
