//! Regenerates the paper's sens_part artifact. See DESIGN.md's experiment index.

use ebm_bench::{figures, run_and_save};
use ebm_core::eval::{Evaluator, EvaluatorConfig};

fn main() {
    let ev = Evaluator::new(EvaluatorConfig::paper());
    run_and_save(&figures::sens_part(&ev));
}
