//! Regenerates the paper's fig09 artifact over the evaluated workloads.
//! Pass workload names (e.g. `BFS_FFT BLK_TRD`) to restrict the set.

use ebm_bench::{figures, run_and_save};
use ebm_core::eval::{Evaluator, EvaluatorConfig};
use gpu_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads: Vec<_> = if args.is_empty() {
        all_workloads()
    } else {
        all_workloads()
            .into_iter()
            .filter(|w| args.contains(&w.name()))
            .collect()
    };
    let ev = Evaluator::new(EvaluatorConfig::paper());
    run_and_save(&figures::fig09(&ev, &workloads));
}
