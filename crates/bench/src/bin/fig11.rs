//! Regenerates the paper's fig11 artifact. See DESIGN.md's experiment index.
//!
//! Accepts `--quick` (scaled-down machine) and `--trace <path>` (stream the
//! runs' structured events to a JSONL file; schema: `docs/TRACE_SCHEMA.md`).

use ebm_bench::{figures, run_and_save, BenchArgs};
use ebm_core::eval::Evaluator;

fn main() {
    let args = BenchArgs::parse();
    args.apply_settings();
    let ev = Evaluator::new(args.evaluator_config());
    let mut trace = args.open_trace();
    run_and_save(&figures::fig11_traced(&ev, &mut *trace));
}
