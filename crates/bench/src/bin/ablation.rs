//! PBS design-choice ablation study (see DESIGN.md mechanism notes).

use ebm_bench::{figures, run_and_save};
use ebm_core::eval::{Evaluator, EvaluatorConfig};

fn main() {
    let ev = Evaluator::new(EvaluatorConfig::paper());
    run_and_save(&figures::ablation(&ev));
}
