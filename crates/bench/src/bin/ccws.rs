//! The ++CCWS baseline and its alone-run premise.

use ebm_bench::{figures, run_and_save};
use ebm_core::eval::{Evaluator, EvaluatorConfig};

fn main() {
    let ev = Evaluator::new(EvaluatorConfig::paper());
    run_and_save(&figures::ccws(&ev));
}
