//! Runs the evaluation campaign: every figure and table, sharing one
//! memoizing evaluator, writing each report to `results/<id>.txt`.
//!
//! Expect roughly half an hour on one core for the full paper campaign;
//! `--quick` runs the scaled-down test machine in seconds, `--only
//! fig09,fig11` restricts the run to the listed artifacts, and `--trace
//! out.jsonl` streams the trace-enabled artifacts' structured events to a
//! JSONL file (schema: `docs/TRACE_SCHEMA.md`). Individual artifacts can
//! also be regenerated with their own binaries (`cargo run -p ebm-bench
//! --release --bin fig09`, …).

use ebm_bench::{figures, run_and_save, BenchArgs};
use ebm_core::eval::Evaluator;
use gpu_workloads::all_workloads;

fn main() {
    let args = BenchArgs::parse();
    args.apply_settings();
    let t0 = std::time::Instant::now();
    let mut ev = Evaluator::new(args.evaluator_config());
    let workloads = all_workloads();
    let mut trace = args.open_trace();

    if args.wants("tab04") {
        run_and_save(&figures::tab04(&mut ev));
    }
    if args.wants("fig01") {
        run_and_save(&figures::fig01(&mut ev));
    }
    if args.wants("fig02") {
        run_and_save(&figures::fig02(&mut ev));
    }
    if args.wants("fig03") {
        run_and_save(&figures::fig03(&mut ev));
    }
    if args.wants("fig04") {
        run_and_save(&figures::fig04(&mut ev));
    }
    if args.wants("fig05") {
        run_and_save(&figures::fig05(&mut ev));
    }
    if args.wants("fig06") {
        run_and_save(&figures::fig06(&mut ev));
    }
    if args.wants("fig07") {
        run_and_save(&figures::fig07(&mut ev));
    }
    if args.wants("fig08") {
        run_and_save(&figures::fig08());
    }
    if args.wants("fig09") {
        run_and_save(&figures::fig09(&mut ev, &workloads));
    }
    if args.wants("fig10") {
        run_and_save(&figures::fig10(&mut ev, &workloads));
    }
    if args.wants("hs") {
        run_and_save(&figures::hs_results(&mut ev, &workloads));
    }
    if args.wants("fig11") {
        run_and_save(&figures::fig11_traced(&mut ev, &mut *trace));
    }
    if args.wants("sens_part") {
        run_and_save(&figures::sens_part(&mut ev));
    }
    if args.wants("ablation") {
        run_and_save(&figures::ablation(&mut ev));
    }
    if args.wants("phased") {
        run_and_save(&figures::phased(&mut ev));
    }
    if args.wants("sampling") {
        run_and_save(&figures::sampling(&mut ev));
    }
    if args.wants("sched") {
        run_and_save(&figures::sched(&mut ev));
    }
    if args.wants("ccws") {
        run_and_save(&figures::ccws(&mut ev));
    }
    if args.wants("dram_policy") {
        run_and_save(&figures::dram_policy(&mut ev));
    }
    if args.wants("threeapp") {
        run_and_save(&figures::threeapp(&mut ev));
    }

    gpu_sim::cache::emit_stats(&mut *trace);
    trace.flush();
    let stats = gpu_sim::cache::stats();
    eprintln!(
        "cache: {} hits ({} disk), {} misses, {} bypasses, {} stores, \
         {} verified, hit rate {:.3}",
        stats.hits,
        stats.disk_hits,
        stats.misses,
        stats.bypasses,
        stats.stores,
        stats.verified,
        stats.hit_rate()
    );
    eprintln!("campaign completed in {:?}", t0.elapsed());
}
