//! Runs the evaluation campaign: every figure and table, sharing one
//! memoizing evaluator, writing each report to `results/<id>.txt`.
//!
//! By default the campaign is compiled into a fingerprint-deduplicated
//! work graph and executed by the [`ebm_bench::campaign`] scheduler over
//! the `EBM_THREADS`-wide worker pool, rendering each artifact — in the
//! serial order, byte-identically — as soon as its measurements finish.
//! `--serial` keeps the artifact-by-artifact loop (also forced by
//! `--no-cache`: the scheduler hands results to the renders through the
//! result-cache tiers).
//!
//! Expect roughly half an hour on one core for the full paper campaign;
//! `--quick` runs the scaled-down test machine in seconds, `--only
//! fig09,fig11` restricts the run to the listed artifacts (the scheduler
//! builds only the sub-graph those artifacts reach), and `--trace
//! out.jsonl` streams the trace-enabled artifacts' structured events to a
//! JSONL file (schema: `docs/TRACE_SCHEMA.md`). Individual artifacts can
//! also be regenerated with their own binaries (`cargo run -p ebm-bench
//! --release --bin fig09`, …).
//!
//! The campaign profiles itself: every artifact runs inside a
//! [`ebm_bench::profiler`] span (scheduled runs add one `unit` span per
//! work unit), and the finished span tree — wall time, simulated cycles,
//! result-cache hits/misses, worker width per phase — is written to
//! `results/PROFILE.json` and, when tracing, appended to the trace as
//! `profile_span` events. The next scheduled run reads that file back as
//! its cost model, starting the longest-recorded units first. Progress
//! output is gated by `EBM_LOG` (`off` | `info` | `debug`).

use ebm_bench::{campaign, figures, log, profiler, run_and_save, BenchArgs};
use ebm_core::eval::Evaluator;
use gpu_workloads::all_workloads;

fn main() {
    let args = BenchArgs::parse();
    args.apply_settings();
    let t0 = std::time::Instant::now();
    let ev = Evaluator::new(args.evaluator_config());
    let mut trace = args.open_trace();

    let root = profiler::span("campaign", "experiments");
    if args.serial || args.no_cache {
        run_serial(&args, &ev, &mut *trace);
        // A serial trace still carries the plan's sched_unit records
        // (runtime fields zeroed), so `trace-tools report` renders the
        // same deterministic scheduler sections as a scheduled run.
        if trace.enabled() {
            let plan = campaign::plan(&args, &ev);
            campaign::emit_plan(&plan, &mut *trace);
        }
    } else {
        let plan = campaign::plan(&args, &ev);
        campaign::run(plan, &ev, &mut *trace, &mut |report| run_and_save(report));
    }
    drop(root);

    let spans = profiler::take_spans();
    profiler::emit_spans(&mut *trace, &spans);
    gpu_sim::cache::emit_stats(&mut *trace);
    trace.flush();

    let profile_path = ebm_bench::out_path("PROFILE.json");
    match profiler::write_profile(&profile_path, &spans) {
        Ok(()) => log!(info, "profile: wrote {}", profile_path.display()),
        Err(e) => eprintln!("error: cannot write {}: {e}", profile_path.display()),
    }

    let stats = gpu_sim::cache::stats();
    log!(
        info,
        "cache: {} hits ({} disk), {} misses, {} bypasses, {} stores, \
         {} verified, hit rate {:.3}",
        stats.hits,
        stats.disk_hits,
        stats.misses,
        stats.bypasses,
        stats.stores,
        stats.verified,
        stats.hit_rate()
    );
    log!(info, "campaign completed in {:?}", t0.elapsed());
}

/// The artifact-by-artifact reference path: generation order defines the
/// byte-identity contract the scheduler is held to (`scripts/ci.sh`
/// compares the two).
fn run_serial(args: &BenchArgs, ev: &Evaluator, trace: &mut dyn gpu_sim::trace::TraceSink) {
    let workloads = all_workloads();

    /// Wraps one artifact in a `figure` profiling span.
    macro_rules! artifact {
        ($id:literal, $gen:expr) => {
            if args.wants($id) {
                log!(debug, "starting {}", $id);
                let _span = profiler::span("figure", $id);
                run_and_save(&$gen);
            }
        };
    }

    artifact!("tab04", figures::tab04(ev));
    artifact!("fig01", figures::fig01(ev));
    artifact!("fig02", figures::fig02(ev));
    artifact!("fig03", figures::fig03(ev));
    artifact!("fig04", figures::fig04(ev));
    artifact!("fig05", figures::fig05(ev));
    artifact!("fig06", figures::fig06(ev));
    artifact!("fig07", figures::fig07(ev));
    artifact!("fig08", figures::fig08());
    artifact!("fig09", figures::fig09(ev, &workloads));
    artifact!("fig10", figures::fig10(ev, &workloads));
    artifact!("hs", figures::hs_results(ev, &workloads));
    artifact!("fig11", figures::fig11_traced(ev, trace));
    artifact!("sens_part", figures::sens_part(ev));
    artifact!("ablation", figures::ablation(ev));
    artifact!("phased", figures::phased(ev));
    artifact!("sampling", figures::sampling(ev));
    artifact!("sched", figures::sched(ev));
    artifact!("ccws", figures::ccws(ev));
    artifact!("dram_policy", figures::dram_policy(ev));
    artifact!("threeapp", figures::threeapp(ev));
}
