//! Runs the evaluation campaign: every figure and table, sharing one
//! memoizing evaluator, writing each report to `results/<id>.txt`.
//!
//! Expect roughly half an hour on one core for the full paper campaign;
//! `--quick` runs the scaled-down test machine in seconds, `--only
//! fig09,fig11` restricts the run to the listed artifacts, and `--trace
//! out.jsonl` streams the trace-enabled artifacts' structured events to a
//! JSONL file (schema: `docs/TRACE_SCHEMA.md`). Individual artifacts can
//! also be regenerated with their own binaries (`cargo run -p ebm-bench
//! --release --bin fig09`, …).
//!
//! The campaign profiles itself: every artifact runs inside a
//! [`ebm_bench::profiler`] span, and the finished span tree — wall time,
//! simulated cycles, result-cache hits/misses, worker width per phase — is
//! written to `results/PROFILE.json` and, when tracing, appended to the
//! trace as `profile_span` events. Progress output is gated by `EBM_LOG`
//! (`off` | `info` | `debug`).

use ebm_bench::{figures, log, profiler, run_and_save, BenchArgs};
use ebm_core::eval::Evaluator;
use gpu_workloads::all_workloads;

fn main() {
    let args = BenchArgs::parse();
    args.apply_settings();
    let t0 = std::time::Instant::now();
    let mut ev = Evaluator::new(args.evaluator_config());
    let workloads = all_workloads();
    let mut trace = args.open_trace();

    let campaign = profiler::span("campaign", "experiments");

    /// Wraps one artifact in a `figure` profiling span.
    macro_rules! artifact {
        ($id:literal, $gen:expr) => {
            if args.wants($id) {
                log!(debug, "starting {}", $id);
                let _span = profiler::span("figure", $id);
                run_and_save(&$gen);
            }
        };
    }

    artifact!("tab04", figures::tab04(&mut ev));
    artifact!("fig01", figures::fig01(&mut ev));
    artifact!("fig02", figures::fig02(&mut ev));
    artifact!("fig03", figures::fig03(&mut ev));
    artifact!("fig04", figures::fig04(&mut ev));
    artifact!("fig05", figures::fig05(&mut ev));
    artifact!("fig06", figures::fig06(&mut ev));
    artifact!("fig07", figures::fig07(&mut ev));
    artifact!("fig08", figures::fig08());
    artifact!("fig09", figures::fig09(&mut ev, &workloads));
    artifact!("fig10", figures::fig10(&mut ev, &workloads));
    artifact!("hs", figures::hs_results(&mut ev, &workloads));
    artifact!("fig11", figures::fig11_traced(&mut ev, &mut *trace));
    artifact!("sens_part", figures::sens_part(&mut ev));
    artifact!("ablation", figures::ablation(&mut ev));
    artifact!("phased", figures::phased(&mut ev));
    artifact!("sampling", figures::sampling(&mut ev));
    artifact!("sched", figures::sched(&mut ev));
    artifact!("ccws", figures::ccws(&mut ev));
    artifact!("dram_policy", figures::dram_policy(&mut ev));
    artifact!("threeapp", figures::threeapp(&mut ev));

    drop(campaign);
    let spans = profiler::take_spans();
    profiler::emit_spans(&mut *trace, &spans);
    gpu_sim::cache::emit_stats(&mut *trace);
    trace.flush();

    let profile_path = ebm_bench::out_path("PROFILE.json");
    match profiler::write_profile(&profile_path, &spans) {
        Ok(()) => log!(info, "profile: wrote {}", profile_path.display()),
        Err(e) => eprintln!("error: cannot write {}: {e}", profile_path.display()),
    }

    let stats = gpu_sim::cache::stats();
    log!(
        info,
        "cache: {} hits ({} disk), {} misses, {} bypasses, {} stores, \
         {} verified, hit rate {:.3}",
        stats.hits,
        stats.disk_hits,
        stats.misses,
        stats.bypasses,
        stats.stores,
        stats.verified,
        stats.hit_rate()
    );
    log!(info, "campaign completed in {:?}", t0.elapsed());
}
