//! Runs the full evaluation campaign: every figure and table, sharing one
//! memoizing evaluator, writing each report to `results/<id>.txt`.
//!
//! Expect roughly half an hour on one core; individual artifacts can be
//! regenerated with their own binaries (`cargo run -p ebm-bench --release
//! --bin fig09`, …).

use ebm_bench::{figures, run_and_save};
use ebm_core::eval::{Evaluator, EvaluatorConfig};
use gpu_workloads::all_workloads;

fn main() {
    let t0 = std::time::Instant::now();
    let mut ev = Evaluator::new(EvaluatorConfig::paper());
    let workloads = all_workloads();

    run_and_save(&figures::tab04(&mut ev));
    run_and_save(&figures::fig01(&mut ev));
    run_and_save(&figures::fig02(&mut ev));
    run_and_save(&figures::fig03(&mut ev));
    run_and_save(&figures::fig04(&mut ev));
    run_and_save(&figures::fig05(&mut ev));
    run_and_save(&figures::fig06(&mut ev));
    run_and_save(&figures::fig07(&mut ev));
    run_and_save(&figures::fig08());
    run_and_save(&figures::fig09(&mut ev, &workloads));
    run_and_save(&figures::fig10(&mut ev, &workloads));
    run_and_save(&figures::hs_results(&mut ev, &workloads));
    run_and_save(&figures::fig11(&mut ev));
    run_and_save(&figures::sens_part(&mut ev));
    run_and_save(&figures::ablation(&mut ev));
    run_and_save(&figures::phased(&mut ev));
    run_and_save(&figures::sampling(&mut ev));
    run_and_save(&figures::sched(&mut ev));
    run_and_save(&figures::ccws(&mut ev));
    run_and_save(&figures::dram_policy(&mut ev));
    run_and_save(&figures::threeapp(&mut ev));

    eprintln!("campaign completed in {:?}", t0.elapsed());
}
