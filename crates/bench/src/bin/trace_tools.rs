//! Offline analysis CLI for JSONL traces (`docs/TRACE_SCHEMA.md`).
//!
//! ```text
//! trace-tools validate <trace>         strict schema check (CI gate)
//! trace-tools timeline <trace>         per-app EB/BW/CMR/IPC CSV
//! trace-tools stalls   <trace>         stall breakdown + latency percentiles
//! trace-tools cache    <trace>         result-cache counter summary
//! trace-tools diff     <a> <b>         compare two traces
//! trace-tools profile  <PROFILE.json>  top spans by wall time
//! trace-tools report   <trace> [--profile P] [--timings] [--html PATH] [--lanes N]
//! trace-tools bench-trend <BENCH_HISTORY.jsonl>  flag metric regressions
//! ```
//!
//! `validate` exits non-zero on the first schema violation class (all
//! offending lines are listed, capped); the analysis modes skip and count
//! unparsable lines so a partially-damaged trace still renders.
//!
//! `report` merges one trace (and optionally its `PROFILE.json`) into a
//! single self-contained run report. Its default output contains only
//! deterministic data — plan-order scheduler units, a virtual LPT
//! schedule over estimated costs, domain-sync and stall summaries — so
//! serial and scheduled traces of the same campaign render byte-identical
//! reports (a CI gate). `--timings` adds the nondeterministic wall-clock
//! sections (per-worker schedule, cost-model calibration, cache funnel);
//! `--html` additionally writes the report as a self-contained HTML page.
//!
//! `bench-trend` walks `results/BENCH_HISTORY.jsonl` (appended by
//! `perf_smoke`, see `ebm_bench::history`) and compares each benchmark's
//! latest snapshot against its previous one, exiting non-zero when a
//! metric regressed beyond its per-field threshold.

use ebm_bench::json::{parse, Json};
use ebm_bench::schema::{validate_trace, MAX_SCHEMA_VERSION};
use gpu_types::Histogram;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// `println!` that treats a closed stdout (e.g. `trace-tools timeline t |
/// head`) as a normal end of output instead of a broken-pipe panic.
macro_rules! outln {
    ($($t:tt)*) => {{
        use std::io::Write;
        if let Err(e) = writeln!(std::io::stdout(), $($t)*) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            panic!("stdout write failed: {e}");
        }
    }};
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace-tools <command> <trace.jsonl> [args]\n\
         \n\
         commands:\n\
         \x20 validate <trace>      check every record against schema v1..={MAX_SCHEMA_VERSION}\n\
         \x20 timeline <trace>      per-app EB/BW/CMR/IPC timeline as CSV (stdout)\n\
         \x20 stalls <trace>        warp-stall breakdown and latency percentile tables\n\
         \x20 cache <trace>         result-cache counter summary\n\
         \x20 diff <a> <b>          compare two traces (kinds, windows, per-app means)\n\
         \x20 profile <PROFILE.json> [N]  top N spans by wall time (default 20)\n\
         \x20 report <trace> [--profile PROFILE.json] [--timings] [--html PATH] [--lanes N]\n\
         \x20                       self-contained run report (deterministic by default)\n\
         \x20 bench-trend <BENCH_HISTORY.jsonl>  compare latest vs previous snapshots"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("validate") if args.len() == 2 => validate_cmd(&args[1]),
        Some("timeline") if args.len() == 2 => timeline_cmd(&args[1]),
        Some("stalls") if args.len() == 2 => stalls_cmd(&args[1]),
        Some("cache") if args.len() == 2 => cache_cmd(&args[1]),
        Some("diff") if args.len() == 3 => diff_cmd(&args[1], &args[2]),
        Some("profile") if args.len() == 2 => profile_cmd(&args[1], 20),
        Some("profile") if args.len() == 3 => match args[2].parse() {
            Ok(n) => profile_cmd(&args[1], n),
            Err(_) => usage(),
        },
        Some("report") if args.len() >= 2 => match ReportOpts::parse(&args[1..]) {
            Some(opts) => report_cmd(&opts),
            None => usage(),
        },
        Some("bench-trend") if args.len() == 2 => bench_trend_cmd(&args[1]),
        _ => usage(),
    }
}

fn read_trace(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

fn validate_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let report = validate_trace(&text);
    outln!("{path}: {} records", report.lines);
    for (kind, n) in &report.by_kind {
        outln!("  {kind:<18} {n}");
    }
    if report.is_ok() {
        outln!("OK: every record matches docs/TRACE_SCHEMA.md");
        ExitCode::SUCCESS
    } else {
        const CAP: usize = 20;
        for (line, msg) in report.errors.iter().take(CAP) {
            eprintln!("{path}:{line}: {msg}");
        }
        if report.errors.len() > CAP {
            eprintln!("... and {} more errors", report.errors.len() - CAP);
        }
        eprintln!(
            "INVALID: {} of {} records failed",
            report.errors.len(),
            report.lines
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// shared parsing helpers for the analysis modes
// ---------------------------------------------------------------------------

/// Parses every well-formed JSON object line; returns the records and the
/// number of skipped (unparsable) lines.
fn parse_records(text: &str) -> (Vec<Json>, u64) {
    let mut records = Vec::new();
    let mut skipped = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line) {
            Ok(v @ Json::Obj(_)) => records.push(v),
            _ => skipped += 1,
        }
    }
    (records, skipped)
}

fn kind_of(rec: &Json) -> &str {
    rec.get("kind").and_then(Json::as_str).unwrap_or("")
}

fn num(rec: &Json, key: &str) -> f64 {
    rec.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

fn int(rec: &Json, key: &str) -> u64 {
    rec.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn warn_skipped(skipped: u64) {
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} unparsable line(s)");
    }
}

/// Rebuilds a histogram from its serialized object; `None` when the
/// record is malformed or internally inconsistent.
fn hist_of(rec: &Json, key: &str) -> Option<Histogram> {
    let h = rec.get(key)?;
    let buckets: Vec<u64> = h
        .get("buckets")?
        .as_arr()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<_>>()?;
    Histogram::from_parts(
        h.get("count")?.as_u64()?,
        h.get("sum")?.as_u64()?,
        h.get("min")?.as_u64()?,
        h.get("max")?.as_u64()?,
        &buckets,
    )
    .ok()
}

// ---------------------------------------------------------------------------
// timeline
// ---------------------------------------------------------------------------

fn timeline_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (records, skipped) = parse_records(&text);
    outln!("cycle,app,eb,bw,cmr,ipc");
    let mut rows = 0u64;
    for rec in records.iter().filter(|r| kind_of(r) == "window_sample") {
        outln!(
            "{},{},{},{},{},{}",
            int(rec, "cycle"),
            int(rec, "app"),
            fmt_num(num(rec, "eb")),
            fmt_num(num(rec, "bw")),
            fmt_num(num(rec, "cmr")),
            fmt_num(num(rec, "ipc")),
        );
        rows += 1;
    }
    warn_skipped(skipped);
    if rows == 0 {
        eprintln!("warning: no window_sample records in {path}");
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// stalls
// ---------------------------------------------------------------------------

#[derive(Default)]
struct StallAccum {
    mem: u64,
    exec: u64,
    barrier: u64,
    tlp_capped: u64,
    dram_lat: Histogram,
    windows: u64,
}

fn stalls_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (records, skipped) = parse_records(&text);
    // Key: Some(app) per-app rows, None = machine-wide aggregate.
    let mut acc: BTreeMap<Option<u64>, StallAccum> = BTreeMap::new();
    let mut mshr_occ = Histogram::new();
    let mut queue_depth = Histogram::new();
    for rec in records.iter().filter(|r| kind_of(r) == "metrics_window") {
        let app = rec.get("app").and_then(Json::as_u64);
        let a = acc.entry(app).or_default();
        if let Some(stalls) = rec.get("stalls") {
            a.mem += int(stalls, "mem");
            a.exec += int(stalls, "exec");
            a.barrier += int(stalls, "barrier");
            a.tlp_capped += int(stalls, "tlp_capped");
        }
        if let Some(h) = hist_of(rec, "dram_lat") {
            a.dram_lat.merge(&h);
        }
        a.windows += 1;
        if app.is_none() {
            if let Some(h) = hist_of(rec, "mshr_occ") {
                mshr_occ.merge(&h);
            }
            if let Some(h) = hist_of(rec, "queue_depth") {
                queue_depth.merge(&h);
            }
        }
    }
    warn_skipped(skipped);
    if acc.is_empty() {
        eprintln!("warning: no metrics_window records in {path} (trace predates schema v3?)");
        return ExitCode::SUCCESS;
    }
    outln!("warp-stall breakdown (warp-cycles, summed over windows)");
    outln!(
        "{:<6} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "app",
        "windows",
        "mem",
        "exec",
        "barrier",
        "tlp_capped"
    );
    for (app, a) in &acc {
        let label = app.map_or("all".to_string(), |x| x.to_string());
        outln!(
            "{label:<6} {:>8} {:>14} {:>14} {:>14} {:>14}",
            a.windows,
            a.mem,
            a.exec,
            a.barrier,
            a.tlp_capped
        );
    }
    outln!();
    outln!("DRAM request latency (cycles, queue to data)");
    outln!(
        "{:<6} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app",
        "requests",
        "mean",
        "min",
        "p50",
        "p95",
        "p99",
        "max"
    );
    for (app, a) in &acc {
        let label = app.map_or("all".to_string(), |x| x.to_string());
        let h = &a.dram_lat;
        outln!(
            "{label:<6} {:>10} {:>10.1} {:>8} {:>8} {:>8} {:>8} {:>8}",
            h.count(),
            h.mean(),
            h.min(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max()
        );
    }
    outln!();
    outln!("machine-wide occupancy gauges (sampled once per window)");
    outln!(
        "{:<12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "gauge",
        "samples",
        "mean",
        "min",
        "p50",
        "p95",
        "p99",
        "max"
    );
    for (name, h) in [("l2_mshr", &mshr_occ), ("queue_depth", &queue_depth)] {
        outln!(
            "{name:<12} {:>10} {:>10.1} {:>8} {:>8} {:>8} {:>8} {:>8}",
            h.count(),
            h.mean(),
            h.min(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max()
        );
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// cache
// ---------------------------------------------------------------------------

fn cache_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (records, skipped) = parse_records(&text);
    warn_skipped(skipped);
    // Counters are cumulative at emission time, so the last record wins.
    let Some(rec) = records.iter().rev().find(|r| kind_of(r) == "cache_stats") else {
        eprintln!("warning: no cache_stats records in {path}");
        return ExitCode::SUCCESS;
    };
    let (hits, disk_hits, misses) = (int(rec, "hits"), int(rec, "disk_hits"), int(rec, "misses"));
    let lookups = hits + misses;
    outln!("result-cache counters (final snapshot)");
    outln!("  hits       {hits} ({disk_hits} from disk)");
    outln!("  misses     {misses}");
    outln!("  bypasses   {}", int(rec, "bypasses"));
    outln!("  stores     {}", int(rec, "stores"));
    outln!("  verified   {}", int(rec, "verified"));
    if lookups > 0 {
        outln!("  hit rate   {:.1}%", 100.0 * hits as f64 / lookups as f64);
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// profile
// ---------------------------------------------------------------------------

/// Renders the top-`top_n` spans of a `results/PROFILE.json` by wall
/// time: where a campaign actually spent its time, at what simulation
/// rate, and how often the result cache served it. In a scheduled
/// campaign this file holds one `unit` span per work unit — the same
/// labels the scheduler's cost model reads back.
fn profile_cmd(path: &str, top_n: usize) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spans) = doc.get("spans").and_then(Json::as_arr) else {
        eprintln!("error: {path} has no `spans` array (not a PROFILE.json?)");
        return ExitCode::FAILURE;
    };
    let mut rows: Vec<&Json> = spans.iter().collect();
    rows.sort_by(|a, b| {
        num(b, "wall_s")
            .partial_cmp(&num(a, "wall_s"))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total_wall: f64 = spans
        .iter()
        .filter(|s| s.get("level").and_then(Json::as_str) == Some("campaign"))
        .map(|s| num(s, "wall_s"))
        .sum();
    outln!(
        "top {} of {} spans by wall time{}",
        top_n.min(rows.len()),
        rows.len(),
        doc.get("workers")
            .and_then(Json::as_u64)
            .map_or(String::new(), |w| format!(" ({w} workers)"))
    );
    outln!(
        "{:<10} {:<40} {:>9} {:>6} {:>13} {:>11} {:>8}",
        "level",
        "name",
        "wall_s",
        "%",
        "cycles",
        "cycles/s",
        "hit%"
    );
    for rec in rows.iter().take(top_n) {
        let wall = num(rec, "wall_s");
        let cycles = int(rec, "cycles");
        let hits = int(rec, "cache_hits");
        let misses = int(rec, "cache_misses");
        let lookups = hits + misses;
        let pct = if total_wall > 0.0 {
            format!("{:.1}", 100.0 * wall / total_wall)
        } else {
            "-".to_string()
        };
        let rate = if wall > 0.0 && cycles > 0 {
            format!("{:.0}", cycles as f64 / wall)
        } else {
            "-".to_string()
        };
        let hit_rate = if lookups > 0 {
            format!("{:.1}", 100.0 * hits as f64 / lookups as f64)
        } else {
            "-".to_string()
        };
        let mut name = rec
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        if name.len() > 40 {
            name.truncate(37);
            name.push_str("...");
        }
        outln!(
            "{:<10} {:<40} {:>9.3} {:>6} {:>13} {:>11} {:>8}",
            rec.get("level").and_then(Json::as_str).unwrap_or("?"),
            name,
            wall,
            pct,
            cycles,
            rate,
            hit_rate
        );
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

#[derive(Default)]
struct TraceSummary {
    kinds: BTreeMap<String, u64>,
    last_cycle: u64,
    /// Per app: (windows, Σeb, Σipc).
    apps: BTreeMap<u64, (u64, f64, f64)>,
    tlp_decisions: u64,
}

fn summarize(records: &[Json]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for rec in records {
        let kind = kind_of(rec).to_string();
        if kind.is_empty() {
            continue;
        }
        *s.kinds.entry(kind.clone()).or_insert(0) += 1;
        s.last_cycle = s.last_cycle.max(int(rec, "cycle"));
        match kind.as_str() {
            "window_sample" => {
                let e = s.apps.entry(int(rec, "app")).or_insert((0, 0.0, 0.0));
                e.0 += 1;
                let (eb, ipc) = (num(rec, "eb"), num(rec, "ipc"));
                if eb.is_finite() {
                    e.1 += eb;
                }
                if ipc.is_finite() {
                    e.2 += ipc;
                }
            }
            "tlp_decision" => s.tlp_decisions += 1,
            _ => {}
        }
    }
    s
}

fn diff_cmd(path_a: &str, path_b: &str) -> ExitCode {
    let (text_a, text_b) = match (read_trace(path_a), read_trace(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let (recs_a, skip_a) = parse_records(&text_a);
    let (recs_b, skip_b) = parse_records(&text_b);
    warn_skipped(skip_a + skip_b);
    let (a, b) = (summarize(&recs_a), summarize(&recs_b));

    outln!("{:<24} {:>14} {:>14} {:>14}", "metric", "A", "B", "delta");
    outln!(
        "{:<24} {:>14} {:>14} {:>14}",
        "records",
        recs_a.len(),
        recs_b.len(),
        recs_b.len() as i64 - recs_a.len() as i64
    );
    let mut all_kinds: Vec<&String> = a.kinds.keys().chain(b.kinds.keys()).collect();
    all_kinds.sort();
    all_kinds.dedup();
    let mut identical = recs_a.len() == recs_b.len();
    for kind in all_kinds {
        let (na, nb) = (
            a.kinds.get(kind).copied().unwrap_or(0),
            b.kinds.get(kind).copied().unwrap_or(0),
        );
        if na != nb {
            identical = false;
        }
        outln!(
            "{:<24} {na:>14} {nb:>14} {:>14}",
            format!("  {kind}"),
            nb as i64 - na as i64
        );
    }
    outln!(
        "{:<24} {:>14} {:>14} {:>14}",
        "last cycle",
        a.last_cycle,
        b.last_cycle,
        b.last_cycle as i64 - a.last_cycle as i64
    );
    outln!(
        "{:<24} {:>14} {:>14} {:>14}",
        "tlp decisions",
        a.tlp_decisions,
        b.tlp_decisions,
        b.tlp_decisions as i64 - a.tlp_decisions as i64
    );
    let mut apps: Vec<&u64> = a.apps.keys().chain(b.apps.keys()).collect();
    apps.sort();
    apps.dedup();
    for app in apps {
        let ma = a.apps.get(app).copied().unwrap_or((0, 0.0, 0.0));
        let mb = b.apps.get(app).copied().unwrap_or((0, 0.0, 0.0));
        let mean = |(n, sum, _): (u64, f64, f64)| if n > 0 { sum / n as f64 } else { f64::NAN };
        let mean_ipc = |(n, _, sum): (u64, f64, f64)| if n > 0 { sum / n as f64 } else { f64::NAN };
        let (ea, eb) = (mean(ma), mean(mb));
        let (ia, ib) = (mean_ipc(ma), mean_ipc(mb));
        if (ea - eb).abs() > 1e-12 || (ia - ib).abs() > 1e-12 {
            identical = false;
        }
        outln!(
            "{:<24} {:>14.4} {:>14.4} {:>+14.4}",
            format!("app {app} mean EB"),
            ea,
            eb,
            eb - ea
        );
        outln!(
            "{:<24} {:>14.4} {:>14.4} {:>+14.4}",
            format!("app {app} mean IPC"),
            ia,
            ib,
            ib - ia
        );
    }
    outln!();
    if identical {
        outln!("traces are equivalent under this summary");
    } else {
        outln!("traces differ");
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

/// Parsed `report` command line.
struct ReportOpts {
    trace: String,
    profile: Option<String>,
    timings: bool,
    html: Option<String>,
    lanes: usize,
}

impl ReportOpts {
    fn parse(args: &[String]) -> Option<ReportOpts> {
        let mut trace = None;
        let mut profile = None;
        let mut timings = false;
        let mut html = None;
        let mut lanes = 4usize;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--timings" => timings = true,
                "--profile" => {
                    profile = Some(args.get(i + 1)?.clone());
                    i += 1;
                }
                "--html" => {
                    html = Some(args.get(i + 1)?.clone());
                    i += 1;
                }
                "--lanes" => {
                    lanes = args.get(i + 1)?.parse().ok().filter(|&n| n >= 1)?;
                    i += 1;
                }
                a if !a.starts_with("--") && trace.is_none() => trace = Some(a.to_string()),
                _ => return None,
            }
            i += 1;
        }
        Some(ReportOpts {
            trace: trace?,
            profile,
            timings,
            html,
            lanes,
        })
    }
}

/// One `sched_unit` record, decoded.
struct UnitRec {
    unit: u64,
    label: String,
    fp: String,
    deps: u64,
    est: u64,
    worker: u64,
    start_ms: f64,
    wall_ms: f64,
    cycles: u64,
}

/// One bar of the virtual (or per-worker) schedule.
struct Seg {
    unit: usize,
    start: u64,
    finish: u64,
}

/// Everything a report renders, derived once from the parsed records so
/// the text and HTML outputs cannot drift apart.
struct ReportData {
    /// Record counts of the deterministic event kinds only (the
    /// nondeterministic `profile_span` / `cache_stats` / `cache_tier`
    /// counts are excluded so serial and scheduled reports stay
    /// byte-identical).
    kind_counts: BTreeMap<String, u64>,
    units: Vec<UnitRec>,
    lanes: Vec<Vec<Seg>>,
    makespan: u64,
    /// Per-domain `[windows, window_cycles, core_steps, partition_steps]`.
    domains: BTreeMap<u64, [u64; 4]>,
    stalls: BTreeMap<Option<u64>, StallAccum>,
    /// Per-tier `[hits, misses, stores]`, last snapshot per tier.
    tiers: BTreeMap<String, [u64; 3]>,
}

/// Event kinds whose count (or content) varies run to run; excluded from
/// the deterministic report header.
const NONDETERMINISTIC_KINDS: [&str; 3] = ["profile_span", "cache_stats", "cache_tier"];

/// Deterministic LPT list schedule of the plan over `lanes` virtual
/// lanes: units in estimated-cost order (ties toward the lower unit
/// index, mirroring the real scheduler's ready queue), each placed on the
/// earliest-free lane. Pure function of the plan — serial and scheduled
/// traces of the same campaign produce the identical schedule.
fn virtual_schedule(units: &[UnitRec], lanes: usize) -> (Vec<Vec<Seg>>, u64) {
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by(|&a, &b| {
        units[b]
            .est
            .cmp(&units[a].est)
            .then(units[a].unit.cmp(&units[b].unit))
    });
    let mut lane_segs: Vec<Vec<Seg>> = (0..lanes).map(|_| Vec::new()).collect();
    let mut free = vec![0u64; lanes];
    for i in order {
        let lane = (0..lanes)
            .min_by_key(|&l| (free[l], l))
            .expect("lanes >= 1");
        let start = free[lane];
        let finish = start + units[i].est;
        free[lane] = finish;
        lane_segs[lane].push(Seg {
            unit: i,
            start,
            finish,
        });
    }
    (lane_segs, free.into_iter().max().unwrap_or(0))
}

fn collect_report_data(records: &[Json], lanes: usize) -> ReportData {
    let mut kind_counts: BTreeMap<String, u64> = BTreeMap::new();
    for rec in records {
        let kind = kind_of(rec);
        if !kind.is_empty() && !NONDETERMINISTIC_KINDS.contains(&kind) {
            *kind_counts.entry(kind.to_string()).or_insert(0) += 1;
        }
    }
    let mut units: Vec<UnitRec> = records
        .iter()
        .filter(|r| kind_of(r) == "sched_unit")
        .map(|r| UnitRec {
            unit: int(r, "unit"),
            label: r
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            fp: r.get("fp").and_then(Json::as_str).unwrap_or("").to_string(),
            deps: int(r, "deps"),
            est: int(r, "est"),
            worker: int(r, "worker"),
            start_ms: num(r, "start_ms"),
            wall_ms: num(r, "wall_ms"),
            cycles: int(r, "cycles"),
        })
        .collect();
    units.sort_by_key(|u| u.unit);
    let (lane_segs, makespan) = virtual_schedule(&units, lanes);
    let mut domains: BTreeMap<u64, [u64; 4]> = BTreeMap::new();
    for rec in records.iter().filter(|r| kind_of(r) == "domain_window") {
        let d = domains.entry(int(rec, "domain")).or_insert([0; 4]);
        d[0] += int(rec, "windows");
        d[1] += int(rec, "window_cycles");
        d[2] += int(rec, "core_steps");
        d[3] += int(rec, "partition_steps");
    }
    let mut stalls: BTreeMap<Option<u64>, StallAccum> = BTreeMap::new();
    for rec in records.iter().filter(|r| kind_of(r) == "metrics_window") {
        let a = stalls
            .entry(rec.get("app").and_then(Json::as_u64))
            .or_default();
        if let Some(s) = rec.get("stalls") {
            a.mem += int(s, "mem");
            a.exec += int(s, "exec");
            a.barrier += int(s, "barrier");
            a.tlp_capped += int(s, "tlp_capped");
        }
        if let Some(h) = hist_of(rec, "dram_lat") {
            a.dram_lat.merge(&h);
        }
        a.windows += 1;
    }
    // Tier counters are cumulative at emission, so the last snapshot per
    // tier wins (mirrors `cache_cmd`).
    let mut tiers: BTreeMap<String, [u64; 3]> = BTreeMap::new();
    for rec in records.iter().filter(|r| kind_of(r) == "cache_tier") {
        if let Some(tier) = rec.get("tier").and_then(Json::as_str) {
            tiers.insert(
                tier.to_string(),
                [int(rec, "hits"), int(rec, "misses"), int(rec, "stores")],
            );
        }
    }
    ReportData {
        kind_counts,
        units,
        lanes: lane_segs,
        makespan,
        domains,
        stalls,
        tiers,
    }
}

/// Renders the deterministic body of the report (every default section).
/// Contains no file paths, timestamps or wall-clock numbers.
fn render_report_text(d: &ReportData) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "== run report ==");
    let _ = writeln!(w, "records by kind (deterministic kinds only):");
    if d.kind_counts.is_empty() {
        let _ = writeln!(w, "  none");
    }
    for (kind, n) in &d.kind_counts {
        let _ = writeln!(w, "  {kind:<18} {n}");
    }

    let _ = writeln!(w);
    let _ = writeln!(w, "== campaign plan ==");
    if d.units.is_empty() {
        let _ = writeln!(w, "no sched_unit records (untraced or pre-v5 run)");
    } else {
        let total_est: u64 = d.units.iter().map(|u| u.est).sum();
        let with_deps = d.units.iter().filter(|u| u.deps > 0).count();
        let _ = writeln!(
            w,
            "{} units, {} with dependencies, total estimated cost {} cycles",
            d.units.len(),
            with_deps,
            total_est
        );
        const TOP: usize = 40;
        let mut by_est: Vec<&UnitRec> = d.units.iter().collect();
        by_est.sort_by(|a, b| b.est.cmp(&a.est).then(a.unit.cmp(&b.unit)));
        let _ = writeln!(
            w,
            "top {} of {} units by estimated cost:",
            TOP.min(by_est.len()),
            by_est.len()
        );
        let _ = writeln!(
            w,
            "  {:>5} {:>12} {:>5}  {:<10} label",
            "unit", "est", "deps", "fp"
        );
        for u in by_est.iter().take(TOP) {
            let fp8 = u.fp.get(..8).unwrap_or(&u.fp);
            let _ = writeln!(
                w,
                "  {:>5} {:>12} {:>5}  {:<10} {}",
                u.unit, u.est, u.deps, fp8, u.label
            );
        }
    }

    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "== virtual schedule ({} lanes, LPT by estimated cost) ==",
        d.lanes.len()
    );
    if d.units.is_empty() {
        let _ = writeln!(w, "nothing to schedule");
    } else {
        let total_est: u64 = d.units.iter().map(|u| u.est).sum();
        let parallelism = total_est as f64 / d.makespan.max(1) as f64;
        let _ = writeln!(
            w,
            "makespan {} virtual cycles, parallelism {:.2} (sum of estimates / makespan)",
            d.makespan, parallelism
        );
        for (lane, segs) in d.lanes.iter().enumerate() {
            let busy: u64 = segs.iter().map(|s| s.finish - s.start).sum();
            let pct = 100.0 * busy as f64 / d.makespan.max(1) as f64;
            let _ = write!(w, "lane {lane}: {} units, busy {pct:.1}% |", segs.len());
            const SEGS: usize = 6;
            for s in segs.iter().take(SEGS) {
                let _ = write!(w, " {}@{}", d.units[s.unit].unit, s.start);
            }
            if segs.len() > SEGS {
                let _ = write!(w, " (+{} more)", segs.len() - SEGS);
            }
            let _ = writeln!(w);
        }
    }

    let _ = writeln!(w);
    let _ = writeln!(w, "== domain synchronization ==");
    if d.domains.is_empty() {
        let _ = writeln!(w, "none recorded (serial engine or untraced run)");
    } else {
        let _ = writeln!(
            w,
            "{:<8} {:>10} {:>14} {:>14} {:>16}",
            "domain", "windows", "window_cycles", "core_steps", "partition_steps"
        );
        for (dom, v) in &d.domains {
            let _ = writeln!(
                w,
                "{dom:<8} {:>10} {:>14} {:>14} {:>16}",
                v[0], v[1], v[2], v[3]
            );
        }
    }

    let _ = writeln!(w);
    let _ = writeln!(w, "== per-app stalls and DRAM latency ==");
    if d.stalls.is_empty() {
        let _ = writeln!(w, "no metrics_window records");
    } else {
        let _ = writeln!(
            w,
            "{:<6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>9} {:>8}",
            "app", "windows", "mem", "exec", "barrier", "tlp_capped", "dram_reqs", "mean", "p95"
        );
        for (app, a) in &d.stalls {
            let label = app.map_or("all".to_string(), |x| x.to_string());
            let h = &a.dram_lat;
            let _ = writeln!(
                w,
                "{label:<6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>9.1} {:>8}",
                a.windows,
                a.mem,
                a.exec,
                a.barrier,
                a.tlp_capped,
                h.count(),
                h.mean(),
                h.percentile(0.95)
            );
        }
    }
    out
}

/// Renders the `--timings` sections: real execution data that varies run
/// to run (never part of the byte-compare gate).
fn render_timings_text(d: &ReportData) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w);
    let _ = writeln!(w, "== scheduler timings (nondeterministic) ==");
    let executed: Vec<&UnitRec> = d.units.iter().filter(|u| u.wall_ms > 0.0).collect();
    if executed.is_empty() {
        let _ = writeln!(
            w,
            "no recorded unit timings (serial plan-only emission, or cache-warm run)"
        );
    } else {
        let mut workers: BTreeMap<u64, (usize, f64)> = BTreeMap::new();
        for u in &executed {
            let e = workers.entry(u.worker).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += u.wall_ms;
        }
        let _ = writeln!(w, "{:<8} {:>6} {:>12}", "worker", "units", "busy_ms");
        for (worker, (n, busy)) in &workers {
            let _ = writeln!(w, "{worker:<8} {n:>6} {busy:>12.2}");
        }
        const TOP: usize = 20;
        let mut by_wall: Vec<&&UnitRec> = executed.iter().collect();
        by_wall.sort_by(|a, b| {
            b.wall_ms
                .partial_cmp(&a.wall_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.unit.cmp(&b.unit))
        });
        let _ = writeln!(
            w,
            "top {} of {} executed units by wall time:",
            TOP.min(by_wall.len()),
            by_wall.len()
        );
        let _ = writeln!(
            w,
            "  {:>5} {:>6} {:>11} {:>10} {:>13} label",
            "unit", "worker", "start_ms", "wall_ms", "cycles"
        );
        for u in by_wall.iter().take(TOP) {
            let _ = writeln!(
                w,
                "  {:>5} {:>6} {:>11.2} {:>10.2} {:>13} {}",
                u.unit, u.worker, u.start_ms, u.wall_ms, u.cycles, u.label
            );
        }

        let _ = writeln!(w);
        let _ = writeln!(w, "== cost-model calibration ==");
        let mut simulated: Vec<&&UnitRec> = executed.iter().filter(|u| u.cycles > 0).collect();
        if simulated.is_empty() {
            let _ = writeln!(w, "no units simulated cycles (fully cache-served run)");
        } else {
            simulated.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.unit.cmp(&b.unit)));
            let _ = writeln!(
                w,
                "top {} of {} simulated units, estimate vs actual:",
                TOP.min(simulated.len()),
                simulated.len()
            );
            let _ = writeln!(w, "  {:>12} {:>13} {:>7}  label", "est", "actual", "ratio");
            for u in simulated.iter().take(TOP) {
                let ratio = u.cycles as f64 / u.est.max(1) as f64;
                let _ = writeln!(
                    w,
                    "  {:>12} {:>13} {:>7.2}  {}",
                    u.est, u.cycles, ratio, u.label
                );
            }
        }
    }

    let _ = writeln!(w);
    let _ = writeln!(w, "== result-cache hit funnel ==");
    if d.tiers.is_empty() {
        let _ = writeln!(w, "no cache_tier records (untraced or pre-v5 run)");
    } else {
        let _ = writeln!(
            w,
            "{:<8} {:>10} {:>10} {:>10}",
            "tier", "hits", "misses", "stores"
        );
        for (tier, v) in &d.tiers {
            let _ = writeln!(w, "{tier:<8} {:>10} {:>10} {:>10}", v[0], v[1], v[2]);
        }
    }
    out
}

/// Renders the `--profile` section from a `PROFILE.json` document: top
/// spans by wall time (nondeterministic; opt-in via the flag).
fn render_profile_text(doc: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w);
    let _ = writeln!(w, "== profile spans (nondeterministic) ==");
    let Some(spans) = doc.get("spans").and_then(Json::as_arr) else {
        let _ = writeln!(w, "no `spans` array (not a PROFILE.json?)");
        return out;
    };
    let mut rows: Vec<&Json> = spans.iter().collect();
    rows.sort_by(|a, b| {
        num(b, "wall_s")
            .partial_cmp(&num(a, "wall_s"))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    const TOP: usize = 10;
    let _ = writeln!(
        w,
        "top {} of {} spans by wall time:",
        TOP.min(rows.len()),
        rows.len()
    );
    let _ = writeln!(
        w,
        "  {:<10} {:>9} {:>13}  name",
        "level", "wall_s", "cycles"
    );
    for rec in rows.iter().take(TOP) {
        let _ = writeln!(
            w,
            "  {:<10} {:>9.3} {:>13}  {}",
            rec.get("level").and_then(Json::as_str).unwrap_or("?"),
            num(rec, "wall_s"),
            int(rec, "cycles"),
            rec.get("name").and_then(Json::as_str).unwrap_or("?")
        );
    }
    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the report as one self-contained HTML page (inline CSS, no
/// scripts, no external references): the same data as the text report,
/// with the virtual schedule drawn as proportional div bars.
fn render_report_html(d: &ReportData, text_sections: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "<!DOCTYPE html>");
    let _ = writeln!(
        w,
        "<html><head><meta charset=\"utf-8\"><title>run report</title>"
    );
    let _ = writeln!(
        w,
        "<style>body{{font-family:monospace;margin:1em}}\
         .lane{{position:relative;height:22px;background:#eee;margin:2px 0}}\
         .seg{{position:absolute;top:1px;height:20px;background:#4a90d9;\
         color:#fff;overflow:hidden;font-size:11px;border-right:1px solid #fff}}\
         pre{{background:#f7f7f7;padding:8px}}</style></head><body>"
    );
    let _ = writeln!(w, "<h1>run report</h1>");
    let _ = writeln!(
        w,
        "<h2>virtual schedule ({} lanes, LPT by estimated cost)</h2>",
        d.lanes.len()
    );
    if d.makespan > 0 {
        for segs in &d.lanes {
            let _ = writeln!(w, "<div class=\"lane\">");
            for s in segs {
                let left = 100.0 * s.start as f64 / d.makespan as f64;
                let width = 100.0 * (s.finish - s.start) as f64 / d.makespan as f64;
                let u = &d.units[s.unit];
                let _ = writeln!(
                    w,
                    "<div class=\"seg\" style=\"left:{left:.4}%;width:{width:.4}%\" \
                     title=\"{}\">{}</div>",
                    html_escape(&u.label),
                    u.unit
                );
            }
            let _ = writeln!(w, "</div>");
        }
    } else {
        let _ = writeln!(w, "<p>nothing to schedule</p>");
    }
    let _ = writeln!(w, "<h2>full report</h2>");
    let _ = writeln!(w, "<pre>{}</pre>", html_escape(text_sections));
    let _ = writeln!(w, "</body></html>");
    out
}

fn report_cmd(opts: &ReportOpts) -> ExitCode {
    let text = match read_trace(&opts.trace) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (records, skipped) = parse_records(&text);
    warn_skipped(skipped);
    let d = collect_report_data(&records, opts.lanes);
    let mut report = render_report_text(&d);
    if opts.timings {
        report.push_str(&render_timings_text(&d));
    }
    if let Some(profile_path) = &opts.profile {
        match read_trace(profile_path) {
            Ok(ptext) => match parse(&ptext) {
                Ok(doc) => report.push_str(&render_profile_text(&doc)),
                Err(e) => {
                    eprintln!("error: {profile_path} is not valid JSON: {e:?}");
                    return ExitCode::FAILURE;
                }
            },
            Err(code) => return code,
        }
    }
    outln!("{report}");
    if let Some(html_path) = &opts.html {
        let html = render_report_html(&d, &report);
        if let Err(e) = std::fs::write(html_path, html) {
            eprintln!("error: cannot write {html_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report: wrote {html_path}");
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// bench-trend
// ---------------------------------------------------------------------------

/// Whether a history field is a throughput-like metric where bigger is
/// better (gated by the ratio threshold).
fn higher_better(key: &str) -> bool {
    key.contains("cycles_per_sec")
        || key.contains("speedup")
        || key.contains("hit_rate")
        || key.contains("dedup_ratio")
        || key.contains("utilization")
}

/// Compares each benchmark's latest history snapshot against its previous
/// one. Thresholds per field class:
///
/// * higher-better metrics (`*cycles_per_sec*`, `*speedup*`, `*hit_rate*`,
///   `*dedup_ratio*`, `*utilization*`): regression when the new value
///   falls below 85 % of the old (old values of 0 are skipped);
/// * `*overhead_pct`: regression when the new value exceeds
///   `max(old, 0) + 2.0` percentage points;
/// * `*identical*` booleans: regression on any `true -> false` flip;
/// * `*seconds` and `*noise_floor*` fields are never gated (wall-clock
///   and noise-floor numbers vary with the host).
///
/// Exits non-zero when any field regressed.
fn bench_trend_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (records, skipped) = parse_records(&text);
    warn_skipped(skipped);
    let mut groups: BTreeMap<String, Vec<&Json>> = BTreeMap::new();
    for rec in &records {
        if let Some(b) = rec.get("benchmark").and_then(Json::as_str) {
            groups.entry(b.to_string()).or_default().push(rec);
        }
    }
    if groups.is_empty() {
        eprintln!("warning: no history snapshots in {path}");
        return ExitCode::SUCCESS;
    }
    let mut regressions = 0u64;
    for (bench, snaps) in &groups {
        if snaps.len() < 2 {
            outln!(
                "{bench}: only {} snapshot(s), nothing to compare",
                snaps.len()
            );
            continue;
        }
        let prev = snaps[snaps.len() - 2];
        let latest = snaps[snaps.len() - 1];
        let mut compared = 0u64;
        let mut flagged = 0u64;
        let Some(fields) = latest.as_obj() else {
            continue;
        };
        for (key, val) in fields {
            if key == "benchmark" || key == "ts" {
                continue;
            }
            if key.ends_with("seconds") || key.contains("noise_floor") {
                continue;
            }
            let Some(old) = prev.get(key) else { continue };
            match (old, val) {
                (Json::Bool(o), Json::Bool(n)) if key.contains("identical") => {
                    compared += 1;
                    if *o && !*n {
                        flagged += 1;
                        regressions += 1;
                        outln!("REGRESSION {bench}.{key}: true -> false");
                    }
                }
                (Json::Num(o), Json::Num(n)) if key.ends_with("overhead_pct") => {
                    compared += 1;
                    let limit = o.max(0.0) + 2.0;
                    if *n > limit {
                        flagged += 1;
                        regressions += 1;
                        outln!("REGRESSION {bench}.{key}: {o:.2} -> {n:.2} (limit <= {limit:.2})");
                    }
                }
                (Json::Num(o), Json::Num(n)) if higher_better(key) && *o > 0.0 => {
                    compared += 1;
                    let limit = o * 0.85;
                    if *n < limit {
                        flagged += 1;
                        regressions += 1;
                        outln!("REGRESSION {bench}.{key}: {o:.3} -> {n:.3} (limit >= {limit:.3})");
                    }
                }
                _ => {}
            }
        }
        outln!("{bench}: {compared} gated field(s), {flagged} regression(s)");
    }
    if regressions > 0 {
        eprintln!("bench-trend: {regressions} regression(s) beyond thresholds");
        ExitCode::FAILURE
    } else {
        outln!("OK: no regressions beyond thresholds");
        ExitCode::SUCCESS
    }
}
