//! Offline analysis CLI for JSONL traces (`docs/TRACE_SCHEMA.md`).
//!
//! ```text
//! trace-tools validate <trace>         strict schema check (CI gate)
//! trace-tools timeline <trace>         per-app EB/BW/CMR/IPC CSV
//! trace-tools stalls   <trace>         stall breakdown + latency percentiles
//! trace-tools cache    <trace>         result-cache counter summary
//! trace-tools diff     <a> <b>         compare two traces
//! trace-tools profile  <PROFILE.json>  top spans by wall time
//! ```
//!
//! `validate` exits non-zero on the first schema violation class (all
//! offending lines are listed, capped); the analysis modes skip and count
//! unparsable lines so a partially-damaged trace still renders.

use ebm_bench::json::{parse, Json};
use ebm_bench::schema::{validate_trace, MAX_SCHEMA_VERSION};
use gpu_types::Histogram;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// `println!` that treats a closed stdout (e.g. `trace-tools timeline t |
/// head`) as a normal end of output instead of a broken-pipe panic.
macro_rules! outln {
    ($($t:tt)*) => {{
        use std::io::Write;
        if let Err(e) = writeln!(std::io::stdout(), $($t)*) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            panic!("stdout write failed: {e}");
        }
    }};
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace-tools <command> <trace.jsonl> [args]\n\
         \n\
         commands:\n\
         \x20 validate <trace>      check every record against schema v1..={MAX_SCHEMA_VERSION}\n\
         \x20 timeline <trace>      per-app EB/BW/CMR/IPC timeline as CSV (stdout)\n\
         \x20 stalls <trace>        warp-stall breakdown and latency percentile tables\n\
         \x20 cache <trace>         result-cache counter summary\n\
         \x20 diff <a> <b>          compare two traces (kinds, windows, per-app means)\n\
         \x20 profile <PROFILE.json> [N]  top N spans by wall time (default 20)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("validate") if args.len() == 2 => validate_cmd(&args[1]),
        Some("timeline") if args.len() == 2 => timeline_cmd(&args[1]),
        Some("stalls") if args.len() == 2 => stalls_cmd(&args[1]),
        Some("cache") if args.len() == 2 => cache_cmd(&args[1]),
        Some("diff") if args.len() == 3 => diff_cmd(&args[1], &args[2]),
        Some("profile") if args.len() == 2 => profile_cmd(&args[1], 20),
        Some("profile") if args.len() == 3 => match args[2].parse() {
            Ok(n) => profile_cmd(&args[1], n),
            Err(_) => usage(),
        },
        _ => usage(),
    }
}

fn read_trace(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

fn validate_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let report = validate_trace(&text);
    outln!("{path}: {} records", report.lines);
    for (kind, n) in &report.by_kind {
        outln!("  {kind:<18} {n}");
    }
    if report.is_ok() {
        outln!("OK: every record matches docs/TRACE_SCHEMA.md");
        ExitCode::SUCCESS
    } else {
        const CAP: usize = 20;
        for (line, msg) in report.errors.iter().take(CAP) {
            eprintln!("{path}:{line}: {msg}");
        }
        if report.errors.len() > CAP {
            eprintln!("... and {} more errors", report.errors.len() - CAP);
        }
        eprintln!(
            "INVALID: {} of {} records failed",
            report.errors.len(),
            report.lines
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// shared parsing helpers for the analysis modes
// ---------------------------------------------------------------------------

/// Parses every well-formed JSON object line; returns the records and the
/// number of skipped (unparsable) lines.
fn parse_records(text: &str) -> (Vec<Json>, u64) {
    let mut records = Vec::new();
    let mut skipped = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line) {
            Ok(v @ Json::Obj(_)) => records.push(v),
            _ => skipped += 1,
        }
    }
    (records, skipped)
}

fn kind_of(rec: &Json) -> &str {
    rec.get("kind").and_then(Json::as_str).unwrap_or("")
}

fn num(rec: &Json, key: &str) -> f64 {
    rec.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

fn int(rec: &Json, key: &str) -> u64 {
    rec.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn warn_skipped(skipped: u64) {
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} unparsable line(s)");
    }
}

/// Rebuilds a histogram from its serialized object; `None` when the
/// record is malformed or internally inconsistent.
fn hist_of(rec: &Json, key: &str) -> Option<Histogram> {
    let h = rec.get(key)?;
    let buckets: Vec<u64> = h
        .get("buckets")?
        .as_arr()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<_>>()?;
    Histogram::from_parts(
        h.get("count")?.as_u64()?,
        h.get("sum")?.as_u64()?,
        h.get("min")?.as_u64()?,
        h.get("max")?.as_u64()?,
        &buckets,
    )
    .ok()
}

// ---------------------------------------------------------------------------
// timeline
// ---------------------------------------------------------------------------

fn timeline_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (records, skipped) = parse_records(&text);
    outln!("cycle,app,eb,bw,cmr,ipc");
    let mut rows = 0u64;
    for rec in records.iter().filter(|r| kind_of(r) == "window_sample") {
        outln!(
            "{},{},{},{},{},{}",
            int(rec, "cycle"),
            int(rec, "app"),
            fmt_num(num(rec, "eb")),
            fmt_num(num(rec, "bw")),
            fmt_num(num(rec, "cmr")),
            fmt_num(num(rec, "ipc")),
        );
        rows += 1;
    }
    warn_skipped(skipped);
    if rows == 0 {
        eprintln!("warning: no window_sample records in {path}");
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// stalls
// ---------------------------------------------------------------------------

#[derive(Default)]
struct StallAccum {
    mem: u64,
    exec: u64,
    barrier: u64,
    tlp_capped: u64,
    dram_lat: Histogram,
    windows: u64,
}

fn stalls_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (records, skipped) = parse_records(&text);
    // Key: Some(app) per-app rows, None = machine-wide aggregate.
    let mut acc: BTreeMap<Option<u64>, StallAccum> = BTreeMap::new();
    let mut mshr_occ = Histogram::new();
    let mut queue_depth = Histogram::new();
    for rec in records.iter().filter(|r| kind_of(r) == "metrics_window") {
        let app = rec.get("app").and_then(Json::as_u64);
        let a = acc.entry(app).or_default();
        if let Some(stalls) = rec.get("stalls") {
            a.mem += int(stalls, "mem");
            a.exec += int(stalls, "exec");
            a.barrier += int(stalls, "barrier");
            a.tlp_capped += int(stalls, "tlp_capped");
        }
        if let Some(h) = hist_of(rec, "dram_lat") {
            a.dram_lat.merge(&h);
        }
        a.windows += 1;
        if app.is_none() {
            if let Some(h) = hist_of(rec, "mshr_occ") {
                mshr_occ.merge(&h);
            }
            if let Some(h) = hist_of(rec, "queue_depth") {
                queue_depth.merge(&h);
            }
        }
    }
    warn_skipped(skipped);
    if acc.is_empty() {
        eprintln!("warning: no metrics_window records in {path} (trace predates schema v3?)");
        return ExitCode::SUCCESS;
    }
    outln!("warp-stall breakdown (warp-cycles, summed over windows)");
    outln!(
        "{:<6} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "app",
        "windows",
        "mem",
        "exec",
        "barrier",
        "tlp_capped"
    );
    for (app, a) in &acc {
        let label = app.map_or("all".to_string(), |x| x.to_string());
        outln!(
            "{label:<6} {:>8} {:>14} {:>14} {:>14} {:>14}",
            a.windows,
            a.mem,
            a.exec,
            a.barrier,
            a.tlp_capped
        );
    }
    outln!();
    outln!("DRAM request latency (cycles, queue to data)");
    outln!(
        "{:<6} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app",
        "requests",
        "mean",
        "min",
        "p50",
        "p95",
        "p99",
        "max"
    );
    for (app, a) in &acc {
        let label = app.map_or("all".to_string(), |x| x.to_string());
        let h = &a.dram_lat;
        outln!(
            "{label:<6} {:>10} {:>10.1} {:>8} {:>8} {:>8} {:>8} {:>8}",
            h.count(),
            h.mean(),
            h.min(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max()
        );
    }
    outln!();
    outln!("machine-wide occupancy gauges (sampled once per window)");
    outln!(
        "{:<12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "gauge",
        "samples",
        "mean",
        "min",
        "p50",
        "p95",
        "p99",
        "max"
    );
    for (name, h) in [("l2_mshr", &mshr_occ), ("queue_depth", &queue_depth)] {
        outln!(
            "{name:<12} {:>10} {:>10.1} {:>8} {:>8} {:>8} {:>8} {:>8}",
            h.count(),
            h.mean(),
            h.min(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max()
        );
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// cache
// ---------------------------------------------------------------------------

fn cache_cmd(path: &str) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (records, skipped) = parse_records(&text);
    warn_skipped(skipped);
    // Counters are cumulative at emission time, so the last record wins.
    let Some(rec) = records.iter().rev().find(|r| kind_of(r) == "cache_stats") else {
        eprintln!("warning: no cache_stats records in {path}");
        return ExitCode::SUCCESS;
    };
    let (hits, disk_hits, misses) = (int(rec, "hits"), int(rec, "disk_hits"), int(rec, "misses"));
    let lookups = hits + misses;
    outln!("result-cache counters (final snapshot)");
    outln!("  hits       {hits} ({disk_hits} from disk)");
    outln!("  misses     {misses}");
    outln!("  bypasses   {}", int(rec, "bypasses"));
    outln!("  stores     {}", int(rec, "stores"));
    outln!("  verified   {}", int(rec, "verified"));
    if lookups > 0 {
        outln!("  hit rate   {:.1}%", 100.0 * hits as f64 / lookups as f64);
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// profile
// ---------------------------------------------------------------------------

/// Renders the top-`top_n` spans of a `results/PROFILE.json` by wall
/// time: where a campaign actually spent its time, at what simulation
/// rate, and how often the result cache served it. In a scheduled
/// campaign this file holds one `unit` span per work unit — the same
/// labels the scheduler's cost model reads back.
fn profile_cmd(path: &str, top_n: usize) -> ExitCode {
    let text = match read_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spans) = doc.get("spans").and_then(Json::as_arr) else {
        eprintln!("error: {path} has no `spans` array (not a PROFILE.json?)");
        return ExitCode::FAILURE;
    };
    let mut rows: Vec<&Json> = spans.iter().collect();
    rows.sort_by(|a, b| {
        num(b, "wall_s")
            .partial_cmp(&num(a, "wall_s"))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total_wall: f64 = spans
        .iter()
        .filter(|s| s.get("level").and_then(Json::as_str) == Some("campaign"))
        .map(|s| num(s, "wall_s"))
        .sum();
    outln!(
        "top {} of {} spans by wall time{}",
        top_n.min(rows.len()),
        rows.len(),
        doc.get("workers")
            .and_then(Json::as_u64)
            .map_or(String::new(), |w| format!(" ({w} workers)"))
    );
    outln!(
        "{:<10} {:<40} {:>9} {:>6} {:>13} {:>11} {:>8}",
        "level",
        "name",
        "wall_s",
        "%",
        "cycles",
        "cycles/s",
        "hit%"
    );
    for rec in rows.iter().take(top_n) {
        let wall = num(rec, "wall_s");
        let cycles = int(rec, "cycles");
        let hits = int(rec, "cache_hits");
        let misses = int(rec, "cache_misses");
        let lookups = hits + misses;
        let pct = if total_wall > 0.0 {
            format!("{:.1}", 100.0 * wall / total_wall)
        } else {
            "-".to_string()
        };
        let rate = if wall > 0.0 && cycles > 0 {
            format!("{:.0}", cycles as f64 / wall)
        } else {
            "-".to_string()
        };
        let hit_rate = if lookups > 0 {
            format!("{:.1}", 100.0 * hits as f64 / lookups as f64)
        } else {
            "-".to_string()
        };
        let mut name = rec
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        if name.len() > 40 {
            name.truncate(37);
            name.push_str("...");
        }
        outln!(
            "{:<10} {:<40} {:>9.3} {:>6} {:>13} {:>11} {:>8}",
            rec.get("level").and_then(Json::as_str).unwrap_or("?"),
            name,
            wall,
            pct,
            cycles,
            rate,
            hit_rate
        );
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

#[derive(Default)]
struct TraceSummary {
    kinds: BTreeMap<String, u64>,
    last_cycle: u64,
    /// Per app: (windows, Σeb, Σipc).
    apps: BTreeMap<u64, (u64, f64, f64)>,
    tlp_decisions: u64,
}

fn summarize(records: &[Json]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for rec in records {
        let kind = kind_of(rec).to_string();
        if kind.is_empty() {
            continue;
        }
        *s.kinds.entry(kind.clone()).or_insert(0) += 1;
        s.last_cycle = s.last_cycle.max(int(rec, "cycle"));
        match kind.as_str() {
            "window_sample" => {
                let e = s.apps.entry(int(rec, "app")).or_insert((0, 0.0, 0.0));
                e.0 += 1;
                let (eb, ipc) = (num(rec, "eb"), num(rec, "ipc"));
                if eb.is_finite() {
                    e.1 += eb;
                }
                if ipc.is_finite() {
                    e.2 += ipc;
                }
            }
            "tlp_decision" => s.tlp_decisions += 1,
            _ => {}
        }
    }
    s
}

fn diff_cmd(path_a: &str, path_b: &str) -> ExitCode {
    let (text_a, text_b) = match (read_trace(path_a), read_trace(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let (recs_a, skip_a) = parse_records(&text_a);
    let (recs_b, skip_b) = parse_records(&text_b);
    warn_skipped(skip_a + skip_b);
    let (a, b) = (summarize(&recs_a), summarize(&recs_b));

    outln!("{:<24} {:>14} {:>14} {:>14}", "metric", "A", "B", "delta");
    outln!(
        "{:<24} {:>14} {:>14} {:>14}",
        "records",
        recs_a.len(),
        recs_b.len(),
        recs_b.len() as i64 - recs_a.len() as i64
    );
    let mut all_kinds: Vec<&String> = a.kinds.keys().chain(b.kinds.keys()).collect();
    all_kinds.sort();
    all_kinds.dedup();
    let mut identical = recs_a.len() == recs_b.len();
    for kind in all_kinds {
        let (na, nb) = (
            a.kinds.get(kind).copied().unwrap_or(0),
            b.kinds.get(kind).copied().unwrap_or(0),
        );
        if na != nb {
            identical = false;
        }
        outln!(
            "{:<24} {na:>14} {nb:>14} {:>14}",
            format!("  {kind}"),
            nb as i64 - na as i64
        );
    }
    outln!(
        "{:<24} {:>14} {:>14} {:>14}",
        "last cycle",
        a.last_cycle,
        b.last_cycle,
        b.last_cycle as i64 - a.last_cycle as i64
    );
    outln!(
        "{:<24} {:>14} {:>14} {:>14}",
        "tlp decisions",
        a.tlp_decisions,
        b.tlp_decisions,
        b.tlp_decisions as i64 - a.tlp_decisions as i64
    );
    let mut apps: Vec<&u64> = a.apps.keys().chain(b.apps.keys()).collect();
    apps.sort();
    apps.dedup();
    for app in apps {
        let ma = a.apps.get(app).copied().unwrap_or((0, 0.0, 0.0));
        let mb = b.apps.get(app).copied().unwrap_or((0, 0.0, 0.0));
        let mean = |(n, sum, _): (u64, f64, f64)| if n > 0 { sum / n as f64 } else { f64::NAN };
        let mean_ipc = |(n, _, sum): (u64, f64, f64)| if n > 0 { sum / n as f64 } else { f64::NAN };
        let (ea, eb) = (mean(ma), mean(mb));
        let (ia, ib) = (mean_ipc(ma), mean_ipc(mb));
        if (ea - eb).abs() > 1e-12 || (ia - ib).abs() > 1e-12 {
            identical = false;
        }
        outln!(
            "{:<24} {:>14.4} {:>14.4} {:>+14.4}",
            format!("app {app} mean EB"),
            ea,
            eb,
            eb - ea
        );
        outln!(
            "{:<24} {:>14.4} {:>14.4} {:>+14.4}",
            format!("app {app} mean IPC"),
            ia,
            ib,
            ib - ia
        );
    }
    outln!();
    if identical {
        outln!("traces are equivalent under this summary");
    } else {
        outln!("traces differ");
    }
    ExitCode::SUCCESS
}
